#!/usr/bin/env sh
# Workspace verification: tier-1 (release build + full test suite) plus
# a warning-free clippy pass and the vendored scan-lint static-analysis
# gate (docs/LINTS.md). Run from anywhere inside the repository.
#
#   scripts/verify.sh
#
# The workspace is intentionally zero-dependency (no external registry
# crates), so this must succeed fully offline.
set -eu

cd "$(dirname "$0")/.."

echo "==> cargo build --release --workspace"
cargo build --release --workspace

echo "==> cargo test --workspace -q"
cargo test --workspace -q

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

SMOKE_DIR=target/obs-smoke
mkdir -p "$SMOKE_DIR"

echo "==> static analysis (scan-lint --deny, findings NDJSON via obs-check)"
./target/release/scan-lint --deny --out "$SMOKE_DIR/lint.ndjson"
./target/release/obs-check "$SMOKE_DIR/lint.ndjson"
# The panic-freedom gate must be real, not vacuously green: the
# workspace config declares roots, and no unsuppressed L012 survives.
grep -q 'panic_freedom' lint.toml || {
    echo "lint.toml lost its [roots] panic_freedom declaration"; exit 1;
}
UNSUPPRESSED_L012=$(grep '"rule":"L012"' "$SMOKE_DIR/lint.ndjson" | grep -cv '"suppressed"' || true)
[ "$UNSUPPRESSED_L012" = 0 ] || {
    echo "verify: $UNSUPPRESSED_L012 unsuppressed L012 finding(s) in the export"; exit 1;
}

echo "==> call-graph export (scanbist lint --graph via obs-check)"
./target/release/scanbist lint --graph "$SMOKE_DIR/graph.ndjson"     --out "$SMOKE_DIR/lint_cli.ndjson" 2>> "$SMOKE_DIR/summary.txt"
./target/release/obs-check "$SMOKE_DIR/graph.ndjson" "$SMOKE_DIR/lint_cli.ndjson"
grep -q '"type":"graph"' "$SMOKE_DIR/graph.ndjson" || {
    echo "graph export is missing its trailing summary record"; exit 1;
}

echo "==> instrumented smoke campaign (--trace --metrics-out --profile-out --audit-out --slo)"
./target/release/scanbist \
    --trace --trace-out "$SMOKE_DIR/trace.ndjson" \
    --metrics-out "$SMOKE_DIR/metrics.json" \
    --profile-out "$SMOKE_DIR/profile.folded" \
    --audit-out "$SMOKE_DIR/audit.ndjson" \
    --slo slo.toml \
    diagnose s953 --patterns 64 --faults 50 > /dev/null 2> "$SMOKE_DIR/summary.txt"
./target/release/obs-check \
    "$SMOKE_DIR/trace.ndjson" "$SMOKE_DIR/metrics.json" \
    "$SMOKE_DIR/profile.folded" "$SMOKE_DIR/audit.ndjson"

echo "==> obs query smoke (counter sums bit-identical to the metrics snapshot)"
./target/release/scanbist obs query "$SMOKE_DIR/trace.ndjson" \
    --type counter --group-by name --agg sum --field value \
    > "$SMOKE_DIR/query_counters.json"
WANT=$(sed -n 's/.*"diagnosis\.cases":\([0-9]*\).*/\1/p' "$SMOKE_DIR/metrics.json")
GOT=$(sed -n 's/.*"key":"diagnosis\.cases","n":[0-9]*,"value":\([0-9]*\).*/\1/p' \
    "$SMOKE_DIR/query_counters.json")
[ -n "$WANT" ] && [ "$WANT" = "$GOT" ] || {
    echo "obs query sum (${GOT:-none}) != metrics snapshot total (${WANT:-none}) for diagnosis.cases"
    exit 1
}

echo "==> engine-diff smoke (bitpar vs event audits must be identical)"
./target/release/scanbist \
    --audit-out "$SMOKE_DIR/audit_bitpar.ndjson" \
    diagnose s298 --patterns 64 --faults 30 --engine bitpar \
    > /dev/null 2>> "$SMOKE_DIR/summary.txt"
./target/release/scanbist \
    --audit-out "$SMOKE_DIR/audit_event.ndjson" \
    diagnose s298 --patterns 64 --faults 30 --engine event \
    > /dev/null 2>> "$SMOKE_DIR/summary.txt"
./target/release/obs-check \
    "$SMOKE_DIR/audit_bitpar.ndjson" "$SMOKE_DIR/audit_event.ndjson"
cmp -s "$SMOKE_DIR/audit_bitpar.ndjson" "$SMOKE_DIR/audit_event.ndjson" || {
    echo "engine audits diverged: the bit-parallel and event-driven"
    echo "engines produced different campaign audit trails"; exit 1;
}

echo "==> noisy-campaign smoke (scanbist noise --audit-out)"
./target/release/scanbist \
    --json --audit-out "$SMOKE_DIR/noise_audit.ndjson" \
    noise s953 --patterns 64 --faults 50 --flip 0.02 --seed 7 \
    > "$SMOKE_DIR/noise_summary.json" 2>> "$SMOKE_DIR/summary.txt"
./target/release/obs-check "$SMOKE_DIR/noise_audit.ndjson"
# The robust engine must keep the smoke campaign diagnosable: every
# fault Exact or Degraded, none Inconclusive.
grep -q '"inconclusive":0' "$SMOKE_DIR/noise_summary.json" || {
    echo "noisy smoke left faults inconclusive:"; cat "$SMOKE_DIR/noise_summary.json"; exit 1;
}

echo "==> quick bench smoke (scanbist bench --quick)"
./target/release/scanbist \
    bench --quick --out "$SMOKE_DIR/BENCH_quick.json" \
    > "$SMOKE_DIR/bench_table.txt" 2> "$SMOKE_DIR/bench_progress.txt"
./target/release/obs-check "$SMOKE_DIR/BENCH_quick.json"

echo "==> live metrics smoke (--serve-metrics, scraped mid-campaign)"
./target/release/scanbist \
    --serve-metrics 127.0.0.1:0 \
    --trace-out "$SMOKE_DIR/serve_trace.ndjson" \
    diagnose s13207 --patterns 256 --faults 120 \
    > /dev/null 2> "$SMOKE_DIR/serve_stderr.txt" &
SERVE_PID=$!
# The ephemeral bound address is announced on stderr; poll for it.
ADDR=""
for _ in $(seq 1 100); do
    ADDR=$(sed -n 's#^obs: serving metrics on http://##p' "$SMOKE_DIR/serve_stderr.txt")
    [ -n "$ADDR" ] && break
    sleep 0.1
done
[ -n "$ADDR" ] || { echo "serve-metrics never announced an address"; kill "$SERVE_PID" 2>/dev/null; exit 1; }
./target/release/obs-check --scrape "$ADDR" || {
    echo "live /metrics scrape failed"; kill "$SERVE_PID" 2>/dev/null; exit 1;
}
wait "$SERVE_PID" || { echo "instrumented serve campaign failed"; exit 1; }
./target/release/obs-check "$SMOKE_DIR/serve_trace.ndjson"

echo "==> multi-process trace-join smoke (all_experiments + obs-check --join)"
rm -f "$SMOKE_DIR"/join/trace_*.ndjson
mkdir -p "$SMOKE_DIR/join"
./target/release/all_experiments \
    --trace-out "$SMOKE_DIR/join/trace_all_experiments.ndjson" \
    --only table1,table2 "$SMOKE_DIR/join" \
    > /dev/null 2>> "$SMOKE_DIR/summary.txt"
./target/release/obs-check --join "$SMOKE_DIR"/join/trace_*.ndjson

echo "==> SLO alert smoke (tight burn-rate rule: exactly one fire/resolve pair)"
cat > "$SMOKE_DIR/tight_slo.toml" <<'SLO'
# Deliberately tight: the per-core sweep folds diagnosis.cases in
# bursts far above 100/s, so the rule fires early in the sweep; the
# linger window keeps the sampler ticking through the quiet tail so
# the short window drains and the rule resolves exactly once.
[rule.sweep-burn]
series = "diagnosis.cases"
kind = "burn_rate"
rate_max = 100.0
long_ms = 2000
short_ms = 2000
SLO
SCANBIST_SLO_LINGER_MS=3000 ./target/release/table4 \
    --slo "$SMOKE_DIR/tight_slo.toml" \
    --trace-out "$SMOKE_DIR/alert_trace.ndjson" "$SMOKE_DIR" \
    > /dev/null 2>> "$SMOKE_DIR/summary.txt"
./target/release/obs-check "$SMOKE_DIR/alert_trace.ndjson"
FIRING=$(grep -c '"type":"alert".*"state":"firing"' "$SMOKE_DIR/alert_trace.ndjson" || true)
RESOLVED=$(grep -c '"type":"alert".*"state":"resolved"' "$SMOKE_DIR/alert_trace.ndjson" || true)
[ "$FIRING" = 1 ] && [ "$RESOLVED" = 1 ] || {
    echo "alert smoke expected exactly one fire/resolve pair, got $FIRING firing / $RESOLVED resolved:"
    grep '"type":"alert"' "$SMOKE_DIR/alert_trace.ndjson" || true
    exit 1
}

echo "==> flight-recorder crash smoke (forced panic, dump joins the parent trace)"
rm -rf "$SMOKE_DIR/crash"
mkdir -p "$SMOKE_DIR/crash"
if SCANBIST_CRASH_EXPERIMENT=table1 ./target/release/all_experiments \
    --trace-out "$SMOKE_DIR/crash/trace_all_experiments.ndjson" \
    --flight-recorder "$SMOKE_DIR/crash/flight_all_experiments.ndjson" \
    --only table1,table2 "$SMOKE_DIR/crash" \
    > /dev/null 2>> "$SMOKE_DIR/summary.txt"; then
    echo "crash smoke: all_experiments should exit nonzero when a child panics"
    exit 1
fi
[ -f "$SMOKE_DIR/crash/flight_table1.ndjson" ] || {
    echo "crash smoke left no flight dump for the panicked child"; exit 1;
}
grep -q '"type":"flight".*"reason":"panic"' "$SMOKE_DIR/crash/flight_table1.ndjson" || {
    echo "flight dump is missing its panic header record"; exit 1;
}
grep -q '^reason:  panic$' "$SMOKE_DIR/crash/flight_table1.txt" || {
    echo "flight dump is missing its human-readable summary"; exit 1;
}
./target/release/obs-check --join \
    "$SMOKE_DIR/crash/trace_all_experiments.ndjson" \
    "$SMOKE_DIR/crash/trace_table2.ndjson" \
    "$SMOKE_DIR/crash/flight_table1.ndjson"

echo "==> dashboard smoke (scanbist report, self-contained HTML + alert panel)"
./target/release/scanbist report "$SMOKE_DIR"/join/trace_*.ndjson \
    "$SMOKE_DIR/alert_trace.ndjson" \
    --out "$SMOKE_DIR/report.html" --title "verify smoke" \
    2>> "$SMOKE_DIR/summary.txt"
grep -q '<!doctype html>' "$SMOKE_DIR/report.html" || {
    echo "report smoke did not render an HTML document"; exit 1;
}
grep -q '<h2>SLO alerts</h2>' "$SMOKE_DIR/report.html" || {
    echo "report smoke did not render the SLO alert panel"; exit 1;
}
# Self-contained means self-contained: no external asset references.
if grep -Eq 'src="https?://|href="https?://|@import' "$SMOKE_DIR/report.html"; then
    echo "report.html references external assets"; exit 1;
fi

echo "==> scanbistd smoke (chaos-on load burst, live scrape, clean drain)"
rm -f "$SMOKE_DIR/daemon_stdout.txt"
SCANBIST_CHAOS="seed=5,slow_read=0.05,slow_read_ms=20,malformed=0.05,panic=0.05,latency=0.1,latency_ms=10,truncate=0.05" \
    ./target/release/scanbist --slo slo.toml serve \
    --addr 127.0.0.1:0 --queue 32 --deadline-ms 2000 --drain-ms 5000 \
    > "$SMOKE_DIR/daemon_stdout.txt" 2> "$SMOKE_DIR/daemon_stderr.txt" &
DAEMON_PID=$!
DADDR=""
for _ in $(seq 1 100); do
    DADDR=$(sed -n 's#^scanbistd: listening on http://##p' "$SMOKE_DIR/daemon_stdout.txt")
    [ -n "$DADDR" ] && break
    sleep 0.1
done
[ -n "$DADDR" ] || { echo "scanbistd never announced an address"; kill "$DAEMON_PID" 2>/dev/null; exit 1; }
# Overload burst with chaos injected: the loadgen exits nonzero if any
# response carries a status outside the daemon's graceful-degradation
# contract (i.e. any non-injected failure).
./target/release/scanbistd-loadgen --addr "$DADDR" \
    --rates 30,120 --duration-ms 1500 --deadline-ms 2000 --seed 3 \
    --out "$SMOKE_DIR/BENCH_daemon_smoke.json" \
    > "$SMOKE_DIR/loadgen.txt" || {
    echo "loadgen saw non-injected failures:"; cat "$SMOKE_DIR/loadgen.txt";
    kill "$DAEMON_PID" 2>/dev/null; exit 1;
}
./target/release/obs-check "$SMOKE_DIR/BENCH_daemon_smoke.json"
# The daemon serves the obs endpoints itself; scrape it live.
./target/release/obs-check --scrape "$DADDR" || {
    echo "live scanbistd /metrics scrape failed"; kill "$DAEMON_PID" 2>/dev/null; exit 1;
}
# Drain and require a clean exit.
./target/release/scanbistd-loadgen --addr "$DADDR" --drain >> "$SMOKE_DIR/loadgen.txt"
wait "$DAEMON_PID" || { echo "scanbistd did not drain cleanly"; exit 1; }
grep -q "scanbistd: drained" "$SMOKE_DIR/daemon_stdout.txt" || {
    echo "scanbistd never logged its drain"; exit 1;
}

echo "==> verify OK"
