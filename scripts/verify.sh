#!/usr/bin/env sh
# Workspace verification: tier-1 (release build + full test suite) plus
# a warning-free clippy pass. Run from anywhere inside the repository.
#
#   scripts/verify.sh
#
# The workspace is intentionally zero-dependency (no external registry
# crates), so this must succeed fully offline.
set -eu

cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test --workspace -q"
cargo test --workspace -q

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> verify OK"
