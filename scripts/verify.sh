#!/usr/bin/env sh
# Workspace verification: tier-1 (release build + full test suite) plus
# a warning-free clippy pass and the vendored scan-lint static-analysis
# gate (docs/LINTS.md). Run from anywhere inside the repository.
#
#   scripts/verify.sh
#
# The workspace is intentionally zero-dependency (no external registry
# crates), so this must succeed fully offline.
set -eu

cd "$(dirname "$0")/.."

echo "==> cargo build --release --workspace"
cargo build --release --workspace

echo "==> cargo test --workspace -q"
cargo test --workspace -q

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

SMOKE_DIR=target/obs-smoke
mkdir -p "$SMOKE_DIR"

echo "==> static analysis (scan-lint --deny, findings NDJSON via obs-check)"
./target/release/scan-lint --deny --out "$SMOKE_DIR/lint.ndjson"
./target/release/obs-check "$SMOKE_DIR/lint.ndjson"

echo "==> instrumented smoke campaign (--trace --metrics-out --profile-out --audit-out)"
./target/release/scanbist \
    --trace --trace-out "$SMOKE_DIR/trace.ndjson" \
    --metrics-out "$SMOKE_DIR/metrics.json" \
    --profile-out "$SMOKE_DIR/profile.folded" \
    --audit-out "$SMOKE_DIR/audit.ndjson" \
    diagnose s953 --patterns 64 --faults 50 > /dev/null 2> "$SMOKE_DIR/summary.txt"
./target/release/obs-check \
    "$SMOKE_DIR/trace.ndjson" "$SMOKE_DIR/metrics.json" \
    "$SMOKE_DIR/profile.folded" "$SMOKE_DIR/audit.ndjson"

echo "==> engine-diff smoke (bitpar vs event audits must be identical)"
./target/release/scanbist \
    --audit-out "$SMOKE_DIR/audit_bitpar.ndjson" \
    diagnose s298 --patterns 64 --faults 30 --engine bitpar \
    > /dev/null 2>> "$SMOKE_DIR/summary.txt"
./target/release/scanbist \
    --audit-out "$SMOKE_DIR/audit_event.ndjson" \
    diagnose s298 --patterns 64 --faults 30 --engine event \
    > /dev/null 2>> "$SMOKE_DIR/summary.txt"
./target/release/obs-check \
    "$SMOKE_DIR/audit_bitpar.ndjson" "$SMOKE_DIR/audit_event.ndjson"
cmp -s "$SMOKE_DIR/audit_bitpar.ndjson" "$SMOKE_DIR/audit_event.ndjson" || {
    echo "engine audits diverged: the bit-parallel and event-driven"
    echo "engines produced different campaign audit trails"; exit 1;
}

echo "==> noisy-campaign smoke (scanbist noise --audit-out)"
./target/release/scanbist \
    --json --audit-out "$SMOKE_DIR/noise_audit.ndjson" \
    noise s953 --patterns 64 --faults 50 --flip 0.02 --seed 7 \
    > "$SMOKE_DIR/noise_summary.json" 2>> "$SMOKE_DIR/summary.txt"
./target/release/obs-check "$SMOKE_DIR/noise_audit.ndjson"
# The robust engine must keep the smoke campaign diagnosable: every
# fault Exact or Degraded, none Inconclusive.
grep -q '"inconclusive":0' "$SMOKE_DIR/noise_summary.json" || {
    echo "noisy smoke left faults inconclusive:"; cat "$SMOKE_DIR/noise_summary.json"; exit 1;
}

echo "==> quick bench smoke (scanbist bench --quick)"
./target/release/scanbist \
    bench --quick --out "$SMOKE_DIR/BENCH_quick.json" \
    > "$SMOKE_DIR/bench_table.txt" 2> "$SMOKE_DIR/bench_progress.txt"
./target/release/obs-check "$SMOKE_DIR/BENCH_quick.json"

echo "==> verify OK"
