//! Integration tests for `scan-obs`: span nesting and timing, histogram
//! bucket edges, NDJSON round-trips, and concurrent recording from
//! `std::thread::scope` workers.
//!
//! Observability state is process-global, so every test takes the
//! [`LOCK`] and starts from [`scan_obs::init`] / ends with
//! [`scan_obs::reset`] to stay isolated from its neighbours.

use std::sync::Mutex;

use scan_obs::json::{parse, Value};
use scan_obs::{export, metrics, progress, span, ObsConfig};

static LOCK: Mutex<()> = Mutex::new(());

fn trace_config() -> ObsConfig {
    ObsConfig {
        trace: true,
        metrics: true,
        ..ObsConfig::disabled()
    }
}

/// Serializes a test body against the process-global obs state.
fn with_obs<R>(config: &ObsConfig, body: impl FnOnce() -> R) -> R {
    let _guard = LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    scan_obs::init(config);
    let result = body();
    scan_obs::reset();
    result
}

#[test]
fn disabled_mode_records_nothing() {
    with_obs(&ObsConfig::disabled(), || {
        assert!(!scan_obs::enabled());
        let _span = span::enter("ghost");
        metrics::incr("ghost.counter");
        metrics::record_pow2("ghost.hist", 3);
        progress::tick("ghost", 1, 2);
        let snapshot = scan_obs::snapshot();
        assert!(snapshot.counters.is_empty());
        assert!(snapshot.histograms.is_empty());
        assert!(snapshot.span_stats.is_empty());
        assert!(snapshot.events.is_empty());
    });
}

#[test]
fn spans_nest_and_time_monotonically() {
    with_obs(&trace_config(), || {
        {
            let _outer = span::enter("outer");
            {
                let _inner = span::enter("inner");
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            {
                let _inner = scan_obs::span!("inner");
            }
            let _named = scan_obs::span!("core[{}]", 7);
        }
        let snapshot = scan_obs::snapshot();
        let outer = snapshot.span_stats["outer"];
        let inner = snapshot.span_stats["outer/inner"];
        let named = snapshot.span_stats["outer/core[7]"];
        assert_eq!(outer.count, 1);
        assert_eq!(inner.count, 2);
        assert_eq!(named.count, 1);
        // The parent's total covers its children; self excludes them.
        assert!(outer.total_ns >= inner.total_ns + named.total_ns);
        assert!(outer.self_ns <= outer.total_ns - inner.total_ns);
        assert!(inner.max_ns <= inner.total_ns);
        assert!(inner.total_ns >= 2_000_000, "slept 2ms inside");
        // Events carry monotone, nested timestamps.
        for event in &snapshot.events {
            assert!(event.start_ns <= event.end_ns);
        }
        let outer_event = snapshot
            .events
            .iter()
            .find(|e| e.path == "outer")
            .expect("outer event");
        let inner_events: Vec<_> = snapshot
            .events
            .iter()
            .filter(|e| e.path == "outer/inner")
            .collect();
        assert_eq!(inner_events.len(), 2);
        for e in inner_events {
            assert!(e.start_ns >= outer_event.start_ns);
            assert!(e.end_ns <= outer_event.end_ns);
        }
    });
}

#[test]
fn histogram_buckets_split_on_inclusive_edges() {
    with_obs(&trace_config(), || {
        let edges = [10, 20, 30];
        // Bucket semantics: counts[i] tallies edges[i-1] < v <= edges[i].
        for value in [0, 10, 11, 20, 21, 30, 31, 1000] {
            metrics::record("t.hist", &edges, value);
        }
        let snapshot = scan_obs::snapshot();
        let hist = &snapshot.histograms["t.hist"];
        assert_eq!(hist.edges, vec![10, 20, 30]);
        assert_eq!(hist.counts, vec![2, 2, 2, 2]);
        assert_eq!(hist.total, 8);
        assert_eq!(hist.sum, 10 + 11 + 20 + 21 + 30 + 31 + 1000);
    });
}

#[test]
fn counters_accumulate_and_export() {
    with_obs(&trace_config(), || {
        metrics::incr("a.ticks");
        metrics::add("a.ticks", 4);
        metrics::add_fmt(|| format!("worker{}.cases", 3), 7);
        let snapshot = scan_obs::snapshot();
        assert_eq!(snapshot.counters["a.ticks"], 5);
        assert_eq!(snapshot.counters["worker3.cases"], 7);
        let text = export::tree_summary(&snapshot);
        assert!(text.contains("a.ticks"));
    });
}

#[test]
fn concurrent_scoped_workers_record_without_loss() {
    const WORKERS: usize = 8;
    const TICKS: u64 = 1000;
    with_obs(&trace_config(), || {
        std::thread::scope(|scope| {
            for w in 0..WORKERS {
                scope.spawn(move || {
                    {
                        let _span = span::enter("worker");
                        for i in 0..TICKS {
                            metrics::incr("workers.cases");
                            metrics::record_pow2("workers.values", i);
                        }
                        metrics::add_fmt(|| format!("parallel.worker{w}.cases"), TICKS);
                    }
                    // Explicit fold: the automatic TLS-drop merge can run
                    // after the scope join unblocks, racing the snapshot
                    // below.
                    scan_obs::flush_thread();
                });
            }
        });
        let snapshot = scan_obs::snapshot();
        assert_eq!(snapshot.counters["workers.cases"], WORKERS as u64 * TICKS);
        assert_eq!(snapshot.histograms["workers.values"].total, WORKERS as u64 * TICKS);
        assert_eq!(snapshot.span_stats["worker"].count, WORKERS as u64);
        for w in 0..WORKERS {
            assert_eq!(snapshot.counters[&format!("parallel.worker{w}.cases")], TICKS);
        }
        // Worker spans come from distinct registered threads.
        let mut threads: Vec<u32> = snapshot
            .events
            .iter()
            .filter(|e| e.path == "worker")
            .map(|e| e.thread)
            .collect();
        threads.sort_unstable();
        threads.dedup();
        assert_eq!(threads.len(), WORKERS);
    });
}

/// Property: a snapshot taken while workers are actively recording
/// never tears. Workers record a *pair* of counters and only then
/// fold their shard (`flush_thread`), so the published totals must
/// move in lockstep: every snapshot sees `pair.alpha == pair.beta`,
/// totals are monotone across successive snapshots, and after the
/// scope joins the totals are exact — no shard is lost and no batch
/// is half-visible.
#[test]
fn snapshots_during_recording_never_tear() {
    use std::sync::atomic::{AtomicUsize, Ordering};

    scan_rng::testkit::Runner::new(12).run("obs.snapshot_no_tearing", |g| {
        let workers = g.usize("workers", 2, 6);
        let batches = g.u64("batches", 8, 48);
        let per_batch = g.u64("per_batch", 1, 32);
        with_obs(&trace_config(), || {
            let done = AtomicUsize::new(0);
            let mut observed = Vec::new();
            std::thread::scope(|scope| {
                for w in 0..workers {
                    let done = &done;
                    scope.spawn(move || {
                        for _ in 0..batches {
                            // Record the whole pair before folding: the
                            // fold is the publication point, so readers
                            // must never see a half-recorded batch.
                            metrics::add("pair.alpha", per_batch);
                            metrics::add("pair.beta", per_batch);
                            metrics::add_fmt(|| format!("pair.worker{w}"), per_batch);
                            scan_obs::flush_thread();
                        }
                        done.fetch_add(1, Ordering::Release);
                    });
                }
                // Main thread races snapshots against the recording
                // workers; `snapshot()` folds only the calling thread's
                // (empty) shard, so it observes exactly the published
                // batches.
                while done.load(Ordering::Acquire) < workers {
                    let snap = scan_obs::snapshot();
                    let alpha = snap.counters.get("pair.alpha").copied().unwrap_or(0);
                    let beta = snap.counters.get("pair.beta").copied().unwrap_or(0);
                    assert_eq!(alpha, beta, "snapshot tore a published pair");
                    observed.push(alpha);
                    std::thread::yield_now();
                }
            });
            observed.push(u64::MAX); // sentinel: final check below dominates
            assert!(
                observed.windows(2).all(|w| w[0] <= w[1]),
                "published totals regressed across snapshots: {observed:?}"
            );
            let expected = workers as u64 * batches * per_batch;
            let snap = scan_obs::snapshot();
            assert_eq!(snap.counters["pair.alpha"], expected, "lost alpha shard");
            assert_eq!(snap.counters["pair.beta"], expected, "lost beta shard");
            for w in 0..workers {
                assert_eq!(
                    snap.counters[&format!("pair.worker{w}")],
                    batches * per_batch,
                    "worker {w}'s shard was lost or double-folded"
                );
            }
        });
    });
}

#[test]
fn ndjson_round_trips_through_the_json_reader() {
    with_obs(&trace_config(), || {
        {
            let _prepare = span::enter("prepare");
            let _fsim = span::enter("fault_sim");
            metrics::add("fault_sim.error_maps", 42);
            metrics::record_pow2("diagnosis.candidates_per_fault", 9);
        }
        let snapshot = scan_obs::snapshot();
        let stream = export::ndjson(&snapshot);
        let mut spans = Vec::new();
        let mut counters = Vec::new();
        let mut hists = Vec::new();
        for line in stream.lines() {
            let value = parse(line).expect("every NDJSON line parses");
            match value.get("type").and_then(Value::as_str).expect("typed") {
                "meta" => {
                    assert_eq!(value.get("version").and_then(Value::as_f64), Some(1.0));
                }
                "span" => {
                    let path = value.get("path").and_then(Value::as_str).unwrap();
                    let start = value.get("start_ns").and_then(Value::as_f64).unwrap();
                    let end = value.get("end_ns").and_then(Value::as_f64).unwrap();
                    assert!(start <= end);
                    spans.push(path.to_owned());
                }
                "counter" => {
                    counters.push((
                        value.get("name").and_then(Value::as_str).unwrap().to_owned(),
                        value.get("value").and_then(Value::as_f64).unwrap(),
                    ));
                }
                "hist" => {
                    let hist = value.get("hist").expect("hist payload");
                    let edges = hist.get("edges").and_then(Value::as_array).unwrap();
                    let counts = hist.get("counts").and_then(Value::as_array).unwrap();
                    assert_eq!(counts.len(), edges.len() + 1);
                    hists.push(());
                }
                other => panic!("unexpected type {other}"),
            }
        }
        assert_eq!(spans, vec!["prepare".to_owned(), "prepare/fault_sim".to_owned()]);
        assert!(counters.contains(&("fault_sim.error_maps".to_owned(), 42.0)));
        assert_eq!(hists.len(), 1);

        // And the metrics snapshot document parses with the documented shape.
        let doc = parse(&export::metrics_json(&snapshot)).expect("snapshot parses");
        assert!(doc.get("counters").and_then(Value::as_object).is_some());
        assert!(doc.get("histograms").and_then(Value::as_object).is_some());
        assert!(doc.get("spans").and_then(Value::as_object).is_some());
        assert_eq!(
            doc.get("spans")
                .and_then(|s| s.get("prepare/fault_sim"))
                .and_then(|s| s.get("count"))
                .and_then(Value::as_f64),
            Some(1.0)
        );
    });
}

#[test]
fn finish_writes_export_files() {
    let dir = std::env::temp_dir().join(format!("scan-obs-test-{}", std::process::id()));
    let trace_path = dir.join("trace.ndjson");
    let metrics_path = dir.join("metrics.json");
    let config = ObsConfig {
        trace: true,
        metrics: true,
        trace_path: Some(trace_path.clone()),
        metrics_path: Some(metrics_path.clone()),
        ..ObsConfig::disabled()
    };
    with_obs(&config, || {
        {
            let _span = span::enter("campaign");
            metrics::incr("campaign.runs");
        }
        scan_obs::finish(&config).expect("export writes");
        let stream = std::fs::read_to_string(&trace_path).expect("trace file");
        assert!(stream.lines().count() >= 3, "meta + span + counter");
        for line in stream.lines() {
            parse(line).expect("trace line parses");
        }
        let doc = parse(&std::fs::read_to_string(&metrics_path).expect("metrics file"))
            .expect("metrics parse");
        assert_eq!(
            doc.get("counters")
                .and_then(|c| c.get("campaign.runs"))
                .and_then(Value::as_f64),
            Some(1.0)
        );
    });
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn progress_only_prints_when_enabled() {
    // `tick` writes to stderr, which tests cannot capture portably;
    // this only checks the disabled path is inert and the enabled path
    // does not panic or deadlock under threads.
    let config = ObsConfig {
        progress: true,
        ..ObsConfig::disabled()
    };
    with_obs(&config, || {
        std::thread::scope(|scope| {
            for w in 0..4 {
                scope.spawn(move || {
                    for i in 0..50 {
                        progress::tick_worker(w, i + 1, 50);
                    }
                });
            }
        });
    });
}
