//! Raw-socket hardening tests for the metrics endpoint: slow-loris
//! timeout behaviour, oversized-body rejection, and the `/readyz`
//! drain flip. Everything here speaks HTTP/1.1 by hand over a
//! `TcpStream` — no client library, same as a hostile peer would.

use std::io::{Read as _, Write as _};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use scan_obs::serve::{self, MetricsServer};

/// Sends `request` verbatim and returns the full response text.
fn raw_request(addr: std::net::SocketAddr, request: &str) -> String {
    let mut conn = TcpStream::connect(addr).expect("connect");
    conn.set_read_timeout(Some(Duration::from_secs(10)))
        .expect("read timeout");
    conn.write_all(request.as_bytes()).expect("send");
    let mut response = String::new();
    let _ = conn.read_to_string(&mut response);
    response
}

#[test]
fn slow_loris_connection_is_cut_off_with_408_and_server_survives() {
    let server = MetricsServer::start("127.0.0.1:0").expect("bind ephemeral");
    let addr = server.addr();

    // Connect and send nothing at all: the read timeout must cut the
    // connection off with a 408 instead of holding the slot forever.
    let start = Instant::now();
    let mut conn = TcpStream::connect(addr).expect("connect");
    conn.set_read_timeout(Some(Duration::from_secs(10)))
        .expect("read timeout");
    let mut response = String::new();
    let _ = conn.read_to_string(&mut response);
    let waited = start.elapsed();
    assert!(
        response.starts_with("HTTP/1.1 408"),
        "expected 408 for a silent client, got: {response:?}"
    );
    assert!(
        waited < Duration::from_secs(8),
        "slow-loris guard too slow: {waited:?}"
    );

    // The server must still answer honest clients afterwards.
    let health = raw_request(addr, "GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n");
    assert!(health.starts_with("HTTP/1.1 200"), "{health}");
    server.stop();
}

#[test]
fn half_written_request_times_out_instead_of_hanging() {
    let server = MetricsServer::start("127.0.0.1:0").expect("bind ephemeral");
    let addr = server.addr();
    // A request head that never finishes (no terminating CRLFCRLF).
    let response = raw_request(addr, "GET /metrics HTTP/1.1\r\nHost: x\r\n");
    assert!(
        response.starts_with("HTTP/1.1 408"),
        "unterminated head should time out with 408, got: {response:?}"
    );
    server.stop();
}

#[test]
fn declared_body_over_the_limit_is_rejected_with_413() {
    let server = MetricsServer::start("127.0.0.1:0").expect("bind ephemeral");
    let addr = server.addr();
    let oversized = serve::DEFAULT_BODY_LIMIT + 1;
    let response = raw_request(
        addr,
        &format!("GET /metrics HTTP/1.1\r\nHost: x\r\nContent-Length: {oversized}\r\n\r\n"),
    );
    assert!(
        response.starts_with("HTTP/1.1 413"),
        "oversized body must be refused, got: {response:?}"
    );
    // A small declared body on a GET is tolerated (and ignored).
    let response = raw_request(
        addr,
        "GET /healthz HTTP/1.1\r\nHost: x\r\nContent-Length: 2\r\n\r\nhi",
    );
    assert!(response.starts_with("HTTP/1.1 200"), "{response}");
    server.stop();
}

#[test]
fn malformed_content_length_is_a_bad_request() {
    let server = MetricsServer::start("127.0.0.1:0").expect("bind ephemeral");
    let addr = server.addr();
    let response = raw_request(
        addr,
        "GET /metrics HTTP/1.1\r\nHost: x\r\nContent-Length: banana\r\n\r\n",
    );
    assert!(response.starts_with("HTTP/1.1 400"), "{response}");
    server.stop();
}

#[test]
fn body_limit_is_configurable() {
    // Lowering the limit keeps smaller-but-still-over requests out;
    // restore the default afterwards (the limit is process-global).
    serve::set_body_limit(128);
    assert_eq!(serve::body_limit(), 128);
    let server = MetricsServer::start("127.0.0.1:0").expect("bind ephemeral");
    let response = raw_request(
        server.addr(),
        "GET /metrics HTTP/1.1\r\nHost: x\r\nContent-Length: 256\r\n\r\n",
    );
    assert!(response.starts_with("HTTP/1.1 413"), "{response}");
    server.stop();
    serve::set_body_limit(serve::DEFAULT_BODY_LIMIT);
}

#[test]
fn readyz_flips_to_503_while_draining() {
    let server = MetricsServer::start("127.0.0.1:0").expect("bind ephemeral");
    let addr = server.addr();
    assert!(serve::is_ready(), "process starts ready");
    let ready = raw_request(addr, "GET /readyz HTTP/1.1\r\nHost: x\r\n\r\n");
    assert!(ready.starts_with("HTTP/1.1 200"), "{ready}");
    assert!(ready.contains("\"status\":\"ready\""), "{ready}");

    serve::set_ready(false);
    let draining = raw_request(addr, "GET /readyz HTTP/1.1\r\nHost: x\r\n\r\n");
    assert!(draining.starts_with("HTTP/1.1 503"), "{draining}");
    assert!(draining.contains("\"status\":\"draining\""), "{draining}");

    // Liveness is unaffected by readiness: /healthz keeps saying ok.
    let health = raw_request(addr, "GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n");
    assert!(health.starts_with("HTTP/1.1 200"), "{health}");

    serve::set_ready(true);
    server.stop();
}
