//! Exporters: the human-readable span tree, the NDJSON event stream,
//! and the JSON metrics snapshot.
//!
//! All three render from one [`Snapshot`], so a driver can take the
//! snapshot once and emit every format consistently. Output formats
//! are documented in `docs/OBSERVABILITY.md`.

use std::fmt::Write as _;
use std::io::Write as _;
use std::path::Path;

use crate::context::{self, TraceContext};
use crate::registry::{Histogram, Snapshot, SpanStat};
use crate::timeseries::{self, Sample};

/// Escapes a string for embedding in JSON output.
pub(crate) fn escape(text: &str) -> String {
    let mut out = String::with_capacity(text.len() + 2);
    out.push('"');
    for c in text.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn join_u64(values: &[u64]) -> String {
    values
        .iter()
        .map(ToString::to_string)
        .collect::<Vec<_>>()
        .join(",")
}

fn fmt_ns(ns: u64) -> String {
    if ns < 10_000 {
        format!("{ns} ns")
    } else if ns < 10_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 10_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

fn hist_json(hist: &Histogram) -> String {
    format!(
        r#"{{"edges":[{}],"counts":[{}],"total":{},"sum":{}}}"#,
        join_u64(&hist.edges),
        join_u64(&hist.counts),
        hist.total,
        hist.sum
    )
}

fn span_stat_json(stat: &SpanStat) -> String {
    format!(
        r#"{{"count":{},"total_ns":{},"self_ns":{},"max_ns":{}}}"#,
        stat.count, stat.total_ns, stat.self_ns, stat.max_ns
    )
}

/// Renders the JSON metrics snapshot document:
/// `{"version":1,"counters":{…},"histograms":{…},"spans":{…}}`.
#[must_use]
pub fn metrics_json(snapshot: &Snapshot) -> String {
    let mut out = String::from("{\"version\":1,\"counters\":{");
    for (i, (name, value)) in snapshot.counters.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{}:{value}", escape(name));
    }
    out.push_str("},\"histograms\":{");
    for (i, (name, hist)) in snapshot.histograms.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{}:{}", escape(name), hist_json(hist));
    }
    out.push_str("},\"spans\":{");
    for (i, (path, stat)) in snapshot.span_stats.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{}:{}", escape(path), span_stat_json(stat));
    }
    out.push_str("}}");
    out
}

/// Renders the NDJSON event stream: a `meta` line, one `span` line per
/// completed span (sorted by start time for reproducible ordering),
/// then final `counter` and `hist` lines carrying the merged metrics.
#[must_use]
pub fn ndjson(snapshot: &Snapshot) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        r#"{{"type":"meta","version":1,"spans":{},"counters":{},"histograms":{}}}"#,
        snapshot.events.len(),
        snapshot.counters.len(),
        snapshot.histograms.len()
    );
    for event in &snapshot.events {
        let _ = writeln!(
            out,
            r#"{{"type":"span","path":{},"thread":{},"start_ns":{},"end_ns":{},"dur_ns":{}}}"#,
            escape(&event.path),
            event.thread,
            event.start_ns,
            event.end_ns,
            event.end_ns.saturating_sub(event.start_ns)
        );
    }
    for (name, value) in &snapshot.counters {
        let _ = writeln!(
            out,
            r#"{{"type":"counter","name":{},"value":{value}}}"#,
            escape(name)
        );
    }
    for (name, hist) in &snapshot.histograms {
        let _ = writeln!(
            out,
            r#"{{"type":"hist","name":{},"hist":{}}}"#,
            escape(name),
            hist_json(hist)
        );
    }
    out
}

/// Renders one `{"type":"context",…}` NDJSON record carrying the
/// session's trace-correlation identity.
#[must_use]
pub fn context_line(ctx: &TraceContext) -> String {
    let parent = match &ctx.parent_span {
        Some(span) => escape(span),
        None => "null".to_owned(),
    };
    format!(
        r#"{{"type":"context","trace_id":{},"parent_span":{},"process":{}}}"#,
        escape(&ctx.trace_id),
        parent,
        escape(&ctx.process)
    )
}

/// Renders one `{"type":"ts",…}` NDJSON record per time series:
/// `samples` is an array of `[offset_ns, value]` pairs in monotonic
/// offset order.
#[must_use]
pub fn ts_lines(series: &std::collections::BTreeMap<String, Vec<Sample>>) -> String {
    let mut out = String::new();
    for (name, samples) in series {
        let pairs = samples
            .iter()
            .map(|(t, v)| format!("[{t},{v}]"))
            .collect::<Vec<_>>()
            .join(",");
        let _ = writeln!(
            out,
            r#"{{"type":"ts","name":{},"samples":[{pairs}]}}"#,
            escape(name)
        );
    }
    out
}

/// Stamps `"trace":"<id>"` into every NDJSON object in `text` (as the
/// first member), correlating the records with a cross-process trace.
/// Non-object lines are passed through untouched.
#[must_use]
pub fn stamp_ndjson(text: &str, trace_id: &str) -> String {
    let stamp = format!(r#"{{"trace":{},""#, escape(trace_id));
    let mut out = String::with_capacity(text.len() + text.lines().count() * (stamp.len() + 8));
    for line in text.lines() {
        // Only lines that open an object member list can take the
        // stamp; anything else (including `{}`) passes through.
        if let Some(rest) = line.strip_prefix("{\"") {
            out.push_str(&stamp);
            out.push_str(rest);
        } else {
            out.push_str(line);
        }
        out.push('\n');
    }
    out
}

/// Renders the full session NDJSON stream: the [`ndjson`] event stream
/// plus the active time-series (`ts` records), the session's SLO alert
/// transitions (`alert` records) and, when a trace context is
/// installed, a `context` record and a `"trace"` stamp on every line.
/// This is what [`crate::finish`] writes to
/// [`crate::ObsConfig::trace_path`].
#[must_use]
pub fn session_ndjson(snapshot: &Snapshot) -> String {
    let mut out = ndjson(snapshot);
    if let Some(store) = timeseries::active() {
        out.push_str(&ts_lines(&store.series()));
    }
    out.push_str(&crate::slo::ndjson_lines());
    if let Some(ctx) = context::current() {
        out.push_str(&context_line(&ctx));
        out.push('\n');
        out = stamp_ndjson(&out, &ctx.trace_id);
    }
    out
}

/// Stamps `text` with the installed trace context (if any) and writes
/// it to `path`: the NDJSON-file twin of [`write_file`], used for
/// audit trails and any stream that must join a cross-process trace.
///
/// # Errors
///
/// Propagates I/O failures, with the offending path in the message.
pub fn write_ndjson(path: &Path, text: &str) -> std::io::Result<()> {
    match context::current() {
        Some(ctx) => write_file(path, &stamp_ndjson(text, &ctx.trace_id)),
        None => write_file(path, text),
    }
}

/// Renders the span tree for humans: one line per path, indented by
/// nesting depth, with call count, total, self, and max wall times.
/// Counters follow the tree so a stderr dump is self-contained.
#[must_use]
pub fn tree_summary(snapshot: &Snapshot) -> String {
    let mut out = String::new();
    if snapshot.span_stats.is_empty() && snapshot.counters.is_empty() {
        out.push_str("obs: nothing recorded\n");
        return out;
    }
    out.push_str("obs span tree (total wall time; self = excluding children)\n");
    // BTreeMap iterates paths lexicographically, which visits parents
    // (`a`) before children (`a/b`) for the workspace's naming scheme.
    for (path, stat) in &snapshot.span_stats {
        let depth = path.matches('/').count();
        let label = path.rsplit('/').next().unwrap_or(path);
        let _ = writeln!(
            out,
            "{:indent$}{label:<28} count {:>6}   total {:>10}   self {:>10}   max {:>10}",
            "",
            stat.count,
            fmt_ns(stat.total_ns),
            fmt_ns(stat.self_ns),
            fmt_ns(stat.max_ns),
            indent = depth * 2,
        );
    }
    if !snapshot.counters.is_empty() {
        out.push_str("obs counters\n");
        for (name, value) in &snapshot.counters {
            let _ = writeln!(out, "  {name:<40} {value}");
        }
    }
    for (name, hist) in &snapshot.histograms {
        let mean = if hist.total == 0 {
            0.0
        } else {
            hist.sum as f64 / hist.total as f64
        };
        let _ = writeln!(
            out,
            "obs hist {name}: n={} mean={mean:.1} buckets={:?}",
            hist.total, hist.counts
        );
    }
    out
}

/// Writes `text` to `path`, creating parent directories as needed.
///
/// # Errors
///
/// Propagates I/O failures, wrapped so the message names the offending
/// path (a bare `io::Error` such as "No such file or directory" is
/// useless when several export files are in flight).
pub fn write_file(path: &Path, text: &str) -> std::io::Result<()> {
    let with_path = |e: std::io::Error| {
        std::io::Error::new(e.kind(), format!("cannot write `{}`: {e}", path.display()))
    };
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent).map_err(with_path)?;
        }
    }
    let mut file = std::fs::File::create(path).map_err(with_path)?;
    file.write_all(text.as_bytes()).map_err(with_path)
}
