//! Named counters and fixed-bucket histograms.
//!
//! Both are recorded into the calling thread's shard (no shared locks
//! on the hot path) and merged when the thread exits or flushes. When
//! metrics are disabled every entry point is a single relaxed atomic
//! load.
//!
//! Naming convention (see `docs/OBSERVABILITY.md`): dotted lowercase
//! paths, `<area>.<quantity>`, e.g. `fault_sim.error_maps` or
//! `parallel.worker0.cases`.

use crate::registry;

/// Power-of-two bucket edges (1, 2, 4, … 65536): the workspace default
/// for count-shaped quantities such as candidates per fault.
pub const POW2_EDGES: &[u64] = &[
    1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096, 16384, 65536,
];

/// Adds `delta` to the counter `name`.
pub fn add(name: &str, delta: u64) {
    if !registry::metrics_enabled() {
        return;
    }
    registry::add_counter(name, delta);
}

/// Increments the counter `name` by one.
pub fn incr(name: &str) {
    add(name, 1);
}

/// Adds `delta` to a counter whose name is built lazily; the closure
/// only runs when metrics are enabled.
pub fn add_fmt(name: impl FnOnce() -> String, delta: u64) {
    if !registry::metrics_enabled() {
        return;
    }
    registry::add_counter(&name(), delta);
}

/// Records `value` into the histogram `name` with the given ascending
/// bucket `edges` (see [`registry::Histogram`] for bucket semantics).
/// All recordings of one name must use the same edges.
pub fn record(name: &str, edges: &[u64], value: u64) {
    if !registry::metrics_enabled() {
        return;
    }
    registry::record_histogram(name, edges, value);
}

/// Records `value` into a power-of-two-bucketed histogram.
pub fn record_pow2(name: &str, value: u64) {
    record(name, POW2_EDGES, value);
}
