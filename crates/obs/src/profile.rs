//! Span self-time profiles: the aggregation layer that turns a raw
//! [`Snapshot`] into *where did the time go* answers.
//!
//! Two renderings are produced from the same per-path statistics:
//!
//! * a **hot-spot table** — every span path sorted by self time
//!   (wall time excluding children) with its share of the total, for a
//!   quick stderr skim after an instrumented run, and
//! * a **collapsed-stack export** — the `folded` format consumed by
//!   flamegraph tooling (`a;b;c <self_µs>` per line), written by
//!   [`crate::finish`] when [`crate::ObsConfig::profile_path`] is set
//!   and validated by `obs-check`.
//!
//! Self time is attributed per *path*, so a function that appears under
//! several parents shows up once per call chain — exactly the shape a
//! flamegraph needs.

use std::fmt::Write as _;

use crate::registry::Snapshot;

/// One row of the aggregated profile.
#[derive(Clone, Debug, Eq, PartialEq)]
pub struct ProfileEntry {
    /// Slash-separated span path (`campaign/fault_sim`).
    pub path: String,
    /// Completed spans under this path.
    pub count: u64,
    /// Total wall time including children, nanoseconds.
    pub total_ns: u64,
    /// Wall time excluding children, nanoseconds.
    pub self_ns: u64,
    /// Longest single span, nanoseconds.
    pub max_ns: u64,
}

/// The aggregated profile of one snapshot: entries sorted by self time
/// (descending), ties broken by path for a reproducible order.
#[derive(Clone, Debug, Default, Eq, PartialEq)]
pub struct Profile {
    /// Rows, hottest self time first.
    pub entries: Vec<ProfileEntry>,
    /// Sum of self times — the profile's 100% mark.
    pub total_self_ns: u64,
}

impl Profile {
    /// Aggregates `snapshot` into a sorted self-time profile.
    #[must_use]
    pub fn from_snapshot(snapshot: &Snapshot) -> Self {
        let mut entries: Vec<ProfileEntry> = snapshot
            .span_stats
            .iter()
            .map(|(path, stat)| ProfileEntry {
                path: path.clone(),
                count: stat.count,
                total_ns: stat.total_ns,
                self_ns: stat.self_ns,
                max_ns: stat.max_ns,
            })
            .collect();
        entries.sort_by(|a, b| b.self_ns.cmp(&a.self_ns).then_with(|| a.path.cmp(&b.path)));
        let total_self_ns = entries.iter().map(|e| e.self_ns).sum();
        Profile {
            entries,
            total_self_ns,
        }
    }

    /// True when nothing was recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Renders the collapsed-stack (`folded`) export: one line per span
    /// path, frames separated by `;`, followed by the path's **self**
    /// time in microseconds (flamegraph tools treat the trailing number
    /// as an opaque sample count; microseconds keep small spans
    /// nonzero-ish without overflowing typical viewers).
    ///
    /// Lines follow the sorted entry order (hottest first); paths with
    /// zero self time are kept so the stack structure stays complete.
    #[must_use]
    pub fn folded(&self) -> String {
        let mut out = String::new();
        for entry in &self.entries {
            let _ = writeln!(
                out,
                "{} {}",
                entry.path.replace('/', ";"),
                entry.self_ns / 1_000
            );
        }
        out
    }

    /// Renders the hot-spot table: one row per path, hottest self time
    /// first, with the share of total self time.
    #[must_use]
    pub fn hotspot_table(&self) -> String {
        let mut out = String::new();
        if self.is_empty() {
            out.push_str("obs profile: no spans recorded\n");
            return out;
        }
        out.push_str("obs profile (sorted by self time; self = excluding children)\n");
        for entry in &self.entries {
            let share = if self.total_self_ns == 0 {
                0.0
            } else {
                100.0 * entry.self_ns as f64 / self.total_self_ns as f64
            };
            let _ = writeln!(
                out,
                "{:>6.1}%  self {:>10}   total {:>10}   count {:>7}   max {:>10}   {}",
                share,
                fmt_ns(entry.self_ns),
                fmt_ns(entry.total_ns),
                entry.count,
                fmt_ns(entry.max_ns),
                entry.path,
            );
        }
        let _ = writeln!(out, "total self time {}", fmt_ns(self.total_self_ns));
        out
    }
}

fn fmt_ns(ns: u64) -> String {
    if ns < 10_000 {
        format!("{ns} ns")
    } else if ns < 10_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 10_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

/// Validates collapsed-stack text: every non-empty line must be
/// `frame[;frame…] <count>` with non-empty frames and an unsigned
/// integer count.
///
/// # Errors
///
/// Returns a message naming the first offending line (1-based).
pub fn check_folded(text: &str) -> Result<usize, String> {
    let mut lines = 0usize;
    for (index, line) in text.lines().enumerate() {
        if line.is_empty() {
            continue;
        }
        lines += 1;
        let Some((stack, count)) = line.rsplit_once(' ') else {
            return Err(format!("line {}: missing sample count", index + 1));
        };
        if count.is_empty() || !count.bytes().all(|b| b.is_ascii_digit()) {
            return Err(format!("line {}: sample count `{count}` is not an unsigned integer", index + 1));
        }
        if stack.is_empty() || stack.split(';').any(str::is_empty) {
            return Err(format!("line {}: empty stack frame", index + 1));
        }
    }
    if lines == 0 {
        return Err("empty folded profile".to_owned());
    }
    Ok(lines)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::SpanStat;
    use std::collections::BTreeMap;

    fn snapshot_with(stats: &[(&str, u64, u64, u64, u64)]) -> Snapshot {
        let mut span_stats = BTreeMap::new();
        for &(path, count, total_ns, self_ns, max_ns) in stats {
            span_stats.insert(
                path.to_owned(),
                SpanStat {
                    count,
                    total_ns,
                    self_ns,
                    max_ns,
                },
            );
        }
        Snapshot {
            span_stats,
            ..Snapshot::default()
        }
    }

    #[test]
    fn profile_sorts_by_self_time() {
        let snapshot = snapshot_with(&[
            ("campaign", 1, 10_000, 1_000, 10_000),
            ("campaign/fault_sim", 1, 6_000, 6_000, 6_000),
            ("campaign/diagnose", 1, 3_000, 3_000, 3_000),
        ]);
        let profile = Profile::from_snapshot(&snapshot);
        let paths: Vec<&str> = profile.entries.iter().map(|e| e.path.as_str()).collect();
        assert_eq!(
            paths,
            ["campaign/fault_sim", "campaign/diagnose", "campaign"]
        );
        assert_eq!(profile.total_self_ns, 10_000);
    }

    #[test]
    fn folded_golden_output() {
        let snapshot = snapshot_with(&[
            ("campaign", 1, 10_000_000, 1_000_000, 10_000_000),
            ("campaign/fault_sim", 2, 6_000_000, 6_000_000, 4_000_000),
            ("campaign/diagnose", 1, 3_000_000, 3_000_000, 3_000_000),
        ]);
        let folded = Profile::from_snapshot(&snapshot).folded();
        assert_eq!(
            folded,
            "campaign;fault_sim 6000\ncampaign;diagnose 3000\ncampaign 1000\n"
        );
        assert_eq!(check_folded(&folded), Ok(3));
    }

    #[test]
    fn hotspot_table_shows_shares() {
        let snapshot = snapshot_with(&[
            ("a", 1, 3_000, 3_000, 3_000),
            ("b", 1, 1_000, 1_000, 1_000),
        ]);
        let table = Profile::from_snapshot(&snapshot).hotspot_table();
        assert!(table.contains("75.0%"));
        assert!(table.contains("25.0%"));
        assert!(table.starts_with("obs profile"));
    }

    #[test]
    fn empty_profile_renders_placeholder() {
        let profile = Profile::from_snapshot(&Snapshot::default());
        assert!(profile.is_empty());
        assert!(profile.hotspot_table().contains("no spans recorded"));
        assert!(profile.folded().is_empty());
    }

    #[test]
    fn check_folded_rejects_malformed_lines() {
        assert!(check_folded("").is_err());
        assert!(check_folded("no_count").is_err());
        assert!(check_folded("a;b 12x").is_err());
        assert!(check_folded("a;; 12").is_err());
        assert!(check_folded(" 12").is_err());
        assert_eq!(check_folded("a;b 12\n\nc 0\n"), Ok(2));
    }
}
