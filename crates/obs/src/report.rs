//! `scanbist report`: self-contained HTML dashboards from NDJSON.
//!
//! Renders one or more exported streams — traces, audits, metrics
//! snapshots — into a single static HTML file with zero external
//! assets: no scripts, no fonts, no links, nothing fetched. The file
//! works from `file://` on an air-gapped bench machine, matching the
//! workspace's offline constraint.
//!
//! Layout: stat tiles (wall time, span/process counts, robust-retry
//! and fault-drop totals), the SLO alert panel (from `alert`
//! records), the cross-process trace tree, a span waterfall (SVG, one
//! lane colour per process), per-series sparklines from `ts` records,
//! and counter/histogram tables. Both capped charts (waterfall ≤ 96
//! rows, sparklines ≤ 48 series) say "showing N of M" whenever they
//! truncate. Every
//! value shown in a chart is also in a table, charts carry native
//! `<title>` tooltips, and text always uses ink tokens while marks
//! carry the series colour; the categorical palette is a fixed-order,
//! CVD-validated eight-hue set with light and dark steps.
//!
//! The renderer is pure (`&str` in, `String` out); the CLI writes the
//! file and logs only to stderr, keeping stdout clean (lint L006).

use std::collections::BTreeMap;

use crate::json::Value;
use crate::timeseries::hist_quantile;
use crate::Histogram;

/// One input stream: a display label (usually the file name) and its
/// raw text (NDJSON lines, or one JSON metrics-snapshot document).
pub struct ReportInput {
    /// Name shown in the dashboard for this stream.
    pub label: String,
    /// Raw file contents.
    pub text: String,
}

/// Everything harvested from one input stream.
#[derive(Default)]
struct Stream {
    label: String,
    trace_id: Option<String>,
    parent_span: Option<String>,
    process: Option<String>,
    spans: Vec<(String, u64, u64)>, // (path, start_ns, end_ns)
}

/// One SLO alert transition harvested from an `alert` record.
struct AlertRow {
    rule: String,
    series: String,
    state: String,
    value: f64,
    threshold: f64,
    at_ns: u64,
}

/// Everything harvested from all inputs, merged.
#[derive(Default)]
struct Harvest {
    streams: Vec<Stream>,
    counters: BTreeMap<String, u64>,
    histograms: BTreeMap<String, Histogram>,
    series: BTreeMap<String, Vec<(u64, u64)>>,
    alerts: Vec<AlertRow>,
    graph: Option<GraphSummary>,
    audit_events: BTreeMap<String, u64>, // fault/retry/vote/fallback/... counts
}

/// Workspace call-graph totals from a `scan-lint --graph` export's
/// trailing summary record.
#[derive(Clone, Copy, Default)]
struct GraphSummary {
    files: u64,
    functions: u64,
    edges: u64,
    unresolved: u64,
    panic_sites: u64,
    lock_sites: u64,
    taint_sites: u64,
}

/// Categorical slots in the stylesheet (`--s0`…`--s7`): a validated
/// fixed-order eight-hue palette with separate light/dark steps,
/// assigned to processes in order and never cycled — streams past the
/// eighth fold to the muted ink colour.
const SERIES_SLOTS: usize = 8;
const MAX_WATERFALL_ROWS: usize = 96;
const MAX_SPARKLINES: usize = 48;

/// Renders the dashboard.
///
/// # Errors
///
/// Returns a message naming the offending input when nothing in it can
/// be parsed as NDJSON records or a metrics snapshot.
pub fn render(inputs: &[ReportInput], title: &str) -> Result<String, String> {
    let mut harvest = Harvest::default();
    for input in inputs {
        ingest(input, &mut harvest)?;
    }
    Ok(render_html(&harvest, title))
}

fn ingest(input: &ReportInput, harvest: &mut Harvest) -> Result<(), String> {
    let mut stream = Stream {
        label: input.label.clone(),
        ..Stream::default()
    };
    let mut records = 0usize;
    for line in input.text.lines() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let value = crate::json::parse(line)
            .map_err(|e| format!("{}: unparseable line: {e}", input.label))?;
        if ingest_record(&value, &mut stream, harvest) || ingest_snapshot(&value, harvest) {
            records += 1;
        }
    }
    if records == 0 {
        return Err(format!(
            "{}: no NDJSON records or metrics snapshot found",
            input.label
        ));
    }
    harvest.streams.push(stream);
    Ok(())
}

/// Ingests one NDJSON record; returns false when `value` is not a
/// typed record (e.g. a whole metrics-snapshot document).
fn ingest_record(value: &Value, stream: &mut Stream, harvest: &mut Harvest) -> bool {
    let Some(kind) = value.get("type").and_then(Value::as_str) else {
        return false;
    };
    match kind {
        "context" => {
            stream.trace_id = value
                .get("trace_id")
                .and_then(Value::as_str)
                .map(str::to_owned);
            stream.parent_span = value
                .get("parent_span")
                .and_then(Value::as_str)
                .map(str::to_owned);
            stream.process = value
                .get("process")
                .and_then(Value::as_str)
                .map(str::to_owned);
        }
        "span" => {
            if let (Some(path), Some(start), Some(end)) = (
                value.get("path").and_then(Value::as_str),
                value.get("start_ns").and_then(Value::as_f64),
                value.get("end_ns").and_then(Value::as_f64),
            ) {
                stream
                    .spans
                    .push((path.to_owned(), as_u64(start), as_u64(end)));
            }
        }
        "counter" => {
            if let (Some(name), Some(v)) = (
                value.get("name").and_then(Value::as_str),
                value.get("value").and_then(Value::as_f64),
            ) {
                *harvest.counters.entry(name.to_owned()).or_insert(0) += as_u64(v);
            }
        }
        "hist" => {
            if let (Some(name), Some(hist)) = (
                value.get("name").and_then(Value::as_str),
                value.get("hist").and_then(parse_hist),
            ) {
                harvest.histograms.insert(name.to_owned(), hist);
            }
        }
        "ts" => {
            if let (Some(name), Some(samples)) = (
                value.get("name").and_then(Value::as_str),
                value.get("samples").and_then(Value::as_array),
            ) {
                let points = samples
                    .iter()
                    .filter_map(|pair| {
                        let pair = pair.as_array()?;
                        Some((
                            as_u64(pair.first()?.as_f64()?),
                            as_u64(pair.get(1)?.as_f64()?),
                        ))
                    })
                    .collect::<Vec<_>>();
                harvest.series.insert(name.to_owned(), points);
            }
        }
        "alert" => {
            if let (Some(rule), Some(series), Some(state)) = (
                value.get("rule").and_then(Value::as_str),
                value.get("series").and_then(Value::as_str),
                value.get("state").and_then(Value::as_str),
            ) {
                harvest.alerts.push(AlertRow {
                    rule: rule.to_owned(),
                    series: series.to_owned(),
                    state: state.to_owned(),
                    value: value.get("value").and_then(Value::as_f64).unwrap_or(0.0),
                    threshold: value
                        .get("threshold")
                        .and_then(Value::as_f64)
                        .unwrap_or(0.0),
                    at_ns: as_u64(value.get("at_ns").and_then(Value::as_f64).unwrap_or(0.0)),
                });
            }
        }
        "graph" => harvest.graph = Some(parse_graph_summary(value)),
        // Per-node and per-edge graph records are raw material for the
        // summary above — tallying thousands of them in the audit tile
        // row would drown the actual audit events.
        "graph_fn" | "graph_edge" | "meta" => {}
        other => {
            // Audit-trail records (fault/retry/vote/fallback/finding/…):
            // tally by type for the audit tile row.
            *harvest.audit_events.entry(other.to_owned()).or_insert(0) += 1;
        }
    }
    true
}

/// One `scan-lint --graph` trailing summary record, totals clamped to
/// non-negative integers.
fn parse_graph_summary(value: &Value) -> GraphSummary {
    let field = |name: &str| as_u64(value.get(name).and_then(Value::as_f64).unwrap_or(0.0));
    GraphSummary {
        files: field("files"),
        functions: field("functions"),
        edges: field("edges"),
        unresolved: field("unresolved"),
        panic_sites: field("panic_sites"),
        lock_sites: field("lock_sites"),
        taint_sites: field("taint_sites"),
    }
}

/// Ingests a whole metrics-snapshot document
/// (`{"version":1,"counters":{…},…}`); returns false otherwise.
fn ingest_snapshot(value: &Value, harvest: &mut Harvest) -> bool {
    let Some(counters) = value.get("counters").and_then(Value::as_object) else {
        return false;
    };
    for (name, v) in counters {
        if let Some(v) = v.as_f64() {
            *harvest.counters.entry(name.clone()).or_insert(0) += as_u64(v);
        }
    }
    if let Some(hists) = value.get("histograms").and_then(Value::as_object) {
        for (name, h) in hists {
            if let Some(hist) = parse_hist(h) {
                harvest.histograms.insert(name.clone(), hist);
            }
        }
    }
    true
}

fn parse_hist(value: &Value) -> Option<Histogram> {
    let nums = |key: &str| -> Option<Vec<u64>> {
        value
            .get(key)?
            .as_array()?
            .iter()
            .map(|v| v.as_f64().map(as_u64))
            .collect()
    };
    Some(Histogram {
        edges: nums("edges")?,
        counts: nums("counts")?,
        total: as_u64(value.get("total")?.as_f64()?),
        sum: as_u64(value.get("sum")?.as_f64()?),
    })
}

#[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
// NDJSON values are u64-origin; negative/fractional inputs clamp to 0
fn as_u64(v: f64) -> u64 {
    if v.is_finite() && v > 0.0 {
        v as u64
    } else {
        0
    }
}

// ---- HTML rendering ----

fn escape_html(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for c in text.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            c => out.push(c),
        }
    }
    out
}

fn fmt_duration(ns: u64) -> String {
    if ns < 10_000 {
        format!("{ns} ns")
    } else if ns < 10_000_000 {
        format!("{:.1} µs", ns as f64 / 1e3)
    } else if ns < 10_000_000_000 {
        format!("{:.1} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

fn fmt_count(v: u64) -> String {
    // Thousands separators for table/tile readability.
    let digits = v.to_string();
    let mut out = String::new();
    for (i, c) in digits.chars().enumerate() {
        if i > 0 && (digits.len() - i).is_multiple_of(3) {
            out.push(',');
        }
        out.push(c);
    }
    out
}

fn process_name(stream: &Stream) -> String {
    stream
        .process
        .clone()
        .unwrap_or_else(|| stream.label.clone())
}

/// The categorical colour class for stream `i`: one of the eight
/// palette slots, or the muted fold colour past the eighth. Every
/// identity mark — waterfall bar, legend swatch, tree swatch — uses
/// this one mapping, so a ninth process can never wear the first
/// slot's colour in one view and the fold colour in another.
fn series_class(i: usize) -> String {
    if i < SERIES_SLOTS {
        format!("s{i}")
    } else {
        "sother".to_owned()
    }
}

fn tile(label: &str, value: &str, note: &str) -> String {
    format!(
        "<div class=\"tile\"><div class=\"tile-label\">{}</div>\
         <div class=\"tile-value\">{}</div><div class=\"tile-note\">{}</div></div>\n",
        escape_html(label),
        escape_html(value),
        escape_html(note)
    )
}

fn render_html(harvest: &Harvest, title: &str) -> String {
    use std::fmt::Write as _;
    let mut body = String::new();
    let trace_id = harvest
        .streams
        .iter()
        .find_map(|s| s.trace_id.clone())
        .unwrap_or_else(|| "untraced".to_owned());
    let _ = writeln!(
        body,
        "<header><h1>{}</h1><p class=\"sub\">trace <code>{}</code> · {} stream{}</p></header>",
        escape_html(title),
        escape_html(&trace_id),
        harvest.streams.len(),
        if harvest.streams.len() == 1 { "" } else { "s" }
    );
    body.push_str(&render_tiles(harvest));
    body.push_str(&render_alerts(harvest));
    body.push_str(&render_graph_panel(harvest));
    body.push_str(&render_trace_tree(harvest));
    body.push_str(&render_waterfall(harvest));
    body.push_str(&render_sparklines(harvest));
    body.push_str(&render_counter_table(harvest));
    body.push_str(&render_hist_table(harvest));
    format!(
        "<!doctype html>\n<html lang=\"en\"><head><meta charset=\"utf-8\">\
         <meta name=\"viewport\" content=\"width=device-width, initial-scale=1\">\
         <title>{}</title>\n<style>{}</style></head>\n\
         <body class=\"viz-root\">\n{}\n\
         <footer>generated by scanbist report · self-contained, no external assets</footer>\n\
         </body></html>\n",
        escape_html(title),
        STYLE,
        body
    )
}

fn render_tiles(harvest: &Harvest) -> String {
    let total_spans: usize = harvest.streams.iter().map(|s| s.spans.len()).sum();
    let wall_ns = harvest
        .streams
        .iter()
        .flat_map(|s| s.spans.iter().map(|&(_, _, end)| end))
        .max()
        .unwrap_or(0);
    let retry_total: u64 = harvest
        .counters
        .iter()
        .filter(|(name, _)| name.starts_with("robust."))
        .map(|(_, v)| *v)
        .sum();
    let dropped = harvest
        .counters
        .get("ppsfp.faults_dropped")
        .copied()
        .unwrap_or(0);
    let mut out = String::from("<section class=\"tiles\">\n");
    out.push_str(&tile("Wall time", &fmt_duration(wall_ns), "longest stream"));
    out.push_str(&tile("Spans", &fmt_count(total_spans as u64), "all processes"));
    out.push_str(&tile(
        "Processes",
        &fmt_count(harvest.streams.len() as u64),
        "NDJSON streams",
    ));
    out.push_str(&tile(
        "Robust retries",
        &fmt_count(retry_total),
        "robust.* counters",
    ));
    out.push_str(&tile(
        "Faults dropped",
        &fmt_count(dropped),
        "ppsfp.faults_dropped",
    ));
    if !harvest.audit_events.is_empty() {
        let audit_total: u64 = harvest.audit_events.values().sum();
        let kinds = harvest
            .audit_events
            .keys()
            .cloned()
            .collect::<Vec<_>>()
            .join(", ");
        out.push_str(&tile("Audit events", &fmt_count(audit_total), &kinds));
    }
    out.push_str("</section>\n");
    out
}

/// The call-graph panel: one row of totals from a `scan-lint --graph`
/// export. Absent when no graph summary record was ingested.
fn render_graph_panel(harvest: &Harvest) -> String {
    use std::fmt::Write as _;
    let Some(g) = &harvest.graph else {
        return String::new();
    };
    let mut out = String::from(
        "<section><h2>Call graph</h2><table><thead><tr>\
         <th>files</th><th>functions</th><th>edges</th><th>unresolved calls</th>\
         <th>panic sites</th><th>lock sites</th><th>taint sites</th>\
         </tr></thead><tbody>\n",
    );
    let _ = writeln!(
        out,
        "<tr><td>{}</td><td>{}</td><td>{}</td><td>{}</td><td>{}</td><td>{}</td><td>{}</td></tr>",
        fmt_count(g.files),
        fmt_count(g.functions),
        fmt_count(g.edges),
        fmt_count(g.unresolved),
        fmt_count(g.panic_sites),
        fmt_count(g.lock_sites),
        fmt_count(g.taint_sites),
    );
    out.push_str("</tbody></table></section>\n");
    out
}

fn render_trace_tree(harvest: &Harvest) -> String {
    use std::fmt::Write as _;
    if harvest.streams.len() < 2 {
        return String::new();
    }
    let mut out = String::from("<section><h2>Trace tree</h2><ul class=\"tree\">\n");
    // Roots first, then children indented under the parent span they
    // reference; unresolvable parents are flagged inline.
    for (i, stream) in harvest.streams.iter().enumerate() {
        if stream.parent_span.is_none() {
            let _ = writeln!(
                out,
                "<li><span class=\"swatch {}\"></span><code>{}</code> (root)</li>",
                series_class(i),
                escape_html(&process_name(stream))
            );
        }
    }
    for (i, stream) in harvest.streams.iter().enumerate() {
        if let Some(parent) = &stream.parent_span {
            let resolved = harvest
                .streams
                .iter()
                .any(|other| other.spans.iter().any(|(path, _, _)| path == parent));
            let _ = writeln!(
                out,
                "<li class=\"child\"><span class=\"swatch {}\"></span><code>{}</code> under <code>{}</code>{}</li>",
                series_class(i),
                escape_html(&process_name(stream)),
                escape_html(parent),
                if resolved { "" } else { " <em>(orphan: parent span not found)</em>" }
            );
        }
    }
    out.push_str("</ul></section>\n");
    out
}

fn render_waterfall(harvest: &Harvest) -> String {
    use std::fmt::Write as _;
    let mut rows: Vec<(usize, &(String, u64, u64))> = harvest
        .streams
        .iter()
        .enumerate()
        .flat_map(|(i, s)| s.spans.iter().map(move |span| (i, span)))
        .collect();
    if rows.is_empty() {
        return String::new();
    }
    rows.sort_by(|a, b| (a.1 .1, a.1 .2, &a.1 .0).cmp(&(b.1 .1, b.1 .2, &b.1 .0)));
    let total = rows.len();
    rows.truncate(MAX_WATERFALL_ROWS);
    let t_max = rows
        .iter()
        .map(|&(_, &(_, _, end))| end)
        .max()
        .unwrap_or(1)
        .max(1);
    let row_h = 18.0;
    let label_w = 240.0;
    let plot_w = 640.0;
    let height = rows.len() as f64 * row_h + 8.0;
    let mut out = String::from("<section><h2>Span waterfall</h2>\n");
    if total > rows.len() {
        let _ = writeln!(
            out,
            "<p class=\"note\">showing the first {} of {} spans by start time</p>",
            rows.len(),
            total
        );
    }
    let _ = writeln!(
        out,
        "<svg class=\"waterfall\" viewBox=\"0 0 {} {height:.0}\" role=\"img\" \
         aria-label=\"span waterfall\">",
        label_w + plot_w + 16.0
    );
    // Recessive hairline grid: quarters of the time range.
    for q in 0..=4u32 {
        let x = label_w + plot_w * f64::from(q) / 4.0;
        let _ = writeln!(
            out,
            "<line class=\"grid\" x1=\"{x:.1}\" y1=\"0\" x2=\"{x:.1}\" y2=\"{height:.0}\"/>"
        );
    }
    for (row, &(stream_idx, &(ref path, start, end))) in rows.iter().enumerate() {
        let y = row as f64 * row_h + 4.0;
        let x = label_w + plot_w * start as f64 / t_max as f64;
        let w = (plot_w * (end.saturating_sub(start)) as f64 / t_max as f64).max(1.5);
        let color_class = series_class(stream_idx);
        let label = path.rsplit('/').next().unwrap_or(path);
        let depth = path.matches('/').count();
        let _ = writeln!(
            out,
            "<text class=\"rowlabel\" x=\"{:.1}\" y=\"{:.1}\">{}</text>",
            4.0 + depth as f64 * 10.0,
            y + 10.5,
            escape_html(label)
        );
        let _ = writeln!(
            out,
            "<rect class=\"bar {color_class}\" x=\"{x:.1}\" y=\"{y:.1}\" width=\"{w:.1}\" \
             height=\"12\" rx=\"2\"><title>{} · {} · {}–{}</title></rect>",
            escape_html(path),
            fmt_duration(end.saturating_sub(start)),
            fmt_duration(start),
            fmt_duration(end),
        );
    }
    out.push_str("</svg>\n");
    // Legend: identity channel for the per-process lane colours.
    if harvest.streams.len() > 1 {
        out.push_str("<ul class=\"legend\">");
        for (i, stream) in harvest.streams.iter().enumerate() {
            let _ = write!(
                out,
                "<li><span class=\"swatch {}\"></span>{}</li>",
                series_class(i),
                escape_html(&process_name(stream))
            );
        }
        out.push_str("</ul>\n");
    }
    out.push_str("</section>\n");
    out
}

fn render_sparklines(harvest: &Harvest) -> String {
    use std::fmt::Write as _;
    // Filter empty series *before* applying the cap: the cap counts
    // rendered sparklines, so the "showing N of M" marker below never
    // overstates what is on screen.
    let drawable: Vec<(&String, &Vec<(u64, u64)>)> = harvest
        .series
        .iter()
        .filter(|(_, samples)| !samples.is_empty())
        .collect();
    if drawable.is_empty() {
        return String::new();
    }
    let shown = &drawable[..drawable.len().min(MAX_SPARKLINES)];
    let mut out = String::from("<section><h2>Time series</h2>\n<div class=\"sparks\">\n");
    for &(name, samples) in shown {
        let w = 220.0;
        let h = 44.0;
        let t0 = samples[0].0;
        let t1 = samples[samples.len() - 1].0.max(t0 + 1);
        let v_max = samples.iter().map(|&(_, v)| v).max().unwrap_or(1).max(1);
        let point = |&(t, v): &(u64, u64)| -> (f64, f64) {
            (
                w * (t.saturating_sub(t0)) as f64 / (t1 - t0) as f64,
                h - 4.0 - (h - 8.0) * v as f64 / v_max as f64,
            )
        };
        let path = samples
            .iter()
            .map(point)
            .map(|(x, y)| format!("{x:.1},{y:.1}"))
            .collect::<Vec<_>>()
            .join(" ");
        let (ex, ey) = point(&samples[samples.len() - 1]);
        let last = samples[samples.len() - 1].1;
        let _ = writeln!(
            out,
            "<figure class=\"spark\"><figcaption>{}</figcaption>\
             <svg viewBox=\"0 0 {w:.0} {h:.0}\" role=\"img\" aria-label=\"{}\">\
             <title>{} · {} samples · last {}</title>\
             <polyline class=\"line\" points=\"{path}\"/>\
             <circle class=\"dot\" cx=\"{ex:.1}\" cy=\"{ey:.1}\" r=\"4\"/></svg>\
             <div class=\"spark-last\">{}</div></figure>",
            escape_html(name),
            escape_html(name),
            escape_html(name),
            samples.len(),
            fmt_count(last),
            fmt_count(last),
        );
    }
    out.push_str("</div>\n");
    if shown.len() < drawable.len() {
        let _ = writeln!(
            out,
            "<p class=\"note\">showing {} of {} series</p>",
            shown.len(),
            drawable.len()
        );
    }
    out.push_str("</section>\n");
    out
}

fn render_alerts(harvest: &Harvest) -> String {
    use std::fmt::Write as _;
    if harvest.alerts.is_empty() {
        return String::new();
    }
    let firing = harvest
        .alerts
        .iter()
        .filter(|a| a.state == "firing")
        .count();
    let mut out = String::from("<section><h2>SLO alerts</h2>\n");
    let _ = writeln!(
        out,
        "<p class=\"note\">{} transition{} · {} firing</p>",
        harvest.alerts.len(),
        if harvest.alerts.len() == 1 { "" } else { "s" },
        firing
    );
    out.push_str(
        "<table><thead><tr><th>rule</th><th>series</th><th>state</th>\
         <th class=\"num\">value</th><th class=\"num\">threshold</th>\
         <th class=\"num\">at</th></tr></thead><tbody>\n",
    );
    for alert in &harvest.alerts {
        let badge = if alert.state == "firing" {
            "badge-firing"
        } else {
            "badge-ok"
        };
        let _ = writeln!(
            out,
            "<tr><td><code>{}</code></td><td><code>{}</code></td>\
             <td><span class=\"badge {badge}\">{}</span></td>\
             <td class=\"num\">{:.2}</td><td class=\"num\">{:.2}</td>\
             <td class=\"num\">{}</td></tr>",
            escape_html(&alert.rule),
            escape_html(&alert.series),
            escape_html(&alert.state),
            alert.value,
            alert.threshold,
            fmt_duration(alert.at_ns),
        );
    }
    out.push_str("</tbody></table></section>\n");
    out
}

fn render_counter_table(harvest: &Harvest) -> String {
    use std::fmt::Write as _;
    if harvest.counters.is_empty() {
        return String::new();
    }
    let mut out = String::from(
        "<section><h2>Counters</h2><table><thead><tr>\
         <th>counter</th><th class=\"num\">value</th></tr></thead><tbody>\n",
    );
    for (name, value) in &harvest.counters {
        let _ = writeln!(
            out,
            "<tr><td><code>{}</code></td><td class=\"num\">{}</td></tr>",
            escape_html(name),
            fmt_count(*value)
        );
    }
    out.push_str("</tbody></table></section>\n");
    out
}

fn render_hist_table(harvest: &Harvest) -> String {
    use std::fmt::Write as _;
    if harvest.histograms.is_empty() {
        return String::new();
    }
    let mut out = String::from(
        "<section><h2>Histograms</h2><table><thead><tr><th>histogram</th>\
         <th class=\"num\">n</th><th class=\"num\">mean</th><th class=\"num\">p50</th>\
         <th class=\"num\">p95</th><th class=\"num\">p99</th></tr></thead><tbody>\n",
    );
    for (name, hist) in &harvest.histograms {
        let mean = if hist.total == 0 {
            0.0
        } else {
            hist.sum as f64 / hist.total as f64
        };
        let _ = writeln!(
            out,
            "<tr><td><code>{}</code></td><td class=\"num\">{}</td><td class=\"num\">{mean:.1}</td>\
             <td class=\"num\">{}</td><td class=\"num\">{}</td><td class=\"num\">{}</td></tr>",
            escape_html(name),
            fmt_count(hist.total),
            fmt_count(hist_quantile(hist, 0.50)),
            fmt_count(hist_quantile(hist, 0.95)),
            fmt_count(hist_quantile(hist, 0.99)),
        );
    }
    out.push_str("</tbody></table></section>\n");
    out
}

/// Inline stylesheet: role-named custom properties from the validated
/// reference palette, light and dark, ink tokens for all text, series
/// colours only on marks.
const STYLE: &str = r#"
:root { color-scheme: light dark; }
.viz-root {
  --surface-1: #fcfcfb; --page: #f9f9f7;
  --ink-1: #0b0b0b; --ink-2: #52514e; --ink-muted: #898781;
  --grid: #e1e0d9; --baseline: #c3c2b7;
  --s0: #2a78d6; --s1: #eb6834; --s2: #1baf7a; --s3: #eda100;
  --s4: #e87ba4; --s5: #008300; --s6: #4a3aa7; --s7: #e34948;
  margin: 0; padding: 24px; background: var(--page); color: var(--ink-1);
  font: 14px/1.5 system-ui, -apple-system, "Segoe UI", sans-serif;
}
@media (prefers-color-scheme: dark) {
  .viz-root {
    --surface-1: #1a1a19; --page: #0d0d0d;
    --ink-1: #ffffff; --ink-2: #c3c2b7; --ink-muted: #898781;
    --grid: #2c2c2a; --baseline: #383835;
    --s0: #3987e5; --s1: #d95926; --s2: #199e70; --s3: #c98500;
    --s4: #d55181; --s5: #008300; --s6: #9085e9; --s7: #e66767;
  }
}
header h1 { font-size: 20px; margin: 0 0 4px; }
.sub { color: var(--ink-2); margin: 0 0 20px; }
section { background: var(--surface-1); border-radius: 8px; padding: 16px 20px;
  margin: 0 0 16px; border: 1px solid var(--grid); }
h2 { font-size: 14px; margin: 0 0 12px; color: var(--ink-2);
  font-weight: 600; text-transform: none; }
.tiles { display: flex; flex-wrap: wrap; gap: 24px; }
.tile-label { color: var(--ink-2); }
.tile-value { font-size: 28px; font-weight: 600; }
.tile-note { color: var(--ink-muted); font-size: 12px; }
.tree { list-style: none; margin: 0; padding: 0; }
.tree .child { padding-left: 24px; }
.tree em { color: var(--ink-muted); }
.swatch { display: inline-block; width: 10px; height: 10px; border-radius: 2px;
  margin-right: 6px; }
.s0 { fill: var(--s0); background: var(--s0); } .s1 { fill: var(--s1); background: var(--s1); }
.s2 { fill: var(--s2); background: var(--s2); } .s3 { fill: var(--s3); background: var(--s3); }
.s4 { fill: var(--s4); background: var(--s4); } .s5 { fill: var(--s5); background: var(--s5); }
.s6 { fill: var(--s6); background: var(--s6); } .s7 { fill: var(--s7); background: var(--s7); }
.sother { fill: var(--ink-muted); background: var(--ink-muted); }
.waterfall { width: 100%; height: auto; }
.waterfall .grid { stroke: var(--grid); stroke-width: 1; }
.waterfall .rowlabel { fill: var(--ink-2); font-size: 10px;
  font-family: ui-monospace, monospace; }
.waterfall .bar { stroke: var(--surface-1); stroke-width: 1; }
.legend { list-style: none; margin: 8px 0 0; padding: 0; display: flex;
  flex-wrap: wrap; gap: 16px; color: var(--ink-2); }
.sparks { display: flex; flex-wrap: wrap; gap: 20px; }
.spark figcaption { color: var(--ink-2); font-size: 12px;
  font-family: ui-monospace, monospace; }
.spark { margin: 0; }
.spark .line { fill: none; stroke: var(--s0); stroke-width: 2;
  stroke-linejoin: round; stroke-linecap: round; }
.spark .dot { fill: var(--s0); stroke: var(--surface-1); stroke-width: 2; }
.spark-last { color: var(--ink-1); font-weight: 600; }
table { border-collapse: collapse; width: 100%; }
th, td { text-align: left; padding: 4px 12px 4px 0;
  border-bottom: 1px solid var(--grid); }
th { color: var(--ink-muted); font-weight: 500; }
td.num, th.num { text-align: right; font-variant-numeric: tabular-nums; }
.note { color: var(--ink-muted); font-size: 12px; }
.badge { display: inline-block; padding: 1px 8px; border-radius: 9px;
  font-size: 12px; font-weight: 600; }
.badge-firing { background: var(--s7); color: #ffffff; }
.badge-ok { background: var(--grid); color: var(--ink-2); }
footer { color: var(--ink-muted); font-size: 12px; margin-top: 8px; }
code { font-family: ui-monospace, monospace; }
"#;

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_input() -> ReportInput {
        ReportInput {
            label: "trace.ndjson".into(),
            text: concat!(
                "{\"type\":\"meta\",\"version\":1,\"spans\":2,\"counters\":2,\"histograms\":1}\n",
                "{\"type\":\"context\",\"trace_id\":\"00aabbccddeeff11\",\"parent_span\":null,\"process\":\"scanbist\"}\n",
                "{\"type\":\"span\",\"path\":\"campaign\",\"thread\":0,\"start_ns\":0,\"end_ns\":900,\"dur_ns\":900}\n",
                "{\"type\":\"span\",\"path\":\"campaign/fault_sim\",\"thread\":0,\"start_ns\":10,\"end_ns\":500,\"dur_ns\":490}\n",
                "{\"type\":\"counter\",\"name\":\"robust.retry.success\",\"value\":4}\n",
                "{\"type\":\"counter\",\"name\":\"ppsfp.faults_dropped\",\"value\":17}\n",
                "{\"type\":\"hist\",\"name\":\"lat\",\"hist\":{\"edges\":[1,2],\"counts\":[1,1,0],\"total\":2,\"sum\":3}}\n",
                "{\"type\":\"ts\",\"name\":\"work.items\",\"samples\":[[0,0],[100,5],[200,9]]}\n",
                "{\"type\":\"retry\",\"fault\":3,\"attempt\":1}\n",
            )
            .to_owned(),
        }
    }

    #[test]
    fn renders_self_contained_dashboard() {
        let html = render(&[sample_input()], "test report").expect("render");
        // Structure.
        assert!(html.starts_with("<!doctype html>"));
        assert!(html.contains("<style>"));
        assert!(html.contains("<svg class=\"waterfall\""));
        assert!(html.contains("campaign/fault_sim"));
        assert!(html.contains("work.items"));
        assert!(html.contains("00aabbccddeeff11"));
        // Required counters surface in tiles.
        assert!(html.contains("Robust retries"));
        assert!(html.contains("Faults dropped"));
        assert!(html.contains("ppsfp.faults_dropped"));
        // Self-contained: no external assets of any kind.
        assert!(!html.contains("http://"));
        assert!(!html.contains("https://"));
        assert!(!html.contains("<script"));
        assert!(!html.contains("<link"));
        assert!(!html.contains("src="));
    }

    #[test]
    fn merges_multiple_streams_into_one_tree() {
        let parent = sample_input();
        let child = ReportInput {
            label: "trace_child.ndjson".into(),
            text: concat!(
                "{\"type\":\"context\",\"trace_id\":\"00aabbccddeeff11\",\"parent_span\":\"campaign/fault_sim\",\"process\":\"table1\"}\n",
                "{\"type\":\"span\",\"path\":\"experiment\",\"thread\":0,\"start_ns\":5,\"end_ns\":50,\"dur_ns\":45}\n",
            )
            .to_owned(),
        };
        let html = render(&[parent, child], "joined").expect("render");
        assert!(html.contains("Trace tree"));
        assert!(html.contains("table1"));
        assert!(!html.contains("orphan"), "parent span resolves");
    }

    #[test]
    fn rejects_unparseable_input() {
        let bad = ReportInput {
            label: "junk.txt".into(),
            text: "this is not json\n".into(),
        };
        let err = render(&[bad], "t").unwrap_err();
        assert!(err.contains("junk.txt"), "{err}");
    }

    #[test]
    fn accepts_metrics_snapshot_document() {
        let snap = ReportInput {
            label: "metrics.json".into(),
            text: r#"{"version":1,"counters":{"a.b":3},"histograms":{},"spans":{}}"#.into(),
        };
        let html = render(&[snap], "snap").expect("render");
        assert!(html.contains("a.b"));
    }

    #[test]
    fn renders_call_graph_panel_from_graph_summary() {
        let input = ReportInput {
            label: "graph.ndjson".into(),
            text: concat!(
                "{\"type\":\"graph_fn\",\"id\":0,\"fn\":\"a::f\",\"file\":\"a.rs\",\"line\":1,\"test\":false,\"calls\":1,\"panics\":0,\"locks\":0,\"io\":0,\"taints\":0}\n",
                "{\"type\":\"graph_edge\",\"from\":0,\"to\":0,\"from_fn\":\"a::f\",\"to_fn\":\"a::f\",\"file\":\"a.rs\",\"line\":2}\n",
                "{\"type\":\"graph\",\"files\":3,\"functions\":1,\"edges\":1,\"unresolved\":4,\"panic_sites\":5,\"lock_sites\":6,\"taint_sites\":7}\n",
            )
            .to_owned(),
        };
        let html = render(&[input], "graph").expect("render");
        assert!(html.contains("Call graph"));
        assert!(html.contains("panic sites"));
        // Raw node/edge records feed the summary, not the audit tally.
        assert!(!html.contains("Audit events"));
    }

    #[test]
    fn renders_alert_panel_from_alert_records() {
        let input = ReportInput {
            label: "trace.ndjson".into(),
            text: concat!(
                "{\"type\":\"alert\",\"rule\":\"diag-p99\",\"series\":\"diagnose#p99\",\"state\":\"firing\",\"value\":120.5,\"threshold\":100,\"at_ns\":1000000}\n",
                "{\"type\":\"alert\",\"rule\":\"diag-p99\",\"series\":\"diagnose#p99\",\"state\":\"resolved\",\"value\":80,\"threshold\":100,\"at_ns\":2000000}\n",
            )
            .to_owned(),
        };
        let html = render(&[input], "alerts").expect("render");
        assert!(html.contains("SLO alerts"));
        assert!(html.contains("diag-p99"));
        assert!(html.contains("badge-firing"));
        assert!(html.contains("badge-ok"));
        assert!(html.contains("1 firing"));
        // Alerts are a first-class panel, not a generic audit tally.
        assert!(!html.contains("Audit events"));
    }

    #[test]
    fn waterfall_truncation_says_showing_n_of_m() {
        use std::fmt::Write as _;
        let mut text = String::from(
            "{\"type\":\"context\",\"trace_id\":\"00aabbccddeeff11\",\"parent_span\":null,\"process\":\"p\"}\n",
        );
        for i in 0..(MAX_WATERFALL_ROWS + 10) {
            let _ = writeln!(
                text,
                "{{\"type\":\"span\",\"path\":\"s{i}\",\"thread\":0,\"start_ns\":{i},\"end_ns\":{},\"dur_ns\":10}}",
                i + 10
            );
        }
        let input = ReportInput {
            label: "trace.ndjson".into(),
            text,
        };
        let html = render(&[input], "big").expect("render");
        assert!(
            html.contains(&format!(
                "showing the first {MAX_WATERFALL_ROWS} of {} spans",
                MAX_WATERFALL_ROWS + 10
            )),
            "explicit truncation marker"
        );
    }

    #[test]
    fn sparkline_truncation_counts_rendered_series_only() {
        // MAX_SPARKLINES + 4 non-empty series plus 3 empty ones mixed
        // in: the empty ones draw nothing, so the marker must count
        // only what was actually rendered and what was drawable.
        use std::fmt::Write as _;
        let mut text = String::new();
        for i in 0..(MAX_SPARKLINES + 4) {
            let _ = writeln!(
                text,
                "{{\"type\":\"ts\",\"name\":\"series.{i:03}\",\"samples\":[[0,1],[100,{i}]]}}"
            );
        }
        for i in 0..3 {
            let _ = writeln!(text, "{{\"type\":\"ts\",\"name\":\"empty.{i:03}\",\"samples\":[]}}");
        }
        let input = ReportInput {
            label: "trace.ndjson".into(),
            text,
        };
        let html = render(&[input], "sparks").expect("render");
        let figures = html.matches("<figure class=\"spark\">").count();
        assert_eq!(figures, MAX_SPARKLINES, "cap counts rendered sparklines");
        assert!(
            html.contains(&format!(
                "showing {MAX_SPARKLINES} of {} series",
                MAX_SPARKLINES + 4
            )),
            "marker counts drawable series, not raw map size"
        );
    }

    #[test]
    fn sparklines_under_cap_have_no_marker() {
        let input = sample_input();
        let html = render(&[input], "small").expect("render");
        assert!(!html.contains("of 1 series"), "no marker when nothing truncated");
    }

    #[test]
    fn legend_folds_past_eighth_stream_like_the_bars() {
        // Ten streams: bars for streams 8+ use the muted fold class, so
        // their legend and tree swatches must too.
        let mut inputs = Vec::new();
        for i in 0..10 {
            inputs.push(ReportInput {
                label: format!("t{i}.ndjson"),
                text: format!(
                    "{{\"type\":\"context\",\"trace_id\":\"00aabbccddeeff11\",{}\"process\":\"proc{i}\"}}\n{{\"type\":\"span\",\"path\":\"{}\",\"thread\":0,\"start_ns\":0,\"end_ns\":10,\"dur_ns\":10}}\n",
                    if i == 0 {
                        String::new()
                    } else {
                        "\"parent_span\":\"root\",".to_owned()
                    },
                    if i == 0 { "root".to_owned() } else { format!("w{i}") }
                ),
            });
        }
        let html = render(&inputs, "many").expect("render");
        assert!(
            html.contains("<span class=\"swatch sother\"></span>proc9"),
            "ninth-plus legend swatch folds to sother"
        );
        assert!(
            !html.contains("swatch s8"),
            "no out-of-palette class is ever emitted"
        );
    }
}
