//! The live `/metrics` + `/healthz` endpoint.
//!
//! A tiny HTTP/1.1 server on `std::net::TcpListener`, enabled by
//! `--serve-metrics <addr>` on `scanbist` and the experiment bins, so
//! a long campaign can be scraped *while it runs* — the layer the
//! `scanbistd` daemon (ROADMAP) will stand on. Zero dependencies, and
//! deliberately minimal: GET only, `Connection: close`, no TLS, no
//! keep-alive.
//!
//! Routes:
//!
//! * `GET /metrics` — Prometheus-style text exposition
//!   ([`exposition`]) of the registry snapshot plus windowed
//!   time-series rollups when a sampler is active.
//! * `GET /metrics.json` — the workspace's own JSON metrics snapshot
//!   (same document `--metrics-out` writes).
//! * `GET /healthz` — `{"status":"ok","uptime_ns":…}`.
//! * `GET /readyz` — `{"status":"ready"}` (200) until [`set_ready`]
//!   flips it to `{"status":"draining"}` (503); load balancers and the
//!   `scanbistd` drain sequence key off this.
//!
//! **Bounded connections:** requests are handled serially on the one
//! accept thread with read/write timeouts and an 8 KiB request cap, so
//! a slow or malicious scraper can stall at most one connection slot
//! and the OS listen backlog — never the campaign, which runs on other
//! threads and shares nothing with the server but the registry locks.
//! A client that connects and then sends nothing (slow loris) is cut
//! off by the read timeout with a `408`; a declared request body over
//! the configurable [`set_body_limit`] is rejected with `413` without
//! ever being read.
//!
//! **Clean shutdown:** [`MetricsServer::stop`] flips a flag and nudges
//! the listener with a loopback connect so the accept loop observes it
//! immediately, then joins the thread.
//!
//! All server logging goes to stderr (lint L006 keeps stdout for
//! results), and the handler's socket writes are the span's own
//! subject — see the justified L009 allowance in `lint.toml`.

use std::io::{Read as _, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crate::registry::{self, Snapshot};
use crate::timeseries::{self, SeriesRollup};

const REQUEST_CAP: usize = 8 * 1024;
const IO_TIMEOUT: Duration = Duration::from_secs(2);

/// Default ceiling for declared request bodies (`Content-Length`).
/// Metrics routes are GET-only, so anything nontrivial is suspicious;
/// the limit exists so a misdirected upload is refused with `413`
/// instead of being read to EOF.
pub const DEFAULT_BODY_LIMIT: usize = 64 * 1024;

static BODY_LIMIT: AtomicUsize = AtomicUsize::new(DEFAULT_BODY_LIMIT);
static READY: AtomicBool = AtomicBool::new(true);

/// Sets the `Content-Length` ceiling above which requests are refused
/// with `413 Payload Too Large`. Applies to every in-process
/// [`MetricsServer`] and to daemons reusing [`route`] + this module's
/// request reader.
pub fn set_body_limit(limit: usize) {
    BODY_LIMIT.store(limit.max(1), Ordering::Release);
}

/// The current request-body ceiling (see [`set_body_limit`]).
#[must_use]
pub fn body_limit() -> usize {
    BODY_LIMIT.load(Ordering::Acquire)
}

/// Flips the process-wide readiness bit behind `GET /readyz`.
/// `true` (the default) answers `200 {"status":"ready"}`; `false`
/// answers `503 {"status":"draining"}` so load balancers stop routing
/// new work while in-flight requests finish.
pub fn set_ready(ready: bool) {
    READY.store(ready, Ordering::Release);
}

/// Whether `GET /readyz` currently reports ready.
#[must_use]
pub fn is_ready() -> bool {
    READY.load(Ordering::Acquire)
}

/// A running metrics endpoint; dropping or [`stop`](MetricsServer::stop)ping
/// it shuts the listener down.
pub struct MetricsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl MetricsServer {
    /// Binds `addr` (e.g. `127.0.0.1:0` for an ephemeral port) and
    /// starts the accept thread. Logs the bound address to stderr as
    /// `obs: serving metrics on http://IP:PORT`.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure, with the offending address in the
    /// message.
    pub fn start(addr: &str) -> std::io::Result<MetricsServer> {
        let listener = TcpListener::bind(addr).map_err(|e| {
            std::io::Error::new(e.kind(), format!("cannot bind metrics endpoint `{addr}`: {e}"))
        })?;
        let local = listener.local_addr()?;
        eprintln!("obs: serving metrics on http://{local}");
        let stop = Arc::new(AtomicBool::new(false));
        let thread_stop = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("obs-serve".into())
            .spawn(move || accept_loop(&listener, &thread_stop))?;
        Ok(MetricsServer {
            addr: local,
            stop,
            handle: Some(handle),
        })
    }

    /// The bound address (resolves port 0 to the real ephemeral port).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting, unblocks the listener, and joins the thread.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        if self.handle.is_none() {
            return;
        }
        self.stop.store(true, Ordering::Release);
        // Nudge the blocking accept so it observes the flag now.
        if let Ok(nudge) = TcpStream::connect_timeout(&self.addr, IO_TIMEOUT) {
            drop(nudge);
        }
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(listener: &TcpListener, stop: &AtomicBool) {
    for stream in listener.incoming() {
        if stop.load(Ordering::Acquire) {
            break;
        }
        match stream {
            Ok(conn) => handle_connection(conn),
            Err(e) => {
                eprintln!("obs: metrics accept error: {e}");
            }
        }
    }
    // The accept thread's shard (serve.* counters, scrape spans) folds
    // into the global registry here, before `finish` snapshots it.
    registry::flush_thread();
}

/// Why a request head could not be turned into a routable target.
enum HeadError {
    /// Not a well-formed `GET <target> HTTP/1.x` head.
    Malformed,
    /// The client stalled past the read timeout (slow loris).
    Timeout,
    /// The declared `Content-Length` exceeds [`body_limit`].
    BodyTooLarge,
}

fn handle_connection(mut conn: TcpStream) {
    let _span = crate::span!("serve/scrape");
    let _ = conn.set_read_timeout(Some(IO_TIMEOUT));
    let _ = conn.set_write_timeout(Some(IO_TIMEOUT));
    let target = match read_request_target(&mut conn) {
        Ok(target) => target,
        Err(HeadError::Timeout) => {
            crate::metrics::incr("serve.timeouts");
            let _ = write_response(
                &mut conn,
                408,
                "text/plain; charset=utf-8",
                "request timed out\n",
            );
            return;
        }
        Err(HeadError::BodyTooLarge) => {
            crate::metrics::incr("serve.oversized_bodies");
            let _ = write_response(
                &mut conn,
                413,
                "text/plain; charset=utf-8",
                "request body exceeds limit\n",
            );
            return;
        }
        Err(HeadError::Malformed) => {
            crate::metrics::incr("serve.bad_requests");
            let _ = write_response(&mut conn, 400, "text/plain; charset=utf-8", "bad request\n");
            return;
        }
    };
    crate::metrics::incr("serve.requests");
    let (status, content_type, body) = route(&target);
    let _ = write_response(&mut conn, status, content_type, &body);
}

/// Reads the request head (up to [`REQUEST_CAP`]) and returns the
/// request target of a well-formed `GET <target> HTTP/1.x` line.
/// Declared bodies over [`body_limit`] are refused without being read.
fn read_request_target(conn: &mut TcpStream) -> Result<String, HeadError> {
    let mut head = Vec::new();
    let mut buf = [0u8; 512];
    loop {
        let n = match conn.read(&mut buf) {
            Ok(n) => n,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                return Err(HeadError::Timeout);
            }
            Err(_) => return Err(HeadError::Malformed),
        };
        if n == 0 {
            break;
        }
        // lint:allow(L012): `read()` guarantees `n <= buf.len()`
        head.extend_from_slice(&buf[..n]);
        if head.windows(4).any(|w| w == b"\r\n\r\n") || head.len() >= REQUEST_CAP {
            break;
        }
    }
    let text = String::from_utf8_lossy(&head);
    let mut lines = text.lines();
    let line = lines.next().ok_or(HeadError::Malformed)?;
    // Reject declared bodies over the limit before touching the route:
    // a metrics endpoint never needs an upload, so an oversized
    // Content-Length is refused outright instead of read to EOF.
    for header in lines.by_ref() {
        if header.is_empty() {
            break;
        }
        let Some((name, value)) = header.split_once(':') else {
            continue;
        };
        if name.trim().eq_ignore_ascii_case("content-length") {
            match value.trim().parse::<usize>() {
                Ok(len) if len > body_limit() => return Err(HeadError::BodyTooLarge),
                Ok(_) => {}
                Err(_) => return Err(HeadError::Malformed),
            }
        }
    }
    let mut parts = line.split_whitespace();
    let method = parts.next().ok_or(HeadError::Malformed)?;
    let target = parts.next().ok_or(HeadError::Malformed)?;
    let version = parts.next().ok_or(HeadError::Malformed)?;
    if method != "GET" || !version.starts_with("HTTP/1.") {
        return Err(HeadError::Malformed);
    }
    Ok(target.to_owned())
}

/// Routes a request target to `(status, content type, body)` — the
/// shared observability surface. Public so daemons building on this
/// crate (`scanbistd`) can mount the exact same `/metrics`,
/// `/metrics.json`, `/alerts.json`, `/healthz`, and `/readyz` routes
/// on their own listeners.
#[must_use]
pub fn route(target: &str) -> (u16, &'static str, String) {
    let path = target.split('?').next().unwrap_or(target);
    match path {
        "/metrics" => {
            let rollups = timeseries::active().map(|s| s.rollups()).unwrap_or_default();
            (
                200,
                "text/plain; version=0.0.4; charset=utf-8",
                exposition(
                    &registry::snapshot(),
                    &rollups,
                    &crate::slo::active_alerts(),
                    registry::epoch_elapsed_ns(),
                ),
            )
        }
        "/metrics.json" => (
            200,
            "application/json",
            crate::export::metrics_json(&registry::snapshot()),
        ),
        "/alerts.json" => (
            200,
            "application/json",
            alerts_json(&crate::slo::active_alerts()),
        ),
        "/healthz" => (
            200,
            "application/json",
            format!(
                r#"{{"status":"ok","uptime_ns":{},"pid":{}}}"#,
                registry::epoch_elapsed_ns(),
                std::process::id()
            ),
        ),
        "/readyz" => {
            if is_ready() {
                (200, "application/json", "{\"status\":\"ready\"}".to_owned())
            } else {
                (
                    503,
                    "application/json",
                    "{\"status\":\"draining\"}".to_owned(),
                )
            }
        }
        _ => (404, "text/plain; charset=utf-8", "not found\n".to_owned()),
    }
}

fn write_response(
    conn: &mut TcpStream,
    status: u16,
    content_type: &str,
    body: &str,
) -> std::io::Result<()> {
    let reason = match status {
        200 => "OK",
        400 => "Bad Request",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        503 => "Service Unavailable",
        _ => "Not Found",
    };
    let head = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    conn.write_all(head.as_bytes())?;
    conn.write_all(body.as_bytes())?;
    conn.flush()
}

/// Renders the `/alerts.json` document: the live state of every
/// installed SLO rule.
#[must_use]
pub fn alerts_json(alerts: &[crate::slo::AlertStatus]) -> String {
    use std::fmt::Write as _;
    let mut out = String::from("{\"version\":1,\"alerts\":[");
    for (i, a) in alerts.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"rule\":{},\"series\":{},\"state\":{},\"value\":{},\"threshold\":{},\"since_ns\":{}}}",
            crate::export::escape(&a.rule),
            crate::export::escape(&a.series),
            if a.firing { "\"firing\"" } else { "\"ok\"" },
            crate::slo::fmt_num(a.value),
            crate::slo::fmt_num(a.threshold),
            a.since_ns
        );
    }
    out.push_str("]}");
    out
}

// ---- Prometheus-style text exposition ----

/// Maps a workspace metric name (`robust.retry.success`,
/// `fault_sim#p95`) to a Prometheus metric name: `scanbist_` prefix,
/// every non-`[a-zA-Z0-9_]` byte folded to `_`.
#[must_use]
pub fn sanitize_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 9);
    out.push_str("scanbist_");
    for c in name.chars() {
        if c.is_ascii_alphanumeric() || c == '_' {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

fn escape_label(value: &str) -> String {
    value
        .replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

/// Renders the Prometheus text exposition (format 0.0.4) of a registry
/// snapshot plus optional time-series rollups: counters as `counter`
/// samples, histograms as cumulative `histogram` families
/// (`_bucket{le=…}`/`_sum`/`_count`), span stats as labelled counter
/// families, rollups as `gauge` samples, and SLO alert states as
/// `scanbist_alert_active{rule=…}` gauges. Always leads with
/// synthesized `scanbist_up`/`scanbist_uptime_ns` gauges so a scrape
/// early in a campaign — before any worker shard has folded into the
/// global registry — still yields a parseable, non-empty exposition.
#[must_use]
pub fn exposition(
    snapshot: &Snapshot,
    rollups: &[SeriesRollup],
    alerts: &[crate::slo::AlertStatus],
    uptime_ns: u64,
) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    out.push_str("# TYPE scanbist_up gauge\nscanbist_up 1\n");
    out.push_str("# TYPE scanbist_uptime_ns gauge\n");
    let _ = writeln!(out, "scanbist_uptime_ns {uptime_ns}");
    for (name, value) in &snapshot.counters {
        let metric = sanitize_name(name);
        let _ = writeln!(out, "# TYPE {metric} counter");
        let _ = writeln!(out, "{metric} {value}");
    }
    for (name, hist) in &snapshot.histograms {
        let metric = sanitize_name(name);
        let _ = writeln!(out, "# TYPE {metric} histogram");
        let mut cumulative = 0u64;
        for (edge, count) in hist.edges.iter().zip(&hist.counts) {
            cumulative += count;
            let _ = writeln!(out, "{metric}_bucket{{le=\"{edge}\"}} {cumulative}");
        }
        let _ = writeln!(out, "{metric}_bucket{{le=\"+Inf\"}} {}", hist.total);
        let _ = writeln!(out, "{metric}_sum {}", hist.sum);
        let _ = writeln!(out, "{metric}_count {}", hist.total);
    }
    if !snapshot.span_stats.is_empty() {
        out.push_str("# TYPE scanbist_span_count counter\n");
        for (path, stat) in &snapshot.span_stats {
            let _ = writeln!(
                out,
                "scanbist_span_count{{path=\"{}\"}} {}",
                escape_label(path),
                stat.count
            );
        }
        out.push_str("# TYPE scanbist_span_total_ns counter\n");
        for (path, stat) in &snapshot.span_stats {
            let _ = writeln!(
                out,
                "scanbist_span_total_ns{{path=\"{}\"}} {}",
                escape_label(path),
                stat.total_ns
            );
        }
    }
    if !rollups.is_empty() {
        out.push_str("# TYPE scanbist_series_last gauge\n");
        for r in rollups {
            let _ = writeln!(
                out,
                "scanbist_series_last{{name=\"{}\"}} {}",
                escape_label(&r.name),
                r.last
            );
        }
        out.push_str("# TYPE scanbist_series_rate_per_sec gauge\n");
        for r in rollups {
            let _ = writeln!(
                out,
                "scanbist_series_rate_per_sec{{name=\"{}\"}} {:.6}",
                escape_label(&r.name),
                r.rate_per_sec
            );
        }
    }
    if !alerts.is_empty() {
        out.push_str("# TYPE scanbist_alert_active gauge\n");
        for a in alerts {
            let _ = writeln!(
                out,
                "scanbist_alert_active{{rule=\"{}\",series=\"{}\"}} {}",
                escape_label(&a.rule),
                escape_label(&a.series),
                u8::from(a.firing)
            );
        }
    }
    out
}

/// Validates that `text` parses as Prometheus text exposition: every
/// line is a `# TYPE`/`# HELP` comment or a
/// `name[{labels}] <float>` sample with a well-formed metric name and
/// balanced, quoted labels. Returns the number of samples.
///
/// # Errors
///
/// Returns a message naming the first offending line.
pub fn validate_exposition(text: &str) -> Result<usize, String> {
    let mut samples = 0usize;
    for (idx, line) in text.lines().enumerate() {
        let lineno = idx + 1;
        if line.is_empty() {
            continue;
        }
        if let Some(comment) = line.strip_prefix('#') {
            let c = comment.trim_start();
            if !(c.starts_with("TYPE ") || c.starts_with("HELP ")) {
                return Err(format!("line {lineno}: unknown comment form: {line}"));
            }
            continue;
        }
        parse_sample_line(line).map_err(|e| format!("line {lineno}: {e}: {line}"))?;
        samples += 1;
    }
    if samples == 0 {
        return Err("exposition contains no samples".to_owned());
    }
    Ok(samples)
}

fn parse_sample_line(line: &str) -> Result<(), String> {
    let bytes = line.as_bytes();
    let mut i = 0;
    while i < bytes.len()
        && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_' || bytes[i] == b':')
    {
        i += 1;
    }
    if i == 0 || bytes[0].is_ascii_digit() {
        return Err("bad metric name".to_owned());
    }
    let rest = &line[i..];
    let rest = if let Some(after_brace) = rest.strip_prefix('{') {
        let close = find_label_close(after_brace).ok_or("unterminated label set")?;
        validate_labels(&after_brace[..close])?;
        &after_brace[close + 1..]
    } else {
        rest
    };
    let value = rest.trim();
    if value.is_empty() {
        return Err("missing value".to_owned());
    }
    // Prometheus floats include +Inf/-Inf/NaN, which Rust's f64 parser
    // accepts as "inf"/"NaN" only, so normalize first.
    let normalized = match value {
        "+Inf" => "inf",
        "-Inf" => "-inf",
        v => v,
    };
    normalized
        .split_whitespace()
        .next()
        .unwrap_or("")
        .parse::<f64>()
        .map(|_| ())
        .map_err(|_| format!("bad sample value `{value}`"))
}

/// Index of the `}` closing the label set, honouring quoted values.
fn find_label_close(s: &str) -> Option<usize> {
    let bytes = s.as_bytes();
    let mut in_quotes = false;
    let mut escaped = false;
    for (i, &b) in bytes.iter().enumerate() {
        if escaped {
            escaped = false;
            continue;
        }
        match b {
            b'\\' if in_quotes => escaped = true,
            b'"' => in_quotes = !in_quotes,
            b'}' if !in_quotes => return Some(i),
            _ => {}
        }
    }
    None
}

fn validate_labels(labels: &str) -> Result<(), String> {
    if labels.trim().is_empty() {
        return Ok(());
    }
    // Split on commas outside quotes.
    let mut parts = Vec::new();
    let mut start = 0;
    let mut in_quotes = false;
    let mut escaped = false;
    for (i, &b) in labels.as_bytes().iter().enumerate() {
        if escaped {
            escaped = false;
            continue;
        }
        match b {
            b'\\' if in_quotes => escaped = true,
            b'"' => in_quotes = !in_quotes,
            b',' if !in_quotes => {
                parts.push(&labels[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    parts.push(&labels[start..]);
    for part in parts {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        let (name, value) = part.split_once('=').ok_or("label missing `=`")?;
        if name.is_empty() || name.as_bytes()[0].is_ascii_digit() {
            return Err("bad label name".to_owned());
        }
        let v = value.trim();
        if !(v.len() >= 2 && v.starts_with('"') && v.ends_with('"')) {
            return Err("label value not quoted".to_owned());
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Histogram;

    fn sample_snapshot() -> Snapshot {
        let mut snap = Snapshot::default();
        snap.counters.insert("robust.retry.success".into(), 7);
        snap.histograms.insert(
            "diag.latency".into(),
            Histogram {
                edges: vec![1, 2, 4],
                counts: vec![1, 2, 3, 4],
                total: 10,
                sum: 30,
            },
        );
        snap.span_stats.insert(
            "campaign/fault_sim".into(),
            crate::SpanStat {
                count: 3,
                total_ns: 900,
                self_ns: 900,
                max_ns: 400,
            },
        );
        snap
    }

    #[test]
    fn exposition_is_valid_and_complete() {
        let rollups = vec![SeriesRollup {
            name: "robust.retry.success".into(),
            last: 7,
            min: 0,
            max: 7,
            rate_per_sec: 3.5,
            samples: 4,
            window_ns: 2_000_000_000,
        }];
        let alerts = vec![crate::slo::AlertStatus {
            rule: "p99-latency".into(),
            series: "diag.latency#p99".into(),
            firing: true,
            value: 9.0,
            threshold: 5.0,
            since_ns: 17,
        }];
        let text = exposition(&sample_snapshot(), &rollups, &alerts, 42);
        assert!(text.contains("scanbist_up 1"));
        assert!(text.contains("scanbist_uptime_ns 42"));
        assert!(text.contains("scanbist_robust_retry_success 7"));
        assert!(text.contains("scanbist_diag_latency_bucket{le=\"+Inf\"} 10"));
        assert!(text.contains("scanbist_diag_latency_sum 30"));
        assert!(text.contains("scanbist_span_count{path=\"campaign/fault_sim\"} 3"));
        assert!(text.contains("scanbist_series_rate_per_sec{name=\"robust.retry.success\"} 3.5"));
        assert!(
            text.contains(
                "scanbist_alert_active{rule=\"p99-latency\",series=\"diag.latency#p99\"} 1"
            ),
            "{text}"
        );
        let samples = validate_exposition(&text).expect("exposition must parse");
        assert!(samples >= 10, "expected many samples, got {samples}");
    }

    #[test]
    fn exposition_survives_hostile_names_under_the_validator() {
        // Span paths and metric names flow straight out of span! call
        // sites: bracketed experiment names, quotes, backslashes, and
        // newlines must all sanitize/escape into a body the 0.0.4
        // grammar (the same one obs-check --scrape enforces) accepts.
        let mut snap = Snapshot::default();
        snap.counters.insert("experiment[s27].faults".into(), 3);
        snap.counters.insert("weird name{with=braces}".into(), 1);
        snap.histograms.insert(
            "lat[q]#hist".into(),
            Histogram {
                edges: vec![1],
                counts: vec![1, 0],
                total: 1,
                sum: 1,
            },
        );
        for path in [
            "all_experiments/experiment[s27]",
            "odd\"quote",
            "back\\slash",
            "multi\nline",
        ] {
            snap.span_stats.insert(
                path.into(),
                crate::SpanStat {
                    count: 1,
                    total_ns: 10,
                    self_ns: 10,
                    max_ns: 10,
                },
            );
        }
        let rollups = vec![SeriesRollup {
            name: "experiment[s27].faults".into(),
            last: 3,
            min: 0,
            max: 3,
            rate_per_sec: 0.5,
            samples: 2,
            window_ns: 1,
        }];
        let alerts = vec![crate::slo::AlertStatus {
            rule: "odd\"rule".into(),
            series: "lat[q]#hist#p99".into(),
            firing: false,
            value: 0.0,
            threshold: 1.0,
            since_ns: 0,
        }];
        let text = exposition(&snap, &rollups, &alerts, 1);
        let samples = validate_exposition(&text).unwrap_or_else(|e| panic!("{e}\n---\n{text}"));
        assert!(samples >= 12, "{samples}\n{text}");
        // Pinned: brackets fold to underscores in metric names, stay
        // escaped-verbatim inside label values.
        assert!(text.contains("scanbist_experiment_s27__faults 3"), "{text}");
        assert!(
            text.contains("scanbist_span_count{path=\"all_experiments/experiment[s27]\"} 1"),
            "{text}"
        );
        assert!(
            text.contains("scanbist_span_count{path=\"odd\\\"quote\"} 1"),
            "{text}"
        );
        assert!(
            text.contains("scanbist_span_count{path=\"back\\\\slash\"} 1"),
            "{text}"
        );
        assert!(
            text.contains("scanbist_span_count{path=\"multi\\nline\"} 1"),
            "{text}"
        );
    }

    #[test]
    fn alerts_json_renders_states() {
        let doc = alerts_json(&[crate::slo::AlertStatus {
            rule: "r1".into(),
            series: "s1".into(),
            firing: true,
            value: 2.5,
            threshold: 2.0,
            since_ns: 7,
        }]);
        let value = crate::json::parse(&doc).expect("valid json");
        let alerts = value
            .get("alerts")
            .and_then(crate::json::Value::as_array)
            .expect("alerts array");
        assert_eq!(alerts.len(), 1);
        assert_eq!(
            alerts[0].get("state").and_then(crate::json::Value::as_str),
            Some("firing")
        );
        assert_eq!(
            alerts[0].get("value").and_then(crate::json::Value::as_f64),
            Some(2.5)
        );
        assert_eq!(alerts_json(&[]), "{\"version\":1,\"alerts\":[]}");
    }

    #[test]
    fn validator_rejects_malformed_lines() {
        assert!(validate_exposition("").is_err());
        assert!(validate_exposition("# FOO bar\n").is_err());
        assert!(validate_exposition("1bad_name 3\n").is_err());
        assert!(validate_exposition("name{unterminated 3\n").is_err());
        assert!(validate_exposition("name{l=unquoted} 3\n").is_err());
        assert!(validate_exposition("name notafloat\n").is_err());
        assert!(validate_exposition("ok_metric 3\nok{a=\"b\",c=\"d\"} +Inf\n").is_ok());
    }

    #[test]
    fn server_serves_and_stops_cleanly() {
        use std::io::{Read as _, Write as _};
        let server = MetricsServer::start("127.0.0.1:0").expect("bind ephemeral");
        let addr = server.addr();
        let get = |target: &str| -> String {
            let mut conn = TcpStream::connect(addr).expect("connect");
            write!(conn, "GET {target} HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
            let mut body = String::new();
            conn.read_to_string(&mut body).unwrap();
            body
        };
        let health = get("/healthz");
        assert!(health.starts_with("HTTP/1.1 200"), "{health}");
        assert!(health.contains("\"status\":\"ok\""), "{health}");
        let json = get("/metrics.json");
        assert!(json.contains("\"version\":1"), "{json}");
        let missing = get("/nope");
        assert!(missing.starts_with("HTTP/1.1 404"), "{missing}");
        server.stop();
        // The port is released once stop returns; a fresh bind on the
        // same address must succeed.
        let rebound = TcpListener::bind(addr);
        assert!(rebound.is_ok(), "port not released: {rebound:?}");
    }
}
