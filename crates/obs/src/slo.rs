//! Declarative SLO alert rules evaluated on the sampler tick.
//!
//! A long-running campaign (or the future `scanbistd` daemon) should
//! not need an operator staring at `/metrics` to notice that p99
//! diagnosis latency or the robust-retry rate has breached its budget.
//! This module loads alert rules from a checked-in `slo.toml` (the
//! same zero-dependency TOML subset `lint.toml` uses), and the
//! background snapshotter thread ([`crate::timeseries::Sampler`])
//! evaluates them on every tick against the in-memory time series, on
//! the monotonic epoch clock.
//!
//! Two rule kinds cover the paper-relevant budgets:
//!
//! * **`static`** — fires when the latest sample of a series exceeds
//!   `max`, resolves when it falls back to `clear` or below. `clear`
//!   defaults to `max`; setting it *below* `max` gives the rule a
//!   hysteresis band so a boundary-riding series fires once and
//!   resolves once instead of flapping.
//! * **`burn_rate`** — the classic multi-window burn-rate alert: fires
//!   only when the series' rate per second exceeds `rate_max` over
//!   *both* a long and a short trailing window (fast burn that is also
//!   sustained), and resolves as soon as the short-window rate drops
//!   back to the budget. Window rates come from
//!   [`crate::timeseries::windowed_rate`], which clamps to the
//!   observed sample span rather than extrapolating.
//!
//! Rules target any series the sampler records: counter totals
//! (`robust.retries`, `ppsfp.faults_dropped`), histogram-derived
//! quantile series (`diagnose#p95`, `fault_sim#p99`), or counts
//! (`diagnose#count`).
//!
//! Firing and resolving transitions are appended to the session
//! history: the exporters emit them as `{"type":"alert"}` NDJSON
//! records (validated by `obs-check`), the `/metrics` endpoint exposes
//! the live state as `scanbist_alert_active{rule="…"}` gauges plus a
//! `/alerts.json` route, `scanbist report` renders an alert panel, and
//! the flight recorder ([`crate::recorder`]) keeps the most recent
//! transitions in its black-box ring.

use std::fmt;
use std::path::Path;
use std::sync::Mutex;

use crate::timeseries::{windowed_rate, Sample, TimeSeriesStore};

/// How a rule decides it is breached.
#[derive(Clone, Debug, PartialEq)]
pub enum RuleKind {
    /// Threshold on the latest sample: fire above `max`, resolve at or
    /// below `clear` (`clear <= max`; equal means no hysteresis band).
    Static {
        /// Fire when the latest sample exceeds this.
        max: f64,
        /// Resolve when the latest sample is at or below this.
        clear: f64,
    },
    /// Multi-window burn rate: fire when the per-second rate over both
    /// trailing windows exceeds `rate_max`, resolve when the
    /// short-window rate returns to budget.
    BurnRate {
        /// Budgeted rate per second.
        rate_max: f64,
        /// Long (sustained) window, milliseconds.
        long_ms: u64,
        /// Short (fast-burn) window, milliseconds.
        short_ms: u64,
    },
}

/// One declarative alert rule from `slo.toml`.
#[derive(Clone, Debug, PartialEq)]
pub struct SloRule {
    /// Rule name (the `[rule.<name>]` section header).
    pub name: String,
    /// Series the rule watches: a counter name or a derived
    /// `hist#p95`-style series.
    pub series: String,
    /// Breach condition.
    pub kind: RuleKind,
}

/// The parsed `slo.toml`: an ordered list of rules.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SloConfig {
    /// Rules in file order.
    pub rules: Vec<SloRule>,
}

/// Error produced for a malformed `slo.toml`.
#[derive(Clone, Eq, PartialEq, Debug)]
pub struct SloError {
    /// 1-based line of the offending construct (0 for file-level).
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for SloError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "slo.toml:{}: {}", self.line, self.message)
    }
}

impl std::error::Error for SloError {}

/// A rule section mid-parse, before validation.
#[derive(Default)]
struct PendingRule {
    name: String,
    line: usize,
    series: Option<String>,
    kind: Option<String>,
    max: Option<f64>,
    clear: Option<f64>,
    rate_max: Option<f64>,
    long_ms: Option<u64>,
    short_ms: Option<u64>,
}

impl SloConfig {
    /// Parses the `slo.toml` text (see the module docs for the
    /// format).
    ///
    /// # Errors
    ///
    /// Returns [`SloError`] on unknown sections/keys, malformed
    /// values, or a rule missing its required fields.
    pub fn parse(text: &str) -> Result<SloConfig, SloError> {
        let mut config = SloConfig::default();
        let mut pending: Option<PendingRule> = None;
        for (index, raw) in text.lines().enumerate() {
            let line_no = index + 1;
            let line = strip_comment(raw).trim();
            if line.is_empty() {
                continue;
            }
            if let Some(header) = line.strip_prefix('[') {
                let header = header.strip_suffix(']').ok_or_else(|| SloError {
                    line: line_no,
                    message: format!("unterminated section header `{raw}`"),
                })?;
                finish_rule(&mut pending, &mut config)?;
                let name = header.trim().strip_prefix("rule.").ok_or_else(|| SloError {
                    line: line_no,
                    message: format!("unknown section `[{}]` (expected [rule.<name>])", header.trim()),
                })?;
                if name.is_empty() || !name.chars().all(is_rule_name_char) {
                    return Err(SloError {
                        line: line_no,
                        message: format!(
                            "bad rule name `{name}` (letters, digits, `-`, `_`, `.` only)"
                        ),
                    });
                }
                pending = Some(PendingRule {
                    name: name.to_owned(),
                    line: line_no,
                    ..PendingRule::default()
                });
                continue;
            }
            let (key, value) = line.split_once('=').ok_or_else(|| SloError {
                line: line_no,
                message: format!("expected `key = value`, got `{raw}`"),
            })?;
            let Some(rule) = pending.as_mut() else {
                return Err(SloError {
                    line: line_no,
                    message: format!("key `{}` outside any [rule.<name>] section", key.trim()),
                });
            };
            let value = value.trim();
            match key.trim() {
                "series" => rule.series = Some(parse_string(value, line_no)?),
                "kind" => rule.kind = Some(parse_string(value, line_no)?),
                "max" => rule.max = Some(parse_number(value, line_no)?),
                "clear" => rule.clear = Some(parse_number(value, line_no)?),
                "rate_max" => rule.rate_max = Some(parse_number(value, line_no)?),
                "long_ms" => rule.long_ms = Some(parse_millis(value, line_no)?),
                "short_ms" => rule.short_ms = Some(parse_millis(value, line_no)?),
                other => {
                    return Err(SloError {
                        line: line_no,
                        message: format!("unknown key `{other}`"),
                    })
                }
            }
        }
        finish_rule(&mut pending, &mut config)?;
        Ok(config)
    }

    /// Reads and parses `path`.
    ///
    /// # Errors
    ///
    /// I/O failures carry the path; parse failures surface as
    /// [`std::io::ErrorKind::InvalidData`] with the [`SloError`]
    /// message.
    pub fn load(path: &Path) -> std::io::Result<SloConfig> {
        let text = std::fs::read_to_string(path).map_err(|e| {
            std::io::Error::new(e.kind(), format!("{}: {e}", path.display()))
        })?;
        SloConfig::parse(&text).map_err(|e| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("{}: {e}", path.display()),
            )
        })
    }
}

fn is_rule_name_char(c: char) -> bool {
    c.is_ascii_alphanumeric() || matches!(c, '-' | '_' | '.')
}

fn finish_rule(
    pending: &mut Option<PendingRule>,
    config: &mut SloConfig,
) -> Result<(), SloError> {
    let Some(rule) = pending.take() else {
        return Ok(());
    };
    let err = |message: String| SloError {
        line: rule.line,
        message,
    };
    let series = rule
        .series
        .clone()
        .filter(|s| !s.is_empty())
        .ok_or_else(|| err(format!("[rule.{}] needs `series = \"…\"`", rule.name)))?;
    let kind = match rule.kind.as_deref() {
        Some("static") => {
            let max = rule.max.ok_or_else(|| {
                err(format!("[rule.{}] kind `static` needs `max = <number>`", rule.name))
            })?;
            let clear = rule.clear.unwrap_or(max);
            if clear > max {
                return Err(err(format!(
                    "[rule.{}] `clear` ({clear}) must not exceed `max` ({max})",
                    rule.name
                )));
            }
            if rule.rate_max.is_some() || rule.long_ms.is_some() || rule.short_ms.is_some() {
                return Err(err(format!(
                    "[rule.{}] kind `static` takes only `max`/`clear`",
                    rule.name
                )));
            }
            RuleKind::Static { max, clear }
        }
        Some("burn_rate") => {
            let rate_max = rule.rate_max.ok_or_else(|| {
                err(format!(
                    "[rule.{}] kind `burn_rate` needs `rate_max = <number>`",
                    rule.name
                ))
            })?;
            let long_ms = rule.long_ms.ok_or_else(|| {
                err(format!("[rule.{}] kind `burn_rate` needs `long_ms`", rule.name))
            })?;
            let short_ms = rule.short_ms.ok_or_else(|| {
                err(format!("[rule.{}] kind `burn_rate` needs `short_ms`", rule.name))
            })?;
            if short_ms == 0 || long_ms < short_ms {
                return Err(err(format!(
                    "[rule.{}] needs `long_ms >= short_ms > 0` (got {long_ms}/{short_ms})",
                    rule.name
                )));
            }
            if rule.max.is_some() || rule.clear.is_some() {
                return Err(err(format!(
                    "[rule.{}] kind `burn_rate` takes only `rate_max`/`long_ms`/`short_ms`",
                    rule.name
                )));
            }
            RuleKind::BurnRate {
                rate_max,
                long_ms,
                short_ms,
            }
        }
        Some(other) => {
            return Err(err(format!(
                "[rule.{}] unknown kind `{other}` (expected static|burn_rate)",
                rule.name
            )))
        }
        None => {
            return Err(err(format!(
                "[rule.{}] needs `kind = \"static\"|\"burn_rate\"`",
                rule.name
            )))
        }
    };
    config.rules.push(SloRule {
        name: rule.name,
        series,
        kind,
    });
    Ok(())
}

/// Strips a `#` comment, respecting double-quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_string = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_string = !in_string,
            '#' if !in_string => return &line[..i],
            _ => {}
        }
    }
    line
}

fn parse_string(value: &str, line: usize) -> Result<String, SloError> {
    value
        .strip_prefix('"')
        .and_then(|v| v.strip_suffix('"'))
        .map(str::to_owned)
        .ok_or_else(|| SloError {
            line,
            message: format!("expected a double-quoted string, got `{value}`"),
        })
}

fn parse_number(value: &str, line: usize) -> Result<f64, SloError> {
    value
        .parse::<f64>()
        .ok()
        .filter(|v| v.is_finite())
        .ok_or_else(|| SloError {
            line,
            message: format!("`{value}` is not a finite number"),
        })
}

fn parse_millis(value: &str, line: usize) -> Result<u64, SloError> {
    value.parse::<u64>().map_err(|_| SloError {
        line,
        message: format!("`{value}` is not a millisecond count"),
    })
}

/// One firing or resolving edge in a rule's lifetime.
#[derive(Clone, Debug, PartialEq)]
pub struct AlertTransition {
    /// Rule name.
    pub rule: String,
    /// Series the rule watches.
    pub series: String,
    /// `true` for a fire edge, `false` for a resolve edge.
    pub firing: bool,
    /// The observed value that crossed the threshold (latest sample
    /// for static rules, short-window rate for burn-rate rules).
    pub value: f64,
    /// The threshold it crossed.
    pub threshold: f64,
    /// Monotonic offset from the obs epoch, nanoseconds.
    pub at_ns: u64,
}

impl AlertTransition {
    /// The transition as one `{"type":"alert"}` NDJSON record.
    #[must_use]
    pub fn ndjson_line(&self) -> String {
        format!(
            "{{\"type\":\"alert\",\"rule\":{},\"series\":{},\"state\":{},\"value\":{},\"threshold\":{},\"at_ns\":{}}}",
            crate::export::escape(&self.rule),
            crate::export::escape(&self.series),
            if self.firing { "\"firing\"" } else { "\"resolved\"" },
            fmt_num(self.value),
            fmt_num(self.threshold),
            self.at_ns,
        )
    }
}

/// The live state of one rule, for `/alerts.json` and the
/// `scanbist_alert_active` gauges.
#[derive(Clone, Debug, PartialEq)]
pub struct AlertStatus {
    /// Rule name.
    pub rule: String,
    /// Series the rule watches.
    pub series: String,
    /// Currently firing?
    pub firing: bool,
    /// Last evaluated value (0 before the first evaluation with data).
    pub value: f64,
    /// The fire threshold.
    pub threshold: f64,
    /// Epoch offset of the last state change (0 if never changed).
    pub since_ns: u64,
}

/// Formats an `f64` for JSON: integral values print without a
/// fractional part so counter-derived numbers stay bit-exact.
#[must_use]
pub(crate) fn fmt_num(v: f64) -> String {
    if !v.is_finite() {
        return "0".to_owned();
    }
    #[allow(clippy::cast_possible_truncation)]
    if v.fract() == 0.0 && v.abs() < 9_007_199_254_740_992.0 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

/// Per-rule evaluation state.
struct RuleState {
    firing: bool,
    value: f64,
    since_ns: u64,
}

/// The rule evaluator: state machine over a fixed rule list. The
/// process-global instance lives behind [`install`]; tests drive a
/// local one directly.
pub struct Evaluator {
    rules: Vec<SloRule>,
    states: Vec<RuleState>,
}

impl Evaluator {
    /// An evaluator with every rule initially resolved.
    #[must_use]
    pub fn new(config: SloConfig) -> Evaluator {
        let states = config
            .rules
            .iter()
            .map(|_| RuleState {
                firing: false,
                value: 0.0,
                since_ns: 0,
            })
            .collect();
        Evaluator {
            rules: config.rules,
            states,
        }
    }

    /// Evaluates every rule against `store` at epoch offset `now_ns`,
    /// returning the transitions (fire/resolve edges) this tick
    /// produced. Rules whose series has no samples yet are skipped.
    pub fn evaluate(&mut self, store: &TimeSeriesStore, now_ns: u64) -> Vec<AlertTransition> {
        let series = store.series();
        let mut transitions = Vec::new();
        for (rule, state) in self.rules.iter().zip(self.states.iter_mut()) {
            let Some(samples) = series.get(&rule.series).filter(|s| !s.is_empty()) else {
                continue;
            };
            let (value, threshold, next) = decide(&rule.kind, samples, state.firing);
            state.value = value;
            if next != state.firing {
                state.firing = next;
                state.since_ns = now_ns;
                transitions.push(AlertTransition {
                    rule: rule.name.clone(),
                    series: rule.series.clone(),
                    firing: next,
                    value,
                    threshold,
                    at_ns: now_ns,
                });
            }
        }
        transitions
    }

    /// The live status of every rule.
    #[must_use]
    pub fn statuses(&self) -> Vec<AlertStatus> {
        self.rules
            .iter()
            .zip(self.states.iter())
            .map(|(rule, state)| AlertStatus {
                rule: rule.name.clone(),
                series: rule.series.clone(),
                firing: state.firing,
                value: state.value,
                threshold: match rule.kind {
                    RuleKind::Static { max, .. } => max,
                    RuleKind::BurnRate { rate_max, .. } => rate_max,
                },
                since_ns: state.since_ns,
            })
            .collect()
    }
}

/// One rule decision: (observed value, crossed threshold, next firing
/// state).
fn decide(kind: &RuleKind, samples: &[Sample], firing: bool) -> (f64, f64, bool) {
    match *kind {
        RuleKind::Static { max, clear } => {
            let value = samples.last().map_or(0.0, |&(_, v)| v as f64);
            let next = if firing { value > clear } else { value > max };
            (value, if firing { clear } else { max }, next)
        }
        RuleKind::BurnRate {
            rate_max,
            long_ms,
            short_ms,
        } => {
            let long = windowed_rate(samples, long_ms.saturating_mul(1_000_000));
            let short = windowed_rate(samples, short_ms.saturating_mul(1_000_000));
            let next = if firing {
                short > rate_max
            } else {
                long > rate_max && short > rate_max
            };
            (short, rate_max, next)
        }
    }
}

// ---- the process-wide active evaluator (installed by
// ---- `start_telemetry` when the config names an slo.toml, driven by
// ---- the sampler tick) ----

struct Active {
    evaluator: Evaluator,
    history: Vec<AlertTransition>,
}

static ACTIVE: Mutex<Option<Active>> = Mutex::new(None);

fn lock_active() -> std::sync::MutexGuard<'static, Option<Active>> {
    ACTIVE
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Installs `config` as the process-wide rule set, with every rule
/// initially resolved and an empty transition history.
pub fn install(config: SloConfig) {
    *lock_active() = Some(Active {
        evaluator: Evaluator::new(config),
        history: Vec::new(),
    });
}

/// True if a rule set is installed.
#[must_use]
pub fn is_installed() -> bool {
    lock_active().is_some()
}

/// Uninstalls the rule set and history. Called by [`crate::reset`].
pub fn clear() {
    *lock_active() = None;
}

/// One sampler tick: evaluates the installed rules (no-op otherwise),
/// records transitions in the session history, and forwards them to
/// the flight recorder.
pub fn evaluate_tick(store: &TimeSeriesStore, now_ns: u64) {
    let transitions = {
        let mut guard = lock_active();
        let Some(active) = guard.as_mut() else {
            return;
        };
        let transitions = active.evaluator.evaluate(store, now_ns);
        active.history.extend(transitions.iter().cloned());
        transitions
    };
    for t in &transitions {
        crate::recorder::record_alert(t);
    }
}

/// The live status of every installed rule (empty when none).
#[must_use]
pub fn active_alerts() -> Vec<AlertStatus> {
    lock_active()
        .as_ref()
        .map(|a| a.evaluator.statuses())
        .unwrap_or_default()
}

/// Every transition recorded this session, in order.
#[must_use]
pub fn transitions() -> Vec<AlertTransition> {
    lock_active()
        .as_ref()
        .map(|a| a.history.clone())
        .unwrap_or_default()
}

/// The session's alert transitions as `{"type":"alert"}` NDJSON lines
/// (empty string when there are none), for the session exporter.
#[must_use]
pub fn ndjson_lines() -> String {
    let mut out = String::new();
    for t in transitions() {
        out.push_str(&t.ndjson_line());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Snapshot;

    fn store_with(samples: &[(u64, u64)]) -> TimeSeriesStore {
        let store = TimeSeriesStore::new(64);
        let mut snap = Snapshot::default();
        for &(t, v) in samples {
            snap.counters.insert("robust.retries".into(), v);
            store.sample(&snap, t);
        }
        store
    }

    #[test]
    fn parses_both_rule_kinds() {
        let config = SloConfig::parse(
            r#"
# session budgets
[rule.p99-latency]
series = "diagnose#p99"   # derived quantile series
kind = "static"
max = 50000000
clear = 40000000

[rule.retry-burn]
series = "robust.retries"
kind = "burn_rate"
rate_max = 5.5
long_ms = 2000
short_ms = 250
"#,
        )
        .unwrap();
        assert_eq!(config.rules.len(), 2);
        assert_eq!(config.rules[0].name, "p99-latency");
        assert_eq!(
            config.rules[0].kind,
            RuleKind::Static {
                max: 50_000_000.0,
                clear: 40_000_000.0
            }
        );
        assert_eq!(
            config.rules[1].kind,
            RuleKind::BurnRate {
                rate_max: 5.5,
                long_ms: 2000,
                short_ms: 250
            }
        );
    }

    #[test]
    fn rejects_malformed_configs() {
        assert!(SloConfig::parse("[slo]\n").is_err());
        assert!(SloConfig::parse("series = \"x\"\n").is_err());
        assert!(SloConfig::parse("[rule.a]\nkind = \"static\"\nmax = 1\n").is_err()); // no series
        assert!(SloConfig::parse("[rule.a]\nseries = \"x\"\nmax = 1\n").is_err()); // no kind
        assert!(SloConfig::parse("[rule.a]\nseries = \"x\"\nkind = \"static\"\n").is_err());
        assert!(
            SloConfig::parse("[rule.a]\nseries = \"x\"\nkind = \"static\"\nmax = 1\nclear = 2\n")
                .is_err(),
            "clear above max must be rejected"
        );
        assert!(SloConfig::parse(
            "[rule.a]\nseries = \"x\"\nkind = \"burn_rate\"\nrate_max = 1\nlong_ms = 10\nshort_ms = 20\n"
        )
        .is_err());
        assert!(SloConfig::parse("[rule.a]\nseries = \"x\"\nkind = \"psychic\"\n").is_err());
        assert!(SloConfig::parse("[rule.a]\nseries = \"x\"\nbogus = 1\n").is_err());
        assert!(SloConfig::parse("[rule.bad name]\n").is_err());
    }

    #[test]
    fn static_rule_fires_once_and_resolves_once_on_boundary_rider() {
        // Hysteresis: max 100, clear 90. The series rides the fire
        // boundary (101, 99, 101, 95) after breaching — with the clear
        // band it must NOT flap: one fire edge, then one resolve edge
        // when it finally drops to 90 or below.
        let config = SloConfig::parse(
            "[rule.ride]\nseries = \"robust.retries\"\nkind = \"static\"\nmax = 100\nclear = 90\n",
        )
        .unwrap();
        let mut eval = Evaluator::new(config);
        let values = [50u64, 120, 101, 99, 101, 95, 91, 80, 85, 70];
        let mut edges = Vec::new();
        let store = TimeSeriesStore::new(64);
        let mut snap = Snapshot::default();
        for (i, &v) in values.iter().enumerate() {
            let t = (i as u64 + 1) * 1_000_000;
            snap.counters.insert("robust.retries".into(), v);
            store.sample(&snap, t);
            edges.extend(eval.evaluate(&store, t));
        }
        assert_eq!(edges.len(), 2, "exactly one fire + one resolve: {edges:?}");
        assert!(edges[0].firing && edges[0].value > 100.0);
        assert!(!edges[1].firing && edges[1].value <= 90.0);
        #[allow(clippy::float_cmp)] // the sample value is copied verbatim
        {
            assert_eq!(edges[1].value, 80.0);
        }
        let status = &eval.statuses()[0];
        assert!(!status.firing);
        assert_eq!(status.since_ns, edges[1].at_ns);
    }

    #[test]
    fn burn_rate_needs_both_windows_hot() {
        let config = SloConfig::parse(
            "[rule.burn]\nseries = \"robust.retries\"\nkind = \"burn_rate\"\n\
             rate_max = 100\nlong_ms = 1000\nshort_ms = 200\n",
        )
        .unwrap();
        let mut eval = Evaluator::new(config);
        // 50ms cadence; counter climbing 1/tick (20/s) stays quiet.
        let mut samples: Vec<(u64, u64)> = (0..20).map(|i| (i * 50_000_000, i)).collect();
        let store = store_with(&samples);
        assert!(eval.evaluate(&store, 1_000_000_000).is_empty());
        // A short spike alone (one hot short window, cold long window)
        // must not fire.
        samples.push((1_000_000_000, 19 + 30));
        let store = store_with(&samples);
        let edges = eval.evaluate(&store, 1_000_000_000);
        assert!(edges.is_empty(), "short-only spike fired: {edges:?}");
        // Sustained burn: climb 50/tick for a full second → both
        // windows exceed 100/s → fire; then flatline → resolve.
        let mut v = 49u64;
        for i in 1..=20u64 {
            v += 50;
            samples.push((1_000_000_000 + i * 50_000_000, v));
        }
        let store = store_with(&samples);
        let edges = eval.evaluate(&store, 2_000_000_000);
        assert_eq!(edges.len(), 1, "{edges:?}");
        assert!(edges[0].firing);
        for i in 1..=10u64 {
            samples.push((2_000_000_000 + i * 50_000_000, v));
        }
        let store = store_with(&samples);
        let edges = eval.evaluate(&store, 2_500_000_000);
        assert_eq!(edges.len(), 1, "{edges:?}");
        assert!(!edges[0].firing);
    }

    #[test]
    fn transition_ndjson_is_well_formed() {
        let t = AlertTransition {
            rule: "p99".into(),
            series: "diagnose#p99".into(),
            firing: true,
            value: 123.0,
            threshold: 100.5,
            at_ns: 42,
        };
        let line = t.ndjson_line();
        let value = crate::json::parse(&line).unwrap();
        assert_eq!(value.get("type").and_then(crate::json::Value::as_str), Some("alert"));
        assert_eq!(value.get("rule").and_then(crate::json::Value::as_str), Some("p99"));
        assert_eq!(value.get("state").and_then(crate::json::Value::as_str), Some("firing"));
        assert_eq!(value.get("value").and_then(crate::json::Value::as_f64), Some(123.0));
        assert_eq!(value.get("threshold").and_then(crate::json::Value::as_f64), Some(100.5));
        assert_eq!(line, line.trim(), "single line");
    }

    #[test]
    fn fmt_num_keeps_integers_exact() {
        assert_eq!(fmt_num(123.0), "123");
        assert_eq!(fmt_num(0.0), "0");
        assert_eq!(fmt_num(1.5), "1.5");
        assert_eq!(fmt_num(f64::NAN), "0");
        assert_eq!(fmt_num(4_294_967_296.0), "4294967296");
    }
}
