//! The black-box flight recorder: a bounded in-memory ring of recent
//! telemetry, dumped to disk on panic or error.
//!
//! A crashed campaign or worker subprocess normally leaves nothing —
//! [`crate::finish`] never runs, so the trace file is never written
//! and the operator reconstructs the failure from stderr scraps. When
//! a session enables the recorder (`--flight-recorder <path>`), the
//! observability layer keeps the most recent activity in a
//! fixed-capacity ring: span closes (hooked straight off the registry
//! pop), per-counter deltas between sampler ticks, the tick markers
//! themselves, and SLO alert transitions ([`crate::slo`]). The ring
//! bounds memory for arbitrarily long campaigns; old events fall off
//! the back.
//!
//! Two paths write the black box:
//!
//! * a **panic hook** (installed by [`crate::start_telemetry`],
//!   chaining the previous hook) dumps on any panic, so even an
//!   aborting worker leaves a post-mortem artifact;
//! * an explicit [`dump_on_error`] call on a non-panicking error exit.
//!
//! A dump is two files: a versioned NDJSON stream at the configured
//! path — a `{"type":"flight"}` header, the ring events (`span`,
//! `delta`, `tick`, `alert` records, all validated by `obs-check`), and
//! the session's `context` record, every line trace-stamped so the dump
//! joins the parent trace under `obs-check --join` — plus a
//! human-readable `.txt` twin with the trace identity and the self-time
//! hot-spot table for at-a-glance triage.
//!
//! Everything here is lock-poison-tolerant and panic-free on the
//! recording path (lint L010): a flight recorder that can take the
//! host process down is worse than none.

use std::collections::{BTreeMap, VecDeque};
use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

use crate::export::escape;
use crate::registry::Snapshot;
use crate::slo::AlertTransition;

/// Version stamped into the dump header; bump on breaking layout
/// changes.
pub const FLIGHT_VERSION: u64 = 1;

/// Default ring capacity (events) when the config leaves it zero.
pub const DEFAULT_CAPACITY: usize = 512;

/// One ring entry.
#[derive(Clone, Debug, PartialEq)]
enum Event {
    /// A completed span, straight from the registry pop.
    SpanClose {
        path: String,
        thread: u32,
        start_ns: u64,
        end_ns: u64,
    },
    /// A counter moved between two sampler ticks.
    Delta {
        name: String,
        delta: u64,
        total: u64,
        at_ns: u64,
    },
    /// One sampler tick: how many counters/series the snapshot held.
    Tick {
        at_ns: u64,
        counters: usize,
        histograms: usize,
    },
    /// An SLO alert fired or resolved.
    Alert(AlertTransition),
}

impl Event {
    fn ndjson_line(&self) -> String {
        match self {
            Event::SpanClose {
                path,
                thread,
                start_ns,
                end_ns,
            } => format!(
                "{{\"type\":\"span\",\"path\":{},\"thread\":{thread},\"start_ns\":{start_ns},\"end_ns\":{end_ns},\"dur_ns\":{}}}",
                escape(path),
                end_ns.saturating_sub(*start_ns)
            ),
            Event::Delta {
                name,
                delta,
                total,
                at_ns,
            } => format!(
                "{{\"type\":\"delta\",\"name\":{},\"delta\":{delta},\"total\":{total},\"at_ns\":{at_ns}}}",
                escape(name)
            ),
            Event::Tick {
                at_ns,
                counters,
                histograms,
            } => format!(
                "{{\"type\":\"tick\",\"at_ns\":{at_ns},\"counters\":{counters},\"histograms\":{histograms}}}"
            ),
            Event::Alert(t) => t.ndjson_line(),
        }
    }
}

struct Recorder {
    path: PathBuf,
    capacity: usize,
    ring: VecDeque<Event>,
    /// Counter totals at the previous tick, for delta extraction.
    last_totals: BTreeMap<String, u64>,
    /// Set once a dump has been written, so a panic during `finish`
    /// after an explicit dump does not overwrite the first artifact.
    dumped: bool,
}

impl Recorder {
    fn push(&mut self, event: Event) {
        if self.ring.len() == self.capacity {
            self.ring.pop_front();
        }
        self.ring.push_back(event);
    }
}

static ACTIVE: Mutex<Option<Recorder>> = Mutex::new(None);

/// Relaxed fast-path gate for the registry span hook: true only while
/// a recorder is installed.
static SPAN_HOOK: AtomicBool = AtomicBool::new(false);

/// One-time panic-hook registration (the hook itself checks
/// [`ACTIVE`], so it is inert once the recorder is cleared).
static PANIC_HOOK: std::sync::Once = std::sync::Once::new();

fn lock_active() -> std::sync::MutexGuard<'static, Option<Recorder>> {
    ACTIVE
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Installs the flight recorder: events start accumulating in a ring
/// of `capacity` entries (0 selects [`DEFAULT_CAPACITY`]) and a panic
/// anywhere in the process dumps the black box to `path` (plus a
/// `.txt` human summary next to it). Idempotent per session; a second
/// install replaces the ring.
pub fn install(path: &Path, capacity: usize) {
    *lock_active() = Some(Recorder {
        path: path.to_path_buf(),
        capacity: if capacity == 0 {
            DEFAULT_CAPACITY
        } else {
            capacity.max(2)
        },
        ring: VecDeque::new(),
        last_totals: BTreeMap::new(),
        dumped: false,
    });
    SPAN_HOOK.store(true, Ordering::Relaxed);
    PANIC_HOOK.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            match dump("panic") {
                Ok(Some(path)) => {
                    eprintln!("obs: flight recorder dumped to {}", path.display());
                }
                Ok(None) => {}
                Err(err) => eprintln!("obs: flight recorder dump failed: {err}"),
            }
            previous(info);
        }));
    });
}

/// True while a recorder is installed (drives `--flight-recorder`
/// forwarding to worker subprocesses).
#[must_use]
pub fn is_installed() -> bool {
    lock_active().is_some()
}

/// Uninstalls the recorder and drops its ring. Called by
/// [`crate::reset`].
pub fn clear() {
    SPAN_HOOK.store(false, Ordering::Relaxed);
    *lock_active() = None;
}

/// The registry span hook's fast-path gate: a single relaxed load.
#[inline]
#[must_use]
pub(crate) fn span_hook_enabled() -> bool {
    SPAN_HOOK.load(Ordering::Relaxed)
}

/// Records one completed span (called from the registry pop under the
/// [`span_hook_enabled`] gate).
pub(crate) fn record_span_close(path: &str, thread: u32, start_ns: u64, end_ns: u64) {
    if let Some(recorder) = lock_active().as_mut() {
        recorder.push(Event::SpanClose {
            path: path.to_owned(),
            thread,
            start_ns,
            end_ns,
        });
    }
}

/// Records one sampler tick: a tick marker plus one delta event per
/// counter that moved since the previous tick. No-op when no recorder
/// is installed.
pub fn record_tick(snapshot: &Snapshot, at_ns: u64) {
    if let Some(recorder) = lock_active().as_mut() {
        let mut deltas = Vec::new();
        for (name, &total) in &snapshot.counters {
            let last = recorder.last_totals.get(name).copied().unwrap_or(0);
            if total != last {
                deltas.push(Event::Delta {
                    name: name.clone(),
                    delta: total.saturating_sub(last),
                    total,
                    at_ns,
                });
            }
        }
        recorder.last_totals = snapshot.counters.clone();
        recorder.push(Event::Tick {
            at_ns,
            counters: snapshot.counters.len(),
            histograms: snapshot.histograms.len(),
        });
        for delta in deltas {
            recorder.push(delta);
        }
    }
}

/// Records an SLO alert transition (called by [`crate::slo`]'s tick).
pub fn record_alert(transition: &AlertTransition) {
    if let Some(recorder) = lock_active().as_mut() {
        recorder.push(Event::Alert(transition.clone()));
    }
}

/// Dumps the black box after a non-panicking error exit: the NDJSON
/// stream plus the `.txt` summary, with `"reason":"error"`. No-op
/// (returning `Ok(None)`) when no recorder is installed or a dump was
/// already written.
///
/// # Errors
///
/// Propagates I/O failures from writing the dump files.
pub fn dump_on_error() -> std::io::Result<Option<PathBuf>> {
    dump("error")
}

/// Writes the dump if a recorder is installed and has not dumped yet.
/// Returns the NDJSON path on a write.
fn dump(reason: &str) -> std::io::Result<Option<PathBuf>> {
    // Collect everything needed under the recorder lock, then release
    // it before touching the registry/context/filesystem so a panic
    // inside a recording callsite cannot deadlock the hook.
    let collected = {
        let mut guard = lock_active();
        match guard.as_mut() {
            Some(recorder) if !recorder.dumped => {
                recorder.dumped = true;
                Some((
                    recorder.path.clone(),
                    recorder.ring.iter().map(Event::ndjson_line).collect::<Vec<_>>(),
                    recorder.ring.len(),
                ))
            }
            _ => None,
        }
    };
    let Some((path, lines, events)) = collected else {
        return Ok(None);
    };
    let context = crate::context::current();
    let at_ns = crate::registry::epoch_elapsed_ns();
    let process = context
        .as_ref()
        .map_or_else(|| "unknown".to_owned(), |c| c.process.clone());

    let mut out = String::new();
    let _ = writeln!(
        out,
        "{{\"type\":\"flight\",\"version\":{FLIGHT_VERSION},\"reason\":{},\"process\":{},\"at_ns\":{at_ns},\"events\":{events}}}",
        escape(reason),
        escape(&process)
    );
    for line in lines {
        out.push_str(&line);
        out.push('\n');
    }
    if let Some(ctx) = &context {
        out.push_str(&crate::export::context_line(ctx));
        out.push('\n');
        out = crate::export::stamp_ndjson(&out, &ctx.trace_id);
    }
    crate::export::write_file(&path, &out)?;
    crate::export::write_file(&path.with_extension("txt"), &summary(reason, at_ns, context.as_ref()))?;
    Ok(Some(path))
}

/// The human-readable dump twin: identity, reason, and the self-time
/// hot-spot table from whatever the registry holds at dump time.
fn summary(reason: &str, at_ns: u64, context: Option<&crate::TraceContext>) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "scanbist flight recorder dump (v{FLIGHT_VERSION})");
    let _ = writeln!(out, "reason:  {reason}");
    let _ = writeln!(out, "at_ns:   {at_ns} (offset from obs epoch)");
    match context {
        Some(ctx) => {
            let _ = writeln!(out, "process: {}", ctx.process);
            let _ = writeln!(out, "trace:   {}", ctx.trace_id);
            let _ = writeln!(
                out,
                "parent:  {}",
                ctx.parent_span.as_deref().unwrap_or("(root)")
            );
        }
        None => {
            let _ = writeln!(out, "process: (no trace context installed)");
        }
    }
    out.push('\n');
    let snapshot = crate::registry::snapshot();
    out.push_str(&crate::Profile::from_snapshot(&snapshot).hotspot_table());
    out
}

// An active-alert table piggybacked onto the summary is deliberately
// absent: the NDJSON stream already carries every transition, and the
// summary stays independent of the SLO lock (lock-order safety in the
// panic hook).

#[cfg(test)]
mod tests {
    use super::*;

    // The recorder is process-global; serialize the tests that own it.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    fn transition() -> AlertTransition {
        AlertTransition {
            rule: "r".into(),
            series: "s".into(),
            firing: true,
            value: 1.0,
            threshold: 2.0,
            at_ns: 3,
        }
    }

    #[test]
    fn ring_is_bounded_and_dumps_versioned_ndjson() {
        let _guard = TEST_LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        let dir = std::env::temp_dir().join(format!("obs-recorder-{}", std::process::id()));
        let path = dir.join("flight.ndjson");
        install(&path, 4);
        assert!(is_installed());
        for i in 0..10u64 {
            record_span_close("a/b", 0, i, i + 1);
        }
        let mut snap = Snapshot::default();
        snap.counters.insert("work.items".into(), 7);
        record_tick(&snap, 99);
        record_alert(&transition());
        let written = dump("error").expect("dump").expect("recorder installed");
        assert_eq!(written, path);
        // A second dump attempt is a no-op.
        assert!(dump("error").expect("dump").is_none());
        let text = std::fs::read_to_string(&path).expect("read dump");
        let mut lines = text.lines();
        let header = crate::json::parse(lines.next().expect("header")).expect("header json");
        assert_eq!(
            header.get("type").and_then(crate::json::Value::as_str),
            Some("flight")
        );
        assert_eq!(
            header.get("version").and_then(crate::json::Value::as_f64),
            Some(1.0)
        );
        assert_eq!(
            header.get("reason").and_then(crate::json::Value::as_str),
            Some("error")
        );
        // Ring capacity 4: the 10 span closes were evicted down to the
        // final mix; every line parses and the types are the black-box
        // set.
        let mut types = Vec::new();
        for line in text.lines().skip(1) {
            let value = crate::json::parse(line).expect("event json");
            types.push(
                value
                    .get("type")
                    .and_then(crate::json::Value::as_str)
                    .expect("typed")
                    .to_owned(),
            );
        }
        assert!(types.len() <= 4 + 1, "{types:?}"); // ring + optional context
        assert!(types.contains(&"alert".to_owned()), "{types:?}");
        assert!(types.contains(&"tick".to_owned()), "{types:?}");
        let summary = std::fs::read_to_string(path.with_extension("txt")).expect("summary");
        assert!(summary.contains("flight recorder dump"), "{summary}");
        assert!(summary.contains("reason:  error"), "{summary}");
        clear();
        assert!(!is_installed() && !span_hook_enabled());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn tick_extracts_counter_deltas() {
        let _guard = TEST_LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        let dir = std::env::temp_dir().join(format!("obs-recorder-d-{}", std::process::id()));
        let path = dir.join("flight.ndjson");
        install(&path, 32);
        let mut snap = Snapshot::default();
        snap.counters.insert("c".into(), 5);
        record_tick(&snap, 10);
        snap.counters.insert("c".into(), 12);
        record_tick(&snap, 20);
        record_tick(&snap, 30); // unchanged: no delta event
        let lines: Vec<String> = {
            let guard = lock_active();
            let recorder = guard.as_ref().expect("installed");
            recorder.ring.iter().map(Event::ndjson_line).collect()
        };
        let deltas: Vec<&String> = lines.iter().filter(|l| l.contains("\"delta\"")).collect();
        assert_eq!(deltas.len(), 2, "{lines:?}");
        assert!(deltas[0].contains("\"delta\":5") && deltas[0].contains("\"total\":5"));
        assert!(deltas[1].contains("\"delta\":7") && deltas[1].contains("\"total\":12"));
        clear();
        let _ = std::fs::remove_dir_all(&dir);
    }
}
