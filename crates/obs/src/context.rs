//! Cross-process trace correlation.
//!
//! A campaign that fans out over the `all_experiments` subprocess pool
//! produces one NDJSON stream per process. To join them back into a
//! single logical trace, every session carries a [`TraceContext`]:
//! a process-wide `trace_id` shared by the whole tree, an optional
//! `parent_span` naming the span in the parent process under which
//! this process was launched, and the process's own name.
//!
//! Propagation is by environment variable: a parent exports
//! [`TRACE_ID_ENV`] and [`PARENT_SPAN_ENV`] (see
//! [`TraceContext::child_env`]) before spawning a worker; the worker
//! adopts them in [`init_from_env`]. The exporters stamp the installed
//! context into every NDJSON record (a `"trace"` member on each line
//! plus one `"type":"context"` record per stream), and `obs-check
//! --join` verifies that a set of per-process streams forms one tree
//! with no orphan processes.
//!
//! Trace ids are 16 lowercase hex digits mixed from the process id and
//! the wall clock through `SplitMix64`. They are identifiers, not
//! randomness that results depend on — lint L002 (no ambient RNG in
//! deterministic crates) does not apply to `crates/obs`, and no
//! simulation output ever observes a trace id.

use std::sync::Mutex;

/// Environment variable carrying the shared trace id to child
/// processes: 16 lowercase hex digits.
pub const TRACE_ID_ENV: &str = "SCANBIST_TRACE_ID";

/// Environment variable naming the parent-process span under which a
/// child session hangs, e.g. `all_experiments/experiment[table1]`.
pub const PARENT_SPAN_ENV: &str = "SCANBIST_PARENT_SPAN";

/// The trace-correlation identity of one observability session.
#[derive(Clone, Debug, Eq, PartialEq)]
pub struct TraceContext {
    /// Trace id shared by every process in the tree (16 hex digits).
    pub trace_id: String,
    /// Span path in the *parent* process this session hangs under;
    /// `None` for the root process of the tree.
    pub parent_span: Option<String>,
    /// Name of this process (binary or session name).
    pub process: String,
}

impl TraceContext {
    /// A fresh root context (new trace id, no parent) for `process`.
    #[must_use]
    pub fn new_root(process: &str) -> Self {
        TraceContext {
            trace_id: generate_trace_id(),
            parent_span: None,
            process: process.to_owned(),
        }
    }

    /// Builds the context for `process` from [`TRACE_ID_ENV`] /
    /// [`PARENT_SPAN_ENV`] when set (a parent launched us), or a fresh
    /// root context otherwise.
    #[must_use]
    pub fn from_env(process: &str) -> Self {
        match std::env::var(TRACE_ID_ENV) {
            Ok(id) if is_valid_trace_id(&id) => TraceContext {
                trace_id: id,
                parent_span: std::env::var(PARENT_SPAN_ENV)
                    .ok()
                    .filter(|s| !s.is_empty()),
                process: process.to_owned(),
            },
            _ => TraceContext::new_root(process),
        }
    }

    /// The `(name, value)` environment pairs a parent sets on a child
    /// process so the child joins this trace under `parent_span`.
    #[must_use]
    pub fn child_env(&self, parent_span: &str) -> [(String, String); 2] {
        [
            (TRACE_ID_ENV.to_owned(), self.trace_id.clone()),
            (PARENT_SPAN_ENV.to_owned(), parent_span.to_owned()),
        ]
    }
}

/// True if `id` has the shape of a trace id: exactly 16 lowercase hex
/// digits.
#[must_use]
pub fn is_valid_trace_id(id: &str) -> bool {
    id.len() == 16 && id.bytes().all(|b| b.is_ascii_digit() || (b'a'..=b'f').contains(&b))
}

/// Generates a fresh 16-hex-digit trace id. Uniqueness, not secrecy:
/// pid and wall-clock nanoseconds mixed through `SplitMix64`.
#[must_use]
pub fn generate_trace_id() -> String {
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0, |d| u64::try_from(d.as_nanos() & u128::from(u64::MAX)).unwrap_or(0));
    let seed = nanos ^ (u64::from(std::process::id()) << 32);
    format!("{:016x}", splitmix64(seed))
}

fn splitmix64(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

static CURRENT: Mutex<Option<TraceContext>> = Mutex::new(None);

fn lock() -> std::sync::MutexGuard<'static, Option<TraceContext>> {
    CURRENT
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Installs `ctx` as the process-wide trace context; the exporters
/// stamp it into every NDJSON record from now on.
pub fn install(ctx: TraceContext) {
    *lock() = Some(ctx);
}

/// Builds the context for `process` from the environment (see
/// [`TraceContext::from_env`]) and installs it. Returns a clone of the
/// installed context. Call once at session start, alongside
/// [`crate::init`].
pub fn init_from_env(process: &str) -> TraceContext {
    let ctx = TraceContext::from_env(process);
    install(ctx.clone());
    ctx
}

/// The installed trace context, if any.
#[must_use]
pub fn current() -> Option<TraceContext> {
    lock().clone()
}

/// Uninstalls the trace context. Called by [`crate::reset`] so tests
/// leave the process-global state clean.
pub fn clear() {
    *lock() = None;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_ids_are_well_formed() {
        let id = generate_trace_id();
        assert!(is_valid_trace_id(&id), "bad trace id {id:?}");
        assert!(!is_valid_trace_id("xyz"));
        assert!(!is_valid_trace_id("ABCDEF0123456789")); // uppercase
        assert!(!is_valid_trace_id("0123456789abcde")); // short
    }

    #[test]
    fn child_env_round_trips() {
        let ctx = TraceContext::new_root("parent");
        let env = ctx.child_env("parent/worker[3]");
        assert_eq!(env[0].0, TRACE_ID_ENV);
        assert_eq!(env[0].1, ctx.trace_id);
        assert_eq!(env[1], (PARENT_SPAN_ENV.to_owned(), "parent/worker[3]".to_owned()));
    }

    #[test]
    fn install_current_clear() {
        let ctx = TraceContext::new_root("t");
        install(ctx.clone());
        assert_eq!(current(), Some(ctx));
        clear();
        // Another test may race to install its own context between our
        // clear and this read, so only assert it is not ours.
        let after = current();
        assert!(after.is_none_or(|c| c.process != "t"));
    }
}
