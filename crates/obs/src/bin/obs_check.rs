//! `obs-check` — validates observability export files.
//!
//! Usage: `obs-check <file>…` where each file is either an NDJSON
//! event stream (`.ndjson`: every line must parse as a JSON object
//! with a known `type`) or a JSON metrics snapshot (anything else:
//! must parse as one object with `counters` / `histograms` / `spans`
//! members). Exits nonzero with a message on the first failure —
//! `scripts/verify.sh` runs this against an instrumented smoke
//! campaign.

use std::process::ExitCode;

use scan_obs::json::{parse, Value};

fn check_ndjson(path: &str, text: &str) -> Result<(), String> {
    let mut spans = 0usize;
    let mut lines = 0usize;
    for (index, line) in text.lines().enumerate() {
        if line.is_empty() {
            continue;
        }
        lines += 1;
        let value =
            parse(line).map_err(|e| format!("{path}:{}: {e}", index + 1))?;
        let kind = value
            .get("type")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("{path}:{}: missing \"type\"", index + 1))?;
        match kind {
            "meta" | "counter" | "hist" => {}
            "span" => {
                let start = value.get("start_ns").and_then(Value::as_f64);
                let end = value.get("end_ns").and_then(Value::as_f64);
                let path_ok = value.get("path").and_then(Value::as_str).is_some();
                match (start, end, path_ok) {
                    (Some(s), Some(e), true) if s <= e => spans += 1,
                    _ => {
                        return Err(format!(
                            "{path}:{}: malformed span event",
                            index + 1
                        ))
                    }
                }
            }
            other => {
                return Err(format!(
                    "{path}:{}: unknown event type `{other}`",
                    index + 1
                ))
            }
        }
    }
    if lines == 0 {
        return Err(format!("{path}: empty NDJSON stream"));
    }
    eprintln!("obs-check: {path}: {lines} event(s), {spans} span(s) OK");
    Ok(())
}

fn check_metrics(path: &str, text: &str) -> Result<(), String> {
    let value = parse(text).map_err(|e| format!("{path}: {e}"))?;
    for member in ["counters", "histograms", "spans"] {
        if value.get(member).and_then(Value::as_object).is_none() {
            return Err(format!("{path}: missing object member \"{member}\""));
        }
    }
    let counters = value
        .get("counters")
        .and_then(Value::as_object)
        .map_or(0, std::collections::BTreeMap::len);
    eprintln!("obs-check: {path}: metrics snapshot OK ({counters} counter(s))");
    Ok(())
}

fn check(path: &str) -> Result<(), String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
    if path.ends_with(".ndjson") {
        check_ndjson(path, &text)
    } else {
        check_metrics(path, &text)
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        eprintln!("usage: obs-check <trace.ndjson|metrics.json>…");
        return ExitCode::from(2);
    }
    for path in &args {
        if let Err(message) = check(path) {
            eprintln!("obs-check: FAILED: {message}");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
