//! `obs-check` — validates observability export files.
//!
//! Usage: `obs-check <file>…` where each file is one of
//!
//! * an NDJSON stream (`.ndjson`): every line must parse as a JSON
//!   object with a known `type` — trace events (`meta`/`span`/
//!   `counter`/`hist`), diagnosis audit events (`fault`),
//!   fault-tolerant recovery events (`retry`/`vote`/`fallback`), and
//!   static-analysis events from `scan-lint` (`finding`/`lint`) are
//!   all accepted;
//! * a collapsed-stack profile (`.folded`, or any non-JSON text):
//!   every line must be `frame[;frame…] <count>`;
//! * a bench baseline (JSON with `suite`/`kernels` members): every
//!   kernel must carry numeric `median_ns`/`p95_ns`/`iqr_ns`;
//! * a JSON metrics snapshot (any other JSON: one object with
//!   `counters` / `histograms` / `spans` members).
//!
//! Exits nonzero with a message on the first failure —
//! `scripts/verify.sh` runs this against an instrumented smoke
//! campaign and a quick-mode bench run.

use std::process::ExitCode;

use scan_obs::json::{parse, Value};

fn check_ndjson(path: &str, text: &str) -> Result<(), String> {
    let mut spans = 0usize;
    let mut faults = 0usize;
    let mut recoveries = 0usize;
    let mut findings = 0usize;
    let mut lines = 0usize;
    for (index, line) in text.lines().enumerate() {
        if line.is_empty() {
            continue;
        }
        lines += 1;
        let value =
            parse(line).map_err(|e| format!("{path}:{}: {e}", index + 1))?;
        let kind = value
            .get("type")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("{path}:{}: missing \"type\"", index + 1))?;
        match kind {
            "meta" | "counter" | "hist" => {}
            "span" => {
                let start = value.get("start_ns").and_then(Value::as_f64);
                let end = value.get("end_ns").and_then(Value::as_f64);
                let path_ok = value.get("path").and_then(Value::as_str).is_some();
                match (start, end, path_ok) {
                    (Some(s), Some(e), true) if s <= e => spans += 1,
                    _ => {
                        return Err(format!(
                            "{path}:{}: malformed span event",
                            index + 1
                        ))
                    }
                }
            }
            "fault" => {
                check_fault_event(&value)
                    .map_err(|e| format!("{path}:{}: {e}", index + 1))?;
                faults += 1;
            }
            "retry" | "vote" | "fallback" => {
                check_recovery_event(kind, &value)
                    .map_err(|e| format!("{path}:{}: {e}", index + 1))?;
                recoveries += 1;
            }
            "finding" => {
                check_finding_event(&value)
                    .map_err(|e| format!("{path}:{}: {e}", index + 1))?;
                findings += 1;
            }
            "lint" => {
                check_lint_summary(&value)
                    .map_err(|e| format!("{path}:{}: {e}", index + 1))?;
            }
            other => {
                return Err(format!(
                    "{path}:{}: unknown event type `{other}`",
                    index + 1
                ))
            }
        }
    }
    if lines == 0 {
        return Err(format!("{path}: empty NDJSON stream"));
    }
    eprintln!(
        "obs-check: {path}: {lines} event(s), {spans} span(s), {faults} fault audit(s), \
         {recoveries} recovery event(s), {findings} lint finding(s) OK"
    );
    Ok(())
}

/// One static-analysis finding from a `scan-lint --out` stream: a rule
/// identifier, a severity, and the source span it anchors to (see
/// `docs/LINTS.md`).
fn check_finding_event(value: &Value) -> Result<(), String> {
    for member in ["rule", "name", "file", "message"] {
        if value.get(member).and_then(Value::as_str).is_none() {
            return Err(format!("finding event missing string \"{member}\""));
        }
    }
    let severity = value.get("severity").and_then(Value::as_str);
    if !matches!(severity, Some("deny" | "warn")) {
        return Err("finding event missing severity deny|warn".to_owned());
    }
    for member in ["line", "col"] {
        let ok = value
            .get(member)
            .and_then(Value::as_f64)
            .is_some_and(|v| v >= 1.0);
        if !ok {
            return Err(format!("finding event missing positive \"{member}\""));
        }
    }
    Ok(())
}

/// The trailing `scan-lint` run summary — emitted exactly once per
/// stream, even when the workspace is clean, so a lint export is never
/// an empty NDJSON file.
fn check_lint_summary(value: &Value) -> Result<(), String> {
    for member in ["files", "manifests", "findings", "suppressed", "unsafe_sites"] {
        let ok = value
            .get(member)
            .and_then(Value::as_f64)
            .is_some_and(|v| v >= 0.0);
        if !ok {
            return Err(format!("lint summary missing non-negative \"{member}\""));
        }
    }
    Ok(())
}

/// A fault-tolerant recovery event from a robust audit stream: a
/// `retry` round, a per-session `vote` tally, or a weighted-voting
/// `fallback` (see `docs/ROBUSTNESS.md`).
fn check_recovery_event(kind: &str, value: &Value) -> Result<(), String> {
    let numeric: &[&str] = match kind {
        "retry" => &["fault", "round", "sessions"],
        "vote" => &["fault", "partition", "group", "fail", "pass", "lost"],
        _ => &["fault", "partition", "support", "candidates"],
    };
    for member in numeric {
        if value.get(member).and_then(Value::as_f64).is_none() {
            return Err(format!("{kind} event missing numeric \"{member}\""));
        }
    }
    if kind == "vote" {
        let verdict = value.get("verdict").and_then(Value::as_str);
        if !matches!(verdict, Some("pass" | "fail" | "lost")) {
            return Err("vote event missing verdict pass|fail|lost".to_owned());
        }
    }
    Ok(())
}

/// A diagnosis audit event: per-fault candidate-set convergence with
/// one step per partition (see `docs/OBSERVABILITY.md`).
fn check_fault_event(value: &Value) -> Result<(), String> {
    for member in ["index", "actual", "final"] {
        if value.get(member).and_then(Value::as_f64).is_none() {
            return Err(format!("fault event missing numeric \"{member}\""));
        }
    }
    let steps = value
        .get("steps")
        .and_then(Value::as_array)
        .ok_or("fault event missing \"steps\" array")?;
    for (i, step) in steps.iter().enumerate() {
        let kind_ok = step.get("kind").and_then(Value::as_str).is_some();
        let cand_ok = step.get("candidates").and_then(Value::as_f64).is_some();
        let groups_ok = step
            .get("failing_groups")
            .and_then(Value::as_array)
            .is_some_and(|g| g.iter().all(|v| v.as_f64().is_some()));
        if !(kind_ok && cand_ok && groups_ok) {
            return Err(format!("malformed audit step {i}"));
        }
    }
    Ok(())
}

fn check_bench(path: &str, value: &Value) -> Result<(), String> {
    if value.get("version").and_then(Value::as_f64).is_none() {
        return Err(format!("{path}: bench baseline missing numeric \"version\""));
    }
    let suite = value
        .get("suite")
        .and_then(Value::as_str)
        .ok_or_else(|| format!("{path}: bench baseline missing \"suite\""))?;
    let kernels = value
        .get("kernels")
        .and_then(Value::as_object)
        .ok_or_else(|| format!("{path}: bench baseline missing \"kernels\" object"))?;
    if kernels.is_empty() {
        return Err(format!("{path}: bench baseline has no kernels"));
    }
    for (name, kernel) in kernels {
        for member in ["median_ns", "p95_ns", "iqr_ns"] {
            let ok = kernel
                .get(member)
                .and_then(Value::as_f64)
                .is_some_and(|v| v >= 0.0);
            if !ok {
                return Err(format!(
                    "{path}: kernel `{name}` missing non-negative \"{member}\""
                ));
            }
        }
    }
    eprintln!(
        "obs-check: {path}: bench baseline OK (suite `{suite}`, {} kernel(s))",
        kernels.len()
    );
    Ok(())
}

fn check_folded(path: &str, text: &str) -> Result<(), String> {
    let lines = scan_obs::profile::check_folded(text).map_err(|e| format!("{path}: {e}"))?;
    eprintln!("obs-check: {path}: folded profile OK ({lines} stack(s))");
    Ok(())
}

fn check_metrics(path: &str, value: &Value) -> Result<(), String> {
    for member in ["counters", "histograms", "spans"] {
        if value.get(member).and_then(Value::as_object).is_none() {
            return Err(format!("{path}: missing object member \"{member}\""));
        }
    }
    let counters = value
        .get("counters")
        .and_then(Value::as_object)
        .map_or(0, std::collections::BTreeMap::len);
    eprintln!("obs-check: {path}: metrics snapshot OK ({counters} counter(s))");
    Ok(())
}

fn check(path: &str) -> Result<(), String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
    if path.ends_with(".ndjson") {
        return check_ndjson(path, &text);
    }
    if path.ends_with(".folded") {
        return check_folded(path, &text);
    }
    // Dispatch the rest on content: JSON documents are either a bench
    // baseline (`suite`/`kernels`) or a metrics snapshot; anything that
    // is not JSON is expected to be a collapsed-stack profile.
    if text.trim_start().starts_with('{') {
        let value = parse(&text).map_err(|e| format!("{path}: {e}"))?;
        if value.get("kernels").is_some() {
            return check_bench(path, &value);
        }
        return check_metrics(path, &value);
    }
    check_folded(path, &text)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        eprintln!("usage: obs-check <trace.ndjson|metrics.json>…");
        return ExitCode::from(2);
    }
    for path in &args {
        if let Err(message) = check(path) {
            eprintln!("obs-check: FAILED: {message}");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
