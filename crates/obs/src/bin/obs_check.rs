//! `obs-check` — validates observability export files.
//!
//! Usage: `obs-check <file>…` where each file is one of
//!
//! * an NDJSON stream (`.ndjson`): every line must parse as a JSON
//!   object with a known `type` — trace events (`meta`/`span`/
//!   `counter`/`hist`), live-telemetry records (`ts` time series,
//!   `context` trace correlation), diagnosis audit events (`fault`),
//!   fault-tolerant recovery events (`retry`/`vote`/`fallback`),
//!   static-analysis events from `scan-lint` (`finding`/`lint`), SLO
//!   alert transitions (`alert`), and flight-recorder records
//!   (`flight` header, `delta` counter movements, `tick` markers) are
//!   all accepted; an optional `"trace"` stamp on any line must be
//!   consistent across the stream;
//! * a collapsed-stack profile (`.folded`, or any non-JSON text):
//!   every line must be `frame[;frame…] <count>`;
//! * a daemon goodput document (JSON with a `scenarios` array, written
//!   by `scanbistd-loadgen`): every scenario carries its offered rate,
//!   outcome counts, latency percentiles — and zero real failures;
//! * a bench baseline (JSON with `suite`/`kernels` members): every
//!   kernel must carry numeric `median_ns`/`p95_ns`/`iqr_ns`;
//! * a JSON metrics snapshot (any other JSON: one object with
//!   `counters` / `histograms` / `spans` members).
//!
//! Two extra modes:
//!
//! * `obs-check --join <trace.ndjson>…` — verifies a *merged
//!   multi-process trace*: every stream shares one trace id, exactly
//!   one stream is the root (no `parent_span`), and every other
//!   stream's `parent_span` resolves to a span recorded in another
//!   stream reachable from the root (no orphans, no cycles).
//! * `obs-check --scrape <host:port>` — a std-only HTTP client for the
//!   live `--serve-metrics` endpoint: GETs `/healthz`, `/metrics`
//!   (validated as Prometheus text exposition), `/metrics.json`
//!   (validated as a metrics snapshot), and `/alerts.json` (validated
//!   as a versioned alert-status document).
//!
//! Exits nonzero with a message on the first failure —
//! `scripts/verify.sh` runs this against an instrumented smoke
//! campaign, a live scrape, a multi-process trace join, and a
//! quick-mode bench run.

use std::process::ExitCode;

use scan_obs::json::{parse, Value};

fn check_ndjson(path: &str, text: &str) -> Result<(), String> {
    let mut spans = 0usize;
    let mut faults = 0usize;
    let mut recoveries = 0usize;
    let mut findings = 0usize;
    let mut series = 0usize;
    let mut contexts = 0usize;
    let mut alerts = 0usize;
    let mut flights = 0usize;
    let mut graph_fns = 0usize;
    let mut graph_edges = 0usize;
    let mut lines = 0usize;
    let mut stamp: Option<String> = None;
    for (index, line) in text.lines().enumerate() {
        if line.is_empty() {
            continue;
        }
        lines += 1;
        let value =
            parse(line).map_err(|e| format!("{path}:{}: {e}", index + 1))?;
        if let Some(trace) = value.get("trace").and_then(Value::as_str) {
            match &stamp {
                None => stamp = Some(trace.to_owned()),
                Some(seen) if seen == trace => {}
                Some(seen) => {
                    return Err(format!(
                        "{path}:{}: trace stamp `{trace}` conflicts with `{seen}`",
                        index + 1
                    ))
                }
            }
        }
        let kind = value
            .get("type")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("{path}:{}: missing \"type\"", index + 1))?;
        match kind {
            "meta" | "counter" | "hist" => {}
            "ts" => {
                check_ts_event(&value)
                    .map_err(|e| format!("{path}:{}: {e}", index + 1))?;
                series += 1;
            }
            "context" => {
                check_context_event(&value)
                    .map_err(|e| format!("{path}:{}: {e}", index + 1))?;
                contexts += 1;
            }
            "span" => {
                let start = value.get("start_ns").and_then(Value::as_f64);
                let end = value.get("end_ns").and_then(Value::as_f64);
                let path_ok = value.get("path").and_then(Value::as_str).is_some();
                match (start, end, path_ok) {
                    (Some(s), Some(e), true) if s <= e => spans += 1,
                    _ => {
                        return Err(format!(
                            "{path}:{}: malformed span event",
                            index + 1
                        ))
                    }
                }
            }
            "fault" => {
                check_fault_event(&value)
                    .map_err(|e| format!("{path}:{}: {e}", index + 1))?;
                faults += 1;
            }
            "retry" | "vote" | "fallback" => {
                check_recovery_event(kind, &value)
                    .map_err(|e| format!("{path}:{}: {e}", index + 1))?;
                recoveries += 1;
            }
            "finding" => {
                check_finding_event(&value)
                    .map_err(|e| format!("{path}:{}: {e}", index + 1))?;
                findings += 1;
            }
            "lint" => {
                check_lint_summary(&value)
                    .map_err(|e| format!("{path}:{}: {e}", index + 1))?;
            }
            "graph_fn" => {
                check_graph_fn(&value)
                    .map_err(|e| format!("{path}:{}: {e}", index + 1))?;
                graph_fns += 1;
            }
            "graph_edge" => {
                check_graph_edge(&value)
                    .map_err(|e| format!("{path}:{}: {e}", index + 1))?;
                graph_edges += 1;
            }
            "graph" => {
                check_graph_summary(&value, graph_fns, graph_edges)
                    .map_err(|e| format!("{path}:{}: {e}", index + 1))?;
            }
            "alert" => {
                check_alert_event(&value)
                    .map_err(|e| format!("{path}:{}: {e}", index + 1))?;
                alerts += 1;
            }
            "flight" => {
                check_flight_event(&value)
                    .map_err(|e| format!("{path}:{}: {e}", index + 1))?;
                flights += 1;
            }
            "delta" => {
                check_delta_event(&value)
                    .map_err(|e| format!("{path}:{}: {e}", index + 1))?;
            }
            "tick" => {
                check_tick_event(&value)
                    .map_err(|e| format!("{path}:{}: {e}", index + 1))?;
            }
            other => {
                return Err(format!(
                    "{path}:{}: unknown event type `{other}`",
                    index + 1
                ))
            }
        }
    }
    if lines == 0 {
        return Err(format!("{path}: empty NDJSON stream"));
    }
    if contexts > 1 {
        return Err(format!("{path}: {contexts} context records (want at most 1)"));
    }
    if flights > 1 {
        return Err(format!("{path}: {flights} flight headers (want at most 1)"));
    }
    eprintln!(
        "obs-check: {path}: {lines} event(s), {spans} span(s), {faults} fault audit(s), \
         {recoveries} recovery event(s), {findings} lint finding(s), {alerts} alert(s), \
         {series} series, {contexts} context(s) OK"
    );
    Ok(())
}

/// An SLO alert transition from `scan_obs::slo`: the rule and series
/// it fired on, a `firing`/`resolved` state, the observed value, the
/// configured threshold, and the epoch offset of the transition.
fn check_alert_event(value: &Value) -> Result<(), String> {
    for member in ["rule", "series"] {
        if value.get(member).and_then(Value::as_str).is_none() {
            return Err(format!("alert event missing string \"{member}\""));
        }
    }
    let state = value.get("state").and_then(Value::as_str);
    if !matches!(state, Some("firing" | "resolved")) {
        return Err("alert event missing state firing|resolved".to_owned());
    }
    for member in ["value", "threshold"] {
        if value.get(member).and_then(Value::as_f64).is_none() {
            return Err(format!("alert event missing numeric \"{member}\""));
        }
    }
    let at_ok = value
        .get("at_ns")
        .and_then(Value::as_f64)
        .is_some_and(|v| v >= 0.0);
    if !at_ok {
        return Err("alert event missing non-negative \"at_ns\"".to_owned());
    }
    Ok(())
}

/// The flight-recorder dump header: a known format version, the dump
/// reason, the dumping process, and the number of ring events that
/// follow.
fn check_flight_event(value: &Value) -> Result<(), String> {
    let version = value.get("version").and_then(Value::as_f64);
    if version != Some(1.0) {
        return Err("flight event missing \"version\" 1".to_owned());
    }
    let reason = value.get("reason").and_then(Value::as_str);
    if !matches!(reason, Some("panic" | "error")) {
        return Err("flight event missing reason panic|error".to_owned());
    }
    if value.get("process").and_then(Value::as_str).is_none() {
        return Err("flight event missing string \"process\"".to_owned());
    }
    for member in ["at_ns", "events"] {
        let ok = value
            .get(member)
            .and_then(Value::as_f64)
            .is_some_and(|v| v >= 0.0);
        if !ok {
            return Err(format!("flight event missing non-negative \"{member}\""));
        }
    }
    Ok(())
}

/// One counter movement captured by the flight recorder between two
/// sampler ticks: the counter name, the increment, and the running
/// total after it.
fn check_delta_event(value: &Value) -> Result<(), String> {
    if value.get("name").and_then(Value::as_str).is_none() {
        return Err("delta event missing string \"name\"".to_owned());
    }
    for member in ["delta", "total", "at_ns"] {
        let ok = value
            .get(member)
            .and_then(Value::as_f64)
            .is_some_and(|v| v >= 0.0);
        if !ok {
            return Err(format!("delta event missing non-negative \"{member}\""));
        }
    }
    Ok(())
}

/// A sampler-tick marker in the flight ring: when it happened and how
/// many counters/histograms the snapshot held.
fn check_tick_event(value: &Value) -> Result<(), String> {
    for member in ["at_ns", "counters", "histograms"] {
        let ok = value
            .get(member)
            .and_then(Value::as_f64)
            .is_some_and(|v| v >= 0.0);
        if !ok {
            return Err(format!("tick event missing non-negative \"{member}\""));
        }
    }
    Ok(())
}

/// A `ts` time-series record: a name plus `[offset_ns, value]` sample
/// pairs whose offsets ascend (the sampler's monotonic guarantee).
fn check_ts_event(value: &Value) -> Result<(), String> {
    if value.get("name").and_then(Value::as_str).is_none() {
        return Err("ts event missing string \"name\"".to_owned());
    }
    let samples = value
        .get("samples")
        .and_then(Value::as_array)
        .ok_or("ts event missing \"samples\" array")?;
    let mut prev: Option<f64> = None;
    for (i, pair) in samples.iter().enumerate() {
        let Some(pair) = pair.as_array() else {
            return Err(format!("ts sample {i} is not an array"));
        };
        let offset = pair.first().and_then(Value::as_f64);
        let val = pair.get(1).and_then(Value::as_f64);
        let (Some(offset), Some(_)) = (offset, val) else {
            return Err(format!("ts sample {i} is not [offset_ns, value]"));
        };
        if prev.is_some_and(|p| offset < p) {
            return Err(format!("ts sample {i} offset went backwards"));
        }
        prev = Some(offset);
    }
    Ok(())
}

/// A `context` trace-correlation record: a 16-hex-digit trace id, a
/// process name, and an optional parent span path.
fn check_context_event(value: &Value) -> Result<(), String> {
    let trace_id = value
        .get("trace_id")
        .and_then(Value::as_str)
        .ok_or("context event missing string \"trace_id\"")?;
    if !scan_obs::context::is_valid_trace_id(trace_id) {
        return Err(format!("context trace_id `{trace_id}` is not 16 hex digits"));
    }
    if value.get("process").and_then(Value::as_str).is_none() {
        return Err("context event missing string \"process\"".to_owned());
    }
    match value.get("parent_span") {
        None | Some(Value::Null) => Ok(()),
        Some(v) if v.as_str().is_some_and(|s| !s.is_empty()) => Ok(()),
        Some(_) => Err("context parent_span must be null or a non-empty string".to_owned()),
    }
}

/// One static-analysis finding from a `scan-lint --out` stream: a rule
/// identifier, a severity, and the source span it anchors to (see
/// `docs/LINTS.md`).
fn check_finding_event(value: &Value) -> Result<(), String> {
    for member in ["rule", "name", "file", "message"] {
        if value.get(member).and_then(Value::as_str).is_none() {
            return Err(format!("finding event missing string \"{member}\""));
        }
    }
    let severity = value.get("severity").and_then(Value::as_str);
    if !matches!(severity, Some("deny" | "warn")) {
        return Err("finding event missing severity deny|warn".to_owned());
    }
    for member in ["line", "col"] {
        let ok = value
            .get(member)
            .and_then(Value::as_f64)
            .is_some_and(|v| v >= 1.0);
        if !ok {
            return Err(format!("finding event missing positive \"{member}\""));
        }
    }
    // Semantic findings (L009, L012-L014) may carry a witness chain:
    // the call path from the root to the offending site. Optional, but
    // when present every hop must be fully addressed.
    if let Some(chain) = value.get("chain") {
        let hops = chain
            .as_array()
            .ok_or("finding \"chain\" must be an array")?;
        for hop in hops {
            for member in ["fn", "file"] {
                if hop.get(member).and_then(Value::as_str).is_none() {
                    return Err(format!("chain hop missing string \"{member}\""));
                }
            }
            let line_ok = hop
                .get("line")
                .and_then(Value::as_f64)
                .is_some_and(|v| v >= 1.0);
            if !line_ok {
                return Err("chain hop missing positive \"line\"".to_owned());
            }
        }
    }
    Ok(())
}

/// One function node from a `scan-lint --graph` export: a stable
/// numeric id, the fully-qualified name, its definition site, and the
/// per-node fact counts the semantic rules traverse.
fn check_graph_fn(value: &Value) -> Result<(), String> {
    for member in ["fn", "file"] {
        if value.get(member).and_then(Value::as_str).is_none() {
            return Err(format!("graph_fn record missing string \"{member}\""));
        }
    }
    if !matches!(value.get("test"), Some(Value::Bool(_))) {
        return Err("graph_fn record missing bool \"test\"".to_owned());
    }
    for member in ["id", "line", "calls", "panics", "locks", "io", "taints"] {
        let ok = value
            .get(member)
            .and_then(Value::as_f64)
            .is_some_and(|v| v >= 0.0);
        if !ok {
            return Err(format!("graph_fn record missing non-negative \"{member}\""));
        }
    }
    Ok(())
}

/// One resolved call edge from a `scan-lint --graph` export. The
/// `from`/`to` ids refer back to earlier `graph_fn` records; the
/// qualified names ride along so the stream reads standalone.
fn check_graph_edge(value: &Value) -> Result<(), String> {
    for member in ["from_fn", "to_fn", "file"] {
        if value.get(member).and_then(Value::as_str).is_none() {
            return Err(format!("graph_edge record missing string \"{member}\""));
        }
    }
    for member in ["from", "to", "line"] {
        let ok = value
            .get(member)
            .and_then(Value::as_f64)
            .is_some_and(|v| v >= 0.0);
        if !ok {
            return Err(format!(
                "graph_edge record missing non-negative \"{member}\""
            ));
        }
    }
    Ok(())
}

/// The trailing `scan-lint --graph` summary: totals that must agree
/// with the `graph_fn`/`graph_edge` records streamed above it.
fn check_graph_summary(value: &Value, fns: usize, edges: usize) -> Result<(), String> {
    for member in [
        "files",
        "functions",
        "edges",
        "unresolved",
        "panic_sites",
        "lock_sites",
        "taint_sites",
    ] {
        let ok = value
            .get(member)
            .and_then(Value::as_f64)
            .is_some_and(|v| v >= 0.0);
        if !ok {
            return Err(format!("graph summary missing non-negative \"{member}\""));
        }
    }
    let functions = value.get("functions").and_then(Value::as_f64);
    if functions != Some(fns as f64) {
        return Err(format!(
            "graph summary claims {functions:?} functions, stream carried {fns}"
        ));
    }
    let edge_total = value.get("edges").and_then(Value::as_f64);
    if edge_total != Some(edges as f64) {
        return Err(format!(
            "graph summary claims {edge_total:?} edges, stream carried {edges}"
        ));
    }
    Ok(())
}

/// The trailing `scan-lint` run summary — emitted exactly once per
/// stream, even when the workspace is clean, so a lint export is never
/// an empty NDJSON file.
fn check_lint_summary(value: &Value) -> Result<(), String> {
    for member in ["files", "manifests", "findings", "suppressed", "unsafe_sites"] {
        let ok = value
            .get(member)
            .and_then(Value::as_f64)
            .is_some_and(|v| v >= 0.0);
        if !ok {
            return Err(format!("lint summary missing non-negative \"{member}\""));
        }
    }
    Ok(())
}

/// A fault-tolerant recovery event from a robust audit stream: a
/// `retry` round, a per-session `vote` tally, or a weighted-voting
/// `fallback` (see `docs/ROBUSTNESS.md`).
fn check_recovery_event(kind: &str, value: &Value) -> Result<(), String> {
    let numeric: &[&str] = match kind {
        "retry" => &["fault", "round", "sessions"],
        "vote" => &["fault", "partition", "group", "fail", "pass", "lost"],
        _ => &["fault", "partition", "support", "candidates"],
    };
    for member in numeric {
        if value.get(member).and_then(Value::as_f64).is_none() {
            return Err(format!("{kind} event missing numeric \"{member}\""));
        }
    }
    if kind == "vote" {
        let verdict = value.get("verdict").and_then(Value::as_str);
        if !matches!(verdict, Some("pass" | "fail" | "lost")) {
            return Err("vote event missing verdict pass|fail|lost".to_owned());
        }
    }
    Ok(())
}

/// A diagnosis audit event: per-fault candidate-set convergence with
/// one step per partition (see `docs/OBSERVABILITY.md`).
fn check_fault_event(value: &Value) -> Result<(), String> {
    for member in ["index", "actual", "final"] {
        if value.get(member).and_then(Value::as_f64).is_none() {
            return Err(format!("fault event missing numeric \"{member}\""));
        }
    }
    let steps = value
        .get("steps")
        .and_then(Value::as_array)
        .ok_or("fault event missing \"steps\" array")?;
    for (i, step) in steps.iter().enumerate() {
        let kind_ok = step.get("kind").and_then(Value::as_str).is_some();
        let cand_ok = step.get("candidates").and_then(Value::as_f64).is_some();
        let groups_ok = step
            .get("failing_groups")
            .and_then(Value::as_array)
            .is_some_and(|g| g.iter().all(|v| v.as_f64().is_some()));
        if !(kind_ok && cand_ok && groups_ok) {
            return Err(format!("malformed audit step {i}"));
        }
    }
    Ok(())
}

fn check_bench(path: &str, value: &Value) -> Result<(), String> {
    if value.get("version").and_then(Value::as_f64).is_none() {
        return Err(format!("{path}: bench baseline missing numeric \"version\""));
    }
    let suite = value
        .get("suite")
        .and_then(Value::as_str)
        .ok_or_else(|| format!("{path}: bench baseline missing \"suite\""))?;
    let kernels = value
        .get("kernels")
        .and_then(Value::as_object)
        .ok_or_else(|| format!("{path}: bench baseline missing \"kernels\" object"))?;
    if kernels.is_empty() {
        return Err(format!("{path}: bench baseline has no kernels"));
    }
    for (name, kernel) in kernels {
        for member in ["median_ns", "p95_ns", "iqr_ns"] {
            let ok = kernel
                .get(member)
                .and_then(Value::as_f64)
                .is_some_and(|v| v >= 0.0);
            if !ok {
                return Err(format!(
                    "{path}: kernel `{name}` missing non-negative \"{member}\""
                ));
            }
        }
    }
    eprintln!(
        "obs-check: {path}: bench baseline OK (suite `{suite}`, {} kernel(s))",
        kernels.len()
    );
    Ok(())
}

/// A `scanbistd-loadgen` goodput document (`BENCH_daemon.json`):
/// per-scenario overload evidence instead of per-kernel timings.
fn check_daemon_bench(path: &str, value: &Value) -> Result<(), String> {
    if value.get("version").and_then(Value::as_f64).is_none() {
        return Err(format!("{path}: daemon bench missing numeric \"version\""));
    }
    let suite = value
        .get("suite")
        .and_then(Value::as_str)
        .ok_or_else(|| format!("{path}: daemon bench missing \"suite\""))?;
    let scenarios = value
        .get("scenarios")
        .and_then(Value::as_array)
        .ok_or_else(|| format!("{path}: daemon bench missing \"scenarios\" array"))?;
    if scenarios.is_empty() {
        return Err(format!("{path}: daemon bench has no scenarios"));
    }
    let mut real_failures = 0.0;
    for (i, scenario) in scenarios.iter().enumerate() {
        let label = scenario
            .get("label")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("{path}: scenario {i} missing \"label\""))?;
        for member in [
            "offered_rps",
            "sent",
            "ok",
            "shed_429",
            "deadline_504",
            "real_failures",
            "max_queue_depth",
            "goodput_rps",
        ] {
            let ok = scenario
                .get(member)
                .and_then(Value::as_f64)
                .is_some_and(|v| v >= 0.0);
            if !ok {
                return Err(format!(
                    "{path}: scenario `{label}` missing non-negative \"{member}\""
                ));
            }
        }
        let latency = scenario
            .get("latency_us")
            .and_then(Value::as_object)
            .ok_or_else(|| format!("{path}: scenario `{label}` missing \"latency_us\""))?;
        for member in ["p50", "p95", "p99"] {
            if latency.get(member).and_then(Value::as_f64).is_none() {
                return Err(format!(
                    "{path}: scenario `{label}` latency missing \"{member}\""
                ));
            }
        }
        real_failures += scenario
            .get("real_failures")
            .and_then(Value::as_f64)
            .unwrap_or(0.0);
    }
    if real_failures > 0.0 {
        return Err(format!(
            "{path}: daemon bench records {real_failures} non-injected failure(s)"
        ));
    }
    eprintln!(
        "obs-check: {path}: daemon goodput document OK (suite `{suite}`, {} scenario(s), 0 real failures)",
        scenarios.len()
    );
    Ok(())
}

fn check_folded(path: &str, text: &str) -> Result<(), String> {
    let lines = scan_obs::profile::check_folded(text).map_err(|e| format!("{path}: {e}"))?;
    eprintln!("obs-check: {path}: folded profile OK ({lines} stack(s))");
    Ok(())
}

fn check_metrics(path: &str, value: &Value) -> Result<(), String> {
    for member in ["counters", "histograms", "spans"] {
        if value.get(member).and_then(Value::as_object).is_none() {
            return Err(format!("{path}: missing object member \"{member}\""));
        }
    }
    let counters = value
        .get("counters")
        .and_then(Value::as_object)
        .map_or(0, std::collections::BTreeMap::len);
    eprintln!("obs-check: {path}: metrics snapshot OK ({counters} counter(s))");
    Ok(())
}

fn check(path: &str) -> Result<(), String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
    if path.ends_with(".ndjson") {
        return check_ndjson(path, &text);
    }
    if path.ends_with(".folded") {
        return check_folded(path, &text);
    }
    // Dispatch the rest on content: JSON documents are either a bench
    // baseline (`suite`/`kernels`) or a metrics snapshot; anything that
    // is not JSON is expected to be a collapsed-stack profile.
    if text.trim_start().starts_with('{') {
        let value = parse(&text).map_err(|e| format!("{path}: {e}"))?;
        if value.get("kernels").is_some() {
            return check_bench(path, &value);
        }
        if value.get("scenarios").is_some() {
            return check_daemon_bench(path, &value);
        }
        return check_metrics(path, &value);
    }
    check_folded(path, &text)
}

/// One parsed per-process stream in a `--join` set.
struct JoinStream {
    path: String,
    trace_id: Option<String>,
    parent_span: Option<String>,
    process: String,
    span_paths: std::collections::BTreeSet<String>,
}

fn load_join_stream(path: &str) -> Result<JoinStream, String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
    // Full per-stream validation first, so join errors are about the
    // join, not about malformed lines.
    check_ndjson(path, &text)?;
    let mut stream = JoinStream {
        path: path.to_owned(),
        trace_id: None,
        parent_span: None,
        process: path.to_owned(),
        span_paths: std::collections::BTreeSet::new(),
    };
    for line in text.lines().filter(|l| !l.is_empty()) {
        let value = parse(line).map_err(|e| format!("{path}: {e}"))?;
        match value.get("type").and_then(Value::as_str) {
            Some("context") => {
                stream.trace_id = value
                    .get("trace_id")
                    .and_then(Value::as_str)
                    .map(str::to_owned);
                stream.parent_span = value
                    .get("parent_span")
                    .and_then(Value::as_str)
                    .map(str::to_owned);
                if let Some(process) = value.get("process").and_then(Value::as_str) {
                    stream.process = process.to_owned();
                }
            }
            Some("span") => {
                if let Some(span_path) = value.get("path").and_then(Value::as_str) {
                    stream.span_paths.insert(span_path.to_owned());
                }
            }
            _ => {}
        }
    }
    Ok(stream)
}

/// Verifies a merged multi-process trace: one shared trace id, exactly
/// one root stream, and every child's `parent_span` resolving to a
/// span in another stream reachable from the root.
fn check_join(paths: &[String]) -> Result<(), String> {
    if paths.len() < 2 {
        return Err("--join needs at least 2 trace streams".to_owned());
    }
    let streams = paths
        .iter()
        .map(|p| load_join_stream(p))
        .collect::<Result<Vec<_>, _>>()?;
    let trace_id = streams[0]
        .trace_id
        .clone()
        .ok_or_else(|| format!("{}: no context record (no trace id)", streams[0].path))?;
    for s in &streams {
        match &s.trace_id {
            None => return Err(format!("{}: no context record (no trace id)", s.path)),
            Some(id) if *id == trace_id => {}
            Some(id) => {
                return Err(format!(
                    "{}: trace id `{id}` does not match `{trace_id}`",
                    s.path
                ))
            }
        }
    }
    let roots: Vec<usize> = (0..streams.len())
        .filter(|&i| streams[i].parent_span.is_none())
        .collect();
    let [root] = roots.as_slice() else {
        return Err(format!(
            "want exactly 1 root stream (no parent_span), found {}",
            roots.len()
        ));
    };
    // Attach each child to the stream that recorded its parent span.
    let mut parent_of: Vec<Option<usize>> = vec![None; streams.len()];
    for (i, s) in streams.iter().enumerate() {
        let Some(parent_span) = &s.parent_span else {
            continue;
        };
        let owner = (0..streams.len())
            .find(|&j| j != i && streams[j].span_paths.contains(parent_span));
        match owner {
            Some(j) => parent_of[i] = Some(j),
            None => {
                return Err(format!(
                    "{}: orphan: parent span `{parent_span}` not recorded by any other stream",
                    s.path
                ))
            }
        }
    }
    // Every stream must reach the root through its parents (no cycles).
    for (i, s) in streams.iter().enumerate() {
        let mut cursor = i;
        let mut hops = 0;
        while cursor != *root {
            cursor = parent_of[cursor].ok_or_else(|| {
                format!("{}: does not reach the root stream", s.path)
            })?;
            hops += 1;
            if hops > streams.len() {
                return Err(format!("{}: parent chain contains a cycle", s.path));
            }
        }
    }
    eprintln!("obs-check: joined trace `{trace_id}` OK: {} process(es)", streams.len());
    for (i, s) in streams.iter().enumerate() {
        let indent = if i == *root { "" } else { "  " };
        match &s.parent_span {
            None => eprintln!("obs-check:   {indent}{} (root)", s.process),
            Some(p) => eprintln!("obs-check:   {indent}{} under `{p}`", s.process),
        }
    }
    Ok(())
}

/// A std-only HTTP/1.1 GET against the live metrics endpoint.
fn http_get(addr: &str, target: &str) -> Result<(u16, String), String> {
    use std::io::{Read as _, Write as _};
    let mut conn = std::net::TcpStream::connect(addr)
        .map_err(|e| format!("cannot connect to `{addr}`: {e}"))?;
    conn.set_read_timeout(Some(std::time::Duration::from_secs(5)))
        .map_err(|e| e.to_string())?;
    write!(conn, "GET {target} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n")
        .map_err(|e| format!("write to `{addr}` failed: {e}"))?;
    let mut response = String::new();
    conn.read_to_string(&mut response)
        .map_err(|e| format!("read from `{addr}` failed: {e}"))?;
    let status = response
        .strip_prefix("HTTP/1.1 ")
        .and_then(|r| r.get(..3))
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| format!("`{addr}{target}`: malformed status line"))?;
    let body = response
        .split_once("\r\n\r\n")
        .map(|(_, body)| body.to_owned())
        .unwrap_or_default();
    Ok((status, body))
}

/// Scrapes a live `--serve-metrics` endpoint and validates all three
/// routes.
fn check_scrape(addr: &str) -> Result<(), String> {
    let (status, health) = http_get(addr, "/healthz")?;
    if status != 200 || !health.contains("\"status\":\"ok\"") {
        return Err(format!("/healthz: status {status}, body `{health}`"));
    }
    let (status, text) = http_get(addr, "/metrics")?;
    if status != 200 {
        return Err(format!("/metrics: status {status}"));
    }
    let samples = scan_obs::serve::validate_exposition(&text)
        .map_err(|e| format!("/metrics exposition invalid: {e}"))?;
    let (status, json) = http_get(addr, "/metrics.json")?;
    if status != 200 {
        return Err(format!("/metrics.json: status {status}"));
    }
    let value = parse(&json).map_err(|e| format!("/metrics.json: {e}"))?;
    check_metrics(&format!("{addr}/metrics.json"), &value)?;
    let (status, json) = http_get(addr, "/alerts.json")?;
    if status != 200 {
        return Err(format!("/alerts.json: status {status}"));
    }
    let value = parse(&json).map_err(|e| format!("/alerts.json: {e}"))?;
    if value.get("version").and_then(Value::as_f64) != Some(1.0) {
        return Err("/alerts.json: missing \"version\" 1".to_owned());
    }
    if value.get("alerts").and_then(Value::as_array).is_none() {
        return Err("/alerts.json: missing \"alerts\" array".to_owned());
    }
    eprintln!("obs-check: scrape {addr} OK ({samples} exposition sample(s))");
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        eprintln!(
            "usage: obs-check <trace.ndjson|metrics.json>… \
             | obs-check --join <trace.ndjson>… | obs-check --scrape <host:port>"
        );
        return ExitCode::from(2);
    }
    let result = match args[0].as_str() {
        "--join" => check_join(&args[1..]),
        "--scrape" => match args.get(1) {
            Some(addr) if args.len() == 2 => check_scrape(addr),
            _ => Err("--scrape takes exactly one <host:port>".to_owned()),
        },
        _ => args.iter().try_for_each(|path| check(path)),
    };
    if let Err(message) = result {
        eprintln!("obs-check: FAILED: {message}");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
