//! Rate-limited campaign progress lines on stderr.
//!
//! Progress output is for humans watching a long campaign: it never
//! touches stdout (table/JSON payloads stay clean under redirection)
//! and is rate-limited per thread so per-fault ticking from sharded
//! workers does not flood the terminal. Disabled, each call is one
//! relaxed atomic load.

use std::cell::Cell;
use std::time::Instant;

use crate::registry;

/// Minimum milliseconds between printed lines per thread (completion
/// lines always print).
const MIN_INTERVAL_MS: u128 = 200;

thread_local! {
    static LAST_PRINT: Cell<Option<Instant>> = const { Cell::new(None) };
}

fn should_print(finished: bool) -> bool {
    LAST_PRINT.with(|last| {
        let due = match last.get() {
            Some(at) => at.elapsed().as_millis() >= MIN_INTERVAL_MS,
            None => true,
        };
        if due || finished {
            last.set(Some(Instant::now()));
        }
        due || finished
    })
}

/// Reports `done` of `total` units finished under `label`. Prints at
/// most one line per [`MIN_INTERVAL_MS`] per thread, plus the final
/// `done == total` line.
pub fn tick(label: &str, done: usize, total: usize) {
    if !registry::progress_enabled() {
        return;
    }
    let finished = done >= total;
    if should_print(finished) {
        eprintln!("[progress] {label}: {done}/{total}");
    }
}

/// Per-shard campaign progress: `tick` with the workspace's worker
/// label (`shard<w>`), formatted only when progress is enabled.
pub fn tick_worker(worker: usize, done: usize, total: usize) {
    if !registry::progress_enabled() {
        return;
    }
    tick(&format!("shard{worker}"), done, total);
}
