//! The sharded recording substrate behind spans and metrics.
//!
//! Every recording thread owns a thread-local [`Shard`] holding its own
//! counter/histogram maps, open-span stack, and event buffer, so workers
//! spawned by `std::thread::scope` record without touching a shared
//! lock. A shard folds itself into the process-wide [`Global`] state
//! exactly once — when its thread exits (TLS drop) or when the owning
//! thread calls [`flush_thread`] — which is the only time the global
//! mutex is taken on the recording side.
//!
//! The fast path when observability is disabled is a single relaxed
//! atomic load of [`STATE`]; no thread-local access, no allocation, no
//! branch beyond the flag test.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Bit in [`STATE`]: spans and NDJSON events are recorded.
pub const TRACE: u8 = 1;
/// Bit in [`STATE`]: counters and histograms are recorded.
pub const METRICS: u8 = 2;
/// Bit in [`STATE`]: rate-limited progress lines go to stderr.
pub const PROGRESS: u8 = 4;

/// The global enable mask. All recording entry points load this with
/// [`Ordering::Relaxed`] and return immediately when their bit is
/// clear — the entire disabled-mode overhead.
static STATE: AtomicU8 = AtomicU8::new(0);

/// Current enable mask (a single relaxed atomic load).
#[inline]
#[must_use]
pub fn state() -> u8 {
    STATE.load(Ordering::Relaxed)
}

/// True if span tracing is enabled.
#[inline]
#[must_use]
pub fn trace_enabled() -> bool {
    state() & TRACE != 0
}

/// True if counter/histogram recording is enabled.
#[inline]
#[must_use]
pub fn metrics_enabled() -> bool {
    state() & METRICS != 0
}

/// True if progress reporting is enabled.
#[inline]
#[must_use]
pub fn progress_enabled() -> bool {
    state() & PROGRESS != 0
}

pub(crate) fn set_state(mask: u8) {
    STATE.store(mask, Ordering::Relaxed);
}

/// Aggregated statistics of one span path.
#[derive(Clone, Copy, Debug, Default, Eq, PartialEq)]
pub struct SpanStat {
    /// Completed spans recorded under this path.
    pub count: u64,
    /// Total wall time, nanoseconds.
    pub total_ns: u64,
    /// Wall time excluding child spans, nanoseconds.
    pub self_ns: u64,
    /// Longest single span, nanoseconds.
    pub max_ns: u64,
}

impl SpanStat {
    fn absorb(&mut self, other: &SpanStat) {
        self.count += other.count;
        self.total_ns += other.total_ns;
        self.self_ns += other.self_ns;
        self.max_ns = self.max_ns.max(other.max_ns);
    }
}

/// One completed span, as streamed to the NDJSON exporter.
#[derive(Clone, Debug, Eq, PartialEq)]
pub struct SpanEvent {
    /// Slash-separated nesting path, e.g. `prepare/fault_sim`.
    pub path: String,
    /// Recording thread's obs-assigned id (0 = first registered).
    pub thread: u32,
    /// Start offset from the observability epoch, nanoseconds.
    pub start_ns: u64,
    /// End offset from the observability epoch, nanoseconds.
    pub end_ns: u64,
}

/// A fixed-bucket histogram: `counts[i]` tallies values `v` with
/// `edges[i-1] < v <= edges[i]`; the final bucket is the overflow
/// (`v > edges.last()`).
#[derive(Clone, Debug, Eq, PartialEq)]
pub struct Histogram {
    /// Ascending inclusive upper bucket edges.
    pub edges: Vec<u64>,
    /// Per-bucket tallies, `edges.len() + 1` long.
    pub counts: Vec<u64>,
    /// Number of recorded values.
    pub total: u64,
    /// Sum of recorded values (for means).
    pub sum: u64,
}

impl Histogram {
    fn new(edges: &[u64]) -> Self {
        debug_assert!(edges.windows(2).all(|w| w[0] < w[1]), "edges must ascend");
        Histogram {
            edges: edges.to_vec(),
            counts: vec![0; edges.len() + 1],
            total: 0,
            sum: 0,
        }
    }

    fn record(&mut self, value: u64) {
        let bucket = self.edges.partition_point(|&e| e < value);
        // lint:allow(L012): `bucket <= edges.len()` and `counts.len() == edges.len() + 1`
        self.counts[bucket] += 1;
        self.total += 1;
        self.sum += value;
    }

    fn absorb(&mut self, other: &Histogram) {
        if self.edges == other.edges {
            for (c, o) in self.counts.iter_mut().zip(&other.counts) {
                *c += o;
            }
        } else {
            // Mismatched edge sets for one name (a caller bug): fold the
            // other side's tallies into the overflow bucket rather than
            // losing or corrupting them.
            debug_assert!(false, "histogram edge mismatch");
            if let Some(last) = self.counts.last_mut() {
                *last += other.total;
            }
        }
        self.total += other.total;
        self.sum += other.sum;
    }
}

/// Everything one thread records before folding into [`Global`].
struct Shard {
    thread: u32,
    epoch: Instant,
    counters: BTreeMap<String, u64>,
    histograms: BTreeMap<String, Histogram>,
    span_stats: BTreeMap<String, SpanStat>,
    events: Vec<SpanEvent>,
    stack: Vec<OpenSpan>,
}

struct OpenSpan {
    path: String,
    start_ns: u64,
    child_ns: u64,
}

impl Shard {
    fn register() -> Self {
        let mut g = lock_global();
        let thread = g.next_thread;
        g.next_thread += 1;
        Shard {
            thread,
            epoch: g.epoch,
            counters: BTreeMap::new(),
            histograms: BTreeMap::new(),
            span_stats: BTreeMap::new(),
            events: Vec::new(),
            stack: Vec::new(),
        }
    }

    fn now_ns(&self) -> u64 {
        u64::try_from(self.epoch.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }
}

impl Drop for Shard {
    fn drop(&mut self) {
        lock_global().absorb(self);
    }
}

/// The process-wide merged state, only touched at shard boundaries and
/// by the exporters.
pub(crate) struct Global {
    epoch: Instant,
    next_thread: u32,
    counters: BTreeMap<String, u64>,
    histograms: BTreeMap<String, Histogram>,
    span_stats: BTreeMap<String, SpanStat>,
    events: Vec<SpanEvent>,
}

impl Global {
    fn new() -> Self {
        Global {
            epoch: Instant::now(),
            next_thread: 0,
            counters: BTreeMap::new(),
            histograms: BTreeMap::new(),
            span_stats: BTreeMap::new(),
            events: Vec::new(),
        }
    }

    fn absorb(&mut self, shard: &mut Shard) {
        for (name, value) in std::mem::take(&mut shard.counters) {
            *self.counters.entry(name).or_insert(0) += value;
        }
        for (name, hist) in std::mem::take(&mut shard.histograms) {
            match self.histograms.entry(name) {
                std::collections::btree_map::Entry::Vacant(v) => {
                    v.insert(hist);
                }
                std::collections::btree_map::Entry::Occupied(mut o) => {
                    o.get_mut().absorb(&hist);
                }
            }
        }
        for (path, stat) in std::mem::take(&mut shard.span_stats) {
            self.span_stats.entry(path).or_default().absorb(&stat);
        }
        self.events.append(&mut shard.events);
        shard.stack.clear();
    }

    fn reset(&mut self) {
        self.epoch = Instant::now();
        self.next_thread = 0;
        self.counters.clear();
        self.histograms.clear();
        self.span_stats.clear();
        self.events.clear();
    }
}

static GLOBAL: OnceLock<Mutex<Global>> = OnceLock::new();

fn global() -> &'static Mutex<Global> {
    GLOBAL.get_or_init(|| Mutex::new(Global::new()))
}

/// Locks the global state, recovering from poisoning (a panicking
/// recording thread must not take observability down with it).
fn lock_global() -> std::sync::MutexGuard<'static, Global> {
    global()
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

thread_local! {
    static SHARD: RefCell<Option<Shard>> = const { RefCell::new(None) };
}

fn with_shard<R>(f: impl FnOnce(&mut Shard) -> R) -> Option<R> {
    SHARD
        .try_with(|cell| {
            let mut opt = cell.borrow_mut();
            let shard = opt.get_or_insert_with(Shard::register);
            f(shard)
        })
        .ok()
}

/// Folds the calling thread's shard into the global state. Exporters
/// call this before reading; worker threads fold automatically on exit.
/// Any spans still open on this thread are discarded.
pub fn flush_thread() {
    let _ = SHARD.try_with(|cell| cell.borrow_mut().take());
}

/// Resets the process-wide epoch and discards all recorded data and the
/// calling thread's shard. Called by [`crate::init`]; also the test
/// isolation hook.
pub fn reset() {
    flush_thread();
    lock_global().reset();
}

// ---- recording entry points (called by span/metrics modules, which
// ---- have already checked the relevant STATE bit) ----

pub(crate) fn push_span(name: &str) {
    let _ = with_shard(|s| {
        let path = match s.stack.last() {
            Some(parent) => format!("{}/{name}", parent.path),
            None => name.to_owned(),
        };
        let start_ns = s.now_ns();
        s.stack.push(OpenSpan {
            path,
            start_ns,
            child_ns: 0,
        });
    });
}

pub(crate) fn pop_span() {
    let _ = with_shard(|s| {
        let Some(open) = s.stack.pop() else {
            return;
        };
        let end_ns = s.now_ns();
        let dur = end_ns.saturating_sub(open.start_ns);
        if let Some(parent) = s.stack.last_mut() {
            parent.child_ns += dur;
        }
        let stat = s.span_stats.entry(open.path.clone()).or_default();
        stat.count += 1;
        stat.total_ns += dur;
        stat.self_ns += dur.saturating_sub(open.child_ns);
        stat.max_ns = stat.max_ns.max(dur);
        let thread = s.thread;
        // Flight-recorder hook: one relaxed load when no recorder is
        // installed, a bounded ring push when one is.
        if crate::recorder::span_hook_enabled() {
            crate::recorder::record_span_close(&open.path, thread, open.start_ns, end_ns);
        }
        s.events.push(SpanEvent {
            path: open.path,
            thread,
            start_ns: open.start_ns,
            end_ns,
        });
    });
}

pub(crate) fn add_counter(name: &str, delta: u64) {
    let _ = with_shard(|s| {
        if let Some(existing) = s.counters.get_mut(name) {
            *existing += delta;
        } else {
            s.counters.insert(name.to_owned(), delta);
        }
    });
}

pub(crate) fn record_histogram(name: &str, edges: &[u64], value: u64) {
    let _ = with_shard(|s| {
        if let Some(existing) = s.histograms.get_mut(name) {
            existing.record(value);
        } else {
            let mut hist = Histogram::new(edges);
            hist.record(value);
            s.histograms.insert(name.to_owned(), hist);
        }
    });
}

/// A point-in-time copy of everything recorded so far (after flushing
/// the calling thread). Worker threads that have already exited are
/// included; still-running foreign threads are not.
#[derive(Clone, Debug, Default)]
pub struct Snapshot {
    /// Monotonic named counters.
    pub counters: BTreeMap<String, u64>,
    /// Fixed-bucket histograms.
    pub histograms: BTreeMap<String, Histogram>,
    /// Per-path aggregated span statistics.
    pub span_stats: BTreeMap<String, SpanStat>,
    /// Completed span events, sorted by start time then thread then
    /// path for a reproducible export order.
    pub events: Vec<SpanEvent>,
}

/// Nanoseconds elapsed since the observability epoch ([`crate::init`]
/// or the first recording, whichever came first). The same monotonic
/// timebase span events use, so time-series samples and spans line up.
#[must_use]
pub fn epoch_elapsed_ns() -> u64 {
    let epoch = lock_global().epoch;
    u64::try_from(epoch.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// Takes a [`Snapshot`] of the merged global state.
#[must_use]
pub fn snapshot() -> Snapshot {
    flush_thread();
    let g = lock_global();
    let mut events = g.events.clone();
    events.sort_by(|a, b| {
        (a.start_ns, a.thread, &a.path, a.end_ns).cmp(&(b.start_ns, b.thread, &b.path, b.end_ns))
    });
    Snapshot {
        counters: g.counters.clone(),
        histograms: g.histograms.clone(),
        span_stats: g.span_stats.clone(),
        events,
    }
}
