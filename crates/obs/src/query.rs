//! The NDJSON query engine behind `scanbist obs query`.
//!
//! A multi-process campaign leaves a pile of NDJSON streams — per
//! worker traces, audit trails, flight-recorder dumps. Interrogating
//! them ("which counters moved?", "what were the ten slowest spans
//! across the whole tree?", "sum `robust.retries` per process") should
//! not require jq or python: this module evaluates one declarative
//! [`QuerySpec`] over any number of streams and renders a single JSON
//! document to stdout.
//!
//! A query is a filter pipeline followed by one aggregation:
//!
//! * **filter** — by record `type`, by trace id (the `"trace"` stamp),
//!   by span-path glob (`*` wildcards), and by `--since`/`--until`
//!   bounds on the monotonic epoch clock (spans use `start_ns`;
//!   `alert`/`delta`/`tick` records use `at_ns`; records with no
//!   timestamp are excluded only when a bound is given);
//! * **group** — by any record field (`--group-by name` buckets
//!   counters per counter name);
//! * **aggregate** — `count`, or `sum`/`min`/`max`/nearest-rank
//!   `p<N>` quantiles over a numeric `--field`;
//! * **top-N slowest** — the N largest-`dur_ns` span records among the
//!   matches, a post-mortem staple.
//!
//! Counter totals aggregate bit-identically to the registry snapshot
//! they were exported from: integral values format without a
//! fractional part, and sums of u64 counters stay exact in `f64` well
//! past any realistic campaign (pinned by the `scan_rng::testkit`
//! property test in `crates/cli`).

use std::collections::BTreeMap;
use std::fmt;

use crate::export::escape;
use crate::json::{self, Value};
use crate::slo::fmt_num;

/// The aggregation applied to each group.
#[derive(Clone, Copy, Debug, Default, Eq, PartialEq)]
pub enum Agg {
    /// Number of matching records (the default; needs no `--field`).
    #[default]
    Count,
    /// Sum of the field over the group.
    Sum,
    /// Smallest field value in the group.
    Min,
    /// Largest field value in the group.
    Max,
    /// Nearest-rank percentile (1–100) of the field values.
    Quantile(u8),
}

impl Agg {
    /// Parses `count|sum|min|max|p<N>`.
    ///
    /// # Errors
    ///
    /// Returns a message for anything else.
    pub fn parse(text: &str) -> Result<Agg, String> {
        match text {
            "count" => Ok(Agg::Count),
            "sum" => Ok(Agg::Sum),
            "min" => Ok(Agg::Min),
            "max" => Ok(Agg::Max),
            _ => text
                .strip_prefix('p')
                .and_then(|p| p.parse::<u8>().ok())
                .filter(|&p| (1..=100).contains(&p))
                .map(Agg::Quantile)
                .ok_or_else(|| {
                    format!("unknown aggregation `{text}` (expected count|sum|min|max|p1..p100)")
                }),
        }
    }

    fn name(self) -> String {
        match self {
            Agg::Count => "count".to_owned(),
            Agg::Sum => "sum".to_owned(),
            Agg::Min => "min".to_owned(),
            Agg::Max => "max".to_owned(),
            Agg::Quantile(p) => format!("p{p}"),
        }
    }
}

/// One declarative query over a set of NDJSON streams.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct QuerySpec {
    /// Keep only these record types (empty = all types).
    pub types: Vec<String>,
    /// Keep only records stamped with this trace id.
    pub trace: Option<String>,
    /// Keep only records whose `path` matches this glob (`*`
    /// wildcards); records without a `path` are dropped.
    pub span_glob: Option<String>,
    /// Keep only records timestamped at or after this epoch offset.
    pub since_ns: Option<u64>,
    /// Keep only records timestamped at or before this epoch offset.
    pub until_ns: Option<u64>,
    /// Bucket matches by this field's value (missing → `(none)`).
    pub group_by: Option<String>,
    /// The aggregation per group.
    pub agg: Agg,
    /// Numeric field the aggregation reads (required for everything
    /// but `count`).
    pub field: Option<String>,
    /// Also report the N slowest span records among the matches.
    pub top_slowest: Option<usize>,
}

/// A query failure: malformed input or an inconsistent spec.
#[derive(Clone, Debug, Eq, PartialEq)]
pub struct QueryError(pub String);

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for QueryError {}

/// Matches `text` against `pattern`, where `*` matches any (possibly
/// empty) run of characters. The only metacharacter — span paths use
/// `[`/`]` literally (`experiment[s27]`), so no character classes.
#[must_use]
pub fn glob_match(pattern: &str, text: &str) -> bool {
    let p: Vec<char> = pattern.chars().collect();
    let t: Vec<char> = text.chars().collect();
    let (mut pi, mut ti) = (0usize, 0usize);
    let (mut star, mut mark) = (None::<usize>, 0usize);
    while ti < t.len() {
        if pi < p.len() && (p[pi] == t[ti]) {
            pi += 1;
            ti += 1;
        } else if pi < p.len() && p[pi] == '*' {
            star = Some(pi);
            mark = ti;
            pi += 1;
        } else if let Some(s) = star {
            pi = s + 1;
            mark += 1;
            ti = mark;
        } else {
            return false;
        }
    }
    while pi < p.len() && p[pi] == '*' {
        pi += 1;
    }
    pi == p.len()
}

/// The timestamp a record filters on, if it has one.
fn record_time(record: &Value) -> Option<u64> {
    let time_field = match record.get("type").and_then(Value::as_str) {
        Some("span") => "start_ns",
        Some("alert" | "delta" | "tick" | "flight") => "at_ns",
        _ => return None,
    };
    record.get(time_field).and_then(Value::as_f64).map(|v| {
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        {
            v.max(0.0) as u64
        }
    })
}

/// The group key of a record under `group_by`.
fn group_key(record: &Value, group_by: &str) -> String {
    match record.get(group_by) {
        Some(Value::String(s)) => s.clone(),
        Some(Value::Number(n)) => fmt_num(*n),
        Some(Value::Bool(b)) => b.to_string(),
        Some(Value::Null) | None => "(none)".to_owned(),
        Some(Value::Array(_)) => "(array)".to_owned(),
        Some(Value::Object(_)) => "(object)".to_owned(),
    }
}

struct Group {
    n: usize,
    values: Vec<f64>,
}

/// Runs `spec` over `streams` (label, NDJSON text) and renders the
/// result document (one JSON object, no trailing newline).
///
/// # Errors
///
/// Returns [`QueryError`] for unparseable lines (named by stream label
/// and line number) or a spec that needs a `--field` and has none.
pub fn run(streams: &[(String, String)], spec: &QuerySpec) -> Result<String, QueryError> {
    if spec.field.is_none() && spec.agg != Agg::Count {
        return Err(QueryError(format!(
            "aggregation `{}` needs `--field <name>`",
            spec.agg.name()
        )));
    }
    let mut records = 0usize;
    let mut matched = 0usize;
    let mut groups: BTreeMap<String, Group> = BTreeMap::new();
    let mut slowest: Vec<(u64, String, String)> = Vec::new();
    for (label, text) in streams {
        for (idx, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let record = json::parse(line).map_err(|e| {
                QueryError(format!("{label}:{}: {e}", idx + 1))
            })?;
            records += 1;
            if !matches(&record, spec) {
                continue;
            }
            matched += 1;
            let key = spec
                .group_by
                .as_deref()
                .map_or_else(|| "all".to_owned(), |g| group_key(&record, g));
            let group = groups.entry(key).or_insert_with(|| Group {
                n: 0,
                values: Vec::new(),
            });
            group.n += 1;
            if let Some(field) = &spec.field {
                if let Some(v) = record.get(field).and_then(Value::as_f64) {
                    group.values.push(v);
                }
            }
            if spec.top_slowest.is_some()
                && record.get("type").and_then(Value::as_str) == Some("span")
            {
                if let (Some(path), Some(dur)) = (
                    record.get("path").and_then(Value::as_str),
                    record.get("dur_ns").and_then(Value::as_f64),
                ) {
                    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
                    slowest.push((dur.max(0.0) as u64, path.to_owned(), label.clone()));
                }
            }
        }
    }
    Ok(render(spec, streams.len(), records, matched, &groups, slowest))
}

fn matches(record: &Value, spec: &QuerySpec) -> bool {
    if !spec.types.is_empty() {
        let ty = record.get("type").and_then(Value::as_str).unwrap_or("");
        if !spec.types.iter().any(|t| t == ty) {
            return false;
        }
    }
    if let Some(trace) = &spec.trace {
        if record.get("trace").and_then(Value::as_str) != Some(trace.as_str()) {
            return false;
        }
    }
    if let Some(glob) = &spec.span_glob {
        let Some(path) = record.get("path").and_then(Value::as_str) else {
            return false;
        };
        if !glob_match(glob, path) {
            return false;
        }
    }
    if spec.since_ns.is_some() || spec.until_ns.is_some() {
        let Some(t) = record_time(record) else {
            return false;
        };
        if spec.since_ns.is_some_and(|since| t < since)
            || spec.until_ns.is_some_and(|until| t > until)
        {
            return false;
        }
    }
    true
}

/// Nearest-rank percentile of `sorted` (ascending): the value at rank
/// `ceil(p/100 * n)`, 1-based.
fn nearest_rank(sorted: &[f64], p: u8) -> Option<f64> {
    if sorted.is_empty() {
        return None;
    }
    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    let rank = ((f64::from(p) / 100.0 * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    Some(sorted[rank - 1])
}

fn aggregate(agg: Agg, group: &Group) -> Option<f64> {
    match agg {
        #[allow(clippy::cast_precision_loss)]
        Agg::Count => Some(group.n as f64),
        Agg::Sum => Some(group.values.iter().sum()),
        Agg::Min => group.values.iter().copied().reduce(f64::min),
        Agg::Max => group.values.iter().copied().reduce(f64::max),
        Agg::Quantile(p) => {
            let mut sorted = group.values.clone();
            sorted.sort_by(f64::total_cmp);
            nearest_rank(&sorted, p)
        }
    }
}

fn render(
    spec: &QuerySpec,
    files: usize,
    records: usize,
    matched: usize,
    groups: &BTreeMap<String, Group>,
    mut slowest: Vec<(u64, String, String)>,
) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = write!(
        out,
        "{{\"version\":1,\"files\":{files},\"records\":{records},\"matched\":{matched},\"agg\":{}",
        escape(&spec.agg.name())
    );
    if let Some(field) = &spec.field {
        let _ = write!(out, ",\"field\":{}", escape(field));
    }
    if let Some(group_by) = &spec.group_by {
        let _ = write!(out, ",\"group_by\":{}", escape(group_by));
    }
    out.push_str(",\"groups\":[");
    for (i, (key, group)) in groups.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let value = aggregate(spec.agg, group)
            .map_or_else(|| "null".to_owned(), fmt_num);
        let _ = write!(
            out,
            "{{\"key\":{},\"n\":{},\"value\":{value}}}",
            escape(key),
            group.n
        );
    }
    out.push(']');
    if let Some(n) = spec.top_slowest {
        slowest.sort_by(|a, b| b.0.cmp(&a.0).then_with(|| a.1.cmp(&b.1)));
        slowest.truncate(n);
        out.push_str(",\"top_slowest\":[");
        for (i, (dur_ns, path, file)) in slowest.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"path\":{},\"dur_ns\":{dur_ns},\"file\":{}}}",
                escape(path),
                escape(file)
            );
        }
        out.push(']');
    }
    out.push('}');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stream(text: &str) -> Vec<(String, String)> {
        vec![("test.ndjson".to_owned(), text.to_owned())]
    }

    #[test]
    fn glob_matches_span_paths() {
        assert!(glob_match("*", "anything"));
        assert!(glob_match("a/*/c", "a/b/c"));
        assert!(glob_match("experiment[*]", "experiment[s27]"));
        assert!(glob_match("*fault_sim", "campaign/fault_sim"));
        assert!(glob_match("a*b*c", "axxbyyc"));
        assert!(!glob_match("a/*/c", "a/c"));
        assert!(!glob_match("abc", "abd"));
        assert!(!glob_match("abc", "abcd"));
        assert!(glob_match("", ""));
        assert!(!glob_match("", "x"));
    }

    #[test]
    fn counter_sum_groups_by_name() {
        let text = "\
{\"type\":\"counter\",\"name\":\"a\",\"value\":3}\n\
{\"type\":\"counter\",\"name\":\"b\",\"value\":10}\n\
{\"type\":\"counter\",\"name\":\"a\",\"value\":4}\n\
{\"type\":\"span\",\"path\":\"x\",\"start_ns\":0,\"end_ns\":5,\"dur_ns\":5}\n";
        let spec = QuerySpec {
            types: vec!["counter".into()],
            group_by: Some("name".into()),
            agg: Agg::Sum,
            field: Some("value".into()),
            ..QuerySpec::default()
        };
        let out = run(&stream(text), &spec).expect("query runs");
        let doc = crate::json::parse(&out).expect("valid json");
        assert_eq!(doc.get("records").and_then(Value::as_f64), Some(4.0));
        assert_eq!(doc.get("matched").and_then(Value::as_f64), Some(3.0));
        let groups = doc.get("groups").and_then(Value::as_array).expect("groups");
        assert_eq!(groups.len(), 2);
        assert_eq!(groups[0].get("key").and_then(Value::as_str), Some("a"));
        assert_eq!(groups[0].get("value").and_then(Value::as_f64), Some(7.0));
        assert_eq!(groups[1].get("key").and_then(Value::as_str), Some("b"));
        assert_eq!(groups[1].get("value").and_then(Value::as_f64), Some(10.0));
    }

    #[test]
    fn filters_compose() {
        let text = "\
{\"trace\":\"00000000000000aa\",\"type\":\"span\",\"path\":\"c/fault_sim\",\"start_ns\":100,\"end_ns\":200,\"dur_ns\":100}\n\
{\"trace\":\"00000000000000bb\",\"type\":\"span\",\"path\":\"c/fault_sim\",\"start_ns\":100,\"end_ns\":300,\"dur_ns\":200}\n\
{\"trace\":\"00000000000000aa\",\"type\":\"span\",\"path\":\"c/diagnose\",\"start_ns\":900,\"end_ns\":950,\"dur_ns\":50}\n\
{\"trace\":\"00000000000000aa\",\"type\":\"counter\",\"name\":\"n\",\"value\":1}\n";
        let spec = QuerySpec {
            types: vec!["span".into()],
            trace: Some("00000000000000aa".into()),
            span_glob: Some("c/*".into()),
            since_ns: Some(0),
            until_ns: Some(500),
            ..QuerySpec::default()
        };
        let out = run(&stream(text), &spec).expect("query runs");
        let doc = crate::json::parse(&out).expect("valid json");
        // Only the first span survives: trace bb fails the trace
        // filter, start_ns 900 fails --until, the counter fails --type.
        assert_eq!(doc.get("matched").and_then(Value::as_f64), Some(1.0));
    }

    #[test]
    fn top_slowest_and_quantiles() {
        use std::fmt::Write as _;
        let mut text = String::new();
        for (i, dur) in [50u64, 300, 100, 200, 250].iter().enumerate() {
            let _ = writeln!(
                text,
                "{{\"type\":\"span\",\"path\":\"s{i}\",\"start_ns\":0,\"end_ns\":{dur},\"dur_ns\":{dur}}}"
            );
        }
        let spec = QuerySpec {
            types: vec!["span".into()],
            agg: Agg::Quantile(50),
            field: Some("dur_ns".into()),
            top_slowest: Some(2),
            ..QuerySpec::default()
        };
        let out = run(&stream(&text), &spec).expect("query runs");
        let doc = crate::json::parse(&out).expect("valid json");
        let groups = doc.get("groups").and_then(Value::as_array).expect("groups");
        // Nearest-rank p50 of {50,100,200,250,300} = 200.
        assert_eq!(groups[0].get("value").and_then(Value::as_f64), Some(200.0));
        let top = doc
            .get("top_slowest")
            .and_then(Value::as_array)
            .expect("top");
        assert_eq!(top.len(), 2);
        assert_eq!(top[0].get("dur_ns").and_then(Value::as_f64), Some(300.0));
        assert_eq!(top[1].get("dur_ns").and_then(Value::as_f64), Some(250.0));
    }

    #[test]
    fn min_max_and_empty_groups() {
        let text = "{\"type\":\"counter\",\"name\":\"a\",\"value\":5}\n";
        let min = QuerySpec {
            agg: Agg::Min,
            field: Some("value".into()),
            ..QuerySpec::default()
        };
        let out = run(&stream(text), &min).expect("runs");
        assert!(out.contains("\"value\":5"), "{out}");
        let missing = QuerySpec {
            agg: Agg::Max,
            field: Some("nope".into()),
            ..QuerySpec::default()
        };
        let out = run(&stream(text), &missing).expect("runs");
        assert!(out.contains("\"value\":null"), "{out}");
    }

    #[test]
    fn rejects_bad_input_and_specs() {
        let err = run(
            &stream("{\"type\":\"counter\"\n"),
            &QuerySpec::default(),
        )
        .expect_err("bad json");
        assert!(err.0.contains("test.ndjson:1"), "{err}");
        let err = run(&stream(""), &QuerySpec {
            agg: Agg::Sum,
            ..QuerySpec::default()
        })
        .expect_err("sum without field");
        assert!(err.0.contains("--field"), "{err}");
        assert!(Agg::parse("p95") == Ok(Agg::Quantile(95)));
        assert!(Agg::parse("p0").is_err());
        assert!(Agg::parse("p101").is_err());
        assert!(Agg::parse("median").is_err());
    }
}
