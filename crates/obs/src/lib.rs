//! `scan-obs`: zero-dependency observability for the scan-BIST
//! workspace — hierarchical spans, metrics, campaign progress, and
//! machine-readable exporters.
//!
//! Fault-injection campaigns spend their time deep inside fault
//! simulation and per-partition diagnosis replay; this crate is the
//! measurement substrate that makes that time visible without
//! perturbing results. It is intentionally *not* the `tracing` /
//! `metrics` ecosystem: the workspace builds fully offline with no
//! registry access (see `ROADMAP.md`), so the facade, registry, and
//! exporters are vendored here in plain std Rust.
//!
//! # Design
//!
//! * **Off by default, one load when off.** Recording is gated by a
//!   process-global atomic mask read with `Ordering::Relaxed`; every
//!   entry point checks it first and returns immediately, so
//!   uninstrumented runs stay byte-identical and effectively free.
//! * **Sharded, contention-free recording.** Each thread records into
//!   a thread-local shard merged into global state when the thread
//!   exits — `std::thread::scope` campaign workers never contend on a
//!   lock (see [`registry`]).
//! * **Determinism-safe.** Instrumentation never touches RNG streams
//!   or result ordering; enabling observability changes only what is
//!   *reported*, never what is *computed*. The `scan-diagnosis` test
//!   `obs_determinism.rs` pins this end to end.
//!
//! # Example
//!
//! ```
//! use scan_obs::ObsConfig;
//!
//! let config = ObsConfig {
//!     trace: true,
//!     ..ObsConfig::disabled()
//! };
//! scan_obs::init(&config);
//! {
//!     let _campaign = scan_obs::span!("campaign");
//!     let _phase = scan_obs::span!("fault_sim");
//!     scan_obs::metrics::add("fault_sim.error_maps", 500);
//! }
//! let snapshot = scan_obs::snapshot();
//! assert_eq!(snapshot.span_stats["campaign/fault_sim"].count, 1);
//! scan_obs::finish(&config).unwrap();
//! # scan_obs::reset();
//! ```

#![warn(missing_docs)]
#![warn(clippy::pedantic)]
#![allow(clippy::must_use_candidate, clippy::module_name_repetitions)]
#![allow(clippy::cast_precision_loss)]

mod config;
pub mod context;
pub mod export;
pub mod json;
pub mod metrics;
pub mod profile;
pub mod progress;
pub mod query;
pub mod recorder;
pub mod registry;
pub mod report;
pub mod serve;
pub mod slo;
pub mod span;
pub mod timeseries;

pub use config::ObsConfig;
pub use context::TraceContext;
pub use profile::{Profile, ProfileEntry};
pub use registry::{flush_thread, snapshot, Histogram, Snapshot, SpanEvent, SpanStat};
pub use span::SpanGuard;

/// Current enable mask — nonzero if any recording is on. The
/// disabled-path cost of every instrumentation point.
#[inline]
#[must_use]
pub fn enabled() -> bool {
    registry::state() != 0
}

/// Installs `config` process-wide: resets all previously recorded data,
/// restarts the monotonic epoch, and enables the requested recording.
/// Call once at process start, before spawning recording threads.
pub fn init(config: &ObsConfig) {
    registry::reset();
    registry::set_state(config.state_mask());
}

/// Stops recording and exports everything `config` asks for: the
/// NDJSON event stream to [`ObsConfig::trace_path`], the JSON metrics
/// snapshot to [`ObsConfig::metrics_path`], the collapsed-stack
/// profile to [`ObsConfig::profile_path`], the span tree to stderr
/// when [`ObsConfig::summary`] is set, and the self-time hot-spot
/// table to stderr when [`ObsConfig::profile`] is set. Recorded data
/// is left in place (a later [`snapshot`] still sees it).
///
/// # Errors
///
/// Propagates I/O failures from writing the export files; the error
/// message names the offending path.
pub fn finish(config: &ObsConfig) -> std::io::Result<()> {
    registry::set_state(0);
    if !config.is_enabled() {
        return Ok(());
    }
    let snapshot = registry::snapshot();
    if let Some(path) = &config.trace_path {
        export::write_file(path, &export::session_ndjson(&snapshot))?;
    }
    if let Some(path) = &config.metrics_path {
        export::write_file(path, &export::metrics_json(&snapshot))?;
    }
    if config.profiling() {
        let profile = Profile::from_snapshot(&snapshot);
        if let Some(path) = &config.profile_path {
            export::write_file(path, &profile.folded())?;
        }
        if config.profile {
            eprint!("{}", profile.hotspot_table());
        }
    }
    if config.summary {
        eprint!("{}", export::tree_summary(&snapshot));
    }
    Ok(())
}

/// Disables recording and discards everything recorded so far,
/// including the trace context and any active time-series store.
/// Primarily for tests, which must leave the process-global state
/// clean for their neighbours.
pub fn reset() {
    registry::set_state(0);
    registry::reset();
    context::clear();
    timeseries::clear_active();
    slo::clear();
    recorder::clear();
}

/// The live-telemetry runtime of one session: the background
/// time-series [`timeseries::Sampler`] and the
/// [`serve::MetricsServer`], both optional per [`ObsConfig`]. Obtain
/// one from [`start_telemetry`] right after [`init`]; call
/// [`Telemetry::stop`] before [`finish`] so the final export sees the
/// folded server-thread metrics and a complete series.
#[derive(Default)]
pub struct Telemetry {
    sampler: Option<timeseries::Sampler>,
    server: Option<serve::MetricsServer>,
}

impl Telemetry {
    /// The metrics endpoint's bound address, when one is serving.
    #[must_use]
    pub fn addr(&self) -> Option<std::net::SocketAddr> {
        self.server.as_ref().map(serve::MetricsServer::addr)
    }

    /// Stops the endpoint and the sampler (taking one final sample).
    ///
    /// Honors the `SCANBIST_SLO_LINGER_MS` ops/test hook first: when
    /// the variable holds a millisecond count and a sampler is
    /// running, the session stays open that long (capped at 10 s)
    /// with the sampler still ticking, so shutdown-adjacent SLO
    /// transitions — a burn-rate rule resolving once its short window
    /// drains after the last burst of work — are observed instead of
    /// cut off. `scripts/verify.sh` uses it to pin an exact
    /// fire/resolve alert pair; production runs leave it unset.
    pub fn stop(self) {
        if self.sampler.is_some() {
            if let Some(ms) = std::env::var("SCANBIST_SLO_LINGER_MS")
                .ok()
                .and_then(|v| v.parse::<u64>().ok())
            {
                std::thread::sleep(std::time::Duration::from_millis(ms.min(10_000)));
            }
        }
        if let Some(server) = self.server {
            server.stop();
        }
        if let Some(sampler) = self.sampler {
            sampler.stop();
        }
    }
}

/// Starts whatever live telemetry `config` asks for: SLO alert rules
/// loaded from [`ObsConfig::slo_path`], the black-box flight recorder
/// at [`ObsConfig::flight_path`] (with its process-wide panic hook),
/// the background snapshotter when [`ObsConfig::sampling`], and the
/// `/metrics` endpoint when [`ObsConfig::serve_addr`] is set. Returns
/// an inert [`Telemetry`] when none is requested. Call after [`init`].
///
/// # Errors
///
/// Propagates the endpoint bind failure and `slo.toml` read/parse
/// failures (the offending path is in the message).
pub fn start_telemetry(config: &ObsConfig) -> std::io::Result<Telemetry> {
    let mut telemetry = Telemetry::default();
    if let Some(path) = &config.slo_path {
        slo::install(slo::SloConfig::load(path)?);
    }
    if let Some(path) = &config.flight_path {
        recorder::install(path, 0);
    }
    if config.sampling() {
        let store = std::sync::Arc::new(timeseries::TimeSeriesStore::new(config.ts_capacity));
        timeseries::set_active(std::sync::Arc::clone(&store));
        telemetry.sampler = Some(timeseries::Sampler::start(store, config.ts_interval_ms));
    }
    if let Some(addr) = &config.serve_addr {
        telemetry.server = Some(serve::MetricsServer::start(addr)?);
    }
    Ok(telemetry)
}
