//! A minimal JSON reader: enough to validate and round-trip the
//! exporters' output without any external dependency.
//!
//! Supports the full JSON value grammar (objects, arrays, strings with
//! escapes, numbers, booleans, null). Numbers are parsed as `f64`;
//! duplicate object keys keep their order (last lookup wins is not
//! needed by any caller). This is a *reader* for self-produced and
//! test data, not a hardened general-purpose parser — depth is bounded
//! to keep recursion safe.

use std::collections::BTreeMap;
use std::fmt;

/// Maximum nesting depth accepted (our exports nest 3 levels).
const MAX_DEPTH: usize = 64;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number.
    Number(f64),
    /// A string with escapes resolved.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object, in key order.
    Object(BTreeMap<String, Value>),
}

impl Value {
    /// Member lookup for objects; `None` otherwise.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(map) => map.get(key),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The array payload, if this is an array.
    #[must_use]
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The object payload, if this is an object.
    #[must_use]
    pub fn as_object(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Object(map) => Some(map),
            _ => None,
        }
    }
}

/// A parse failure with its byte offset.
#[derive(Clone, Debug, Eq, PartialEq)]
pub struct JsonError {
    /// Byte offset of the failure.
    pub at: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Parses one complete JSON document; trailing whitespace is allowed,
/// trailing garbage is an error.
///
/// # Errors
///
/// Returns [`JsonError`] on malformed input.
pub fn parse(text: &str) -> Result<Value, JsonError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            at: self.pos,
            message: message.to_owned(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), JsonError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", byte as char)))
        }
    }

    fn literal(&mut self, text: &str, value: Value) -> Result<Value, JsonError> {
        // lint:allow(L012): cursor invariant `pos <= len` holds between calls
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected `{text}`")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self, depth: usize) -> Result<Value, JsonError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Value, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(self.err("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => out.push(self.unicode_escape()?),
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ if b < 0x20 => return Err(self.err("raw control character in string")),
                _ => {
                    // Re-walk multi-byte UTF-8 sequences whole.
                    let start = self.pos - 1;
                    let len = utf8_len(b);
                    let end = start + len;
                    if end > self.bytes.len() {
                        return Err(self.err("truncated UTF-8 sequence"));
                    }
                    // lint:allow(L012): `end > len` is rejected just above
                    let chunk = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| self.err("invalid UTF-8 in string"))?;
                    out.push_str(chunk);
                    self.pos = end;
                }
            }
        }
    }

    fn unicode_escape(&mut self) -> Result<char, JsonError> {
        let code = self.hex4()?;
        // Surrogate pair handling for completeness.
        if (0xD800..0xDC00).contains(&code) {
            // lint:allow(L012): cursor invariant `pos <= len` holds between calls
            if self.bytes[self.pos..].starts_with(b"\\u") {
                self.pos += 2;
                let low = self.hex4()?;
                if (0xDC00..0xE000).contains(&low) {
                    let combined = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                    return char::from_u32(combined).ok_or_else(|| self.err("bad surrogate pair"));
                }
            }
            return Err(self.err("lone surrogate"));
        }
        char::from_u32(code).ok_or_else(|| self.err("bad unicode escape"))
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut code: u32 = 0;
        for _ in 0..4 {
            let Some(b) = self.peek() else {
                return Err(self.err("truncated \\u escape"));
            };
            let digit = match b {
                b'0'..=b'9' => u32::from(b - b'0'),
                b'a'..=b'f' => u32::from(b - b'a') + 10,
                b'A'..=b'F' => u32::from(b - b'A') + 10,
                _ => return Err(self.err("non-hex digit in \\u escape")),
            };
            code = code * 16 + digit;
            self.pos += 1;
        }
        Ok(code)
    }

    fn number(&mut self) -> Result<Value, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        // lint:allow(L012): `start <= pos <= len` — both are cursor positions
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| self.err("invalid number"))
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse(" true ").unwrap(), Value::Bool(true));
        assert_eq!(parse("false").unwrap(), Value::Bool(false));
        assert_eq!(parse("42").unwrap(), Value::Number(42.0));
        assert_eq!(parse("-0.5e2").unwrap(), Value::Number(-50.0));
        assert_eq!(parse("\"hi\"").unwrap(), Value::String("hi".into()));
    }

    #[test]
    fn parses_nested_structures() {
        let v = parse(r#"{"a":[1,2,{"b":null}],"c":"x"}"#).unwrap();
        assert_eq!(v.get("c").and_then(Value::as_str), Some("x"));
        let arr = v.get("a").and_then(Value::as_array).unwrap();
        assert_eq!(arr.len(), 3);
        assert_eq!(arr[2].get("b"), Some(&Value::Null));
    }

    #[test]
    fn resolves_escapes() {
        let v = parse(r#""a\n\t\"\\\u0041\u00e9""#).unwrap();
        assert_eq!(v.as_str(), Some("a\n\t\"\\Aé"));
        let pair = parse(r#""\ud83d\ude00""#).unwrap();
        assert_eq!(pair.as_str(), Some("😀"));
    }

    #[test]
    fn handles_unicode_passthrough() {
        assert_eq!(parse("\"héllo→\"").unwrap().as_str(), Some("héllo→"));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["", "{", "[1,", "{\"a\"}", "tru", "1 2", "\"\\x\"", "\"\u{1}\""] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn rejects_excessive_depth() {
        let deep = "[".repeat(100) + &"]".repeat(100);
        assert!(parse(&deep).is_err());
    }
}
