//! Hierarchical RAII spans with monotonic timing.
//!
//! A span measures the wall time between [`enter`] and the drop of the
//! returned [`SpanGuard`]. Spans opened while another span is live on
//! the same thread nest under it: the child's name is appended to the
//! parent's slash-separated path, and the child's duration is excluded
//! from the parent's *self* time. Each thread keeps its own span stack
//! (see [`crate::registry`]), so `std::thread::scope` workers nest
//! independently and without contention.
//!
//! When tracing is disabled ([`crate::ObsConfig::trace`] off) the entry
//! points cost one relaxed atomic load and return an inert guard.

use crate::registry;

/// RAII guard closing a span when dropped. Obtain via [`enter`],
/// [`enter_fmt`], or the [`span!`](crate::span!) macro.
#[must_use = "a span measures until this guard is dropped"]
#[derive(Debug)]
pub struct SpanGuard {
    active: bool,
}

impl SpanGuard {
    /// A guard that records nothing (tracing disabled).
    pub(crate) const INERT: SpanGuard = SpanGuard { active: false };
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if self.active {
            registry::pop_span();
        }
    }
}

/// Opens a span named `name` on the current thread.
pub fn enter(name: &str) -> SpanGuard {
    if !registry::trace_enabled() {
        return SpanGuard::INERT;
    }
    registry::push_span(name);
    SpanGuard { active: true }
}

/// Opens a span whose name is built lazily — the closure only runs when
/// tracing is enabled, so dynamic labels cost nothing when disabled.
pub fn enter_fmt(name: impl FnOnce() -> String) -> SpanGuard {
    if !registry::trace_enabled() {
        return SpanGuard::INERT;
    }
    registry::push_span(&name());
    SpanGuard { active: true }
}

/// Opens a span: `span!("fault_sim")`, or with a lazily formatted name
/// `span!("core[{}]", core_name)`. Bind the result (`let _span = …`) so
/// the guard lives for the region being measured.
#[macro_export]
macro_rules! span {
    ($name:literal) => {
        $crate::span::enter($name)
    };
    ($($arg:tt)*) => {
        $crate::span::enter_fmt(|| format!($($arg)*))
    };
}
