//! In-memory time series behind the sharded registry.
//!
//! The registry aggregates counters and histograms over a whole
//! session; this module adds the *time* axis so a live scraper (the
//! [`crate::serve`] endpoint) or a post-mortem dashboard (`scanbist
//! report`) can see how those aggregates evolved. A background
//! [`Sampler`] thread takes registry snapshots on a fixed interval and
//! appends one point per metric to a fixed-capacity [`Ring`] inside a
//! shared [`TimeSeriesStore`]; when a ring is full the oldest point is
//! dropped, bounding memory for arbitrarily long campaigns.
//!
//! Timestamps are monotonic offsets from the observability epoch
//! (`registry::epoch_elapsed_ns`), the same timebase span events use —
//! no wall clock enters the core (lint L003 stays clean) and samples
//! line up with spans in the merged NDJSON stream.
//!
//! Per histogram, each sample records the running count plus windowed
//! p50/p95/p99 estimates ([`hist_quantile`]); per counter, the running
//! total. [`TimeSeriesStore::rollups`] reduces each series over the
//! points currently in its ring to a last/min/max/rate summary for the
//! Prometheus exposition.
//!
//! The sampler sees what [`crate::registry::snapshot`] sees: data
//! already folded into the global state (worker threads fold on exit
//! or at an explicit `flush_thread`). Live foreign-thread shards are
//! invisible until they fold — totals are therefore *monotone* across
//! samples, never torn (pinned by the concurrent-snapshot property
//! test in `tests/properties.rs`).

use std::collections::{BTreeMap, VecDeque};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use crate::registry::{self, Histogram, Snapshot};

/// Default sampler interval when the config leaves it zero.
pub const DEFAULT_INTERVAL_MS: u64 = 50;
/// Default per-series ring capacity when the config leaves it zero.
pub const DEFAULT_CAPACITY: usize = 240;

/// One sampled point: monotonic offset from the obs epoch, value.
pub type Sample = (u64, u64);

/// A fixed-capacity sample ring; pushing past capacity drops the
/// oldest sample.
#[derive(Clone, Debug)]
pub struct Ring {
    capacity: usize,
    samples: VecDeque<Sample>,
}

impl Ring {
    /// An empty ring holding at most `capacity` samples.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        Ring {
            capacity: capacity.max(2),
            samples: VecDeque::new(),
        }
    }

    /// Appends a sample, evicting the oldest when full.
    pub fn push(&mut self, offset_ns: u64, value: u64) {
        if self.samples.len() == self.capacity {
            self.samples.pop_front();
        }
        self.samples.push_back((offset_ns, value));
    }

    /// The samples currently held, oldest first.
    #[must_use]
    pub fn samples(&self) -> Vec<Sample> {
        self.samples.iter().copied().collect()
    }

    /// Number of samples currently held.
    #[must_use]
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True if no samples have been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }
}

/// Windowed reduction of one series over the samples in its ring.
#[derive(Clone, Debug, PartialEq)]
pub struct SeriesRollup {
    /// Series name (counter name, or `hist#p95`-style derived series).
    pub name: String,
    /// Most recent sampled value.
    pub last: u64,
    /// Smallest value in the window.
    pub min: u64,
    /// Largest value in the window.
    pub max: u64,
    /// First-to-last delta over the window, per second. Meaningful for
    /// monotone (counter/count) series; may be negative for derived
    /// quantile series whose estimates move both ways.
    pub rate_per_sec: f64,
    /// Samples in the window.
    pub samples: usize,
    /// Window width: last offset minus first offset, nanoseconds.
    pub window_ns: u64,
}

/// Shared store of per-metric sample rings, appended to by the
/// [`Sampler`] thread and read by the `/metrics` endpoint and the
/// exporters.
pub struct TimeSeriesStore {
    inner: Mutex<BTreeMap<String, Ring>>,
    capacity: usize,
}

impl TimeSeriesStore {
    /// A store whose rings hold `capacity` samples each (0 selects
    /// [`DEFAULT_CAPACITY`]).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        TimeSeriesStore {
            inner: Mutex::new(BTreeMap::new()),
            capacity: if capacity == 0 {
                DEFAULT_CAPACITY
            } else {
                capacity
            },
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, BTreeMap<String, Ring>> {
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Appends one point per metric in `snapshot`, timestamped
    /// `offset_ns`: every counter's running total, and per histogram
    /// the running count plus p50/p95/p99 estimates as derived
    /// `name#q` series.
    pub fn sample(&self, snapshot: &Snapshot, offset_ns: u64) {
        let mut rings = self.lock();
        let capacity = self.capacity;
        let mut push = |name: String, value: u64| {
            rings
                .entry(name)
                .or_insert_with(|| Ring::new(capacity))
                .push(offset_ns, value);
        };
        for (name, value) in &snapshot.counters {
            push(name.clone(), *value);
        }
        for (name, hist) in &snapshot.histograms {
            push(format!("{name}#count"), hist.total);
            push(format!("{name}#p50"), hist_quantile(hist, 0.50));
            push(format!("{name}#p95"), hist_quantile(hist, 0.95));
            push(format!("{name}#p99"), hist_quantile(hist, 0.99));
        }
    }

    /// A copy of every series, oldest sample first.
    #[must_use]
    pub fn series(&self) -> BTreeMap<String, Vec<Sample>> {
        self.lock()
            .iter()
            .map(|(name, ring)| (name.clone(), ring.samples()))
            .collect()
    }

    /// Windowed rollups of every non-empty series.
    #[must_use]
    pub fn rollups(&self) -> Vec<SeriesRollup> {
        self.lock()
            .iter()
            .filter(|(_, ring)| !ring.is_empty())
            .map(|(name, ring)| {
                let samples = ring.samples();
                let (first_t, first_v) = samples[0];
                let (last_t, last_v) = samples[samples.len() - 1];
                let window_ns = last_t.saturating_sub(first_t);
                let rate_per_sec = if window_ns == 0 {
                    0.0
                } else {
                    (last_v as f64 - first_v as f64) * 1e9 / window_ns as f64
                };
                SeriesRollup {
                    name: name.clone(),
                    last: last_v,
                    min: samples.iter().map(|&(_, v)| v).min().unwrap_or(0),
                    max: samples.iter().map(|&(_, v)| v).max().unwrap_or(0),
                    rate_per_sec,
                    samples: samples.len(),
                    window_ns,
                }
            })
            .collect()
    }
}

/// Rate per second of `samples` over the trailing `window_ns` window.
///
/// Only samples whose offset lies within `window_ns` of the newest
/// sample participate. The rate is the first-to-last delta of that
/// subset divided by its *observed* span — when fewer samples than the
/// window exist the span is clamped to what was actually seen, never
/// extrapolated to the nominal window width. Zero when the subset
/// holds fewer than two samples or spans zero time.
#[must_use]
pub fn windowed_rate(samples: &[Sample], window_ns: u64) -> f64 {
    let Some(&(last_t, last_v)) = samples.last() else {
        return 0.0;
    };
    let cutoff = last_t.saturating_sub(window_ns);
    let start = samples.partition_point(|&(t, _)| t < cutoff);
    // lint:allow(L012): `partition_point` returns `start <= len`
    let window = &samples[start..];
    let Some(&(first_t, first_v)) = window.first() else {
        return 0.0;
    };
    let span_ns = last_t.saturating_sub(first_t);
    if window.len() < 2 || span_ns == 0 {
        return 0.0;
    }
    (last_v as f64 - first_v as f64) * 1e9 / span_ns as f64
}

/// Nearest-rank quantile estimate from a fixed-bucket histogram: the
/// inclusive upper edge of the bucket containing the `q`-quantile
/// observation (the last finite edge for overflow-bucket hits). Exact
/// to bucket resolution, which is what a sparkline needs.
#[must_use]
pub fn hist_quantile(hist: &Histogram, q: f64) -> u64 {
    if hist.total == 0 {
        return 0;
    }
    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    // bounded by `total` via the clamp; q is a small positive fraction
    let rank = ((q * hist.total as f64).ceil() as u64).clamp(1, hist.total);
    let mut seen = 0u64;
    for (i, count) in hist.counts.iter().enumerate() {
        seen += count;
        if seen >= rank {
            return hist.edges.get(i).or(hist.edges.last()).copied().unwrap_or(0);
        }
    }
    hist.edges.last().copied().unwrap_or(0)
}

// ---- the process-wide active store (set while a sampler runs, read
// ---- by the exporters and the /metrics endpoint) ----

static ACTIVE: Mutex<Option<Arc<TimeSeriesStore>>> = Mutex::new(None);

fn lock_active() -> std::sync::MutexGuard<'static, Option<Arc<TimeSeriesStore>>> {
    ACTIVE
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Installs `store` as the process-wide active time-series store.
pub fn set_active(store: Arc<TimeSeriesStore>) {
    *lock_active() = Some(store);
}

/// The active store, if a sampler session installed one.
#[must_use]
pub fn active() -> Option<Arc<TimeSeriesStore>> {
    lock_active().clone()
}

/// Uninstalls the active store. Called by [`crate::reset`].
pub fn clear_active() {
    *lock_active() = None;
}

/// The background snapshotter: one thread that samples the registry
/// into a [`TimeSeriesStore`] on a fixed interval until stopped.
pub struct Sampler {
    stop: Arc<(Mutex<bool>, Condvar)>,
    handle: Option<std::thread::JoinHandle<()>>,
    store: Arc<TimeSeriesStore>,
}

impl Sampler {
    /// Starts the sampler thread. `interval_ms == 0` selects
    /// [`DEFAULT_INTERVAL_MS`]. Takes an immediate first sample so even
    /// sessions shorter than one interval record a point. If the OS
    /// refuses to spawn the thread the sampler degrades to a synchronous
    /// one-shot (the immediate sample plus the final one on stop) and
    /// logs the failure to stderr — observability must never take the
    /// host process down (lint L010).
    #[must_use]
    pub fn start(store: Arc<TimeSeriesStore>, interval_ms: u64) -> Sampler {
        let interval = Duration::from_millis(if interval_ms == 0 {
            DEFAULT_INTERVAL_MS
        } else {
            interval_ms
        });
        let stop = Arc::new((Mutex::new(false), Condvar::new()));
        let thread_stop = Arc::clone(&stop);
        let thread_store = Arc::clone(&store);
        let handle = std::thread::Builder::new()
            .name("obs-sampler".into())
            .spawn(move || {
                sample_once(&thread_store);
                let (flag, cv) = &*thread_stop;
                let mut stopped = flag.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
                loop {
                    let (guard, timeout) = cv
                        .wait_timeout(stopped, interval)
                        .unwrap_or_else(std::sync::PoisonError::into_inner);
                    stopped = guard;
                    if *stopped {
                        break;
                    }
                    if timeout.timed_out() {
                        sample_once(&thread_store);
                    }
                }
            });
        let handle = match handle {
            Ok(handle) => Some(handle),
            Err(err) => {
                eprintln!("obs: cannot spawn obs-sampler thread ({err}); sampling degraded");
                sample_once(&store);
                None
            }
        };
        Sampler {
            stop,
            handle,
            store,
        }
    }

    /// Stops and joins the sampler thread, then takes one final sample
    /// so the series include the session's end state.
    pub fn stop(mut self) {
        self.signal_stop();
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
        sample_once(&self.store);
    }

    fn signal_stop(&self) {
        let (flag, cv) = &*self.stop;
        *flag.lock().unwrap_or_else(std::sync::PoisonError::into_inner) = true;
        cv.notify_all();
    }
}

impl Drop for Sampler {
    fn drop(&mut self) {
        self.signal_stop();
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

fn sample_once(store: &TimeSeriesStore) {
    let snapshot = registry::snapshot();
    let now_ns = registry::epoch_elapsed_ns();
    store.sample(&snapshot, now_ns);
    crate::slo::evaluate_tick(store, now_ns);
    crate::recorder::record_tick(&snapshot, now_ns);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_evicts_oldest_at_capacity() {
        let mut ring = Ring::new(3);
        for i in 0..5u64 {
            ring.push(i * 10, i);
        }
        assert_eq!(ring.samples(), vec![(20, 2), (30, 3), (40, 4)]);
        assert_eq!(ring.len(), 3);
    }

    #[test]
    fn rollups_report_window_rate() {
        let store = TimeSeriesStore::new(8);
        let mut snap = Snapshot::default();
        snap.counters.insert("work.items".into(), 100);
        store.sample(&snap, 1_000_000_000);
        snap.counters.insert("work.items".into(), 400);
        store.sample(&snap, 4_000_000_000);
        let rollups = store.rollups();
        assert_eq!(rollups.len(), 1);
        let r = &rollups[0];
        assert_eq!(r.name, "work.items");
        assert_eq!((r.last, r.min, r.max), (400, 100, 400));
        assert_eq!(r.samples, 2);
        assert_eq!(r.window_ns, 3_000_000_000);
        assert!((r.rate_per_sec - 100.0).abs() < 1e-9, "{}", r.rate_per_sec);
    }

    #[test]
    fn windowed_rate_clamps_to_observed_span() {
        // 0 samples: no rate.
        assert!((windowed_rate(&[], 1_000) - 0.0).abs() < f64::EPSILON);
        // 1 sample: no span to rate over.
        assert!((windowed_rate(&[(500, 10)], 1_000) - 0.0).abs() < f64::EPSILON);
        // window-1 samples (window would hold 4 at the 1s cadence, we
        // have 3 spanning 2s): the rate must use the observed 2s span,
        // not extrapolate over the nominal 4s window.
        let samples = [(1_000_000_000, 0), (2_000_000_000, 100), (3_000_000_000, 200)];
        let rate = windowed_rate(&samples, 4_000_000_000);
        assert!((rate - 100.0).abs() < 1e-9, "{rate}");
        // Samples older than the window are excluded before rating.
        let long = [
            (0, 0),
            (1_000_000_000, 1_000_000),
            (9_000_000_000, 1_000_000),
            (10_000_000_000, 1_000_000),
        ];
        let rate = windowed_rate(&long, 2_000_000_000);
        assert!((rate - 0.0).abs() < 1e-9, "{rate}");
        // Coincident timestamps cannot produce an infinite rate.
        assert!((windowed_rate(&[(5, 1), (5, 9)], 100) - 0.0).abs() < f64::EPSILON);
    }

    #[test]
    fn hist_quantiles_hit_bucket_edges() {
        let mut hist = Histogram {
            edges: vec![1, 2, 4, 8],
            counts: vec![0; 5],
            total: 0,
            sum: 0,
        };
        // 10 values in bucket <=2, 90 in bucket <=8.
        hist.counts[1] = 10;
        hist.counts[3] = 90;
        hist.total = 100;
        hist.sum = 0;
        assert_eq!(hist_quantile(&hist, 0.05), 2);
        assert_eq!(hist_quantile(&hist, 0.50), 8);
        assert_eq!(hist_quantile(&hist, 0.99), 8);
        let empty = Histogram {
            edges: vec![1],
            counts: vec![0, 0],
            total: 0,
            sum: 0,
        };
        assert_eq!(hist_quantile(&empty, 0.5), 0);
    }

    #[test]
    fn store_samples_histogram_derived_series() {
        let store = TimeSeriesStore::new(4);
        let mut snap = Snapshot::default();
        let mut hist = Histogram {
            edges: vec![1, 2],
            counts: vec![0, 0, 0],
            total: 0,
            sum: 0,
        };
        hist.counts[0] = 3;
        hist.total = 3;
        snap.histograms.insert("lat".into(), hist);
        store.sample(&snap, 5);
        let series = store.series();
        let names: Vec<&str> = series.keys().map(String::as_str).collect();
        assert_eq!(names, vec!["lat#count", "lat#p50", "lat#p95", "lat#p99"]);
        assert_eq!(series["lat#count"], vec![(5, 3)]);
    }
}
