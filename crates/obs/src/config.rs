//! Observability configuration.

use std::path::PathBuf;

/// What to record and where to export it. Everything defaults to off:
/// a process that never calls [`crate::init`] (or initializes with
/// [`ObsConfig::disabled`]) pays one relaxed atomic load per
/// would-be event and nothing else.
#[derive(Clone, Debug, Default, Eq, PartialEq)]
#[allow(clippy::struct_excessive_bools)] // independent CLI toggles, not a state machine
pub struct ObsConfig {
    /// Record hierarchical spans (implies metrics recording, so the
    /// NDJSON stream carries per-shard worker metrics alongside spans).
    pub trace: bool,
    /// Record counters and histograms.
    pub metrics: bool,
    /// Print rate-limited progress lines to stderr.
    pub progress: bool,
    /// Where [`crate::finish`] writes the NDJSON event stream
    /// (span + counter + histogram lines). `None` skips the stream.
    pub trace_path: Option<PathBuf>,
    /// Where [`crate::finish`] writes the JSON metrics snapshot.
    /// `None` skips the snapshot.
    pub metrics_path: Option<PathBuf>,
    /// Print the human-readable span tree to stderr in
    /// [`crate::finish`].
    pub summary: bool,
    /// Aggregate spans into a self-time profile (implies span
    /// recording) and print the hot-spot table to stderr in
    /// [`crate::finish`].
    pub profile: bool,
    /// Where [`crate::finish`] writes the collapsed-stack (flamegraph
    /// `folded` format) profile export. Implies [`ObsConfig::profile`]-
    /// style span recording; `None` skips the file.
    pub profile_path: Option<PathBuf>,
    /// Serve `/metrics` + `/healthz` on this `host:port` while the
    /// session runs (`0` port picks an ephemeral one). Implies metrics
    /// recording and time-series sampling; the bound address is logged
    /// to stderr. `None` (the default) starts no server.
    pub serve_addr: Option<String>,
    /// Record in-memory time series of every counter/histogram via the
    /// background snapshotter, exported as `ts` NDJSON records.
    /// Implied by [`ObsConfig::serve_addr`].
    pub timeseries: bool,
    /// Snapshotter interval in milliseconds; `0` (the default) selects
    /// [`crate::timeseries::DEFAULT_INTERVAL_MS`].
    pub ts_interval_ms: u64,
    /// Per-series ring capacity; `0` (the default) selects
    /// [`crate::timeseries::DEFAULT_CAPACITY`].
    pub ts_capacity: usize,
    /// Path of an `slo.toml` alert-rule file to load and evaluate on
    /// every sampler tick (see [`crate::slo`]). Implies time-series
    /// sampling; `None` (the default) installs no rules.
    pub slo_path: Option<PathBuf>,
    /// Where the black-box flight recorder dumps on panic or
    /// [`crate::recorder::dump_on_error`] (see [`crate::recorder`]).
    /// Implies span + metrics recording and time-series sampling so the
    /// ring has events to hold; `None` (the default) installs no
    /// recorder.
    pub flight_path: Option<PathBuf>,
}

impl ObsConfig {
    /// Everything off — the default.
    #[must_use]
    pub fn disabled() -> Self {
        ObsConfig::default()
    }

    /// True if any recording is requested.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.trace || self.metrics || self.progress || self.profiling() || self.sampling()
    }

    /// True if time-series sampling is requested: the `timeseries`
    /// toggle, a metrics endpoint (which needs series to serve), SLO
    /// rules (evaluated on the sampler tick), or the flight recorder
    /// (fed counter deltas by the sampler tick).
    #[must_use]
    pub fn sampling(&self) -> bool {
        self.timeseries
            || self.serve_addr.is_some()
            || self.slo_path.is_some()
            || self.flight_path.is_some()
    }

    /// True if span profiling is requested (the `profile` toggle or an
    /// explicit profile export path).
    #[must_use]
    pub fn profiling(&self) -> bool {
        self.profile || self.profile_path.is_some()
    }

    /// The [`crate::registry`] state mask this configuration enables.
    #[must_use]
    pub(crate) fn state_mask(&self) -> u8 {
        let mut mask = 0;
        if self.trace || self.profiling() || self.flight_path.is_some() {
            mask |= crate::registry::TRACE | crate::registry::METRICS;
        }
        if self.metrics || self.sampling() {
            mask |= crate::registry::METRICS;
        }
        if self.progress {
            mask |= crate::registry::PROGRESS;
        }
        mask
    }
}
