//! Observability configuration.

use std::path::PathBuf;

/// What to record and where to export it. Everything defaults to off:
/// a process that never calls [`crate::init`] (or initializes with
/// [`ObsConfig::disabled`]) pays one relaxed atomic load per
/// would-be event and nothing else.
#[derive(Clone, Debug, Default, Eq, PartialEq)]
#[allow(clippy::struct_excessive_bools)] // independent CLI toggles, not a state machine
pub struct ObsConfig {
    /// Record hierarchical spans (implies metrics recording, so the
    /// NDJSON stream carries per-shard worker metrics alongside spans).
    pub trace: bool,
    /// Record counters and histograms.
    pub metrics: bool,
    /// Print rate-limited progress lines to stderr.
    pub progress: bool,
    /// Where [`crate::finish`] writes the NDJSON event stream
    /// (span + counter + histogram lines). `None` skips the stream.
    pub trace_path: Option<PathBuf>,
    /// Where [`crate::finish`] writes the JSON metrics snapshot.
    /// `None` skips the snapshot.
    pub metrics_path: Option<PathBuf>,
    /// Print the human-readable span tree to stderr in
    /// [`crate::finish`].
    pub summary: bool,
}

impl ObsConfig {
    /// Everything off — the default.
    #[must_use]
    pub fn disabled() -> Self {
        ObsConfig::default()
    }

    /// True if any recording is requested.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.trace || self.metrics || self.progress
    }

    /// The [`crate::registry`] state mask this configuration enables.
    #[must_use]
    pub(crate) fn state_mask(&self) -> u8 {
        let mut mask = 0;
        if self.trace {
            mask |= crate::registry::TRACE | crate::registry::METRICS;
        }
        if self.metrics {
            mask |= crate::registry::METRICS;
        }
        if self.progress {
            mask |= crate::registry::PROGRESS;
        }
        mask
    }
}
