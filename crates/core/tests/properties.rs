//! Property-based tests for the diagnosis engine's invariants.

use proptest::prelude::*;

use scan_bist::Scheme;
use scan_diagnosis::{diagnose, prune_by_cover, BistConfig, ChainLayout, DiagnosisPlan};

fn any_scheme() -> impl Strategy<Value = Scheme> {
    prop_oneof![
        Just(Scheme::RandomSelection),
        Just(Scheme::IntervalBased),
        Just(Scheme::TWO_STEP_DEFAULT),
        Just(Scheme::FixedInterval),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Soundness without aliasing: when each partition-group containing
    /// an error actually fails (guaranteed unless contributions cancel),
    /// every error-capturing cell stays in the candidate set. With a
    /// 16-bit MISR and few error bits, cancellation requires identical
    /// duplicate bits, which the strategy excludes via a set.
    #[test]
    fn candidates_contain_error_cells(
        chain_len in 16usize..300,
        groups in 2u16..=8,
        partitions in 1usize..6,
        scheme in any_scheme(),
        bits in prop::collection::btree_set((0usize..300, 0usize..32), 1..12),
    ) {
        let bits: Vec<(usize, usize)> = bits
            .into_iter()
            .map(|(c, t)| (c % chain_len, t))
            .collect::<std::collections::BTreeSet<_>>()
            .into_iter()
            .collect();
        let plan = DiagnosisPlan::new(
            ChainLayout::single_chain(chain_len),
            32,
            &BistConfig::new(groups, partitions, scheme),
        ).unwrap();
        let outcome = plan.analyze(bits.iter().copied());
        let diag = diagnose(&plan, &outcome);
        // Identify cells whose every group fails (i.e. not aliased).
        for &(cell, _) in &bits {
            let aliased = (0..partitions).any(|p| {
                let g = plan.partitions()[p].group_of(cell);
                !outcome.failed(p, g)
            });
            if !aliased {
                prop_assert!(diag.candidates().contains(cell), "cell {cell} lost");
            }
        }
    }

    /// Pruning returns a subset that still explains every failing
    /// session.
    #[test]
    fn pruning_subset_and_explaining(
        chain_len in 16usize..200,
        groups in 2u16..=8,
        partitions in 1usize..6,
        scheme in any_scheme(),
        bits in prop::collection::btree_set((0usize..200, 0usize..16), 1..10),
    ) {
        let bits: Vec<(usize, usize)> = bits
            .into_iter()
            .map(|(c, t)| (c % chain_len, t))
            .collect::<std::collections::BTreeSet<_>>()
            .into_iter()
            .collect();
        let plan = DiagnosisPlan::new(
            ChainLayout::single_chain(chain_len),
            16,
            &BistConfig::new(groups, partitions, scheme),
        ).unwrap();
        let outcome = plan.analyze(bits.iter().copied());
        let diag = diagnose(&plan, &outcome);
        let pruned = prune_by_cover(&plan, &outcome, diag.candidates());
        prop_assert!(pruned.is_subset(diag.candidates()));
        for (p, partition) in plan.partitions().iter().enumerate() {
            for g in outcome.failing_groups(p) {
                // If the intersection left any candidate in this group,
                // pruning must keep at least one.
                let had = partition.members(g).any(|pos| diag.candidates().contains(pos));
                if had {
                    prop_assert!(
                        partition.members(g).any(|pos| pruned.contains(pos)),
                        "partition {p} group {g} lost all explanations"
                    );
                }
            }
        }
    }

    /// Prefix candidate counts are non-increasing in the number of
    /// partitions for every scheme.
    #[test]
    fn prefix_counts_monotone(
        chain_len in 16usize..200,
        groups in 2u16..=8,
        scheme in any_scheme(),
        bits in prop::collection::btree_set((0usize..200, 0usize..16), 1..10),
    ) {
        let bits: Vec<(usize, usize)> = bits
            .into_iter()
            .map(|(c, t)| (c % chain_len, t))
            .collect();
        let plan = DiagnosisPlan::new(
            ChainLayout::single_chain(chain_len),
            16,
            &BistConfig::new(groups, 6, scheme),
        ).unwrap();
        let outcome = plan.analyze(bits.iter().copied());
        let diag = diagnose(&plan, &outcome);
        for w in diag.prefix_counts().windows(2) {
            prop_assert!(w[1] <= w[0]);
        }
    }

    /// Multi-chain layouts: a cell's group assignment depends only on
    /// its shift position, so same-position cells of different chains
    /// are candidates or pruned together.
    #[test]
    fn same_position_cells_share_fate(
        chains in 2usize..=6,
        chain_len in 8usize..64,
        groups in 2u16..=4,
        bit_cell in 0usize..64,
        bit_pat in 0usize..8,
    ) {
        let mut coords = Vec::new();
        for c in 0..chains {
            for p in 0..chain_len {
                coords.push((c as u32, p as u32));
            }
        }
        let layout = ChainLayout::from_coords(coords);
        let num_cells = layout.num_cells();
        let plan = DiagnosisPlan::new(
            layout,
            8,
            &BistConfig::new(groups, 3, Scheme::RandomSelection),
        ).unwrap();
        let cell = bit_cell % num_cells;
        let outcome = plan.analyze([(cell, bit_pat)]);
        let diag = diagnose(&plan, &outcome);
        // The twin cell on another chain at the same shift position.
        let pos = cell % chain_len;
        let other_chain = (cell / chain_len + 1) % chains;
        let twin = other_chain * chain_len + pos;
        prop_assert_eq!(
            diag.candidates().contains(cell),
            diag.candidates().contains(twin),
            "cells at shift position {} disagree",
            pos
        );
    }
}
