//! Property-based tests for the diagnosis engine's invariants, on the
//! in-workspace shrink-free harness.

use scan_rng::testkit::{Gen, Runner};

use scan_bist::Scheme;
use scan_diagnosis::{diagnose, prune_by_cover, BistConfig, ChainLayout, DiagnosisPlan};

const SCHEMES: [Scheme; 4] = [
    Scheme::RandomSelection,
    Scheme::IntervalBased,
    Scheme::TWO_STEP_DEFAULT,
    Scheme::FixedInterval,
];

/// Draws the deduplicated sparse error bits used by the plan
/// properties: `(cell, pattern)` pairs with cells folded into the
/// chain.
fn error_bits(g: &mut Gen, chain_len: usize, max_pat: usize, max_count: usize) -> Vec<(usize, usize)> {
    let bits = g.set("bits", 1, max_count, |r| {
        (r.gen_index(300), r.gen_index(max_pat))
    });
    bits.into_iter()
        .map(|(c, t)| (c % chain_len, t))
        .collect::<std::collections::BTreeSet<_>>()
        .into_iter()
        .collect()
}

/// Soundness without aliasing: when each partition-group containing an
/// error actually fails (guaranteed unless contributions cancel),
/// every error-capturing cell stays in the candidate set.
#[test]
fn candidates_contain_error_cells() {
    Runner::new(48).run("candidates_contain_error_cells", |g| {
        let chain_len = g.usize("chain_len", 16, 299);
        let groups = g.u16("groups", 2, 8);
        let partitions = g.usize("partitions", 1, 5);
        let scheme = g.pick("scheme", &SCHEMES);
        let bits = error_bits(g, chain_len, 32, 11);
        let plan = DiagnosisPlan::new(
            ChainLayout::single_chain(chain_len),
            32,
            &BistConfig::new(groups, partitions, scheme),
        )
        .unwrap();
        let outcome = plan.analyze(bits.iter().copied());
        let diag = diagnose(&plan, &outcome);
        // Identify cells whose every group fails (i.e. not aliased).
        for &(cell, _) in &bits {
            let aliased = (0..partitions).any(|p| {
                let gr = plan.partitions()[p].group_of(cell);
                !outcome.failed(p, gr)
            });
            if !aliased {
                assert!(diag.candidates().contains(cell), "cell {cell} lost");
            }
        }
    });
}

/// Pruning returns a subset that still explains every failing session.
#[test]
fn pruning_subset_and_explaining() {
    Runner::new(48).run("pruning_subset_and_explaining", |g| {
        let chain_len = g.usize("chain_len", 16, 199);
        let groups = g.u16("groups", 2, 8);
        let partitions = g.usize("partitions", 1, 5);
        let scheme = g.pick("scheme", &SCHEMES);
        let bits = error_bits(g, chain_len, 16, 9);
        let plan = DiagnosisPlan::new(
            ChainLayout::single_chain(chain_len),
            16,
            &BistConfig::new(groups, partitions, scheme),
        )
        .unwrap();
        let outcome = plan.analyze(bits.iter().copied());
        let diag = diagnose(&plan, &outcome);
        let pruned = prune_by_cover(&plan, &outcome, diag.candidates());
        assert!(pruned.is_subset(diag.candidates()));
        for (p, partition) in plan.partitions().iter().enumerate() {
            for gr in outcome.failing_groups(p) {
                // If the intersection left any candidate in this group,
                // pruning must keep at least one.
                let had = partition
                    .members(gr)
                    .any(|pos| diag.candidates().contains(pos));
                if had {
                    assert!(
                        partition.members(gr).any(|pos| pruned.contains(pos)),
                        "partition {p} group {gr} lost all explanations"
                    );
                }
            }
        }
    });
}

/// Prefix candidate counts are non-increasing in the number of
/// partitions for every scheme.
#[test]
fn prefix_counts_monotone() {
    Runner::new(48).run("prefix_counts_monotone", |g| {
        let chain_len = g.usize("chain_len", 16, 199);
        let groups = g.u16("groups", 2, 8);
        let scheme = g.pick("scheme", &SCHEMES);
        let bits = error_bits(g, chain_len, 16, 9);
        let plan = DiagnosisPlan::new(
            ChainLayout::single_chain(chain_len),
            16,
            &BistConfig::new(groups, 6, scheme),
        )
        .unwrap();
        let outcome = plan.analyze(bits.iter().copied());
        let diag = diagnose(&plan, &outcome);
        for w in diag.prefix_counts().windows(2) {
            assert!(w[1] <= w[0]);
        }
    });
}

/// Multi-chain layouts: a cell's group assignment depends only on its
/// shift position, so same-position cells of different chains are
/// candidates or pruned together.
#[test]
fn same_position_cells_share_fate() {
    Runner::new(48).run("same_position_cells_share_fate", |g| {
        let chains = g.usize("chains", 2, 6);
        let chain_len = g.usize("chain_len", 8, 63);
        let groups = g.u16("groups", 2, 4);
        let bit_cell = g.usize("bit_cell", 0, 63);
        let bit_pat = g.usize("bit_pat", 0, 7);
        let mut coords = Vec::new();
        for c in 0..chains {
            for p in 0..chain_len {
                coords.push((c as u32, p as u32));
            }
        }
        let layout = ChainLayout::from_coords(coords);
        let num_cells = layout.num_cells();
        let plan = DiagnosisPlan::new(
            layout,
            8,
            &BistConfig::new(groups, 3, Scheme::RandomSelection),
        )
        .unwrap();
        let cell = bit_cell % num_cells;
        let outcome = plan.analyze([(cell, bit_pat)]);
        let diag = diagnose(&plan, &outcome);
        // The twin cell on another chain at the same shift position.
        let pos = cell % chain_len;
        let other_chain = (cell / chain_len + 1) % chains;
        let twin = other_chain * chain_len + pos;
        assert_eq!(
            diag.candidates().contains(cell),
            diag.candidates().contains(twin),
            "cells at shift position {pos} disagree"
        );
    });
}
