//! Observability must never perturb results: every RNG stream and every
//! diagnosis aggregate must be bit-identical with instrumentation fully
//! enabled or fully disabled. This test lives in its own integration
//! binary so the process-global obs state it toggles cannot leak into
//! neighbouring tests.

use scan_bist::Scheme;
use scan_diagnosis::{CampaignAudit, CampaignSpec, PreparedCampaign, SchemeReport};
use scan_netlist::generate;
use scan_obs::ObsConfig;

fn spec() -> CampaignSpec {
    let mut spec = CampaignSpec::new(64, 4, 4);
    spec.num_faults = 40;
    spec
}

struct Baseline {
    report: SchemeReport,
    parallel: SchemeReport,
    candidates: Vec<Vec<usize>>,
    audit: CampaignAudit,
}

fn run_once() -> Baseline {
    let netlist = generate::benchmark("s953");
    let campaign = PreparedCampaign::from_circuit(&netlist, &spec()).expect("campaign prepares");
    Baseline {
        report: campaign.run(Scheme::TWO_STEP_DEFAULT).expect("serial run"),
        parallel: campaign
            .run_parallel(Scheme::TWO_STEP_DEFAULT, 4)
            .expect("parallel run"),
        candidates: campaign
            .candidate_sets(Scheme::TWO_STEP_DEFAULT)
            .expect("candidate sets"),
        audit: campaign.audit(Scheme::TWO_STEP_DEFAULT).expect("audit replay"),
    }
}

#[allow(clippy::float_cmp)] // bit-identical results are the contract
fn assert_identical(a: &Baseline, b: &Baseline) {
    for (x, y) in [(&a.report, &b.report), (&a.parallel, &b.parallel)] {
        assert_eq!(x.dr, y.dr);
        assert_eq!(x.dr_pruned, y.dr_pruned);
        assert_eq!(x.dr_by_prefix, y.dr_by_prefix);
        assert_eq!(x.mean_candidates, y.mean_candidates);
        assert_eq!(x.mean_actual, y.mean_actual);
        assert_eq!(x.lost_cells, y.lost_cells);
        assert_eq!(x.faults, y.faults);
    }
    assert_eq!(a.candidates, b.candidates);
    assert_eq!(a.audit, b.audit);
    assert_eq!(a.audit.to_ndjson(), b.audit.to_ndjson());
}

#[test]
fn results_are_bit_identical_with_observability_on_or_off() {
    // Baseline: everything off (the default process state).
    scan_obs::reset();
    let disabled = run_once();

    // Everything on: tracing, metrics, progress, and span profiling
    // all recording. (`profile_path` stays unset so `finish` is never
    // needed; recording is what could perturb results.)
    let config = ObsConfig {
        trace: true,
        metrics: true,
        progress: true,
        profile: true,
        ..ObsConfig::disabled()
    };
    scan_obs::init(&config);
    let enabled = run_once();
    let snapshot = scan_obs::snapshot();
    scan_obs::reset();

    assert_identical(&disabled, &enabled);

    // The instrumented run must actually have recorded something —
    // otherwise this test proves nothing.
    assert!(snapshot.counters["diagnosis.cases"] > 0);
    assert!(snapshot.counters["fault_sim.error_maps"] > 0);
    assert!(snapshot.span_stats.keys().any(|p| p.contains("fault_sim")));
    assert!(snapshot.span_stats.keys().any(|p| p.contains("diagnose")));
    // Worker spans are roots on their own threads (each thread keeps
    // its own span stack).
    assert!(snapshot.span_stats.contains_key("worker"));
    assert!(snapshot.counters.contains_key("parallel.worker0.cases"));
    assert!(snapshot.histograms.contains_key("diagnosis.candidates_per_fault"));
    // The audit replay is itself instrumented and internally coherent.
    assert!(snapshot.span_stats.keys().any(|p| p.contains("audit")));
    for fault in &enabled.audit.faults {
        assert_eq!(fault.steps.len(), spec().partitions);
        assert_eq!(
            fault.steps.last().map(|s| s.candidates),
            Some(fault.final_candidates),
            "no X-masking here, so the last step is the final set"
        );
    }
    // The profiler view of the same snapshot is valid folded output.
    let profile = scan_obs::Profile::from_snapshot(&snapshot);
    scan_obs::profile::check_folded(&profile.folded()).expect("folded profile validates");

    // And a fresh uninstrumented run still matches (state fully reset).
    let after = run_once();
    assert_identical(&disabled, &after);
}
