//! Pinned-stream regression tests for the noise model.
//!
//! The noise harness derives every stochastic draw from
//! `(seed, fault, attempt, session)` through the workspace's
//! `SplitMix64` derive chain, so the exact stream values are part of
//! the reproducibility contract: campaign results, audit traces, and
//! the checked-in `results/noise_sweep.txt` all replay bit-for-bit
//! from a seed. These tests pin concrete seeds and verdicts so an
//! accidental reordering of draws, a changed domain-separation tag, or
//! a different derive chain fails loudly instead of silently shifting
//! every published number.

use scan_diagnosis::{NoiseConfig, NoiseModel, SessionOutcome, Verdict};

const PIN_SEED: u64 = 0xDA7E_2003;

fn flip_model(flip_rate: f64) -> NoiseModel {
    let mut cfg = NoiseConfig::noiseless(PIN_SEED);
    cfg.flip_rate = flip_rate;
    NoiseModel::new(cfg).expect("pinned config is valid")
}

#[test]
fn session_seeds_are_pinned() {
    let model = flip_model(0.25);
    // (fault, attempt, session) -> derived stream seed. Any change to
    // the derive chain or the verdict domain tag moves these.
    let pins: [(u64, u64, u64, u64); 5] = [
        (0, 0, 0, 0x6CC5_4289_5A46_57A5),
        (1, 0, 0, 0x939A_9346_35E9_EFA1),
        (0, 1, 0, 0x37F9_F524_B83B_C195),
        (0, 0, 1, 0xFEC4_D636_256B_088D),
        (7, 2, 5, 0xE8B3_C6C9_048A_BA92),
    ];
    for (fault, attempt, session, expected) in pins {
        assert_eq!(
            model.session_seed(fault, attempt, session),
            expected,
            "stream seed for (fault {fault}, attempt {attempt}, session {session}) moved"
        );
    }
}

#[test]
fn observed_verdict_grid_is_pinned() {
    let model = flip_model(0.25);
    let truth_grid: Vec<Vec<bool>> = (0..3)
        .map(|p| (0..4).map(|g| (p + g) % 2 == 0).collect())
        .collect();
    let truth = SessionOutcome::from_verdicts(truth_grid);
    let observed = model.observe(&truth, 3, 0);
    let expected = ["FPFP", "FPPF", "FPFP"];
    for (p, row) in expected.iter().enumerate() {
        let got: String = (0..4)
            .map(|g| match observed.verdict(p, g) {
                Verdict::Pass => 'P',
                Verdict::Fail => 'F',
                Verdict::Lost => 'L',
            })
            .collect();
        assert_eq!(&got, row, "observed verdicts for partition {p} moved");
    }
    // The truth grid itself differs from the observation (partition 1
    // is PFPF in truth), so the pin proves flips actually happened.
    assert_eq!(truth.num_groups(1), 4);
}

#[test]
fn corrupted_cell_selection_is_pinned() {
    let mut cfg = NoiseConfig::noiseless(PIN_SEED);
    cfg.x_corrupt_fraction = 0.25;
    let model = NoiseModel::new(cfg).expect("pinned config is valid");
    let cells: Vec<usize> = model.corrupted_cells(16).iter().collect();
    assert_eq!(cells, vec![2, 5, 11, 12], "X-corruption cell choice moved");
}

#[test]
fn streams_are_independent_of_query_order() {
    let model = flip_model(0.5);
    // Query the same (fault, attempt, session) coordinates in two very
    // different orders; verdicts must match coordinate by coordinate.
    let coords: Vec<(u64, u64, u64)> = (0..4)
        .flat_map(|f| (0..3).flat_map(move |a| (0..5).map(move |s| (f, a, s))))
        .collect();
    let forward: Vec<Verdict> = coords
        .iter()
        .map(|&(f, a, s)| model.observe_verdict(true, f, a, s))
        .collect();
    let backward: Vec<Verdict> = coords
        .iter()
        .rev()
        .map(|&(f, a, s)| model.observe_verdict(true, f, a, s))
        .collect();
    let backward_reversed: Vec<Verdict> = backward.into_iter().rev().collect();
    assert_eq!(forward, backward_reversed);
}
