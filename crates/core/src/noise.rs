//! Seeded noise injection over per-session BIST verdicts.
//!
//! The paper's intersection diagnosis assumes every session returns a
//! perfect pass/fail verdict. Real ATE runs do not: verdicts flip,
//! sessions abort, intermittent faults fire on only a fraction of
//! patterns, and X-generating cells corrupt signatures. This module
//! models those effects as a deterministic perturbation layer between
//! the true [`SessionOutcome`] and what the diagnosis engine observes.
//!
//! # Determinism contract
//!
//! Every random decision is drawn from a dedicated `scan-rng` stream
//! seeded by a [`scan_rng::derive`] chain over
//! `(seed ⊕ tag, fault, attempt, session)`. A session's observed
//! verdict therefore depends only on those four coordinates — never on
//! the order sessions are evaluated in or the thread that evaluates
//! them — so serial and sharded runs are bit-identical and the streams
//! can be frozen by pinned regression tests.

use scan_netlist::BitSet;
use scan_rng::ScanRng;

use crate::error::NoiseConfigError;
use crate::session::SessionOutcome;

/// Domain-separation tag for per-session verdict streams ("VERD").
const TAG_VERDICT: u64 = 0x5645_5244;
/// Domain-separation tag for the per-fault intermittency draw ("INTM").
const TAG_INTERMITTENT: u64 = 0x494E_544D;
/// Domain-separation tag for the X-corrupted cell selection ("XNOI").
const TAG_X_CELLS: u64 = 0x584E_4F49;

/// What the tester reports for one BIST session.
#[derive(Clone, Copy, Eq, PartialEq, Debug)]
pub enum Verdict {
    /// The session's signature matched the fault-free signature.
    Pass,
    /// The session's signature differed from the fault-free signature.
    Fail,
    /// The session aborted (tester dropout) and produced no verdict.
    Lost,
}

impl Verdict {
    /// The verdict a noiseless tester would report.
    #[must_use]
    pub fn from_truth(failed: bool) -> Self {
        if failed {
            Verdict::Fail
        } else {
            Verdict::Pass
        }
    }

    /// Stable lowercase label used in NDJSON audit records.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Verdict::Pass => "pass",
            Verdict::Fail => "fail",
            Verdict::Lost => "lost",
        }
    }
}

/// Noise rates applied to a diagnosis run. All probabilities are per
/// session (or per cell for [`x_corrupt_fraction`]) and must lie in
/// `[0, 1]`.
///
/// [`x_corrupt_fraction`]: NoiseConfig::x_corrupt_fraction
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct NoiseConfig {
    /// Root seed of every noise stream.
    pub seed: u64,
    /// Probability that a session's pass/fail verdict is inverted
    /// (MISR aliasing glitches, comparator noise).
    pub flip_rate: f64,
    /// Probability that a session aborts and reports [`Verdict::Lost`].
    pub dropout_rate: f64,
    /// Fraction of faults that behave intermittently: their failing
    /// sessions are observed passing with probability
    /// [`intermittent_miss`](NoiseConfig::intermittent_miss).
    pub intermittent_rate: f64,
    /// For an intermittent fault, the probability that a truly failing
    /// session is observed as passing (the fault did not fire).
    pub intermittent_miss: f64,
    /// Fraction of scan cells whose captured values are X-corrupted;
    /// selected exactly like the campaign's `x_mask_fraction` cells and
    /// excluded from candidate reasoning.
    pub x_corrupt_fraction: f64,
}

impl NoiseConfig {
    /// A configuration that perturbs nothing (all rates zero).
    #[must_use]
    pub fn noiseless(seed: u64) -> Self {
        NoiseConfig {
            seed,
            flip_rate: 0.0,
            dropout_rate: 0.0,
            intermittent_rate: 0.0,
            intermittent_miss: 0.0,
            x_corrupt_fraction: 0.0,
        }
    }

    /// Whether every rate is exactly zero, i.e. observed verdicts are
    /// guaranteed to equal the truth.
    #[must_use]
    pub fn is_noiseless(&self) -> bool {
        self.flip_rate == 0.0
            && self.dropout_rate == 0.0
            && (self.intermittent_rate == 0.0 || self.intermittent_miss == 0.0)
            && self.x_corrupt_fraction == 0.0
    }

    /// Validates that every rate is a probability in `[0, 1]`.
    ///
    /// # Errors
    ///
    /// Returns [`NoiseConfigError::InvalidRate`] naming the first field
    /// that is NaN or outside `[0, 1]`.
    pub fn validate(&self) -> Result<(), NoiseConfigError> {
        let fields = [
            ("flip_rate", self.flip_rate),
            ("dropout_rate", self.dropout_rate),
            ("intermittent_rate", self.intermittent_rate),
            ("intermittent_miss", self.intermittent_miss),
            ("x_corrupt_fraction", self.x_corrupt_fraction),
        ];
        for (field, value) in fields {
            if !(0.0..=1.0).contains(&value) {
                return Err(NoiseConfigError::InvalidRate { field, value });
            }
        }
        Ok(())
    }
}

/// Pass/fail/lost verdicts of every session of one (possibly noisy)
/// diagnosis attempt.
#[derive(Clone, Eq, PartialEq, Debug)]
pub struct ObservedOutcome {
    /// `verdicts[p][g]` — the observed verdict of group `g` of
    /// partition `p`.
    verdicts: Vec<Vec<Verdict>>,
}

impl ObservedOutcome {
    /// The grid a noiseless tester would report: the truth, verbatim.
    #[must_use]
    pub fn from_truth(truth: &SessionOutcome) -> Self {
        let verdicts = (0..truth.num_partitions())
            .map(|p| {
                (0..truth.num_groups(p))
                    .map(|g| Verdict::from_truth(truth.failed(p, g as u16)))
                    .collect()
            })
            .collect();
        ObservedOutcome { verdicts }
    }

    /// The observed verdict of group `g` of partition `p`.
    ///
    /// # Panics
    ///
    /// Panics if indices are out of range.
    #[must_use]
    pub fn verdict(&self, partition: usize, group: u16) -> Verdict {
        self.verdicts[partition][usize::from(group)]
    }

    /// Number of partitions.
    #[must_use]
    pub fn num_partitions(&self) -> usize {
        self.verdicts.len()
    }

    /// Number of session groups recorded for one partition.
    ///
    /// # Panics
    ///
    /// Panics if `partition` is out of range.
    #[must_use]
    pub fn num_groups(&self, partition: usize) -> usize {
        self.verdicts[partition].len()
    }

    /// Every session that reported [`Verdict::Lost`], as
    /// `(partition, group)` pairs in grid order.
    pub fn lost_sessions(&self) -> impl Iterator<Item = (usize, u16)> + '_ {
        self.verdicts.iter().enumerate().flat_map(|(p, row)| {
            row.iter()
                .enumerate()
                .filter(|&(_, &v)| v == Verdict::Lost)
                .map(move |(g, _)| (p, g as u16))
        })
    }

    /// Number of sessions that reported [`Verdict::Lost`].
    #[must_use]
    pub fn num_lost(&self) -> usize {
        self.lost_sessions().count()
    }

    /// Collapses the verdict grid into a [`SessionOutcome`] for the
    /// strict intersection, mapping [`Verdict::Fail`] to failing and
    /// both [`Verdict::Pass`] and [`Verdict::Lost`] to passing.
    /// Callers that care about lost sessions (the robust engine) must
    /// inspect [`lost_sessions`](Self::lost_sessions) separately.
    #[must_use]
    pub fn to_outcome(&self) -> SessionOutcome {
        SessionOutcome::from_verdicts(
            self.verdicts
                .iter()
                .map(|row| row.iter().map(|&v| v == Verdict::Fail).collect())
                .collect(),
        )
    }

    /// Replaces one session's verdict (used by the robust engine after
    /// a majority vote resolves a retried session).
    ///
    /// # Panics
    ///
    /// Panics if indices are out of range.
    pub fn set_verdict(&mut self, partition: usize, group: u16, verdict: Verdict) {
        self.verdicts[partition][usize::from(group)] = verdict;
    }
}

/// A validated noise configuration ready to perturb session verdicts.
#[derive(Clone, Copy, Debug)]
pub struct NoiseModel {
    config: NoiseConfig,
}

impl NoiseModel {
    /// Validates `config` and builds the model.
    ///
    /// # Errors
    ///
    /// Returns [`NoiseConfigError`] if any rate is NaN or outside
    /// `[0, 1]`.
    pub fn new(config: NoiseConfig) -> Result<Self, NoiseConfigError> {
        config.validate()?;
        Ok(NoiseModel { config })
    }

    /// The configuration this model was built from.
    #[must_use]
    pub fn config(&self) -> &NoiseConfig {
        &self.config
    }

    /// Whether this model perturbs nothing (see
    /// [`NoiseConfig::is_noiseless`]).
    #[must_use]
    pub fn is_noiseless(&self) -> bool {
        self.config.is_noiseless()
    }

    /// The seed of the verdict stream for one
    /// `(fault, attempt, session)` coordinate. Exposed so pinned-stream
    /// regression tests can freeze the derivation chain.
    #[must_use]
    pub fn session_seed(&self, fault: u64, attempt: u64, session: u64) -> u64 {
        let per_fault = scan_rng::derive(self.config.seed ^ TAG_VERDICT, fault);
        let per_attempt = scan_rng::derive(per_fault, attempt);
        scan_rng::derive(per_attempt, session)
    }

    /// Whether fault number `fault` behaves intermittently. A per-fault
    /// property: the same fault is intermittent in every session and
    /// every retry, which is what makes retrying informative.
    #[must_use]
    pub fn is_intermittent(&self, fault: u64) -> bool {
        if self.config.intermittent_rate <= 0.0 {
            return false;
        }
        let seed = scan_rng::derive(self.config.seed ^ TAG_INTERMITTENT, fault);
        ScanRng::seed_from_u64(seed).gen_bool(self.config.intermittent_rate)
    }

    /// The verdict the tester reports for one session whose true
    /// outcome is `failed`, on attempt `attempt` of fault `fault`.
    ///
    /// `session` is the linearized session index
    /// (`partition · groups + group`). The three noise draws (dropout,
    /// intermittent miss, flip) are taken unconditionally in a fixed
    /// order from a stream seeded only by
    /// `(seed, fault, attempt, session)`, so the result is independent
    /// of evaluation order and thread count.
    #[must_use]
    pub fn observe_verdict(&self, failed: bool, fault: u64, attempt: u64, session: u64) -> Verdict {
        let mut rng = ScanRng::seed_from_u64(self.session_seed(fault, attempt, session));
        let dropout = rng.gen_bool(self.config.dropout_rate);
        let miss = rng.gen_bool(self.config.intermittent_miss);
        let flip = rng.gen_bool(self.config.flip_rate);
        if dropout {
            return Verdict::Lost;
        }
        let mut observed = failed;
        if observed && miss && self.is_intermittent(fault) {
            observed = false;
        }
        if flip {
            observed = !observed;
        }
        Verdict::from_truth(observed)
    }

    /// Perturbs a full true outcome into the verdict grid the tester
    /// reports on attempt `attempt` of fault `fault`. Sessions are
    /// numbered in grid order (partition-major), so the grid is
    /// identical however it is computed.
    #[must_use]
    pub fn observe(&self, truth: &SessionOutcome, fault: u64, attempt: u64) -> ObservedOutcome {
        let mut session = 0u64;
        let mut verdicts = Vec::with_capacity(truth.num_partitions());
        for p in 0..truth.num_partitions() {
            let mut row = Vec::with_capacity(truth.num_groups(p));
            for g in 0..truth.num_groups(p) {
                row.push(self.observe_verdict(
                    truth.failed(p, g as u16),
                    fault,
                    attempt,
                    session,
                ));
                session += 1;
            }
            verdicts.push(row);
        }
        ObservedOutcome { verdicts }
    }

    /// The deterministic set of X-corrupted cells for a layout of
    /// `num_cells` cells — the same shuffle-prefix selection the
    /// campaign uses for `x_mask_fraction`, on a dedicated stream.
    /// These cells' captures are untrustworthy and are excluded from
    /// candidate sets exactly like X-masked cells.
    #[must_use]
    pub fn corrupted_cells(&self, num_cells: usize) -> BitSet {
        let mut set = BitSet::new(num_cells);
        if self.config.x_corrupt_fraction <= 0.0 || num_cells == 0 {
            return set;
        }
        #[allow(clippy::cast_sign_loss)] // fraction is validated ≥ 0
        let count =
            ((num_cells as f64 * self.config.x_corrupt_fraction).round() as usize).min(num_cells);
        let mut order: Vec<usize> = (0..num_cells).collect();
        let mut rng = ScanRng::seed_from_u64(self.config.seed ^ TAG_X_CELLS);
        rng.shuffle(&mut order);
        for &cell in order.iter().take(count) {
            set.insert(cell);
        }
        set
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::ChainLayout;
    use crate::session::{BistConfig, DiagnosisPlan};
    use scan_bist::Scheme;

    fn truth() -> (DiagnosisPlan, SessionOutcome) {
        let plan = DiagnosisPlan::new(
            ChainLayout::single_chain(100),
            8,
            &BistConfig::new(4, 4, Scheme::RandomSelection),
        )
        .unwrap();
        let outcome = plan.analyze([(42usize, 3usize), (42, 5), (17, 1)]);
        (plan, outcome)
    }

    fn noisy(seed: u64) -> NoiseModel {
        NoiseModel::new(NoiseConfig {
            seed,
            flip_rate: 0.3,
            dropout_rate: 0.2,
            intermittent_rate: 0.5,
            intermittent_miss: 0.5,
            x_corrupt_fraction: 0.1,
        })
        .unwrap()
    }

    #[test]
    fn noiseless_model_reports_the_truth() {
        let (_, outcome) = truth();
        let model = NoiseModel::new(NoiseConfig::noiseless(7)).unwrap();
        assert!(model.is_noiseless());
        let observed = model.observe(&outcome, 0, 0);
        assert_eq!(observed.num_lost(), 0);
        for p in 0..outcome.num_partitions() {
            for g in 0..observed.num_groups(p) {
                assert_eq!(
                    observed.verdict(p, g as u16),
                    Verdict::from_truth(outcome.failed(p, g as u16))
                );
            }
        }
        assert_eq!(observed.to_outcome().num_partitions(), outcome.num_partitions());
    }

    #[test]
    fn same_seed_same_grid_different_seed_differs() {
        let (_, outcome) = truth();
        let a = noisy(11).observe(&outcome, 3, 1);
        let b = noisy(11).observe(&outcome, 3, 1);
        let c = noisy(12).observe(&outcome, 3, 1);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn verdicts_are_order_independent() {
        // Drawing one session's verdict directly matches the grid —
        // the contract that makes sharded runs bit-identical.
        let (_, outcome) = truth();
        let model = noisy(11);
        let grid = model.observe(&outcome, 5, 2);
        let mut session = 0u64;
        for p in 0..outcome.num_partitions() {
            for g in 0..grid.num_groups(p) {
                let direct =
                    model.observe_verdict(outcome.failed(p, g as u16), 5, 2, session);
                assert_eq!(grid.verdict(p, g as u16), direct, "p={p} g={g}");
                session += 1;
            }
        }
    }

    #[test]
    fn attempts_and_faults_use_distinct_streams() {
        let (_, outcome) = truth();
        let model = noisy(11);
        assert_ne!(model.observe(&outcome, 0, 0), model.observe(&outcome, 0, 1));
        assert_ne!(model.observe(&outcome, 0, 0), model.observe(&outcome, 1, 0));
    }

    #[test]
    fn full_dropout_loses_every_session() {
        let (_, outcome) = truth();
        let mut config = NoiseConfig::noiseless(3);
        config.dropout_rate = 1.0;
        let model = NoiseModel::new(config).unwrap();
        let observed = model.observe(&outcome, 0, 0);
        let sessions: usize = (0..observed.num_partitions())
            .map(|p| observed.num_groups(p))
            .sum();
        assert_eq!(observed.num_lost(), sessions);
        assert!(observed.to_outcome().all_passed());
    }

    #[test]
    fn full_flip_inverts_every_verdict() {
        let (_, outcome) = truth();
        let mut config = NoiseConfig::noiseless(3);
        config.flip_rate = 1.0;
        let model = NoiseModel::new(config).unwrap();
        let observed = model.observe(&outcome, 0, 0);
        for p in 0..outcome.num_partitions() {
            for g in 0..observed.num_groups(p) {
                assert_eq!(
                    observed.verdict(p, g as u16),
                    Verdict::from_truth(!outcome.failed(p, g as u16))
                );
            }
        }
    }

    #[test]
    fn intermittent_fault_misses_all_failures_at_full_rates() {
        let (_, outcome) = truth();
        let mut config = NoiseConfig::noiseless(3);
        config.intermittent_rate = 1.0;
        config.intermittent_miss = 1.0;
        let model = NoiseModel::new(config).unwrap();
        assert!(model.is_intermittent(0));
        let observed = model.observe(&outcome, 0, 0);
        assert!(observed.to_outcome().all_passed());
        // A non-intermittent configuration leaves failures visible.
        let clean = NoiseModel::new(NoiseConfig::noiseless(3)).unwrap();
        assert!(!clean.observe(&outcome, 0, 0).to_outcome().all_passed());
    }

    #[test]
    fn corrupted_cells_are_deterministic_and_sized() {
        let model = noisy(9);
        let a = model.corrupted_cells(200);
        let b = model.corrupted_cells(200);
        assert_eq!(a.iter().collect::<Vec<_>>(), b.iter().collect::<Vec<_>>());
        assert_eq!(a.len(), 20);
        assert!(a.iter().all(|c| c < 200));
        let none = NoiseModel::new(NoiseConfig::noiseless(9)).unwrap();
        assert!(none.corrupted_cells(200).is_empty());
    }

    #[test]
    fn invalid_rates_are_rejected() {
        let mut config = NoiseConfig::noiseless(1);
        config.flip_rate = 1.5;
        assert_eq!(
            NoiseModel::new(config).unwrap_err(),
            crate::error::NoiseConfigError::InvalidRate {
                field: "flip_rate",
                value: 1.5
            }
        );
        config.flip_rate = f64::NAN;
        assert!(NoiseModel::new(config).is_err());
        config.flip_rate = 0.0;
        config.x_corrupt_fraction = -0.1;
        assert!(config.validate().is_err());
    }

    #[test]
    fn intermittency_is_a_per_fault_property() {
        let mut config = NoiseConfig::noiseless(41);
        config.intermittent_rate = 0.5;
        config.intermittent_miss = 0.5;
        let model = NoiseModel::new(config).unwrap();
        let flags: Vec<bool> = (0..64).map(|f| model.is_intermittent(f)).collect();
        assert!(flags.iter().any(|&f| f), "some fault should be intermittent");
        assert!(flags.iter().any(|&f| !f), "some fault should be solid");
        // Stable across calls.
        assert_eq!(flags, (0..64).map(|f| model.is_intermittent(f)).collect::<Vec<_>>());
    }
}
