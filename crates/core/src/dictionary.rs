//! Cause–effect fault dictionaries over partition-session syndromes.
//!
//! The paper's effect–cause flow identifies failing *cells*; the
//! classical complement is a *fault dictionary*: simulate every modelled
//! fault in advance, record the syndrome it would produce, and match
//! the observed syndrome against the dictionary to name suspect
//! *faults*. In a partition-based scan-BIST setup the natural syndrome
//! is the matrix of per-session error signatures (or, coarser, the
//! pass/fail bits) across all partitions and groups — so dictionary
//! resolution is another lens on how much diagnostic information a
//! partitioning scheme extracts.
//!
//! Syndrome maps are `BTreeMap`s, not `HashMap`s: the expected-suspect
//! statistics sum `f64` class weights in iteration order, and hash
//! iteration order varies per map instance — a determinism hazard
//! (lint `L004`) that would let the reported resolution drift between
//! otherwise identical runs.

use std::collections::BTreeMap;

use scan_sim::{Fault, FaultSimulator};

use crate::session::{DiagnosisPlan, SessionOutcome};

/// A prebuilt dictionary mapping syndromes to the faults that produce
/// them.
#[derive(Clone, Debug)]
pub struct FaultDictionary {
    /// Exact-signature syndrome → faults.
    exact: BTreeMap<Vec<u64>, Vec<Fault>>,
    /// Pass/fail-only syndrome → faults.
    passfail: BTreeMap<Vec<u64>, Vec<Fault>>,
    total: usize,
}

impl FaultDictionary {
    /// Simulates every fault in `faults` under `plan` and records both
    /// the exact-signature and the pass/fail syndromes.
    #[must_use]
    pub fn build(plan: &DiagnosisPlan, fsim: &FaultSimulator<'_>, faults: &[Fault]) -> Self {
        let mut exact: BTreeMap<Vec<u64>, Vec<Fault>> = BTreeMap::new();
        let mut passfail: BTreeMap<Vec<u64>, Vec<Fault>> = BTreeMap::new();
        for &fault in faults {
            let outcome = plan.analyze(fsim.error_map(&fault).iter_bits());
            exact
                .entry(Self::exact_key(plan, &outcome))
                .or_default()
                .push(fault);
            passfail
                .entry(Self::passfail_key(plan, &outcome))
                .or_default()
                .push(fault);
        }
        FaultDictionary {
            exact,
            passfail,
            total: faults.len(),
        }
    }

    fn exact_key(plan: &DiagnosisPlan, outcome: &SessionOutcome) -> Vec<u64> {
        let mut key = Vec::new();
        for (p, partition) in plan.partitions().iter().enumerate() {
            for g in 0..partition.num_groups() {
                key.push(outcome.error_signature(p, g));
            }
        }
        key
    }

    fn passfail_key(plan: &DiagnosisPlan, outcome: &SessionOutcome) -> Vec<u64> {
        let mut key = Vec::new();
        for (p, partition) in plan.partitions().iter().enumerate() {
            let mut word = 0u64;
            for g in 0..partition.num_groups().min(64) {
                if outcome.failed(p, g) {
                    word |= 1 << g;
                }
            }
            key.push(word);
        }
        key
    }

    /// Faults whose exact signature syndrome matches the observation.
    #[must_use]
    pub fn lookup_exact(&self, plan: &DiagnosisPlan, outcome: &SessionOutcome) -> &[Fault] {
        self.exact
            .get(&Self::exact_key(plan, outcome))
            .map_or(&[], Vec::as_slice)
    }

    /// Faults whose pass/fail syndrome matches the observation.
    #[must_use]
    pub fn lookup_passfail(&self, plan: &DiagnosisPlan, outcome: &SessionOutcome) -> &[Fault] {
        self.passfail
            .get(&Self::passfail_key(plan, outcome))
            .map_or(&[], Vec::as_slice)
    }

    /// Number of faults in the dictionary.
    #[must_use]
    pub fn num_faults(&self) -> usize {
        self.total
    }

    /// Number of distinct exact-signature syndromes (equivalence
    /// classes).
    #[must_use]
    pub fn num_exact_classes(&self) -> usize {
        self.exact.len()
    }

    /// Number of distinct pass/fail syndromes.
    #[must_use]
    pub fn num_passfail_classes(&self) -> usize {
        self.passfail.len()
    }

    /// Expected suspect-list size when the observed fault is drawn
    /// uniformly from the dictionary and matched by exact syndrome:
    /// `Σ |class|² / total`.
    #[must_use]
    pub fn expected_exact_suspects(&self) -> f64 {
        Self::expected(&self.exact, self.total)
    }

    /// Expected suspect-list size under pass/fail matching.
    #[must_use]
    pub fn expected_passfail_suspects(&self) -> f64 {
        Self::expected(&self.passfail, self.total)
    }

    fn expected(map: &BTreeMap<Vec<u64>, Vec<Fault>>, total: usize) -> f64 {
        if total == 0 {
            return 0.0;
        }
        map.values().map(|v| (v.len() * v.len()) as f64).sum::<f64>() / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::ChainLayout;
    use crate::lfsr_patterns;
    use crate::session::BistConfig;
    use scan_bist::Scheme;
    use scan_netlist::{bench, ScanView};
    use scan_sim::PatternSet;

    fn setup() -> (scan_netlist::Netlist, ScanView, PatternSet) {
        let n = bench::s27();
        let view = ScanView::natural(&n, true);
        let patterns = lfsr_patterns(&n, 64, 0xACE1);
        (n, view, patterns)
    }

    #[test]
    fn dictionary_identifies_its_own_faults() {
        let (n, view, patterns) = setup();
        let fsim = FaultSimulator::new(&n, &view, &patterns).unwrap();
        let faults = fsim.sample_detected_faults(20, 1);
        let plan = DiagnosisPlan::new(
            ChainLayout::single_chain(view.len()),
            64,
            &BistConfig::new(2, 3, Scheme::TWO_STEP_DEFAULT),
        )
        .unwrap();
        let dict = FaultDictionary::build(&plan, &fsim, &faults);
        assert_eq!(dict.num_faults(), faults.len());
        for fault in &faults {
            let outcome = plan.analyze(fsim.error_map(fault).iter_bits());
            let suspects = dict.lookup_exact(&plan, &outcome);
            assert!(
                suspects.contains(fault),
                "dictionary lost {}",
                fault.describe(&n)
            );
            // Pass/fail matching is coarser but still contains the
            // exact class.
            let coarse = dict.lookup_passfail(&plan, &outcome);
            assert!(coarse.contains(fault));
            assert!(coarse.len() >= suspects.len());
        }
    }

    #[test]
    fn exact_syndromes_refine_passfail() {
        let (n, view, patterns) = setup();
        let fsim = FaultSimulator::new(&n, &view, &patterns).unwrap();
        let faults = fsim.sample_detected_faults(30, 2);
        let plan = DiagnosisPlan::new(
            ChainLayout::single_chain(view.len()),
            64,
            &BistConfig::new(2, 2, Scheme::RandomSelection),
        )
        .unwrap();
        let dict = FaultDictionary::build(&plan, &fsim, &faults);
        assert!(dict.num_exact_classes() >= dict.num_passfail_classes());
        assert!(dict.expected_exact_suspects() <= dict.expected_passfail_suspects() + 1e-9);
        let _ = n;
    }

    /// Pins the determinism contract behind the `BTreeMap` switch
    /// (lint `L004`): the expected-suspect statistics are `f64` sums
    /// taken in syndrome iteration order, so they must be bit-identical
    /// however the dictionary was populated. With `HashMap` syndrome
    /// storage each map instance iterates in its own order and this
    /// test's exact-equality assertions would flake.
    #[test]
    fn suspect_statistics_independent_of_insertion_order() {
        let (n, view, patterns) = setup();
        let fsim = FaultSimulator::new(&n, &view, &patterns).unwrap();
        let faults = fsim.sample_detected_faults(30, 5);
        let mut reversed = faults.clone();
        reversed.reverse();
        let plan = DiagnosisPlan::new(
            ChainLayout::single_chain(view.len()),
            64,
            &BistConfig::new(2, 3, Scheme::TWO_STEP_DEFAULT),
        )
        .unwrap();
        let forward = FaultDictionary::build(&plan, &fsim, &faults);
        let backward = FaultDictionary::build(&plan, &fsim, &reversed);
        assert_eq!(forward.num_exact_classes(), backward.num_exact_classes());
        assert_eq!(
            forward.expected_exact_suspects().to_bits(),
            backward.expected_exact_suspects().to_bits(),
            "exact-suspect expectation must not depend on insertion order"
        );
        assert_eq!(
            forward.expected_passfail_suspects().to_bits(),
            backward.expected_passfail_suspects().to_bits(),
            "pass/fail-suspect expectation must not depend on insertion order"
        );
        let _ = n;
    }

    #[test]
    fn unknown_syndrome_yields_no_suspects() {
        let (n, view, patterns) = setup();
        let fsim = FaultSimulator::new(&n, &view, &patterns).unwrap();
        let faults = fsim.sample_detected_faults(5, 3);
        let plan = DiagnosisPlan::new(
            ChainLayout::single_chain(view.len()),
            64,
            &BistConfig::new(2, 2, Scheme::RandomSelection),
        )
        .unwrap();
        let dict = FaultDictionary::build(&plan, &fsim, &faults);
        // A fabricated error map unlike any single fault.
        let outcome = plan.analyze((0..view.len()).map(|c| (c, c % 3)));
        let suspects = dict.lookup_exact(&plan, &outcome);
        // Either empty or (unlikely) an accidental match; must not panic.
        let _ = suspects;
        let _ = n;
    }

    #[test]
    fn more_partitions_refine_classes() {
        let (n, view, patterns) = setup();
        let fsim = FaultSimulator::new(&n, &view, &patterns).unwrap();
        let faults = fsim.sample_detected_faults(30, 4);
        let classes = |partitions: usize| {
            let plan = DiagnosisPlan::new(
                ChainLayout::single_chain(view.len()),
                64,
                &BistConfig::new(2, partitions, Scheme::RandomSelection),
            )
            .unwrap();
            FaultDictionary::build(&plan, &fsim, &faults).num_passfail_classes()
        };
        assert!(classes(4) >= classes(1));
        let _ = n;
    }
}
