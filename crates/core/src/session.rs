//! BIST session scheduling and signature analysis.
//!
//! A diagnosis run executes `partitions × groups` BIST sessions: session
//! `(p, g)` re-applies the whole pattern set with only the cells of
//! group `g` of partition `p` feeding the MISR. A group *fails* when its
//! signature differs from the fault-free signature.
//!
//! Because the MISR is linear, the signature difference (the *error
//! signature*) of a session equals the XOR of the contributions of the
//! error bits it compacts (see [`MisrModel`]); [`ResponseModel`]
//! precomputes the contribution tables and [`DiagnosisPlan`] computes
//! every session's pass/fail verdict directly from the sparse error map
//! — bit-exact with replaying the hardware, including signature
//! aliasing, at a small fraction of the cost.

use scan_bist::partition::{generate_partitions, PartitionConfig};
use scan_bist::{MisrModel, Partition, Scheme};

use crate::error::BuildPlanError;
use crate::layout::ChainLayout;

/// Configuration of the diagnosis BIST setup.
#[derive(Clone, Copy, Debug)]
pub struct BistConfig {
    /// Groups per partition (`b`; one BIST session per group).
    pub groups: u16,
    /// Number of partitions.
    pub partitions: usize,
    /// Partitioning scheme.
    pub scheme: Scheme,
    /// MISR width (the error-signature register).
    pub misr_degree: u32,
    /// Degree of the partition-generating LFSR (the paper uses 16).
    pub partition_lfsr_degree: u32,
    /// IVR seed for partition generation.
    pub partition_seed: u64,
}

impl BistConfig {
    /// The paper's defaults: degree-16 partition LFSR, 16-bit MISR,
    /// seed 1.
    #[must_use]
    pub fn new(groups: u16, partitions: usize, scheme: Scheme) -> Self {
        BistConfig {
            groups,
            partitions,
            scheme,
            misr_degree: 16,
            partition_lfsr_degree: 16,
            partition_seed: 1,
        }
    }
}

/// Pass/fail outcome of every session of a diagnosis run.
#[derive(Clone, Eq, PartialEq, Debug)]
pub struct SessionOutcome {
    /// `fails[p][g]` — whether group `g` of partition `p` failed.
    fails: Vec<Vec<bool>>,
    /// `signatures[p][g]` — the error signature of that session
    /// (zero for passing groups).
    signatures: Vec<Vec<u64>>,
}

impl SessionOutcome {
    /// Builds an outcome from raw per-session error signatures
    /// (`signatures[partition][group]`; a group fails iff its signature
    /// is nonzero).
    #[must_use]
    pub fn from_signatures(signatures: Vec<Vec<u64>>) -> Self {
        let fails = signatures
            .iter()
            .map(|row| row.iter().map(|&s| s != 0).collect())
            .collect();
        SessionOutcome { fails, signatures }
    }

    /// Builds an outcome from bare per-session pass/fail verdicts
    /// (`fails[partition][group]`), e.g. verdicts perturbed by the
    /// [`noise`](crate::noise) layer where true signatures no longer
    /// exist. Error signatures are synthesized as `1` for failing
    /// sessions; callers that need real signatures must use
    /// [`SessionOutcome::from_signatures`].
    #[must_use]
    pub fn from_verdicts(fails: Vec<Vec<bool>>) -> Self {
        let signatures = fails
            .iter()
            .map(|row| row.iter().map(|&f| u64::from(f)).collect())
            .collect();
        SessionOutcome { fails, signatures }
    }

    /// Whether group `g` of partition `p` failed.
    ///
    /// # Panics
    ///
    /// Panics if indices are out of range.
    #[must_use]
    pub fn failed(&self, partition: usize, group: u16) -> bool {
        self.fails[partition][usize::from(group)]
    }

    /// The error signature of a session.
    ///
    /// # Panics
    ///
    /// Panics if indices are out of range.
    #[must_use]
    pub fn error_signature(&self, partition: usize, group: u16) -> u64 {
        self.signatures[partition][usize::from(group)]
    }

    /// Number of partitions.
    #[must_use]
    pub fn num_partitions(&self) -> usize {
        self.fails.len()
    }

    /// Number of session groups recorded for one partition.
    ///
    /// # Panics
    ///
    /// Panics if `partition` is out of range.
    #[must_use]
    pub fn num_groups(&self, partition: usize) -> usize {
        self.fails[partition].len()
    }

    /// Failing groups of one partition.
    pub fn failing_groups(&self, partition: usize) -> impl Iterator<Item = u16> + '_ {
        self.fails[partition]
            .iter()
            .enumerate()
            .filter(|&(_, &f)| f)
            .map(|(g, _)| g as u16)
    }

    /// Returns `true` if no session failed (the fault aliased away or
    /// was undetected).
    #[must_use]
    pub fn all_passed(&self) -> bool {
        self.fails.iter().flatten().all(|&f| !f)
    }
}

/// The linear response-compaction model of one BIST setup: chain
/// layout, pattern count, MISR, and the precomputed contribution tables
/// that make error-signature computation linear in the number of error
/// bits.
///
/// Shared by partition-based diagnosis ([`DiagnosisPlan`]), failing-
/// vector diagnosis ([`vector_diag`](crate::vector_diag)), and the
/// adaptive binary-search baseline
/// ([`adaptive`](crate::adaptive)).
#[derive(Clone, Debug)]
pub struct ResponseModel {
    layout: ChainLayout,
    num_patterns: usize,
    misr: MisrModel,
    /// `x^(max_len − 1 − pos) mod p` per shift position.
    pos_pow: Vec<u64>,
    /// `x^((num_patterns − 1 − t) · max_len) mod p` per pattern `t`.
    pat_pow: Vec<u64>,
    /// `x^stage mod p` per chain index.
    stage_pow: Vec<u64>,
}

impl ResponseModel {
    /// Builds the model and its contribution tables.
    ///
    /// # Errors
    ///
    /// Returns [`BuildPlanError`] if the layout is empty, the MISR is
    /// narrower than the number of chains, or the degree is
    /// unsupported.
    pub fn new(
        layout: ChainLayout,
        num_patterns: usize,
        misr_degree: u32,
    ) -> Result<Self, BuildPlanError> {
        if layout.num_cells() == 0 {
            return Err(BuildPlanError::EmptyLayout);
        }
        if num_patterns == 0 {
            return Err(BuildPlanError::DegenerateConfig);
        }
        if layout.num_chains() > misr_degree as usize {
            return Err(BuildPlanError::MisrTooNarrow {
                misr_degree,
                chains: layout.num_chains(),
            });
        }
        let misr = MisrModel::new(misr_degree)
            .map_err(|_| BuildPlanError::UnsupportedDegree { degree: misr_degree })?;

        // Contribution of an error bit at (chain, pos, pattern t):
        //   x^(stage + T − 1 − clock),  clock = t·L + pos,  T = P·L
        // = x^stage · x^((P−1−t)·L) · x^(L−1−pos)   (mod p)
        let len = layout.max_len();
        let mut pos_pow = vec![0u64; len];
        let mut acc = 1u64;
        for pos in (0..len).rev() {
            pos_pow[pos] = acc;
            acc = misr.mul_mod(acc, 2); // ·x
        }
        let x_pow_len = misr.x_pow_mod(len as u64);
        let mut pat_pow = vec![0u64; num_patterns];
        let mut acc = 1u64;
        for t in (0..num_patterns).rev() {
            pat_pow[t] = acc;
            acc = misr.mul_mod(acc, x_pow_len);
        }
        let stage_pow: Vec<u64> = (0..layout.num_chains() as u64)
            .map(|s| misr.x_pow_mod(s))
            .collect();
        Ok(ResponseModel {
            layout,
            num_patterns,
            misr,
            pos_pow,
            pat_pow,
            stage_pow,
        })
    }

    /// The chain layout.
    #[must_use]
    pub fn layout(&self) -> &ChainLayout {
        &self.layout
    }

    /// Pattern count per session.
    #[must_use]
    pub fn num_patterns(&self) -> usize {
        self.num_patterns
    }

    /// The MISR model.
    #[must_use]
    pub fn misr(&self) -> MisrModel {
        self.misr
    }

    /// Total MISR clocks per session.
    #[must_use]
    pub fn total_clocks(&self) -> u64 {
        (self.num_patterns * self.layout.max_len()) as u64
    }

    /// The contribution of one error bit (`cell`, `pattern`) to its
    /// session signature, via the precomputed tables.
    ///
    /// # Panics
    ///
    /// Panics if indices are out of range.
    #[must_use]
    pub fn contribution(&self, cell: usize, pattern: usize) -> u64 {
        let (chain, pos) = self.layout.coord(cell);
        let a = self
            .misr
            .mul_mod(self.pat_pow[pattern], self.pos_pow[pos as usize]);
        self.misr.mul_mod(a, self.stage_pow[chain as usize])
    }

    /// The error signature of one session that compacts exactly the
    /// error bits accepted by `selected`.
    #[must_use]
    pub fn masked_signature<I, F>(&self, error_bits: I, mut selected: F) -> u64
    where
        I: IntoIterator<Item = (usize, usize)>,
        F: FnMut(usize, usize) -> bool,
    {
        let mut signature = 0u64;
        for (cell, pattern) in error_bits {
            if selected(cell, pattern) {
                signature ^= self.contribution(cell, pattern);
            }
        }
        signature
    }
}

/// A fully elaborated diagnosis setup: the response model plus the
/// scheme's partitions over shift positions.
#[derive(Clone, Debug)]
pub struct DiagnosisPlan {
    model: ResponseModel,
    partitions: Vec<Partition>,
}

impl DiagnosisPlan {
    /// Builds the plan: generates the scheme's partitions over the
    /// layout's shift positions and precomputes contribution tables.
    ///
    /// # Errors
    ///
    /// Returns [`BuildPlanError`] if the configuration is degenerate,
    /// the MISR cannot host one stage per chain, or a degree is
    /// unsupported.
    pub fn new(
        layout: ChainLayout,
        num_patterns: usize,
        config: &BistConfig,
    ) -> Result<Self, BuildPlanError> {
        if config.partitions == 0 || config.groups == 0 {
            return Err(BuildPlanError::DegenerateConfig);
        }
        let model = ResponseModel::new(layout, num_patterns, config.misr_degree)?;
        let mut partition_config =
            PartitionConfig::new(model.layout().max_len(), config.groups);
        partition_config.lfsr_degree = config.partition_lfsr_degree;
        partition_config.seed = config.partition_seed;
        let partitions = generate_partitions(&partition_config, config.scheme, config.partitions);
        Ok(DiagnosisPlan { model, partitions })
    }

    /// The underlying response model.
    #[must_use]
    pub fn model(&self) -> &ResponseModel {
        &self.model
    }

    /// The chain layout diagnosed by this plan.
    #[must_use]
    pub fn layout(&self) -> &ChainLayout {
        self.model.layout()
    }

    /// The generated partitions.
    #[must_use]
    pub fn partitions(&self) -> &[Partition] {
        &self.partitions
    }

    /// Pattern count per session.
    #[must_use]
    pub fn num_patterns(&self) -> usize {
        self.model.num_patterns()
    }

    /// The MISR model.
    #[must_use]
    pub fn misr(&self) -> MisrModel {
        self.model.misr()
    }

    /// Total MISR clocks per session.
    #[must_use]
    pub fn total_clocks(&self) -> u64 {
        self.model.total_clocks()
    }

    /// The contribution of one error bit (`cell`, `pattern`) to its
    /// session signature, via the precomputed tables.
    ///
    /// # Panics
    ///
    /// Panics if indices are out of range.
    #[must_use]
    pub fn contribution(&self, cell: usize, pattern: usize) -> u64 {
        self.model.contribution(cell, pattern)
    }

    /// Runs every session over a sparse error map (iterator of
    /// `(global cell, pattern)` error bits) and returns the pass/fail
    /// verdicts.
    ///
    /// # Panics
    ///
    /// Panics if any error bit is out of range.
    #[must_use]
    pub fn analyze<I>(&self, error_bits: I) -> SessionOutcome
    where
        I: IntoIterator<Item = (usize, usize)>,
    {
        let groups = usize::from(
            self.partitions
                .iter()
                .map(Partition::num_groups)
                .max()
                .unwrap_or(0),
        );
        let mut signatures = vec![vec![0u64; groups]; self.partitions.len()];
        for (cell, pattern) in error_bits {
            let (_, pos) = self.model.layout().coord(cell);
            let contribution = self.model.contribution(cell, pattern);
            for (p, partition) in self.partitions.iter().enumerate() {
                let g = usize::from(partition.group_of(pos as usize));
                signatures[p][g] ^= contribution;
            }
        }
        SessionOutcome::from_signatures(signatures)
    }

    /// Word-level [`DiagnosisPlan::analyze`]: consumes *packed* error
    /// words — `(global cell, word_index, bits)` triples where bit `l`
    /// of `bits` is the error bit of pattern `word_index * 64 + l` —
    /// as produced by `ErrorMap::iter_words` or streamed straight from
    /// the PPSFP simulator's word sweep.
    ///
    /// MISR compaction is thereby fused into the word-level data path:
    /// signatures accumulate per packed word with no intermediate
    /// per-bit pair materialization. Bit-identical to
    /// [`DiagnosisPlan::analyze`] over the expanded bits (signature
    /// accumulation is XOR, so order never matters).
    ///
    /// # Panics
    ///
    /// Panics if any encoded error bit is out of range.
    #[must_use]
    pub fn analyze_packed<I>(&self, error_words: I) -> SessionOutcome
    where
        I: IntoIterator<Item = (usize, usize, u64)>,
    {
        self.analyze(error_words.into_iter().flat_map(|(cell, w, bits)| {
            std::iter::successors(
                (bits != 0).then_some(bits),
                |&rest| {
                    let rest = rest & (rest - 1);
                    (rest != 0).then_some(rest)
                },
            )
            .map(move |rest| (cell, w * 64 + rest.trailing_zeros() as usize))
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scan_bist::Misr;

    fn plan(chain_len: usize, patterns: usize, groups: u16, parts: usize) -> DiagnosisPlan {
        DiagnosisPlan::new(
            ChainLayout::single_chain(chain_len),
            patterns,
            &BistConfig::new(groups, parts, Scheme::RandomSelection),
        )
        .unwrap()
    }

    #[test]
    fn contribution_matches_model_directly() {
        let p = plan(37, 10, 4, 2);
        let total = p.total_clocks();
        for (cell, pattern) in [(0usize, 0usize), (36, 9), (17, 5), (0, 9), (36, 0)] {
            let clock = (pattern * 37 + cell) as u64;
            assert_eq!(
                p.contribution(cell, pattern),
                p.misr().contribution(total, clock, 0),
                "cell {cell} pattern {pattern}"
            );
        }
    }

    #[test]
    fn analyze_matches_bit_true_misr_emulation() {
        // Emulate the full hardware per session: shift every cell of
        // every pattern through a real MISR, masking unselected cells,
        // for both the golden and the faulty stream; compare verdicts.
        let chain_len = 23;
        let patterns = 7;
        let p = plan(chain_len, patterns, 4, 3);
        let error_bits = [(3usize, 0usize), (3, 4), (9, 2), (22, 6), (10, 2)];
        let outcome = p.analyze(error_bits.iter().copied());

        for (pi, part) in p.partitions().iter().enumerate() {
            for g in 0..part.num_groups() {
                let mut golden = Misr::from_model(p.misr());
                let mut faulty = Misr::from_model(p.misr());
                for t in 0..patterns {
                    for pos in 0..chain_len {
                        let selected = part.group_of(pos) == g;
                        // Arbitrary golden bit; the error flips it.
                        let gbit = (pos * 7 + t) % 3 == 0;
                        let ebit = error_bits.contains(&(pos, t));
                        golden.clock(u64::from(gbit && selected));
                        faulty.clock(u64::from((gbit ^ ebit) && selected));
                    }
                }
                let failed = golden.signature() != faulty.signature();
                assert_eq!(outcome.failed(pi, g), failed, "partition {pi} group {g}");
            }
        }
    }

    #[test]
    fn analyze_packed_matches_analyze() {
        // 100 patterns spans a full word plus a ragged tail; the packed
        // path must reproduce the per-bit path exactly, signatures
        // included.
        let p = plan(23, 100, 4, 3);
        let bits = [
            (3usize, 0usize),
            (3, 63),
            (3, 64),
            (9, 99),
            (22, 70),
            (10, 2),
        ];
        let mut words: Vec<(usize, usize, u64)> = Vec::new();
        for &(cell, pattern) in &bits {
            let (w, lane) = (pattern / 64, pattern % 64);
            if let Some(entry) = words.iter_mut().find(|(c, ww, _)| *c == cell && *ww == w) {
                entry.2 |= 1 << lane;
            } else {
                words.push((cell, w, 1 << lane));
            }
        }
        assert_eq!(
            p.analyze_packed(words.iter().copied()),
            p.analyze(bits.iter().copied())
        );
        assert_eq!(
            p.analyze_packed(std::iter::empty()),
            p.analyze(std::iter::empty())
        );
    }

    #[test]
    fn empty_error_map_passes_everything() {
        let p = plan(50, 8, 4, 4);
        let outcome = p.analyze(std::iter::empty());
        assert!(outcome.all_passed());
    }

    #[test]
    fn single_error_bit_fails_exactly_one_group_per_partition() {
        let p = plan(64, 4, 8, 5);
        let outcome = p.analyze([(13usize, 2usize)]);
        for pi in 0..outcome.num_partitions() {
            let failing: Vec<u16> = outcome.failing_groups(pi).collect();
            assert_eq!(failing.len(), 1);
            assert_eq!(failing[0], p.partitions()[pi].group_of(13));
        }
    }

    #[test]
    fn cancelling_bits_alias() {
        // Two identical (cell, pattern) bits XOR to nothing.
        let p = plan(10, 2, 2, 1);
        let outcome = p.analyze([(4usize, 1usize), (4, 1)]);
        assert!(outcome.all_passed());
    }

    #[test]
    fn misr_too_narrow_rejected() {
        let layout = ChainLayout::from_coords((0..40).map(|i| (i, 0)).collect());
        let err = DiagnosisPlan::new(layout, 4, &BistConfig::new(2, 1, Scheme::RandomSelection));
        assert!(matches!(err, Err(BuildPlanError::MisrTooNarrow { .. })));
    }

    #[test]
    fn degenerate_configs_rejected() {
        let layout = ChainLayout::single_chain(10);
        assert!(DiagnosisPlan::new(
            layout.clone(),
            0,
            &BistConfig::new(2, 1, Scheme::RandomSelection)
        )
        .is_err());
        assert!(DiagnosisPlan::new(
            layout,
            4,
            &BistConfig::new(2, 0, Scheme::RandomSelection)
        )
        .is_err());
    }

    #[test]
    fn multi_chain_contributions_use_stages() {
        let layout = ChainLayout::from_coords(vec![(0, 0), (1, 0), (0, 1), (1, 1)]);
        let plan =
            DiagnosisPlan::new(layout, 3, &BistConfig::new(2, 1, Scheme::RandomSelection))
                .unwrap();
        // Same (pos, pattern), different chains → different stages →
        // different contributions.
        assert_ne!(plan.contribution(0, 1), plan.contribution(1, 1));
        // Direct model cross-check for chain 1.
        let total = plan.total_clocks();
        assert_eq!(
            plan.contribution(1, 2),
            plan.misr().contribution(total, 2 * 2, 1)
        );
    }

    #[test]
    fn masked_signature_matches_analyze() {
        let p = plan(32, 6, 4, 2);
        let bits = [(5usize, 1usize), (6, 2), (20, 3)];
        let outcome = p.analyze(bits.iter().copied());
        for (pi, part) in p.partitions().iter().enumerate() {
            for g in 0..part.num_groups() {
                let sig = p.model().masked_signature(bits.iter().copied(), |cell, _| {
                    part.group_of(cell) == g
                });
                assert_eq!(sig, outcome.error_signature(pi, g));
            }
        }
    }
}
