//! Diagnosis time accounting.
//!
//! The paper argues two-step partitioning shortens diagnosis because a
//! target resolution is reached with fewer partitions (its Fig. 5).
//! This module converts partition counts into tester clock cycles for a
//! given scan geometry, so schemes can be compared in the unit that
//! matters on the floor — and so the `TestRail` (one shared session for
//! all cores) can be compared against the per-core test-bus alternative
//! the paper's Section 5 dismisses for its "frequent reloading".

/// Scan/BIST geometry a diagnosis run executes on.
#[derive(Clone, Copy, Debug)]
pub struct DiagnosisCostModel {
    /// Shift cycles per pattern unload (longest chain length).
    pub chain_len: usize,
    /// Patterns applied per BIST session.
    pub num_patterns: usize,
    /// Groups per partition (sessions per partition).
    pub groups: u16,
    /// Cycles to unload one signature to the tester.
    pub signature_unload: usize,
}

impl DiagnosisCostModel {
    /// Capture + shift cycles of one BIST session.
    ///
    /// Every pattern costs `chain_len` shift cycles (load of pattern
    /// `i+1` overlaps the unload of pattern `i`) plus one capture
    /// cycle; the session ends with one signature unload.
    #[must_use]
    pub fn session_cycles(&self) -> usize {
        self.num_patterns * (self.chain_len + 1) + self.signature_unload
    }

    /// Cycles to execute a full partition (one session per group).
    #[must_use]
    pub fn partition_cycles(&self) -> usize {
        usize::from(self.groups) * self.session_cycles()
    }

    /// Cycles to execute `partitions` partitions — the diagnosis time
    /// the paper's Fig. 5 partition counts translate into.
    #[must_use]
    pub fn diagnosis_cycles(&self, partitions: usize) -> usize {
        partitions * self.partition_cycles()
    }
}

/// Cost comparison of the two SOC test-access styles discussed in §5 of
/// the paper.
#[derive(Clone, Copy, Debug)]
pub struct SocAccessCost {
    /// Diagnosis cycles with the `TestRail`: every core tested in the
    /// same sessions through the meta scan chain(s).
    pub testrail_cycles: usize,
    /// Diagnosis cycles with a per-core test bus: each core diagnosed
    /// in its own session series, plus a pattern-reload penalty between
    /// cores.
    pub test_bus_cycles: usize,
}

/// Compares `TestRail` vs per-core test-bus diagnosis for an SOC whose
/// cores contribute `core_chain_lens` positions, using the same session
/// shape (`num_patterns`, `groups`, `partitions`) for both styles and a
/// fixed `reload_penalty` in cycles whenever the tester switches cores
/// on the test bus.
#[must_use]
pub fn soc_access_cost(
    core_chain_lens: &[usize],
    num_patterns: usize,
    groups: u16,
    partitions: usize,
    signature_unload: usize,
    reload_penalty: usize,
) -> SocAccessCost {
    let meta_len: usize = core_chain_lens.iter().sum();
    let rail = DiagnosisCostModel {
        chain_len: meta_len,
        num_patterns,
        groups,
        signature_unload,
    };
    let testrail_cycles = rail.diagnosis_cycles(partitions);
    let test_bus_cycles = core_chain_lens
        .iter()
        .map(|&len| {
            let bus = DiagnosisCostModel {
                chain_len: len,
                num_patterns,
                groups,
                signature_unload,
            };
            bus.diagnosis_cycles(partitions) + reload_penalty
        })
        .sum();
    SocAccessCost {
        testrail_cycles,
        test_bus_cycles,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> DiagnosisCostModel {
        DiagnosisCostModel {
            chain_len: 100,
            num_patterns: 128,
            groups: 8,
            signature_unload: 16,
        }
    }

    #[test]
    fn session_cycles_accounting() {
        let m = model();
        assert_eq!(m.session_cycles(), 128 * 101 + 16);
        assert_eq!(m.partition_cycles(), 8 * m.session_cycles());
        assert_eq!(m.diagnosis_cycles(4), 4 * m.partition_cycles());
    }

    #[test]
    fn fewer_partitions_means_less_time() {
        let m = model();
        assert!(m.diagnosis_cycles(5) < m.diagnosis_cycles(7));
        // A scheme saving 2 of 7 partitions saves 2/7 of the time.
        let saved = m.diagnosis_cycles(7) - m.diagnosis_cycles(5);
        assert_eq!(saved, 2 * m.partition_cycles());
    }

    #[test]
    fn testrail_beats_test_bus_without_reloads_equalized() {
        // Same total scan volume; the bus pays per-core reloads and the
        // per-core session overhead (captures + signature unloads per
        // core), so the rail is cheaper or equal.
        let cores = [1000usize, 1200, 800];
        let cost = soc_access_cost(&cores, 128, 8, 4, 16, 50_000);
        assert!(
            cost.testrail_cycles < cost.test_bus_cycles,
            "rail {} vs bus {}",
            cost.testrail_cycles,
            cost.test_bus_cycles
        );
    }

    #[test]
    fn zero_reload_still_counts_per_core_overheads() {
        let cores = [100usize, 100];
        let cost = soc_access_cost(&cores, 16, 4, 2, 16, 0);
        // Shift volume matches, but the bus pays capture/unload twice.
        assert!(cost.test_bus_cycles > cost.testrail_cycles);
    }
}
