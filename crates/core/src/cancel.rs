//! Cooperative cancellation for long-running diagnosis work.
//!
//! A [`CancelToken`] is a cheap, cloneable flag that a controller (a
//! deadline reaper thread, a draining daemon, a Ctrl-C handler) flips
//! once and workers poll between natural checkpoints — the diagnosis
//! engines check it **between partition sessions**, never mid-session,
//! so a cancelled run stops at a bit-identical prefix of the
//! uncancelled one. The token carries no clock: *when* to cancel is
//! the caller's policy (this crate stays wall-clock free); the token
//! only transports the decision.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// A shared one-way cancellation flag.
///
/// Cloning is cheap (one `Arc` bump) and every clone observes the same
/// flag. Once cancelled a token never resets; create a fresh token per
/// unit of cancellable work.
#[derive(Clone, Debug, Default)]
pub struct CancelToken {
    cancelled: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, un-cancelled token.
    #[must_use]
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// Requests cancellation. Idempotent; visible to every clone.
    pub fn cancel(&self) {
        self.cancelled.store(true, Ordering::Release);
    }

    /// Whether cancellation has been requested. One relaxed-acquire
    /// atomic load — cheap enough to poll per partition.
    #[must_use]
    pub fn is_cancelled(&self) -> bool {
        self.cancelled.load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_token_is_live_and_cancel_is_sticky() {
        let token = CancelToken::new();
        assert!(!token.is_cancelled());
        token.cancel();
        assert!(token.is_cancelled());
        token.cancel();
        assert!(token.is_cancelled(), "cancel is idempotent");
    }

    #[test]
    fn clones_share_the_flag() {
        let token = CancelToken::new();
        let observer = token.clone();
        assert!(!observer.is_cancelled());
        token.cancel();
        assert!(observer.is_cancelled());
    }

    #[test]
    fn cross_thread_visibility() {
        let token = CancelToken::new();
        let remote = token.clone();
        std::thread::scope(|s| {
            s.spawn(move || remote.cancel());
        });
        assert!(token.is_cancelled());
    }
}
