//! Candidate computation from session outcomes.

use scan_netlist::BitSet;

use crate::session::{DiagnosisPlan, SessionOutcome};

/// The result of intersecting failing groups across partitions.
#[derive(Clone, Eq, PartialEq, Debug)]
pub struct Diagnosis {
    candidates: BitSet,
    prefix_counts: Vec<usize>,
}

impl Diagnosis {
    /// The candidate failing cells after all partitions: a cell remains
    /// a candidate iff it lies in a *failing* group of **every**
    /// partition (the inclusion–exclusion pruning of \[5\]).
    #[must_use]
    pub fn candidates(&self) -> &BitSet {
        &self.candidates
    }

    /// Number of candidates after all partitions.
    #[must_use]
    pub fn num_candidates(&self) -> usize {
        self.candidates.len()
    }

    /// Candidate count after only the first `k` partitions
    /// (`prefix_counts()[k−1]`); used to measure how quickly a scheme
    /// converges (the paper's Fig. 5).
    #[must_use]
    pub fn prefix_counts(&self) -> &[usize] {
        &self.prefix_counts
    }

    /// Removes known-unobservable cells (e.g. X-masked positions) from
    /// the candidate set. Prefix counts keep reporting the raw
    /// intersection sizes.
    #[must_use]
    pub fn without_cells(mut self, excluded: &scan_netlist::BitSet) -> Self {
        self.candidates.difference_with(excluded);
        self
    }
}

/// Intersects failing groups across partitions to produce the candidate
/// set.
///
/// Cells in a passing group of any partition are pruned; what remains
/// after each successive partition is recorded in
/// [`Diagnosis::prefix_counts`].
#[must_use]
pub fn diagnose(plan: &DiagnosisPlan, outcome: &SessionOutcome) -> Diagnosis {
    let layout = plan.layout();
    let num_cells = layout.num_cells();
    let mut candidates = BitSet::full(num_cells);
    let mut prefix_counts = Vec::with_capacity(plan.partitions().len());
    for (p, partition) in plan.partitions().iter().enumerate() {
        let mut keep = BitSet::new(num_cells);
        for cell in &candidates {
            let (_, pos) = layout.coord(cell);
            let group = partition.group_of(pos as usize);
            if outcome.failed(p, group) {
                keep.insert(cell);
            }
        }
        candidates = keep;
        scan_obs::metrics::record_pow2("diagnose.candidates_per_step", candidates.len() as u64);
        prefix_counts.push(candidates.len());
    }
    Diagnosis {
        candidates,
        prefix_counts,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::ChainLayout;
    use crate::session::BistConfig;
    use scan_bist::Scheme;

    fn plan(chain_len: usize, groups: u16, partitions: usize) -> DiagnosisPlan {
        DiagnosisPlan::new(
            ChainLayout::single_chain(chain_len),
            8,
            &BistConfig::new(groups, partitions, Scheme::RandomSelection),
        )
        .unwrap()
    }

    #[test]
    fn candidates_contain_true_failing_cell() {
        let plan = plan(100, 4, 6);
        let outcome = plan.analyze([(42usize, 3usize), (42, 5)]);
        let diag = diagnose(&plan, &outcome);
        assert!(diag.candidates().contains(42));
    }

    #[test]
    fn prefix_counts_monotonically_shrink() {
        let plan = plan(200, 8, 6);
        let outcome = plan.analyze([(13usize, 0usize), (150, 2)]);
        let diag = diagnose(&plan, &outcome);
        let counts = diag.prefix_counts();
        assert_eq!(counts.len(), 6);
        for w in counts.windows(2) {
            assert!(w[1] <= w[0], "candidate counts must be non-increasing");
        }
        assert_eq!(*counts.last().unwrap(), diag.num_candidates());
    }

    #[test]
    fn single_error_narrows_to_one_group_intersection() {
        let plan = plan(64, 8, 1);
        let outcome = plan.analyze([(20usize, 1usize)]);
        let diag = diagnose(&plan, &outcome);
        // One partition: candidates = the failing group's cells.
        let group = plan.partitions()[0].group_of(20);
        let expected: Vec<usize> = plan.partitions()[0].members(group).collect();
        assert_eq!(diag.candidates().iter().collect::<Vec<_>>(), expected);
    }

    #[test]
    fn no_errors_no_candidates() {
        let plan = plan(64, 4, 3);
        let outcome = plan.analyze(std::iter::empty());
        let diag = diagnose(&plan, &outcome);
        assert_eq!(diag.num_candidates(), 0);
    }

    #[test]
    fn more_partitions_refine() {
        let plan1 = plan(300, 4, 1);
        let plan8 = plan(300, 4, 8);
        let bits = [(7usize, 0usize), (8, 1), (9, 2)];
        let d1 = diagnose(&plan1, &plan1.analyze(bits.iter().copied()));
        let d8 = diagnose(&plan8, &plan8.analyze(bits.iter().copied()));
        assert!(d8.num_candidates() <= d1.num_candidates());
        for b in &bits {
            assert!(d8.candidates().contains(b.0));
        }
    }
}
