//! Candidate computation from session outcomes.

use scan_netlist::BitSet;

use crate::cancel::CancelToken;
use crate::error::DiagnoseError;
use crate::session::{DiagnosisPlan, SessionOutcome};

/// Consistency classification of an intersection run — the explicit
/// outcome behind what used to be an ambiguous empty candidate set.
#[derive(Clone, Copy, Eq, PartialEq, Debug)]
pub enum DiagnosisStatus {
    /// At least one session failed and the intersection is nonempty.
    Consistent,
    /// No session of any partition failed: nothing to diagnose.
    AllPassed,
    /// Sessions failed, but intersecting this partition emptied the
    /// candidate set — the history contradicts itself.
    Contradictory {
        /// The 0-based partition whose step first emptied the set.
        partition: usize,
    },
}

/// The result of intersecting failing groups across partitions.
#[derive(Clone, Eq, PartialEq, Debug)]
pub struct Diagnosis {
    candidates: BitSet,
    prefix_counts: Vec<usize>,
    status: DiagnosisStatus,
}

impl Diagnosis {
    /// The candidate failing cells after all partitions: a cell remains
    /// a candidate iff it lies in a *failing* group of **every**
    /// partition (the inclusion–exclusion pruning of \[5\]).
    #[must_use]
    pub fn candidates(&self) -> &BitSet {
        &self.candidates
    }

    /// Number of candidates after all partitions.
    #[must_use]
    pub fn num_candidates(&self) -> usize {
        self.candidates.len()
    }

    /// Candidate count after only the first `k` partitions
    /// (`prefix_counts()[k−1]`); used to measure how quickly a scheme
    /// converges (the paper's Fig. 5).
    #[must_use]
    pub fn prefix_counts(&self) -> &[usize] {
        &self.prefix_counts
    }

    /// Removes known-unobservable cells (e.g. X-masked positions) from
    /// the candidate set. Prefix counts keep reporting the raw
    /// intersection sizes.
    #[must_use]
    pub fn without_cells(mut self, excluded: &scan_netlist::BitSet) -> Self {
        self.candidates.difference_with(excluded);
        self
    }

    /// Consistency classification of this intersection run.
    ///
    /// An empty candidate set is ambiguous on its own; the status says
    /// whether it means "nothing failed" ([`DiagnosisStatus::AllPassed`])
    /// or "the history contradicts itself"
    /// ([`DiagnosisStatus::Contradictory`]).
    #[must_use]
    pub fn status(&self) -> DiagnosisStatus {
        self.status
    }
}

/// Intersects failing groups across partitions to produce the candidate
/// set.
///
/// Cells in a passing group of any partition are pruned; what remains
/// after each successive partition is recorded in
/// [`Diagnosis::prefix_counts`].
#[must_use]
pub fn diagnose(plan: &DiagnosisPlan, outcome: &SessionOutcome) -> Diagnosis {
    match diagnose_cancellable(plan, outcome, &CancelToken::new()) {
        Ok(diagnosis) => diagnosis,
        // A fresh private token is never cancelled.
        Err(_) => unreachable!("uncancellable diagnose cannot be cancelled"),
    }
}

/// Like [`diagnose`], but polls `cancel` **between partition sessions**
/// so a deadline reaper or draining service can stop a long
/// intersection run cooperatively. The cancelled prefix is discarded —
/// a partial intersection over-approximates the candidate set and must
/// not be mistaken for a diagnosis.
///
/// # Errors
///
/// Returns [`DiagnoseError::Cancelled`] (with the number of partitions
/// fully intersected) when `cancel` fires before the run completes.
pub fn diagnose_cancellable(
    plan: &DiagnosisPlan,
    outcome: &SessionOutcome,
    cancel: &CancelToken,
) -> Result<Diagnosis, DiagnoseError> {
    let layout = plan.layout();
    let num_cells = layout.num_cells();
    let mut candidates = BitSet::full(num_cells);
    let mut prefix_counts = Vec::with_capacity(plan.partitions().len());
    let mut first_empty: Option<usize> = None;
    for (p, partition) in plan.partitions().iter().enumerate() {
        if cancel.is_cancelled() {
            return Err(DiagnoseError::Cancelled {
                completed_partitions: p,
            });
        }
        let mut keep = BitSet::new(num_cells);
        for cell in &candidates {
            let (_, pos) = layout.coord(cell);
            let group = partition.group_of(pos as usize);
            if outcome.failed(p, group) {
                keep.insert(cell);
            }
        }
        candidates = keep;
        scan_obs::metrics::record_pow2("diagnose.candidates_per_step", candidates.len() as u64);
        prefix_counts.push(candidates.len());
        if candidates.is_empty() && first_empty.is_none() {
            first_empty = Some(p);
        }
    }
    let status = if outcome.all_passed() {
        DiagnosisStatus::AllPassed
    } else {
        match first_empty {
            Some(partition) => DiagnosisStatus::Contradictory { partition },
            None => DiagnosisStatus::Consistent,
        }
    };
    Ok(Diagnosis {
        candidates,
        prefix_counts,
        status,
    })
}

/// Like [`diagnose`], but surfaces histories that cannot yield a
/// meaningful candidate set as explicit errors instead of silently
/// returning an empty [`Diagnosis`].
///
/// # Errors
///
/// Returns [`DiagnoseError::AllSessionsPassed`] when no session of any
/// partition failed, and [`DiagnoseError::ContradictoryHistory`] when
/// intersecting some partition's failing groups empties the candidate
/// set even though sessions did fail.
pub fn diagnose_checked(
    plan: &DiagnosisPlan,
    outcome: &SessionOutcome,
) -> Result<Diagnosis, DiagnoseError> {
    let diagnosis = diagnose(plan, outcome);
    match diagnosis.status() {
        DiagnosisStatus::Consistent => Ok(diagnosis),
        DiagnosisStatus::AllPassed => Err(DiagnoseError::AllSessionsPassed),
        DiagnosisStatus::Contradictory { partition } => {
            Err(DiagnoseError::ContradictoryHistory { partition })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::ChainLayout;
    use crate::session::BistConfig;
    use scan_bist::Scheme;

    fn plan(chain_len: usize, groups: u16, partitions: usize) -> DiagnosisPlan {
        DiagnosisPlan::new(
            ChainLayout::single_chain(chain_len),
            8,
            &BistConfig::new(groups, partitions, Scheme::RandomSelection),
        )
        .unwrap()
    }

    #[test]
    fn candidates_contain_true_failing_cell() {
        let plan = plan(100, 4, 6);
        let outcome = plan.analyze([(42usize, 3usize), (42, 5)]);
        let diag = diagnose(&plan, &outcome);
        assert!(diag.candidates().contains(42));
    }

    #[test]
    fn prefix_counts_monotonically_shrink() {
        let plan = plan(200, 8, 6);
        let outcome = plan.analyze([(13usize, 0usize), (150, 2)]);
        let diag = diagnose(&plan, &outcome);
        let counts = diag.prefix_counts();
        assert_eq!(counts.len(), 6);
        for w in counts.windows(2) {
            assert!(w[1] <= w[0], "candidate counts must be non-increasing");
        }
        assert_eq!(*counts.last().unwrap(), diag.num_candidates());
    }

    #[test]
    fn single_error_narrows_to_one_group_intersection() {
        let plan = plan(64, 8, 1);
        let outcome = plan.analyze([(20usize, 1usize)]);
        let diag = diagnose(&plan, &outcome);
        // One partition: candidates = the failing group's cells.
        let group = plan.partitions()[0].group_of(20);
        let expected: Vec<usize> = plan.partitions()[0].members(group).collect();
        assert_eq!(diag.candidates().iter().collect::<Vec<_>>(), expected);
    }

    #[test]
    fn no_errors_no_candidates() {
        let plan = plan(64, 4, 3);
        let outcome = plan.analyze(std::iter::empty());
        let diag = diagnose(&plan, &outcome);
        assert_eq!(diag.num_candidates(), 0);
        assert_eq!(diag.status(), DiagnosisStatus::AllPassed);
        assert_eq!(
            diagnose_checked(&plan, &outcome),
            Err(DiagnoseError::AllSessionsPassed)
        );
    }

    #[test]
    fn consistent_history_has_consistent_status() {
        let plan = plan(100, 4, 6);
        let outcome = plan.analyze([(42usize, 3usize), (42, 5)]);
        let diag = diagnose(&plan, &outcome);
        assert_eq!(diag.status(), DiagnosisStatus::Consistent);
        let checked = diagnose_checked(&plan, &outcome).expect("consistent history");
        assert_eq!(checked, diag);
    }

    #[test]
    fn contradictory_history_names_first_empty_partition() {
        let plan = plan(64, 8, 3);
        // Fabricate a contradiction: partition 0 says group of cell 20
        // failed, partition 1 says a group *not* containing cell 20 (or
        // any of its co-group cells) failed. Build it directly from
        // per-session verdicts.
        let p0 = plan.partitions()[0].group_of(20);
        let g0: Vec<usize> = plan.partitions()[0].members(p0).collect();
        // Pick a partition-1 group containing none of g0's cells, if
        // one exists; the random partitions at 8 groups on 64 cells
        // make this overwhelmingly likely.
        let p1_groups: std::collections::BTreeSet<usize> = g0
            .iter()
            .map(|&c| usize::from(plan.partitions()[1].group_of(c)))
            .collect();
        let disjoint = (0..usize::from(plan.partitions()[1].num_groups()))
            .find(|g| !p1_groups.contains(g))
            .expect("some partition-1 group avoids all of g0");
        let num_partitions = plan.partitions().len();
        let max_groups = plan
            .partitions()
            .iter()
            .map(scan_bist::Partition::num_groups)
            .max()
            .unwrap() as usize;
        let mut failed = vec![vec![false; max_groups]; num_partitions];
        failed[0][p0 as usize] = true;
        failed[1][disjoint] = true;
        let outcome = SessionOutcome::from_verdicts(failed);
        let diag = diagnose(&plan, &outcome);
        assert_eq!(diag.num_candidates(), 0);
        assert_eq!(diag.status(), DiagnosisStatus::Contradictory { partition: 1 });
        assert_eq!(
            diagnose_checked(&plan, &outcome),
            Err(DiagnoseError::ContradictoryHistory { partition: 1 })
        );
    }

    #[test]
    fn pre_cancelled_token_stops_before_any_partition() {
        let plan = plan(100, 4, 6);
        let outcome = plan.analyze([(42usize, 3usize)]);
        let token = CancelToken::new();
        token.cancel();
        assert_eq!(
            diagnose_cancellable(&plan, &outcome, &token),
            Err(DiagnoseError::Cancelled {
                completed_partitions: 0
            })
        );
    }

    #[test]
    fn live_token_is_bit_identical_to_plain_diagnose() {
        let plan = plan(200, 8, 6);
        let outcome = plan.analyze([(13usize, 0usize), (150, 2)]);
        let baseline = diagnose(&plan, &outcome);
        let cancellable = diagnose_cancellable(&plan, &outcome, &CancelToken::new())
            .expect("live token never cancels");
        assert_eq!(baseline, cancellable);
    }

    #[test]
    fn more_partitions_refine() {
        let plan1 = plan(300, 4, 1);
        let plan8 = plan(300, 4, 8);
        let bits = [(7usize, 0usize), (8, 1), (9, 2)];
        let d1 = diagnose(&plan1, &plan1.analyze(bits.iter().copied()));
        let d8 = diagnose(&plan8, &plan8.analyze(bits.iter().copied()));
        assert!(d8.num_candidates() <= d1.num_candidates());
        for b in &bits {
            assert!(d8.candidates().contains(b.0));
        }
    }
}
