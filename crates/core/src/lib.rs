//! Partition-based identification of failing scan cells in scan-BIST.
//!
//! This crate is the primary contribution of the workspace: a
//! reproduction of *Liu & Chakrabarty, "A Partition-Based Approach for
//! Identifying Failing Scan Cells in Scan-BIST with Applications to
//! System-on-Chip Fault Diagnosis"* (DATE 2003).
//!
//! A scan-BIST run compacts responses into a MISR signature, losing the
//! identity of error-capturing cells. Diagnosis partitions the scan
//! chain into groups, runs one BIST session per group (masking all
//! others), and intersects the failing groups of several partitions.
//! The paper's **two-step** scheme runs one *interval-based* partition
//! first — exploiting the structural clustering of failing cells — and
//! then refines with classical *random-selection* partitions.
//!
//! # Pipeline
//!
//! 1. [`DiagnosisPlan`] — generates the scheme's partitions over a
//!    [`ChainLayout`] and models the MISR linearly.
//! 2. [`DiagnosisPlan::analyze`] — per-session pass/fail verdicts from
//!    a fault's sparse error map (signature-aliasing faithful).
//! 3. [`diagnose`] — candidate cells by failing-group intersection.
//! 4. [`prune_by_cover`] — post-processing refinement (the role of the
//!    superposition pruning the paper cites).
//! 5. [`DrAccumulator`] — the paper's diagnostic resolution metric.
//! 6. [`experiment`] / [`soc_diag`] — full campaigns reproducing every
//!    table and figure.
//!
//! # Examples
//!
//! ```
//! use scan_bist::Scheme;
//! use scan_diagnosis::{CampaignSpec, PreparedCampaign};
//! use scan_netlist::generate;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let circuit = generate::benchmark("s953");
//! let mut spec = CampaignSpec::new(64, 4, 4);
//! spec.num_faults = 20; // keep the doc test quick
//! let campaign = PreparedCampaign::from_circuit(&circuit, &spec)?;
//! let two_step = campaign.run(Scheme::TWO_STEP_DEFAULT)?;
//! let random = campaign.run(Scheme::RandomSelection)?;
//! println!("two-step DR {:.2} vs random {:.2}", two_step.dr, random.dr);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(clippy::pedantic)]
#![allow(clippy::must_use_candidate, clippy::module_name_repetitions)]
#![allow(clippy::cast_possible_truncation, clippy::cast_precision_loss)]

pub mod adaptive;
pub mod audit;
pub mod cancel;
pub mod chain_mask;
pub mod cost;
mod diagnose;
pub mod dictionary;
mod error;
pub mod experiment;
mod layout;
mod metrics;
pub mod noise;
pub mod parallel;
mod pruning;
pub mod robust;
pub mod ranking;
pub mod report;
pub mod schedule;
mod session;
pub mod tester;
pub mod soc_diag;
pub mod vector_diag;
pub mod windows;

pub use audit::{AuditStep, CampaignAudit, FaultAudit, RobustAudit, RobustFaultAudit};
pub use cancel::CancelToken;
pub use diagnose::{
    diagnose, diagnose_cancellable, diagnose_checked, Diagnosis, DiagnosisStatus,
};
pub use error::{BuildPlanError, DiagnoseError, NoiseConfigError};
pub use noise::{NoiseConfig, NoiseModel, ObservedOutcome, Verdict};
pub use robust::{
    diagnose_reported, diagnose_robust, diagnose_robust_cancellable, Confidence,
    InconclusiveReason, RobustDiagnosis, RobustPolicy,
};
pub use experiment::{
    lfsr_patterns, CampaignError, CampaignSpec, LocalizationReport, PreparedCampaign,
    RobustReport, SchemeReport,
};
pub use layout::ChainLayout;
pub use metrics::DrAccumulator;
pub use pruning::prune_by_cover;
pub use scan_sim::SimEngine;
pub use session::{BistConfig, DiagnosisPlan, ResponseModel, SessionOutcome};
