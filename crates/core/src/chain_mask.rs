//! Per-chain session masking: a selection-hardware variant for
//! multi-chain TAMs.
//!
//! The baseline selection logic gates *shift cycles*, so on a `w`-chain
//! TAM the `w` cells at the same position of different chains always
//! share a group — they are indistinguishable at group granularity, and
//! Table 4's diagnostic resolution has a floor of about `w − 1` extra
//! suspects per true failing cell. Adding a chain-select compare to the
//! selection logic (one more comparator against a chain counter) splits
//! every session per chain: `partitions × groups × chains` sessions,
//! each compacting one group of one chain. The `ablation_chain_mask`
//! experiment quantifies the resolution/time trade.

use scan_netlist::BitSet;

use crate::session::DiagnosisPlan;

/// Pass/fail verdicts of chain-masked sessions:
/// `failed(partition, group, chain)`.
#[derive(Clone, Eq, PartialEq, Debug)]
pub struct ChainMaskedOutcome {
    fails: Vec<Vec<Vec<bool>>>,
}

impl ChainMaskedOutcome {
    /// Whether the session for (`partition`, `group`, `chain`) failed.
    ///
    /// # Panics
    ///
    /// Panics if indices are out of range.
    #[must_use]
    pub fn failed(&self, partition: usize, group: u16, chain: usize) -> bool {
        self.fails[partition][usize::from(group)][chain]
    }

    /// Total sessions represented.
    #[must_use]
    pub fn num_sessions(&self) -> usize {
        self.fails
            .iter()
            .map(|p| p.iter().map(Vec::len).sum::<usize>())
            .sum()
    }
}

/// Runs every chain-masked session over a sparse error map.
#[must_use]
pub fn analyze_chain_masked<I>(plan: &DiagnosisPlan, error_bits: I) -> ChainMaskedOutcome
where
    I: IntoIterator<Item = (usize, usize)>,
{
    let chains = plan.layout().num_chains();
    let groups = usize::from(
        plan.partitions()
            .iter()
            .map(scan_bist::Partition::num_groups)
            .max()
            .unwrap_or(0),
    );
    let mut signatures = vec![vec![vec![0u64; chains]; groups]; plan.partitions().len()];
    for (cell, pattern) in error_bits {
        let (chain, pos) = plan.layout().coord(cell);
        let contribution = plan.contribution(cell, pattern);
        for (p, partition) in plan.partitions().iter().enumerate() {
            let g = usize::from(partition.group_of(pos as usize));
            signatures[p][g][chain as usize] ^= contribution;
        }
    }
    let fails = signatures
        .iter()
        .map(|p| {
            p.iter()
                .map(|g| g.iter().map(|&s| s != 0).collect())
                .collect()
        })
        .collect();
    ChainMaskedOutcome { fails }
}

/// Candidate cells under chain masking: a cell survives iff, in every
/// partition, the session of *its group on its chain* failed.
#[must_use]
pub fn diagnose_chain_masked(plan: &DiagnosisPlan, outcome: &ChainMaskedOutcome) -> BitSet {
    let layout = plan.layout();
    let mut candidates = BitSet::full(layout.num_cells());
    for (p, partition) in plan.partitions().iter().enumerate() {
        let mut keep = BitSet::new(layout.num_cells());
        for cell in &candidates {
            let (chain, pos) = layout.coord(cell);
            let g = partition.group_of(pos as usize);
            if outcome.failed(p, g, chain as usize) {
                keep.insert(cell);
            }
        }
        candidates = keep;
    }
    candidates
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::ChainLayout;
    use crate::session::BistConfig;
    use scan_bist::Scheme;

    fn multi_chain_plan(chains: usize, len: usize) -> DiagnosisPlan {
        let mut coords = Vec::new();
        for c in 0..chains {
            for p in 0..len {
                coords.push((c as u32, p as u32));
            }
        }
        DiagnosisPlan::new(
            ChainLayout::from_coords(coords),
            8,
            &BistConfig::new(4, 3, Scheme::RandomSelection),
        )
        .unwrap()
    }

    #[test]
    fn chain_masking_separates_twin_cells() {
        let plan = multi_chain_plan(4, 32);
        // One error on chain 2, position 10.
        let cell = 2 * 32 + 10;
        let outcome = analyze_chain_masked(&plan, [(cell, 3usize)]);
        let candidates = diagnose_chain_masked(&plan, &outcome);
        assert!(candidates.contains(cell));
        // The same-position cells on other chains are pruned — unlike
        // the shift-position-only architecture.
        for other_chain in [0usize, 1, 3] {
            assert!(!candidates.contains(other_chain * 32 + 10));
        }
    }

    #[test]
    fn chain_masked_never_worse_than_baseline() {
        use crate::diagnose::diagnose;
        let plan = multi_chain_plan(3, 40);
        let bits = [(5usize, 1usize), (47, 2), (100, 6)];
        let masked = diagnose_chain_masked(&plan, &analyze_chain_masked(&plan, bits.iter().copied()));
        let baseline = diagnose(&plan, &plan.analyze(bits.iter().copied()));
        assert!(masked.is_subset(baseline.candidates()));
        for &(cell, _) in &bits {
            assert!(masked.contains(cell));
        }
    }

    #[test]
    fn session_count_scales_with_chains() {
        let plan = multi_chain_plan(4, 16);
        let outcome = analyze_chain_masked(&plan, std::iter::empty());
        assert_eq!(outcome.num_sessions(), 3 * 4 * 4);
    }
}
