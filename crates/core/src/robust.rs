//! Fault-tolerant diagnosis over noisy session verdicts.
//!
//! The strict intersection of [`diagnose`](crate::diagnose) collapses
//! the moment a single verdict is wrong: one flipped session can empty
//! the candidate set with no indication of what went astray. This
//! module layers a production-style recovery loop on top:
//!
//! 1. **Detect** — classify the observed history via
//!    [`DiagnosisStatus`]: consistent, all-passed, or contradictory.
//! 2. **Retry** — re-run the sessions implicated by a contradiction
//!    (every session of the partitions up to and including the first
//!    contradictory one) plus any aborted ([`Verdict::Lost`]) session,
//!    taking a best-of-*n* majority vote per session, up to a bounded
//!    number of rounds.
//! 3. **Degrade** — if retries cannot restore consistency, fall back
//!    from strict intersection to *weighted group voting*: each cell is
//!    scored by the vote-confidence-weighted number of partitions whose
//!    failing verdict covers it, and the top-scoring cells become the
//!    candidate set.
//!
//! The result always carries a [`Confidence`] so callers can tell an
//! exact diagnosis from a degraded or inconclusive one instead of
//! receiving an ambiguous empty set.
//!
//! With a noiseless model the engine short-circuits to the plain
//! intersection — bit-identical candidates, zero retries,
//! [`Confidence::Exact`].

use scan_netlist::BitSet;

use crate::cancel::CancelToken;
use crate::diagnose::{diagnose_cancellable, DiagnosisStatus};
use crate::error::DiagnoseError;
use crate::noise::{NoiseModel, ObservedOutcome, Verdict};
use crate::session::{DiagnosisPlan, SessionOutcome};

/// How trustworthy a robust diagnosis is.
#[derive(Clone, Copy, Eq, PartialEq, Debug)]
pub enum Confidence {
    /// The attempt-0 history was consistent with no lost sessions: the
    /// result equals what the strict engine would report.
    Exact,
    /// Noise interfered, but retries/voting (or the weighted-voting
    /// fallback) produced a usable candidate set.
    Degraded,
    /// No usable candidate set could be produced; see
    /// [`InconclusiveReason`].
    Inconclusive,
}

impl Confidence {
    /// Stable lowercase label used in NDJSON audit records and JSON
    /// summaries.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Confidence::Exact => "exact",
            Confidence::Degraded => "degraded",
            Confidence::Inconclusive => "inconclusive",
        }
    }
}

/// Why a robust diagnosis gave up.
#[derive(Clone, Copy, Eq, PartialEq, Debug)]
pub enum InconclusiveReason {
    /// Every resolved verdict was a pass: the fault is invisible to
    /// this run (undetected, aliased, or intermittently silent).
    AllPassed,
    /// Every session stayed [`Verdict::Lost`] through all retries.
    AllLost,
    /// The weighted-voting fallback found no cell with positive
    /// support.
    NoSupport,
}

impl InconclusiveReason {
    /// Stable lowercase label for audit records.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            InconclusiveReason::AllPassed => "all-passed",
            InconclusiveReason::AllLost => "all-lost",
            InconclusiveReason::NoSupport => "no-support",
        }
    }
}

/// Retry/voting budget of the robust engine.
#[derive(Clone, Copy, Debug)]
pub struct RobustPolicy {
    /// Maximum detect-and-retry rounds before falling back to weighted
    /// voting.
    pub max_retry_rounds: usize,
    /// Ballots per retried session (normalized up to the next odd
    /// number so majorities cannot tie on full turnout).
    pub votes: usize,
}

impl Default for RobustPolicy {
    /// Two retry rounds of best-of-3 voting — enough to outvote a
    /// few-percent flip rate without masking systematic failures.
    fn default() -> Self {
        RobustPolicy {
            max_retry_rounds: 2,
            votes: 3,
        }
    }
}

impl RobustPolicy {
    /// The effective (odd) ballot count per retried session.
    #[must_use]
    pub fn effective_votes(&self) -> usize {
        let v = self.votes.max(1);
        if v.is_multiple_of(2) {
            v + 1
        } else {
            v
        }
    }
}

/// One recovery action taken by the robust engine, in order. These map
/// 1:1 onto the `retry` / `vote` / `fallback` NDJSON audit records.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum RobustEvent {
    /// A retry round was launched over `sessions` flagged sessions.
    Retry {
        /// 0-based retry round.
        round: usize,
        /// Number of sessions re-executed this round.
        sessions: usize,
    },
    /// A retried session was resolved by majority vote.
    Vote {
        /// Partition of the voted session.
        partition: usize,
        /// Group of the voted session.
        group: u16,
        /// Ballots that said *fail*.
        fail_votes: usize,
        /// Ballots that said *pass*.
        pass_votes: usize,
        /// Ballots lost to dropout (they do not vote).
        lost_votes: usize,
        /// The winning verdict (ties break to *fail*; all-lost stays
        /// lost).
        verdict: Verdict,
    },
    /// Strict intersection was abandoned for weighted group voting.
    Fallback {
        /// The partition whose intersection step first emptied the
        /// candidate set in the final strict attempt.
        partition: usize,
        /// The winning support score (sum of verdict weights).
        support: f64,
        /// Number of cells sharing the winning score.
        candidates: usize,
    },
}

/// The outcome of a fault-tolerant diagnosis.
#[derive(Clone, PartialEq, Debug)]
pub struct RobustDiagnosis {
    /// How trustworthy the candidate set is.
    pub confidence: Confidence,
    /// The candidate failing cells (empty iff inconclusive).
    pub candidates: BitSet,
    /// Candidate counts after each partition of the final strict
    /// intersection attempt (the same shape as
    /// [`Diagnosis::prefix_counts`](crate::Diagnosis::prefix_counts)).
    pub prefix_counts: Vec<usize>,
    /// Retry rounds actually executed.
    pub retry_rounds: usize,
    /// Total sessions re-executed across all rounds.
    pub retried_sessions: usize,
    /// Whether the weighted-voting fallback produced the candidates.
    pub used_fallback: bool,
    /// Why the diagnosis is inconclusive, when it is.
    pub inconclusive: Option<InconclusiveReason>,
    /// Ordered recovery actions, for audit trails.
    pub events: Vec<RobustEvent>,
    /// The final per-session verdict grid after all retries resolved
    /// (the truth grid on the noiseless path) — what audit trails
    /// report as the evidence behind the candidates.
    pub verdicts: ObservedOutcome,
}

impl RobustDiagnosis {
    /// Number of candidate cells.
    #[must_use]
    pub fn num_candidates(&self) -> usize {
        self.candidates.len()
    }

    /// Whether the diagnosis produced a usable candidate set.
    #[must_use]
    pub fn is_conclusive(&self) -> bool {
        self.confidence != Confidence::Inconclusive
    }
}

/// Per-session vote-confidence weights: 1.0 for sessions never
/// retried, the winning-ballot fraction for voted sessions, 0.0 for
/// sessions that stayed lost.
struct SessionWeights {
    weights: Vec<Vec<f64>>,
}

impl SessionWeights {
    fn unit(observed: &ObservedOutcome) -> Self {
        let weights = (0..observed.num_partitions())
            .map(|p| {
                (0..observed.num_groups(p))
                    .map(|g| {
                        if observed.verdict(p, g as u16) == Verdict::Lost {
                            0.0
                        } else {
                            1.0
                        }
                    })
                    .collect()
            })
            .collect();
        SessionWeights { weights }
    }

    fn set(&mut self, partition: usize, group: u16, weight: f64) {
        self.weights[partition][usize::from(group)] = weight;
    }

    fn get(&self, partition: usize, group: u16) -> f64 {
        self.weights[partition][usize::from(group)]
    }
}

/// The sessions to re-execute given the latest strict classification:
/// every lost session, plus — on a contradiction at partition `p` —
/// every session of partitions `0..=p` (the wrong verdict can hide in
/// any of them).
fn flagged_sessions(observed: &ObservedOutcome, status: DiagnosisStatus) -> Vec<(usize, u16)> {
    let mut flagged: Vec<(usize, u16)> = Vec::new();
    let suspect_partitions = match status {
        DiagnosisStatus::Contradictory { partition } => partition + 1,
        DiagnosisStatus::Consistent | DiagnosisStatus::AllPassed => 0,
    };
    for p in 0..observed.num_partitions() {
        for g in 0..observed.num_groups(p) {
            let g = g as u16;
            if p < suspect_partitions || observed.verdict(p, g) == Verdict::Lost {
                flagged.push((p, g));
            }
        }
    }
    flagged
}

/// Linearized session index used for noise-stream derivation: the grid
/// position of `(partition, group)` in partition-major order.
fn session_index(observed: &ObservedOutcome, partition: usize, group: u16) -> u64 {
    let before: usize = (0..partition).map(|p| observed.num_groups(p)).sum();
    (before + usize::from(group)) as u64
}

/// Weighted group voting: scores every cell by the summed weight of
/// failing sessions that cover it and returns the top-scoring cells.
fn weighted_vote(
    plan: &DiagnosisPlan,
    observed: &ObservedOutcome,
    weights: &SessionWeights,
) -> (BitSet, f64) {
    let layout = plan.layout();
    let num_cells = layout.num_cells();
    let mut support = vec![0.0f64; num_cells];
    for (p, partition) in plan.partitions().iter().enumerate() {
        for (cell, score) in support.iter_mut().enumerate() {
            let (_, pos) = layout.coord(cell);
            let group = partition.group_of(pos as usize);
            if observed.verdict(p, group) == Verdict::Fail {
                *score += weights.get(p, group);
            }
        }
    }
    let best = support.iter().copied().fold(0.0f64, f64::max);
    let mut candidates = BitSet::new(num_cells);
    if best > 0.0 {
        for (cell, &s) in support.iter().enumerate() {
            // Exact comparison is intended: ties share the identical
            // sum of the identical weights, in the same order.
            #[allow(clippy::float_cmp)]
            if s == best {
                candidates.insert(cell);
            }
        }
    }
    (candidates, best)
}

/// Re-executes one flagged session `votes` times, drawing ballots from
/// attempt indices `first_attempt..first_attempt + votes` of the
/// session's noise stream.
fn tally_ballots(
    noise: &NoiseModel,
    failed: bool,
    fault: u64,
    first_attempt: u64,
    votes: usize,
    session: u64,
) -> (usize, usize, usize) {
    let (mut fail_votes, mut pass_votes, mut lost_votes) = (0usize, 0usize, 0usize);
    for k in 0..votes {
        match noise.observe_verdict(failed, fault, first_attempt + k as u64, session) {
            Verdict::Fail => fail_votes += 1,
            Verdict::Pass => pass_votes += 1,
            Verdict::Lost => lost_votes += 1,
        }
    }
    (fail_votes, pass_votes, lost_votes)
}

/// Majority resolution of a retried session's ballots. Lost ballots
/// abstain; ties break to *fail* (keeping cells is the conservative
/// direction for an intersection); a session whose every ballot
/// aborted stays lost with weight 0. The weight is the winning-ballot
/// fraction of the turnout.
fn resolve_ballots(fail_votes: usize, pass_votes: usize) -> (Verdict, f64) {
    let turnout = fail_votes + pass_votes;
    if turnout == 0 {
        return (Verdict::Lost, 0.0);
    }
    let verdict = if fail_votes >= pass_votes {
        Verdict::Fail
    } else {
        Verdict::Pass
    };
    #[allow(clippy::cast_precision_loss)] // ballot counts are tiny
    let weight = fail_votes.max(pass_votes) as f64 / turnout as f64;
    (verdict, weight)
}

/// The noiseless short-circuit: bit-identical to the strict engine.
/// (Clean histories can still intersect to empty under MISR aliasing;
/// that is the strict engine's documented behavior and is preserved
/// here rather than misreported as noise.)
fn noiseless_diagnosis(
    plan: &DiagnosisPlan,
    truth: &SessionOutcome,
    cancel: &CancelToken,
) -> Result<RobustDiagnosis, DiagnoseError> {
    let d = diagnose_cancellable(plan, truth, cancel)?;
    Ok(RobustDiagnosis {
        confidence: Confidence::Exact,
        candidates: d.candidates().clone(),
        prefix_counts: d.prefix_counts().to_vec(),
        retry_rounds: 0,
        retried_sessions: 0,
        used_fallback: false,
        inconclusive: None,
        events: Vec::new(),
        verdicts: ObservedOutcome::from_truth(truth),
    })
}

/// Runs the fault-tolerant diagnosis loop for one fault.
///
/// `truth` is the fault's true session outcome (from
/// [`DiagnosisPlan::analyze`]); `fault` numbers the fault within the
/// campaign so every fault gets decorrelated noise streams. Retried
/// sessions draw fresh verdicts from later attempt indices of the same
/// streams, so the whole procedure is deterministic under a fixed seed
/// and independent of evaluation order or thread count.
#[must_use]
pub fn diagnose_robust(
    plan: &DiagnosisPlan,
    truth: &SessionOutcome,
    noise: &NoiseModel,
    policy: &RobustPolicy,
    fault: u64,
) -> RobustDiagnosis {
    match diagnose_robust_cancellable(plan, truth, noise, policy, fault, &CancelToken::new()) {
        Ok(robust) => robust,
        // A fresh private token is never cancelled, and cancellation is
        // the only error the cancellable engine can return.
        Err(_) => unreachable!("uncancellable diagnose_robust cannot be cancelled"),
    }
}

/// Like [`diagnose_robust`], but polls `cancel` between partition
/// sessions (inside every strict intersection pass) and between retry
/// rounds, so a deadline reaper or draining service can stop a
/// long-running recovery loop cooperatively.
///
/// With a live (never-fired) token the result is bit-identical to
/// [`diagnose_robust`].
///
/// # Errors
///
/// Returns [`DiagnoseError::Cancelled`] when `cancel` fires before the
/// engine converges. Partial retry state is discarded.
pub fn diagnose_robust_cancellable(
    plan: &DiagnosisPlan,
    truth: &SessionOutcome,
    noise: &NoiseModel,
    policy: &RobustPolicy,
    fault: u64,
    cancel: &CancelToken,
) -> Result<RobustDiagnosis, DiagnoseError> {
    let _span = scan_obs::span!("diagnose_robust");
    if noise.is_noiseless() {
        return noiseless_diagnosis(plan, truth, cancel);
    }

    let mut observed = noise.observe(truth, fault, 0);
    let mut weights = SessionWeights::unit(&observed);
    let mut events = Vec::new();
    let mut retried_sessions = 0usize;
    let mut retry_rounds = 0usize;
    let mut next_attempt = 1u64;
    let votes = policy.effective_votes();

    let mut strict = diagnose_cancellable(plan, &observed.to_outcome(), cancel)?;
    let attempt0_clean =
        strict.status() == DiagnosisStatus::Consistent && observed.num_lost() == 0;

    for round in 0..policy.max_retry_rounds {
        if cancel.is_cancelled() {
            return Err(DiagnoseError::Cancelled {
                completed_partitions: plan.partitions().len(),
            });
        }
        let flagged = flagged_sessions(&observed, strict.status());
        if flagged.is_empty() {
            break;
        }
        scan_obs::metrics::incr("robust.retry_rounds");
        events.push(RobustEvent::Retry {
            round,
            sessions: flagged.len(),
        });
        retry_rounds = round + 1;
        retried_sessions += flagged.len();
        for &(p, g) in &flagged {
            let session = session_index(&observed, p, g);
            let failed = truth.failed(p, g);
            let (fail_votes, pass_votes, lost_votes) =
                tally_ballots(noise, failed, fault, next_attempt, votes, session);
            let (verdict, weight) = resolve_ballots(fail_votes, pass_votes);
            observed.set_verdict(p, g, verdict);
            weights.set(p, g, weight);
            scan_obs::metrics::incr("robust.votes");
            events.push(RobustEvent::Vote {
                partition: p,
                group: g,
                fail_votes,
                pass_votes,
                lost_votes,
                verdict,
            });
        }
        // Every retried session consumed ballot attempts from the same
        // window, so one bump keeps attempt indices deterministic.
        next_attempt += votes as u64;
        strict = diagnose_cancellable(plan, &observed.to_outcome(), cancel)?;
    }

    // Start from the consistent-outcome shape and overwrite the fields
    // the other statuses change.
    let status = strict.status();
    let mut result = RobustDiagnosis {
        confidence: Confidence::Exact,
        candidates: strict.candidates().clone(),
        prefix_counts: strict.prefix_counts().to_vec(),
        retry_rounds,
        retried_sessions,
        used_fallback: false,
        inconclusive: None,
        events,
        verdicts: observed,
    };
    grade_final_status(plan, status, attempt0_clean, &weights, &mut result);
    Ok(result)
}

/// Folds the post-retry strict status into the result's confidence,
/// candidates, and fallback fields (the last step of
/// [`diagnose_robust_cancellable`]).
fn grade_final_status(
    plan: &DiagnosisPlan,
    status: DiagnosisStatus,
    attempt0_clean: bool,
    weights: &SessionWeights,
    result: &mut RobustDiagnosis,
) {
    match status {
        DiagnosisStatus::Consistent => {
            if !attempt0_clean {
                result.confidence = Confidence::Degraded;
            }
        }
        DiagnosisStatus::AllPassed => {
            let sessions: usize = (0..result.verdicts.num_partitions())
                .map(|p| result.verdicts.num_groups(p))
                .sum();
            let reason = if result.verdicts.num_lost() == sessions {
                InconclusiveReason::AllLost
            } else {
                InconclusiveReason::AllPassed
            };
            scan_obs::metrics::incr("robust.inconclusive");
            result.confidence = Confidence::Inconclusive;
            result.candidates = BitSet::new(plan.layout().num_cells());
            result.inconclusive = Some(reason);
        }
        DiagnosisStatus::Contradictory { partition } => {
            scan_obs::metrics::incr("robust.fallbacks");
            let (candidates, support) = weighted_vote(plan, &result.verdicts, weights);
            result.events.push(RobustEvent::Fallback {
                partition,
                support,
                candidates: candidates.len(),
            });
            result.used_fallback = true;
            if candidates.is_empty() {
                scan_obs::metrics::incr("robust.inconclusive");
                result.confidence = Confidence::Inconclusive;
                result.inconclusive = Some(InconclusiveReason::NoSupport);
            } else {
                result.confidence = Confidence::Degraded;
            }
            result.candidates = candidates;
        }
    }
}

/// Service-style diagnosis of an **as-reported** outcome grid: the
/// evidence is whatever the tester already sent — there is no noise
/// model to re-draw verdicts from and no retry budget, so recovery is
/// limited to the weighted-voting fallback (at unit weights).
///
/// This is the entry point for a diagnosis *service* (one that receives
/// signatures over the wire rather than simulating them):
///
/// - a consistent grid yields [`Confidence::Exact`] candidates,
///   bit-identical to [`diagnose`];
/// - an all-passed grid yields [`Confidence::Inconclusive`] with
///   [`InconclusiveReason::AllPassed`] (an answer, not an error — a
///   fault-free unit is a legitimate service response);
/// - a contradictory grid falls back to unit-weight group voting,
///   yielding [`Confidence::Degraded`] candidates (or
///   [`InconclusiveReason::NoSupport`] if no cell has positive
///   support).
///
/// # Errors
///
/// Returns [`DiagnoseError::Cancelled`] when `cancel` fires between
/// partition sessions.
pub fn diagnose_reported(
    plan: &DiagnosisPlan,
    outcome: &SessionOutcome,
    cancel: &CancelToken,
) -> Result<RobustDiagnosis, DiagnoseError> {
    let _span = scan_obs::span!("diagnose_reported");
    let strict = diagnose_cancellable(plan, outcome, cancel)?;
    let observed = ObservedOutcome::from_truth(outcome);
    let mut result = RobustDiagnosis {
        confidence: Confidence::Exact,
        candidates: strict.candidates().clone(),
        prefix_counts: strict.prefix_counts().to_vec(),
        retry_rounds: 0,
        retried_sessions: 0,
        used_fallback: false,
        inconclusive: None,
        events: Vec::new(),
        verdicts: observed,
    };
    match strict.status() {
        DiagnosisStatus::Consistent => {}
        DiagnosisStatus::AllPassed => {
            scan_obs::metrics::incr("robust.inconclusive");
            result.confidence = Confidence::Inconclusive;
            result.candidates = BitSet::new(plan.layout().num_cells());
            result.inconclusive = Some(InconclusiveReason::AllPassed);
        }
        DiagnosisStatus::Contradictory { partition } => {
            scan_obs::metrics::incr("robust.fallbacks");
            let weights = SessionWeights::unit(&result.verdicts);
            let (candidates, support) = weighted_vote(plan, &result.verdicts, &weights);
            result.events.push(RobustEvent::Fallback {
                partition,
                support,
                candidates: candidates.len(),
            });
            result.used_fallback = true;
            if candidates.is_empty() {
                scan_obs::metrics::incr("robust.inconclusive");
                result.confidence = Confidence::Inconclusive;
                result.inconclusive = Some(InconclusiveReason::NoSupport);
            } else {
                result.confidence = Confidence::Degraded;
            }
            result.candidates = candidates;
        }
    }
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diagnose::diagnose;
    use crate::layout::ChainLayout;
    use crate::noise::NoiseConfig;
    use crate::session::BistConfig;
    use scan_bist::Scheme;

    fn plan() -> DiagnosisPlan {
        DiagnosisPlan::new(
            ChainLayout::single_chain(100),
            8,
            &BistConfig::new(4, 6, Scheme::RandomSelection),
        )
        .unwrap()
    }

    fn model(config: NoiseConfig) -> NoiseModel {
        NoiseModel::new(config).unwrap()
    }

    #[test]
    fn noiseless_matches_strict_engine_exactly() {
        let plan = plan();
        let truth = plan.analyze([(42usize, 3usize), (42, 5)]);
        let strict = diagnose(&plan, &truth);
        let robust = diagnose_robust(
            &plan,
            &truth,
            &model(NoiseConfig::noiseless(7)),
            &RobustPolicy::default(),
            0,
        );
        assert_eq!(robust.confidence, Confidence::Exact);
        assert_eq!(&robust.candidates, strict.candidates());
        assert_eq!(robust.prefix_counts, strict.prefix_counts());
        assert_eq!(robust.retry_rounds, 0);
        assert_eq!(robust.retried_sessions, 0);
        assert!(!robust.used_fallback);
        assert!(robust.events.is_empty());
    }

    #[test]
    fn clean_noisy_attempt_is_exact() {
        // Nonzero rates but a seed under which attempt 0 happens to be
        // clean would be fragile; instead use tiny rates and scan for a
        // fault index whose attempt-0 grid is unperturbed.
        let plan = plan();
        let truth = plan.analyze([(42usize, 3usize), (42, 5)]);
        let mut config = NoiseConfig::noiseless(13);
        config.flip_rate = 0.01;
        let noise = model(config);
        let strict = diagnose(&plan, &truth);
        // A noiseless model's grid is the truth, independent of fault.
        let truth_grid = model(NoiseConfig::noiseless(0)).observe(&truth, 0, 0);
        let clean_fault = (0..200u64)
            .find(|&f| noise.observe(&truth, f, 0) == truth_grid)
            .expect("some fault sees a clean attempt 0 at 1% flip");
        let robust =
            diagnose_robust(&plan, &truth, &noise, &RobustPolicy::default(), clean_fault);
        assert_eq!(robust.confidence, Confidence::Exact);
        assert_eq!(&robust.candidates, strict.candidates());
    }

    #[test]
    fn contradiction_recovers_via_retry_votes() {
        // Find a fault index where attempt 0 is contradictory at a low
        // flip rate; the retry votes should restore the strict result.
        let plan = plan();
        let truth = plan.analyze([(42usize, 3usize), (42, 5)]);
        let strict = diagnose(&plan, &truth);
        assert_eq!(strict.status(), DiagnosisStatus::Consistent);
        let mut config = NoiseConfig::noiseless(3);
        config.flip_rate = 0.05;
        let noise = model(config);
        let policy = RobustPolicy::default();
        let contradictory: Vec<u64> = (0..400u64)
            .filter(|&f| {
                let observed = noise.observe(&truth, f, 0);
                matches!(
                    diagnose(&plan, &observed.to_outcome()).status(),
                    DiagnosisStatus::Contradictory { .. }
                )
            })
            .collect();
        assert!(!contradictory.is_empty(), "5% flips must contradict somewhere");
        let mut recovered_exactly = 0usize;
        for &f in &contradictory {
            let robust = diagnose_robust(&plan, &truth, &noise, &policy, f);
            assert!(robust.retry_rounds > 0, "fault {f} must retry");
            assert!(
                robust.events.iter().any(|e| matches!(e, RobustEvent::Retry { .. })),
                "fault {f} records a retry event"
            );
            if robust.candidates == *strict.candidates() && !robust.used_fallback {
                recovered_exactly += 1;
            }
        }
        // Best-of-3 at 5% flip recovers the strict result for the
        // overwhelming majority of contradictions.
        assert!(
            recovered_exactly * 10 >= contradictory.len() * 8,
            "only {recovered_exactly}/{} contradictions recovered",
            contradictory.len()
        );
    }

    #[test]
    fn robust_is_deterministic() {
        let plan = plan();
        let truth = plan.analyze([(10usize, 1usize), (90, 7)]);
        let mut config = NoiseConfig::noiseless(99);
        config.flip_rate = 0.1;
        config.dropout_rate = 0.1;
        let noise = model(config);
        let policy = RobustPolicy::default();
        for fault in 0..20u64 {
            let a = diagnose_robust(&plan, &truth, &noise, &policy, fault);
            let b = diagnose_robust(&plan, &truth, &noise, &policy, fault);
            assert_eq!(a, b, "fault {fault}");
        }
    }

    #[test]
    fn undetected_fault_is_inconclusive_all_passed() {
        let plan = plan();
        let truth = plan.analyze(std::iter::empty());
        let mut config = NoiseConfig::noiseless(5);
        config.dropout_rate = 0.01;
        let robust = diagnose_robust(
            &plan,
            &truth,
            &model(config),
            &RobustPolicy::default(),
            0,
        );
        assert_eq!(robust.confidence, Confidence::Inconclusive);
        assert!(matches!(
            robust.inconclusive,
            Some(InconclusiveReason::AllPassed | InconclusiveReason::AllLost)
        ));
        assert!(robust.candidates.is_empty());
    }

    #[test]
    fn total_dropout_is_inconclusive_all_lost() {
        let plan = plan();
        let truth = plan.analyze([(42usize, 3usize)]);
        let mut config = NoiseConfig::noiseless(5);
        config.dropout_rate = 1.0;
        let robust = diagnose_robust(
            &plan,
            &truth,
            &model(config),
            &RobustPolicy::default(),
            0,
        );
        assert_eq!(robust.confidence, Confidence::Inconclusive);
        assert_eq!(robust.inconclusive, Some(InconclusiveReason::AllLost));
        // Every session retried every round.
        assert!(robust.retried_sessions > 0);
    }

    #[test]
    fn exhausted_retries_fall_back_to_weighted_voting() {
        // A permanently flipped *true* failing group cannot happen via
        // noise streams (votes converge), so force fallback with a
        // zero-retry policy and a contradictory attempt 0.
        let plan = plan();
        let truth = plan.analyze([(42usize, 3usize), (42, 5)]);
        let mut config = NoiseConfig::noiseless(3);
        config.flip_rate = 0.05;
        let noise = model(config);
        let policy = RobustPolicy {
            max_retry_rounds: 0,
            votes: 3,
        };
        let f = (0..400u64)
            .find(|&f| {
                let observed = noise.observe(&truth, f, 0);
                matches!(
                    diagnose(&plan, &observed.to_outcome()).status(),
                    DiagnosisStatus::Contradictory { .. }
                )
            })
            .expect("a contradictory fault exists");
        let robust = diagnose_robust(&plan, &truth, &noise, &policy, f);
        assert!(robust.used_fallback);
        assert_eq!(robust.confidence, Confidence::Degraded);
        assert!(!robust.candidates.is_empty());
        assert!(robust
            .events
            .iter()
            .any(|e| matches!(e, RobustEvent::Fallback { .. })));
        // Weighted voting should still cover the true failing cell:
        // 5 of 6 partitions voted for its groups at full weight.
        assert!(robust.candidates.contains(42), "fallback keeps cell 42");
    }

    #[test]
    fn cancellable_with_live_token_matches_uncancellable() {
        let plan = plan();
        let truth = plan.analyze([(10usize, 1usize), (90, 7)]);
        let mut config = NoiseConfig::noiseless(99);
        config.flip_rate = 0.1;
        let noise = model(config);
        let policy = RobustPolicy::default();
        for fault in 0..8u64 {
            let baseline = diagnose_robust(&plan, &truth, &noise, &policy, fault);
            let cancellable = diagnose_robust_cancellable(
                &plan,
                &truth,
                &noise,
                &policy,
                fault,
                &CancelToken::new(),
            )
            .expect("live token never cancels");
            assert_eq!(baseline, cancellable, "fault {fault}");
        }
    }

    #[test]
    fn pre_cancelled_robust_run_reports_cancellation() {
        let plan = plan();
        let truth = plan.analyze([(42usize, 3usize)]);
        let token = CancelToken::new();
        token.cancel();
        let err = diagnose_robust_cancellable(
            &plan,
            &truth,
            &model(NoiseConfig::noiseless(7)),
            &RobustPolicy::default(),
            0,
            &token,
        )
        .expect_err("cancelled token must stop the run");
        assert!(matches!(err, DiagnoseError::Cancelled { .. }), "{err:?}");
    }

    #[test]
    fn reported_consistent_grid_is_exact_and_strict_identical() {
        let plan = plan();
        let truth = plan.analyze([(42usize, 3usize), (42, 5)]);
        let strict = diagnose(&plan, &truth);
        let reported =
            diagnose_reported(&plan, &truth, &CancelToken::new()).expect("live token");
        assert_eq!(reported.confidence, Confidence::Exact);
        assert_eq!(&reported.candidates, strict.candidates());
        assert_eq!(reported.prefix_counts, strict.prefix_counts());
        assert!(!reported.used_fallback);
    }

    #[test]
    fn reported_all_passed_grid_is_inconclusive_not_an_error() {
        let plan = plan();
        let truth = plan.analyze(std::iter::empty());
        let reported =
            diagnose_reported(&plan, &truth, &CancelToken::new()).expect("live token");
        assert_eq!(reported.confidence, Confidence::Inconclusive);
        assert_eq!(reported.inconclusive, Some(InconclusiveReason::AllPassed));
        assert!(reported.candidates.is_empty());
    }

    #[test]
    fn reported_contradictory_grid_degrades_via_unit_weight_voting() {
        // Fabricate a contradiction directly from verdicts: cell 42's
        // groups fail in 5 of 6 partitions, an unrelated group fails in
        // the remaining one.
        let plan = plan();
        let truth = plan.analyze([(42usize, 3usize), (42, 5)]);
        let num_partitions = plan.partitions().len();
        let max_groups = plan
            .partitions()
            .iter()
            .map(scan_bist::Partition::num_groups)
            .max()
            .unwrap() as usize;
        let mut failed = vec![vec![false; max_groups]; num_partitions];
        for (p, partition) in plan.partitions().iter().enumerate() {
            let (_, pos) = plan.layout().coord(42);
            failed[p][usize::from(partition.group_of(pos as usize))] = true;
        }
        // Contradict partition 0: move its failing verdict to a group
        // not containing cell 42.
        let (_, pos42) = plan.layout().coord(42);
        let g42 = usize::from(plan.partitions()[0].group_of(pos42 as usize));
        failed[0][g42] = false;
        failed[0][(g42 + 1) % max_groups] = true;
        let outcome = SessionOutcome::from_verdicts(failed);
        assert!(matches!(
            diagnose(&plan, &outcome).status(),
            DiagnosisStatus::Contradictory { .. }
        ));
        let reported =
            diagnose_reported(&plan, &outcome, &CancelToken::new()).expect("live token");
        assert_eq!(reported.confidence, Confidence::Degraded);
        assert!(reported.used_fallback);
        assert!(
            reported.candidates.contains(42),
            "5-of-6 unit-weight support keeps cell 42"
        );
        assert!(reported
            .events
            .iter()
            .any(|e| matches!(e, RobustEvent::Fallback { .. })));
        let _ = truth;
    }

    #[test]
    fn policy_normalizes_votes_to_odd() {
        assert_eq!(RobustPolicy { max_retry_rounds: 1, votes: 0 }.effective_votes(), 1);
        assert_eq!(RobustPolicy { max_retry_rounds: 1, votes: 3 }.effective_votes(), 3);
        assert_eq!(RobustPolicy { max_retry_rounds: 1, votes: 4 }.effective_votes(), 5);
    }
}
