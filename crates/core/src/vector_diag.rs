//! Failing test *vector* identification — the time-domain companion of
//! failing-cell diagnosis.
//!
//! The paper's reference \[4\] (Liu, Chakrabarty & Gössel, DATE 2002)
//! applies the same interval idea along the *pattern axis*: BIST
//! sessions mask whole patterns instead of cells, partitions group
//! pattern indices, and intersecting failing groups identifies the
//! failing vectors. This module reproduces that scheme on top of the
//! shared [`ResponseModel`], so space diagnosis (which cells) and time
//! diagnosis (which vectors) can be run from the same fault evidence.

use scan_bist::partition::{generate_partitions, PartitionConfig};
use scan_bist::{Partition, Scheme};
use scan_netlist::BitSet;

use crate::error::BuildPlanError;
use crate::session::{ResponseModel, SessionOutcome};

/// A diagnosis setup over the pattern axis: partitions group *pattern
/// indices*; session `(p, g)` compacts the full responses of exactly
/// the patterns in group `g` of partition `p`.
#[derive(Clone, Debug)]
pub struct VectorDiagnosisPlan {
    model: ResponseModel,
    partitions: Vec<Partition>,
}

impl VectorDiagnosisPlan {
    /// Builds the plan: `partitions` partitions of the pattern indices
    /// into `groups` groups under `scheme`.
    ///
    /// # Errors
    ///
    /// Returns [`BuildPlanError`] if the configuration is degenerate or
    /// a degree is unsupported.
    pub fn new(
        model: ResponseModel,
        groups: u16,
        partitions: usize,
        scheme: Scheme,
        partition_lfsr_degree: u32,
        partition_seed: u64,
    ) -> Result<Self, BuildPlanError> {
        if partitions == 0 || groups == 0 {
            return Err(BuildPlanError::DegenerateConfig);
        }
        if usize::from(groups) > model.num_patterns() {
            return Err(BuildPlanError::DegenerateConfig);
        }
        let mut config = PartitionConfig::new(model.num_patterns(), groups);
        config.lfsr_degree = partition_lfsr_degree;
        config.seed = partition_seed;
        let partitions = generate_partitions(&config, scheme, partitions);
        Ok(VectorDiagnosisPlan { model, partitions })
    }

    /// The underlying response model.
    #[must_use]
    pub fn model(&self) -> &ResponseModel {
        &self.model
    }

    /// The pattern-axis partitions.
    #[must_use]
    pub fn partitions(&self) -> &[Partition] {
        &self.partitions
    }

    /// Runs every session over a sparse error map and returns pass/fail
    /// verdicts per (partition, pattern-group).
    #[must_use]
    pub fn analyze<I>(&self, error_bits: I) -> SessionOutcome
    where
        I: IntoIterator<Item = (usize, usize)>,
    {
        let groups = usize::from(
            self.partitions
                .iter()
                .map(Partition::num_groups)
                .max()
                .unwrap_or(0),
        );
        let mut signatures = vec![vec![0u64; groups]; self.partitions.len()];
        for (cell, pattern) in error_bits {
            let contribution = self.model.contribution(cell, pattern);
            for (p, partition) in self.partitions.iter().enumerate() {
                let g = usize::from(partition.group_of(pattern));
                signatures[p][g] ^= contribution;
            }
        }
        SessionOutcome::from_signatures(signatures)
    }

    /// Intersects failing pattern-groups across partitions, returning
    /// the candidate failing vectors.
    #[must_use]
    pub fn diagnose(&self, outcome: &SessionOutcome) -> BitSet {
        let n = self.model.num_patterns();
        let mut candidates = BitSet::full(n);
        for (p, partition) in self.partitions.iter().enumerate() {
            let mut keep = BitSet::new(n);
            for pattern in &candidates {
                if outcome.failed(p, partition.group_of(pattern)) {
                    keep.insert(pattern);
                }
            }
            candidates = keep;
        }
        candidates
    }
}

/// The set of patterns that actually produced at least one error bit.
#[must_use]
pub fn actual_failing_vectors<I>(num_patterns: usize, error_bits: I) -> BitSet
where
    I: IntoIterator<Item = (usize, usize)>,
{
    let mut set = BitSet::new(num_patterns);
    for (_, pattern) in error_bits {
        set.insert(pattern);
    }
    set
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::ChainLayout;

    fn model(chain_len: usize, patterns: usize) -> ResponseModel {
        ResponseModel::new(ChainLayout::single_chain(chain_len), patterns, 16).unwrap()
    }

    fn plan(chain_len: usize, patterns: usize, groups: u16, parts: usize, scheme: Scheme) -> VectorDiagnosisPlan {
        VectorDiagnosisPlan::new(model(chain_len, patterns), groups, parts, scheme, 16, 1).unwrap()
    }

    #[test]
    fn failing_vectors_are_found() {
        let plan = plan(40, 64, 4, 4, Scheme::RandomSelection);
        let bits = [(3usize, 7usize), (10, 7), (5, 40)];
        let outcome = plan.analyze(bits.iter().copied());
        let candidates = plan.diagnose(&outcome);
        assert!(candidates.contains(7));
        assert!(candidates.contains(40));
        let actual = actual_failing_vectors(64, bits.iter().copied());
        assert!(actual.is_subset(&candidates));
    }

    #[test]
    fn passing_groups_prune_vectors() {
        let plan = plan(40, 64, 8, 6, Scheme::TWO_STEP_DEFAULT);
        let bits = [(3usize, 7usize)];
        let outcome = plan.analyze(bits.iter().copied());
        let candidates = plan.diagnose(&outcome);
        // Only groups containing pattern 7 fail; with 6 partitions of 8
        // groups the candidate count is far below 64.
        assert!(candidates.contains(7));
        assert!(candidates.len() < 16, "got {}", candidates.len());
    }

    #[test]
    fn interval_scheme_clusters_burst_failures() {
        // A burst of consecutive failing patterns (e.g. an intermittent
        // defect window): one interval partition confines candidates.
        let random = plan(40, 128, 4, 1, Scheme::RandomSelection);
        let interval = plan(40, 128, 4, 1, Scheme::IntervalBased);
        let bits: Vec<(usize, usize)> = (30..36).map(|t| (5usize, t)).collect();
        let c_random = random.diagnose(&random.analyze(bits.iter().copied()));
        let c_interval = interval.diagnose(&interval.analyze(bits.iter().copied()));
        assert!(
            c_interval.len() <= c_random.len(),
            "interval {} vs random {}",
            c_interval.len(),
            c_random.len()
        );
    }

    #[test]
    fn no_errors_no_failing_vectors() {
        let plan = plan(16, 32, 4, 2, Scheme::RandomSelection);
        let outcome = plan.analyze(std::iter::empty());
        assert!(plan.diagnose(&outcome).is_empty());
    }

    #[test]
    fn too_many_groups_rejected() {
        let err = VectorDiagnosisPlan::new(model(16, 4), 8, 2, Scheme::RandomSelection, 16, 1);
        assert!(matches!(err, Err(BuildPlanError::DegenerateConfig)));
    }
}
