//! Fault-injection campaigns: the experiment driver behind every table
//! and figure of the paper.
//!
//! A campaign (1) generates a pseudo-random BIST pattern set from an
//! LFSR PRPG, (2) samples a reproducible set of *detected* collapsed
//! stuck-at faults, (3) fault-simulates each to an error map, and
//! (4) replays the partition-based diagnosis for a chosen scheme,
//! accumulating the paper's diagnostic resolution (DR) metric — with
//! and without post-processing pruning, and per partition-count prefix
//! (for Fig. 5's "partitions needed to reach DR 0.5").
//!
//! Preparation (steps 1–3) is independent of the partitioning scheme,
//! so a [`PreparedCampaign`] is built once and [`run`](PreparedCampaign::run)
//! for every scheme being compared — exactly the paper's methodology of
//! using the same faults and patterns for both methods.

use std::error::Error;
use std::fmt;

use scan_bist::{Prpg, Scheme};
use scan_netlist::{BitSet, Netlist, ScanOrdering, ScanView};
use scan_sim::{
    ErrorMap, EventFaultSimulator, FaultSimulator, PatternSet, PatternShapeError, PpsfpSimulator,
    SimEngine,
};
use scan_soc::Soc;

use crate::diagnose::{diagnose, DiagnosisStatus};
use crate::error::{BuildPlanError, NoiseConfigError};
use crate::layout::ChainLayout;
use crate::metrics::DrAccumulator;
use crate::noise::NoiseModel;
use crate::pruning::prune_by_cover;
use crate::robust::{diagnose_robust, Confidence, RobustPolicy};
use crate::session::{BistConfig, DiagnosisPlan};

/// Parameters of a fault-injection campaign.
#[derive(Clone, Copy, Debug)]
pub struct CampaignSpec {
    /// BIST patterns per session.
    pub num_patterns: usize,
    /// PRPG seed for stimulus generation.
    pub prpg_seed: u64,
    /// Number of detected faults to sample (the paper uses 500).
    pub num_faults: usize,
    /// Seed for the fault sample shuffle.
    pub fault_seed: u64,
    /// Groups per partition.
    pub groups: u16,
    /// Number of partitions.
    pub partitions: usize,
    /// MISR width.
    pub misr_degree: u32,
    /// Partition LFSR degree (the paper uses 16).
    pub partition_lfsr_degree: u32,
    /// Partition IVR seed.
    pub partition_seed: u64,
    /// Observe primary outputs alongside scan cells (the paper does).
    pub include_outputs: bool,
    /// How flip-flops are stitched into the scan chain.
    pub ordering: ScanOrdering,
    /// Fraction of observation positions that produce unknown (X)
    /// values and are therefore hard-masked from the compactor — e.g.
    /// cells fed by uninitialized memories. Their errors are invisible
    /// and they are excluded from both evidence and candidate
    /// reporting. `0.0` (the default, and the paper's setting) disables
    /// masking.
    pub x_mask_fraction: f64,
    /// Which fault-simulation engine prepares the error maps. Both
    /// engines are bit-exact (the differential harness proves it), so
    /// this only changes preparation throughput, never results.
    pub engine: SimEngine,
}

impl CampaignSpec {
    /// A spec with the paper's defaults for the free parameters.
    #[must_use]
    pub fn new(num_patterns: usize, groups: u16, partitions: usize) -> Self {
        CampaignSpec {
            num_patterns,
            prpg_seed: 0xACE1,
            num_faults: 500,
            fault_seed: 2003,
            groups,
            partitions,
            misr_degree: 16,
            partition_lfsr_degree: 16,
            partition_seed: 1,
            include_outputs: true,
            ordering: ScanOrdering::Natural,
            x_mask_fraction: 0.0,
            engine: SimEngine::default(),
        }
    }

    fn bist_config(&self, scheme: Scheme) -> BistConfig {
        BistConfig {
            groups: self.groups,
            partitions: self.partitions,
            scheme,
            misr_degree: self.misr_degree,
            partition_lfsr_degree: self.partition_lfsr_degree,
            partition_seed: self.partition_seed,
        }
    }
}

/// Errors raised while preparing or running a campaign.
#[derive(Clone, Debug)]
#[non_exhaustive]
pub enum CampaignError {
    /// Stimulus generation failed (pattern/interface mismatch).
    Patterns(PatternShapeError),
    /// The diagnosis plan could not be built.
    Plan(BuildPlanError),
    /// The requested faulty core index does not exist.
    NoSuchCore {
        /// The offending index.
        core: usize,
        /// Cores available.
        available: usize,
    },
    /// No detected faults were found (empty or untestable circuit).
    NoDetectedFaults,
    /// An SOC-level operation was requested on a campaign that was not
    /// prepared from an SOC.
    NotSocCampaign,
    /// The noise configuration carries an unusable rate.
    Noise(NoiseConfigError),
}

impl fmt::Display for CampaignError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CampaignError::Patterns(e) => write!(f, "{e}"),
            CampaignError::Plan(e) => write!(f, "{e}"),
            CampaignError::NoSuchCore { core, available } => {
                write!(f, "faulty core index {core} out of range ({available} cores)")
            }
            CampaignError::NoDetectedFaults => write!(f, "no detected faults to diagnose"),
            CampaignError::NotSocCampaign => {
                write!(f, "campaign was not prepared from an SOC; no core context")
            }
            CampaignError::Noise(e) => write!(f, "{e}"),
        }
    }
}

impl Error for CampaignError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CampaignError::Patterns(e) => Some(e),
            CampaignError::Plan(e) => Some(e),
            CampaignError::Noise(e) => Some(e),
            _ => None,
        }
    }
}

impl From<PatternShapeError> for CampaignError {
    fn from(e: PatternShapeError) -> Self {
        CampaignError::Patterns(e)
    }
}

impl From<BuildPlanError> for CampaignError {
    fn from(e: BuildPlanError) -> Self {
        CampaignError::Plan(e)
    }
}

impl From<NoiseConfigError> for CampaignError {
    fn from(e: NoiseConfigError) -> Self {
        CampaignError::Noise(e)
    }
}

/// Aggregate results of running one scheme over a prepared campaign.
#[derive(Clone, Debug)]
pub struct SchemeReport {
    /// The scheme that was run.
    pub scheme: Scheme,
    /// Partitions used.
    pub partitions: usize,
    /// Faults diagnosed.
    pub faults: usize,
    /// Diagnostic resolution after all partitions, without pruning.
    pub dr: f64,
    /// Diagnostic resolution with cover-based pruning.
    pub dr_pruned: f64,
    /// DR after only the first `k+1` partitions (no pruning).
    pub dr_by_prefix: Vec<f64>,
    /// Mean candidates per fault (no pruning).
    pub mean_candidates: f64,
    /// Mean actual failing cells per fault.
    pub mean_actual: f64,
    /// True failing cells missing from the final candidate set, summed
    /// over faults — nonzero only under signature aliasing (a failing
    /// group whose error signature cancels to zero).
    pub lost_cells: u64,
}

impl SchemeReport {
    /// The smallest number of partitions whose prefix DR is at or below
    /// `target`, if any (the paper's Fig. 5 quantity).
    #[must_use]
    pub fn partitions_to_reach(&self, target: f64) -> Option<usize> {
        self.dr_by_prefix
            .iter()
            .position(|&dr| dr <= target)
            .map(|k| k + 1)
    }
}

/// One fault's prepared evidence: its error map in local view
/// coordinates.
#[derive(Clone, Debug)]
struct FaultCase {
    errors: ErrorMap,
}

/// Per-fault diagnosis statistics: everything one case contributes to a
/// [`SchemeReport`]. Computing these is pure and side-effect-free, so
/// cases can be evaluated in any order (or on any thread) and folded
/// back in fault-index order for bit-identical aggregate results.
#[derive(Clone, Debug)]
pub(crate) struct CaseStats {
    pub(crate) candidates: usize,
    pub(crate) actual: usize,
    pub(crate) pruned: usize,
    pub(crate) prefix_counts: Vec<usize>,
    pub(crate) lost: u64,
}

/// Per-fault first-level (core localization) statistics.
#[derive(Clone, Copy, Debug)]
pub(crate) struct LocCaseStats {
    pub(crate) ranked: bool,
    pub(crate) correct: bool,
    pub(crate) margin: f64,
}

/// Per-fault robust-diagnosis statistics: what one case contributes to
/// a [`RobustReport`]. Pure like [`CaseStats`], so robust campaigns
/// shard across threads with bit-identical folds.
#[derive(Clone, Copy, Debug)]
pub(crate) struct RobustCaseStats {
    pub(crate) confidence: Confidence,
    pub(crate) candidates: usize,
    pub(crate) actual: usize,
    pub(crate) retry_rounds: usize,
    pub(crate) retried_sessions: usize,
    pub(crate) used_fallback: bool,
    /// Whether the *strict* intersection over the attempt-0 observed
    /// verdicts was consistent (the baseline the robust engine is
    /// measured against).
    pub(crate) strict_ok: bool,
    /// Whether the (masked) candidate set contains at least one truly
    /// failing observable cell.
    pub(crate) hit: bool,
}

/// Aggregate results of a fault-tolerant (noisy) campaign run.
#[derive(Clone, Debug)]
pub struct RobustReport {
    /// The scheme that was run.
    pub scheme: Scheme,
    /// Faults diagnosed.
    pub faults: usize,
    /// Faults resolved with [`Confidence::Exact`].
    pub exact: usize,
    /// Faults resolved with [`Confidence::Degraded`].
    pub degraded: usize,
    /// Faults left [`Confidence::Inconclusive`].
    pub inconclusive: usize,
    /// Diagnostic resolution over the conclusive faults.
    pub dr: f64,
    /// Mean candidates per conclusive fault.
    pub mean_candidates: f64,
    /// Mean truly failing observable cells per conclusive fault.
    pub mean_actual: f64,
    /// Retry rounds executed, summed over faults.
    pub retry_rounds: u64,
    /// Sessions re-executed, summed over faults.
    pub retried_sessions: u64,
    /// Faults whose candidates came from the weighted-voting fallback.
    pub fallbacks: usize,
    /// Faults where the strict intersection over the noisy attempt-0
    /// verdicts was *not* consistent (empty/contradictory/all-passed).
    pub strict_failures: usize,
    /// Strict failures the robust engine still resolved to Exact or
    /// Degraded — the headline robustness number.
    pub recovered: usize,
    /// Conclusive faults whose candidate set contains at least one
    /// truly failing cell.
    pub hits: usize,
}

impl RobustReport {
    /// Faults resolved Exact or Degraded.
    #[must_use]
    pub fn conclusive(&self) -> usize {
        self.exact + self.degraded
    }

    /// Fraction of faults resolved Exact or Degraded.
    #[must_use]
    pub fn conclusive_fraction(&self) -> f64 {
        self.conclusive() as f64 / self.faults.max(1) as f64
    }

    /// Fraction of strict failures the robust engine recovered.
    #[must_use]
    pub fn recovered_fraction(&self) -> f64 {
        self.recovered as f64 / self.strict_failures.max(1) as f64
    }

    /// Fraction of conclusive faults whose candidates contain a truly
    /// failing cell.
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        self.hits as f64 / self.conclusive().max(1) as f64
    }
}

/// A campaign with stimuli applied and faults simulated, ready to be
/// diagnosed under any partitioning scheme.
#[derive(Clone, Debug)]
pub struct PreparedCampaign {
    layout: ChainLayout,
    spec: CampaignSpec,
    cases: Vec<FaultCase>,
    /// Maps a local error-map position to the global cell id diagnosed
    /// by the plan (identity for single circuits).
    local_to_global: Vec<usize>,
    /// For SOC campaigns: the owning core of every global cell, and the
    /// index of the core the faults were injected into.
    soc_context: Option<SocContext>,
}

#[derive(Clone, Debug)]
pub(crate) struct SocContext {
    core_of_cell: Vec<u32>,
    core_sizes: Vec<usize>,
    faulty_core: usize,
}

impl PreparedCampaign {
    /// Prepares a campaign over a single full-scan circuit with one
    /// scan chain.
    ///
    /// # Errors
    ///
    /// Returns [`CampaignError`] if stimulus generation fails or no
    /// fault is detected by the pattern set.
    pub fn from_circuit(netlist: &Netlist, spec: &CampaignSpec) -> Result<Self, CampaignError> {
        Self::from_circuit_multiplets(netlist, spec, 1)
    }

    /// Prepares a campaign injecting `multiplet_size` *simultaneous*
    /// faults per case — the paper's multiple-fault scenario, where
    /// overlapping cones merge into one expanded failing segment and
    /// disjoint cones produce separate segments.
    ///
    /// # Errors
    ///
    /// Returns [`CampaignError`] if stimulus generation fails or no
    /// fault multiplet is detected by the pattern set.
    ///
    /// # Panics
    ///
    /// Panics if `multiplet_size` is zero.
    pub fn from_circuit_multiplets(
        netlist: &Netlist,
        spec: &CampaignSpec,
        multiplet_size: usize,
    ) -> Result<Self, CampaignError> {
        assert!(multiplet_size >= 1, "multiplet size must be at least 1");
        let _prepare = scan_obs::span!("prepare");
        let view = ScanView::ordered(netlist, spec.ordering, spec.include_outputs);
        let patterns = {
            let _span = scan_obs::span!("patterns");
            lfsr_patterns(netlist, spec.num_patterns, spec.prpg_seed)
        };
        scan_obs::metrics::add("campaign.patterns", spec.num_patterns as u64);
        let cases = build_cases(netlist, &view, &patterns, spec, multiplet_size)?;
        scan_obs::metrics::add("campaign.faults", cases.len() as u64);
        if cases.is_empty() {
            return Err(CampaignError::NoDetectedFaults);
        }
        let layout = ChainLayout::single_chain(view.len());
        let local_to_global = (0..view.len()).collect();
        Ok(PreparedCampaign {
            layout,
            spec: *spec,
            cases,
            local_to_global,
            soc_context: None,
        })
    }

    /// Prepares a campaign over an SOC with a single faulty core: the
    /// paper's SOC scenario, where spot defects confine failing cells
    /// to one core's segment of the meta scan chains.
    ///
    /// Faults are injected into `faulty_core`; the other cores respond
    /// fault-free.
    ///
    /// # Errors
    ///
    /// Returns [`CampaignError`] if the core index is invalid, stimulus
    /// generation fails, or no fault is detected.
    pub fn from_soc(
        soc: &Soc,
        faulty_core: usize,
        spec: &CampaignSpec,
    ) -> Result<Self, CampaignError> {
        let Some(core) = soc.cores().get(faulty_core) else {
            return Err(CampaignError::NoSuchCore {
                core: faulty_core,
                available: soc.cores().len(),
            });
        };
        let _prepare = scan_obs::span!("prepare");
        // Each core consumes its own slice of the PRPG stream; model it
        // as a per-core decorrelated seed (the same SplitMix64 derivation
        // rule the parallel campaign sharding uses per fault).
        let core_seed = scan_rng::derive(spec.prpg_seed, faulty_core as u64);
        let patterns = {
            let _span = scan_obs::span!("patterns");
            lfsr_patterns(core.netlist(), spec.num_patterns, core_seed)
        };
        scan_obs::metrics::add("campaign.patterns", spec.num_patterns as u64);
        let cases = build_cases(core.netlist(), core.view(), &patterns, spec, 1)?;
        if cases.is_empty() {
            return Err(CampaignError::NoDetectedFaults);
        }
        scan_obs::metrics::add("campaign.faults", cases.len() as u64);
        // Map this core's local positions to SOC-global cell ids.
        let mut local_to_global = vec![usize::MAX; core.view().len()];
        for (global, (cell, _, _)) in soc.layout().into_iter().enumerate() {
            if cell.core as usize == faulty_core {
                local_to_global[cell.local as usize] = global;
            }
        }
        debug_assert!(local_to_global.iter().all(|&g| g != usize::MAX));
        let core_of_cell: Vec<u32> = soc
            .layout()
            .into_iter()
            .map(|(cell, _, _)| cell.core)
            .collect();
        let core_sizes: Vec<usize> = soc.cores().iter().map(scan_soc::CoreModule::num_positions).collect();
        Ok(PreparedCampaign {
            layout: ChainLayout::from_soc(soc),
            spec: *spec,
            cases,
            local_to_global,
            soc_context: Some(SocContext {
                core_of_cell,
                core_sizes,
                faulty_core,
            }),
        })
    }

    /// The X-masked global cells implied by
    /// [`CampaignSpec::x_mask_fraction`]: a reproducible sample drawn
    /// from the fault seed.
    #[must_use]
    pub fn masked_cells(&self) -> BitSet {
        let n = self.layout.num_cells();
        let mut set = BitSet::new(n);
        if self.spec.x_mask_fraction <= 0.0 {
            return set;
        }
        #[allow(clippy::cast_sign_loss)] // fraction is validated ≥ 0 above
        let count = ((n as f64 * self.spec.x_mask_fraction).round() as usize).min(n);
        let mut order: Vec<usize> = (0..n).collect();
        let mut rng = scan_rng::ScanRng::seed_from_u64(self.spec.fault_seed ^ 0x584D_4153); // "XMAS"k
        rng.shuffle(&mut order);
        for &cell in order.iter().take(count) {
            set.insert(cell);
        }
        set
    }

    /// Number of prepared fault cases.
    #[must_use]
    pub fn num_faults(&self) -> usize {
        self.cases.len()
    }

    /// The chain layout under diagnosis.
    #[must_use]
    pub fn layout(&self) -> &ChainLayout {
        &self.layout
    }

    /// The campaign spec.
    #[must_use]
    pub fn spec(&self) -> &CampaignSpec {
        &self.spec
    }

    /// Builds the diagnosis plan this campaign runs under `scheme`.
    pub(crate) fn build_plan(&self, scheme: Scheme) -> Result<DiagnosisPlan, CampaignError> {
        let _span = scan_obs::span!("build_plan");
        let config = self.spec.bist_config(scheme);
        Ok(DiagnosisPlan::new(
            self.layout.clone(),
            self.spec.num_patterns,
            &config,
        )?)
    }

    /// Diagnoses fault case `index` under a prebuilt plan. Pure: reads
    /// only shared state, so it may run on any thread.
    pub(crate) fn case_stats(
        &self,
        plan: &DiagnosisPlan,
        masked: &BitSet,
        index: usize,
    ) -> CaseStats {
        let case = &self.cases[index];
        let observable = |pos: &usize| !masked.contains(self.local_to_global[*pos]);
        let failing: Vec<usize> = case
            .errors
            .failing_positions()
            .iter()
            .filter(observable)
            .collect();
        let actual = failing.len();
        let outcome = plan.analyze_packed(
            case.errors
                .iter_words()
                .map(|(pos, word, bits)| (self.local_to_global[pos], word, bits))
                .filter(|(cell, _, _)| !masked.contains(*cell)),
        );
        let mut diag = diagnose(plan, &outcome);
        if !masked.is_empty() {
            diag = diag.without_cells(masked);
        }
        let lost = failing
            .iter()
            .filter(|&&pos| !diag.candidates().contains(self.local_to_global[pos]))
            .count() as u64;
        let pruned = prune_by_cover(plan, &outcome, diag.candidates());
        scan_obs::metrics::incr("diagnosis.cases");
        scan_obs::metrics::record_pow2("diagnosis.candidates_per_fault", diag.num_candidates() as u64);
        scan_obs::metrics::record_pow2("diagnosis.actual_failing_cells", actual as u64);
        CaseStats {
            candidates: diag.num_candidates(),
            actual,
            pruned: pruned.len(),
            prefix_counts: diag.prefix_counts().to_vec(),
            lost,
        }
    }

    /// The final candidate cell set of fault case `index`, in ascending
    /// global cell order.
    pub(crate) fn case_candidates(
        &self,
        plan: &DiagnosisPlan,
        masked: &BitSet,
        index: usize,
    ) -> Vec<usize> {
        let case = &self.cases[index];
        let outcome = plan.analyze_packed(
            case.errors
                .iter_words()
                .map(|(pos, word, bits)| (self.local_to_global[pos], word, bits))
                .filter(|(cell, _, _)| !masked.contains(*cell)),
        );
        let mut diag = diagnose(plan, &outcome);
        if !masked.is_empty() {
            diag = diag.without_cells(masked);
        }
        diag.candidates().iter().collect()
    }

    /// Folds per-case statistics, **in fault-index order**, into a
    /// report. Serial and parallel runs share this fold, so any
    /// execution that presents the same stats in the same order yields
    /// bit-identical aggregates.
    pub(crate) fn fold_report(
        &self,
        scheme: Scheme,
        stats: impl IntoIterator<Item = CaseStats>,
    ) -> SchemeReport {
        let mut final_acc = DrAccumulator::new();
        let mut pruned_acc = DrAccumulator::new();
        let mut prefix_accs = vec![DrAccumulator::new(); self.spec.partitions];
        let mut lost_cells = 0u64;
        for case in stats {
            final_acc.add(case.candidates, case.actual);
            pruned_acc.add(case.pruned, case.actual);
            for (k, &count) in case.prefix_counts.iter().enumerate() {
                prefix_accs[k].add(count, case.actual);
            }
            lost_cells += case.lost;
        }
        scan_obs::metrics::add("diagnosis.lost_cells", lost_cells);
        SchemeReport {
            scheme,
            partitions: self.spec.partitions,
            faults: self.cases.len(),
            dr: final_acc.dr(),
            dr_pruned: pruned_acc.dr(),
            dr_by_prefix: prefix_accs.iter().map(DrAccumulator::dr).collect(),
            mean_candidates: final_acc.mean_candidates(),
            mean_actual: final_acc.mean_actual(),
            lost_cells,
        }
    }

    /// Runs the diagnosis for one scheme over every prepared fault.
    ///
    /// # Errors
    ///
    /// Returns [`CampaignError::Plan`] if the diagnosis plan cannot be
    /// built for this layout/spec.
    pub fn run(&self, scheme: Scheme) -> Result<SchemeReport, CampaignError> {
        let _span = scan_obs::span!("diagnose");
        let plan = self.build_plan(scheme)?;
        let masked = self.masked_cells();
        let stats = (0..self.cases.len()).map(|i| self.case_stats(&plan, &masked, i));
        Ok(self.fold_report(scheme, stats))
    }

    /// Runs the diagnosis sharded across `threads` std threads (`0` =
    /// one per available core). Bit-identical to [`run`](Self::run) at
    /// any thread count — see [`crate::parallel`].
    ///
    /// # Errors
    ///
    /// Returns [`CampaignError::Plan`] if the diagnosis plan cannot be
    /// built for this layout/spec.
    pub fn run_parallel(&self, scheme: Scheme, threads: usize) -> Result<SchemeReport, CampaignError> {
        crate::parallel::run_campaign(self, scheme, threads)
    }

    /// Replays the diagnosis for `scheme` recording a per-fault audit
    /// trail: partition kinds, failing groups, and the candidate-set
    /// size after each intersection (see [`crate::audit`]).
    ///
    /// This is a separate pass over the prepared campaign — it never
    /// runs concurrently with [`run`](Self::run) and shares none of its
    /// state, so enabling auditing cannot perturb campaign results.
    ///
    /// # Errors
    ///
    /// Returns [`CampaignError::Plan`] if the diagnosis plan cannot be
    /// built for this layout/spec.
    pub fn audit(&self, scheme: Scheme) -> Result<crate::audit::CampaignAudit, CampaignError> {
        let _span = scan_obs::span!("audit");
        let plan = self.build_plan(scheme)?;
        let masked = self.masked_cells();
        let kinds: Vec<&'static str> = plan
            .partitions()
            .iter()
            .map(|p| {
                if p.is_interval() {
                    "interval"
                } else {
                    "random-selection"
                }
            })
            .collect();
        let faults = (0..self.cases.len())
            .map(|index| {
                let case = &self.cases[index];
                let observable = |pos: &usize| !masked.contains(self.local_to_global[*pos]);
                let actual = case
                    .errors
                    .failing_positions()
                    .iter()
                    .filter(observable)
                    .count();
                let outcome = plan.analyze_packed(
                    case.errors
                        .iter_words()
                        .map(|(pos, word, bits)| (self.local_to_global[pos], word, bits))
                        .filter(|(cell, _, _)| !masked.contains(*cell)),
                );
                let mut diag = diagnose(&plan, &outcome);
                if !masked.is_empty() {
                    diag = diag.without_cells(&masked);
                }
                let steps = diag
                    .prefix_counts()
                    .iter()
                    .enumerate()
                    .map(|(p, &candidates)| crate::audit::AuditStep {
                        partition: p,
                        kind: kinds[p],
                        failing_groups: outcome.failing_groups(p).collect(),
                        candidates,
                    })
                    .collect();
                crate::audit::FaultAudit {
                    index,
                    actual,
                    final_candidates: diag.num_candidates(),
                    steps,
                }
            })
            .collect();
        Ok(crate::audit::CampaignAudit {
            scheme: scheme.name().to_owned(),
            groups: self.spec.groups,
            partitions: self.spec.partitions,
            faults,
        })
    }

    /// Per-fault final candidate sets (ascending cell ids), serially.
    ///
    /// # Errors
    ///
    /// Returns [`CampaignError::Plan`] if the diagnosis plan cannot be
    /// built for this layout/spec.
    pub fn candidate_sets(&self, scheme: Scheme) -> Result<Vec<Vec<usize>>, CampaignError> {
        let plan = self.build_plan(scheme)?;
        let masked = self.masked_cells();
        Ok((0..self.cases.len())
            .map(|i| self.case_candidates(&plan, &masked, i))
            .collect())
    }

    /// First-level SOC diagnosis: which embedded core is faulty?
    ///
    /// For each fault, the candidate cells are attributed to cores and
    /// the core with the highest *candidate density* (candidates per
    /// observation position) is reported as the suspect — the paper's
    /// motivating use case, where a spot defect must be traced to one
    /// core before detailed failure analysis.
    ///
    /// # Errors
    ///
    /// Returns [`CampaignError::Plan`] if the plan cannot be built, or
    /// [`CampaignError::NotSocCampaign`] if this campaign was not
    /// prepared from an SOC.
    pub fn run_localization(&self, scheme: Scheme) -> Result<LocalizationReport, CampaignError> {
        let ctx = self.soc_context()?;
        let plan = self.build_plan(scheme)?;
        let stats = (0..self.cases.len()).map(|i| self.loc_case_stats(&plan, ctx, i));
        Ok(self.fold_localization(scheme, stats))
    }

    /// First-level SOC diagnosis sharded across `threads` std threads
    /// (`0` = one per available core). Bit-identical to
    /// [`run_localization`](Self::run_localization) at any thread count.
    ///
    /// # Errors
    ///
    /// Same as [`run_localization`](Self::run_localization).
    pub fn run_localization_parallel(
        &self,
        scheme: Scheme,
        threads: usize,
    ) -> Result<LocalizationReport, CampaignError> {
        crate::parallel::run_localization(self, scheme, threads)
    }

    /// Cells excluded from evidence and candidates under `noise`: the
    /// spec's X-masked cells plus the noise model's X-corrupted cells.
    pub(crate) fn robust_masked(&self, noise: &NoiseModel) -> BitSet {
        let mut masked = self.masked_cells();
        masked.union_with(&noise.corrupted_cells(self.layout.num_cells()));
        masked
    }

    /// Runs the fault-tolerant diagnosis for fault case `index` under a
    /// prebuilt plan and noise model. Pure: reads only shared state, so
    /// it may run on any thread.
    pub(crate) fn robust_case_stats(
        &self,
        plan: &DiagnosisPlan,
        masked: &BitSet,
        noise: &NoiseModel,
        policy: &RobustPolicy,
        index: usize,
    ) -> RobustCaseStats {
        let case = &self.cases[index];
        let observable = |pos: &usize| !masked.contains(self.local_to_global[*pos]);
        let failing: Vec<usize> = case
            .errors
            .failing_positions()
            .iter()
            .filter(observable)
            .collect();
        let truth = plan.analyze_packed(
            case.errors
                .iter_words()
                .map(|(pos, word, bits)| (self.local_to_global[pos], word, bits))
                .filter(|(cell, _, _)| !masked.contains(*cell)),
        );
        let fault = index as u64;
        let strict_ok = diagnose(plan, &noise.observe(&truth, fault, 0).to_outcome()).status()
            == DiagnosisStatus::Consistent;
        let robust = diagnose_robust(plan, &truth, noise, policy, fault);
        let mut candidates = robust.candidates;
        if !masked.is_empty() {
            candidates.difference_with(masked);
        }
        let hit = robust.confidence != Confidence::Inconclusive
            && failing
                .iter()
                .any(|&pos| candidates.contains(self.local_to_global[pos]));
        scan_obs::metrics::incr("robust.cases");
        scan_obs::metrics::record_pow2("robust.candidates_per_fault", candidates.len() as u64);
        RobustCaseStats {
            confidence: robust.confidence,
            candidates: candidates.len(),
            actual: failing.len(),
            retry_rounds: robust.retry_rounds,
            retried_sessions: robust.retried_sessions,
            used_fallback: robust.used_fallback,
            strict_ok,
            hit,
        }
    }

    /// Folds per-case robust statistics, in fault-index order, into a
    /// [`RobustReport`] — shared by serial and sharded runs.
    pub(crate) fn fold_robust_report(
        &self,
        scheme: Scheme,
        stats: impl IntoIterator<Item = RobustCaseStats>,
    ) -> RobustReport {
        let mut acc = DrAccumulator::new();
        let mut exact = 0usize;
        let mut degraded = 0usize;
        let mut inconclusive = 0usize;
        let mut retry_rounds = 0u64;
        let mut retried_sessions = 0u64;
        let mut fallbacks = 0usize;
        let mut strict_failures = 0usize;
        let mut recovered = 0usize;
        let mut hits = 0usize;
        for case in stats {
            match case.confidence {
                Confidence::Exact => exact += 1,
                Confidence::Degraded => degraded += 1,
                Confidence::Inconclusive => inconclusive += 1,
            }
            let conclusive = case.confidence != Confidence::Inconclusive;
            if conclusive {
                acc.add(case.candidates, case.actual);
            }
            retry_rounds += case.retry_rounds as u64;
            retried_sessions += case.retried_sessions as u64;
            if case.used_fallback {
                fallbacks += 1;
            }
            if !case.strict_ok {
                strict_failures += 1;
                if conclusive {
                    recovered += 1;
                }
            }
            if case.hit {
                hits += 1;
            }
        }
        scan_obs::metrics::add("robust.strict_failures", strict_failures as u64);
        scan_obs::metrics::add("robust.recovered", recovered as u64);
        RobustReport {
            scheme,
            faults: self.cases.len(),
            exact,
            degraded,
            inconclusive,
            dr: acc.dr(),
            mean_candidates: acc.mean_candidates(),
            mean_actual: acc.mean_actual(),
            retry_rounds,
            retried_sessions,
            fallbacks,
            strict_failures,
            recovered,
            hits,
        }
    }

    /// Runs the fault-tolerant diagnosis for one scheme over every
    /// prepared fault, serially. (`noise` is validated at
    /// [`NoiseModel::new`]; an invalid config surfaces there as
    /// [`CampaignError::Noise`] via `From`.)
    ///
    /// # Errors
    ///
    /// Returns [`CampaignError::Plan`] if the diagnosis plan cannot be
    /// built for this layout/spec.
    pub fn run_robust(
        &self,
        scheme: Scheme,
        noise: &NoiseModel,
        policy: &RobustPolicy,
    ) -> Result<RobustReport, CampaignError> {
        let _span = scan_obs::span!("diagnose_robust_campaign");
        let plan = self.build_plan(scheme)?;
        let masked = self.robust_masked(noise);
        let stats =
            (0..self.cases.len()).map(|i| self.robust_case_stats(&plan, &masked, noise, policy, i));
        Ok(self.fold_robust_report(scheme, stats))
    }

    /// [`run_robust`](Self::run_robust) sharded across `threads` std
    /// threads (`0` = one per available core). Bit-identical to the
    /// serial run at any thread count — every noise draw is keyed by
    /// `(seed, fault, attempt, session)`, never by evaluation order.
    ///
    /// # Errors
    ///
    /// Same as [`run_robust`](Self::run_robust).
    pub fn run_robust_parallel(
        &self,
        scheme: Scheme,
        noise: &NoiseModel,
        policy: &RobustPolicy,
        threads: usize,
    ) -> Result<RobustReport, CampaignError> {
        crate::parallel::run_robust(self, scheme, noise, policy, threads)
    }

    /// Replays the fault-tolerant diagnosis recording a per-fault
    /// robust audit trail: confidence, retry/vote/fallback events, and
    /// the convergence steps of the final strict attempt (see
    /// [`crate::audit::RobustAudit`]).
    ///
    /// # Errors
    ///
    /// Same as [`run_robust`](Self::run_robust).
    pub fn audit_robust(
        &self,
        scheme: Scheme,
        noise: &NoiseModel,
        policy: &RobustPolicy,
    ) -> Result<crate::audit::RobustAudit, CampaignError> {
        let _span = scan_obs::span!("audit_robust");
        let plan = self.build_plan(scheme)?;
        let masked = self.robust_masked(noise);
        let kinds: Vec<&'static str> = plan
            .partitions()
            .iter()
            .map(|p| {
                if p.is_interval() {
                    "interval"
                } else {
                    "random-selection"
                }
            })
            .collect();
        let faults = (0..self.cases.len())
            .map(|index| {
                let case = &self.cases[index];
                let observable = |pos: &usize| !masked.contains(self.local_to_global[*pos]);
                let actual = case
                    .errors
                    .failing_positions()
                    .iter()
                    .filter(observable)
                    .count();
                let truth = plan.analyze_packed(
                    case.errors
                        .iter_words()
                        .map(|(pos, word, bits)| (self.local_to_global[pos], word, bits))
                        .filter(|(cell, _, _)| !masked.contains(*cell)),
                );
                let robust = diagnose_robust(&plan, &truth, noise, policy, index as u64);
                let mut candidates = robust.candidates;
                if !masked.is_empty() {
                    candidates.difference_with(&masked);
                }
                let steps = robust
                    .prefix_counts
                    .iter()
                    .enumerate()
                    .map(|(p, &count)| crate::audit::AuditStep {
                        partition: p,
                        kind: kinds[p],
                        failing_groups: (0..robust.verdicts.num_groups(p))
                            .map(|g| g as u16)
                            .filter(|&g| {
                                robust.verdicts.verdict(p, g) == crate::noise::Verdict::Fail
                            })
                            .collect(),
                        candidates: count,
                    })
                    .collect();
                crate::audit::RobustFaultAudit {
                    index,
                    actual,
                    final_candidates: candidates.len(),
                    confidence: robust.confidence,
                    inconclusive: robust.inconclusive,
                    retry_rounds: robust.retry_rounds,
                    used_fallback: robust.used_fallback,
                    events: robust.events,
                    steps,
                }
            })
            .collect();
        Ok(crate::audit::RobustAudit {
            scheme: scheme.name().to_owned(),
            groups: self.spec.groups,
            partitions: self.spec.partitions,
            noise: *noise.config(),
            votes: policy.effective_votes(),
            max_retry_rounds: policy.max_retry_rounds,
            faults,
        })
    }

    pub(crate) fn soc_context(&self) -> Result<&SocContext, CampaignError> {
        self.soc_context.as_ref().ok_or(CampaignError::NotSocCampaign)
    }

    /// Localizes fault case `index` to a core. Pure, like
    /// [`case_stats`](Self::case_stats).
    pub(crate) fn loc_case_stats(
        &self,
        plan: &DiagnosisPlan,
        ctx: &SocContext,
        index: usize,
    ) -> LocCaseStats {
        let case = &self.cases[index];
        let outcome = plan.analyze_packed(
            case.errors
                .iter_words()
                .map(|(pos, word, bits)| (self.local_to_global[pos], word, bits)),
        );
        let diag = diagnose(plan, &outcome);
        let mut density = vec![0usize; ctx.core_sizes.len()];
        for cell in diag.candidates() {
            density[ctx.core_of_cell[cell] as usize] += 1;
        }
        let scores: Vec<f64> = density
            .iter()
            .zip(&ctx.core_sizes)
            .map(|(&d, &s)| d as f64 / s.max(1) as f64)
            .collect();
        let mut order: Vec<usize> = (0..scores.len()).collect();
        order.sort_by(|&a, &b| scores[b].total_cmp(&scores[a]));
        if scores[order[0]] > 0.0 {
            let runner_up = order.get(1).map_or(0.0, |&i| scores[i]);
            LocCaseStats {
                ranked: true,
                correct: order[0] == ctx.faulty_core,
                margin: scores[order[0]] - runner_up,
            }
        } else {
            LocCaseStats {
                ranked: false,
                correct: false,
                margin: 0.0,
            }
        }
    }

    /// Folds per-case localization statistics in fault-index order —
    /// the floating-point margin sum is order-sensitive, so the shared
    /// fold is what makes serial and parallel results bit-identical.
    pub(crate) fn fold_localization(
        &self,
        scheme: Scheme,
        stats: impl IntoIterator<Item = LocCaseStats>,
    ) -> LocalizationReport {
        let mut correct = 0usize;
        let mut margins = 0.0f64;
        let mut ranked = 0usize;
        for case in stats {
            if case.ranked {
                ranked += 1;
                if case.correct {
                    correct += 1;
                }
                margins += case.margin;
            }
        }
        LocalizationReport {
            scheme,
            faults: self.cases.len(),
            top1_accuracy: correct as f64 / self.cases.len().max(1) as f64,
            mean_margin: if ranked == 0 {
                0.0
            } else {
                margins / ranked as f64
            },
        }
    }
}

/// First-level SOC diagnosis results: how reliably the faulty core is
/// identified from candidate-cell densities.
#[derive(Clone, Copy, Debug)]
pub struct LocalizationReport {
    /// The scheme that was run.
    pub scheme: Scheme,
    /// Faults diagnosed.
    pub faults: usize,
    /// Fraction of faults whose highest-density core is the truly
    /// faulty one.
    pub top1_accuracy: f64,
    /// Mean density margin between the top core and the runner-up
    /// (confidence of the call).
    pub mean_margin: f64,
}

/// Builds the BIST pattern set of a circuit from the workspace's LFSR
/// PRPG, in scan-application bit order.
///
/// # Panics
///
/// Never panics in practice (the built-in PRPG degree is always
/// supported).
#[must_use]
pub fn lfsr_patterns(netlist: &Netlist, num_patterns: usize, seed: u64) -> PatternSet {
    let mut prpg = Prpg::new(seed).expect("PRPG degree is supported");
    PatternSet::from_bit_stream(
        netlist.num_inputs(),
        netlist.num_dffs(),
        num_patterns,
        || prpg.next_bit(),
    )
}

/// Samples the campaign's detected faults and simulates them to error
/// maps on the engine selected by [`CampaignSpec::engine`].
///
/// Both engines draw from the same shuffled candidate sequence and are
/// bit-exact over it (the `engine_diff` harness in `scan-sim` proves
/// it), so the produced cases are identical — only preparation
/// throughput differs.
fn build_cases(
    netlist: &Netlist,
    view: &ScanView,
    patterns: &PatternSet,
    spec: &CampaignSpec,
    multiplet_size: usize,
) -> Result<Vec<FaultCase>, CampaignError> {
    let case = |errors: ErrorMap| FaultCase { errors };
    Ok(match (spec.engine, multiplet_size) {
        (SimEngine::BitParallel, 1) => {
            let mut psim = {
                let _span = scan_obs::span!("fault_sim_init");
                PpsfpSimulator::new(netlist, view, patterns)?
            };
            let _span = scan_obs::span!("fault_sim");
            psim.sample_detected_with_maps(spec.num_faults, spec.fault_seed)
                .into_iter()
                .map(|(_, errors)| case(errors))
                .collect()
        }
        (SimEngine::BitParallel, size) => {
            let mut psim = {
                let _span = scan_obs::span!("fault_sim_init");
                PpsfpSimulator::new(netlist, view, patterns)?
            };
            let _span = scan_obs::span!("fault_sim");
            psim.sample_detected_multiplets_with_maps(spec.num_faults, size, spec.fault_seed)
                .into_iter()
                .map(|(_, errors)| case(errors))
                .collect()
        }
        (SimEngine::EventDriven, 1) => {
            let mut esim = {
                let _span = scan_obs::span!("fault_sim_init");
                EventFaultSimulator::new(netlist, view, patterns)?
            };
            let _span = scan_obs::span!("fault_sim");
            esim.sample_detected_with_maps(spec.num_faults, spec.fault_seed)
                .into_iter()
                .map(|(_, errors)| case(errors))
                .collect()
        }
        (SimEngine::EventDriven, size) => {
            // The event engine has no multi-fault worklist; multiplets
            // keep the original whole-circuit resimulation oracle.
            let fsim = {
                let _span = scan_obs::span!("fault_sim_init");
                FaultSimulator::new(netlist, view, patterns)?
            };
            let _span = scan_obs::span!("fault_sim");
            fsim.sample_detected_multiplets(spec.num_faults, size, spec.fault_seed)
                .iter()
                .map(|fs| case(fsim.error_map_multi(fs)))
                .collect()
        }
    })
}

#[cfg(test)]
#[allow(clippy::float_cmp)] // reproducibility checks compare exact values
mod tests {
    use super::*;
    use crate::noise::NoiseConfig;
    use scan_netlist::bench;
    use scan_netlist::generate;

    fn spec_small() -> CampaignSpec {
        let mut spec = CampaignSpec::new(64, 4, 4);
        spec.num_faults = 40;
        spec
    }

    #[test]
    fn circuit_campaign_runs_all_schemes() {
        let n = generate::benchmark("s953");
        let campaign = PreparedCampaign::from_circuit(&n, &spec_small()).unwrap();
        assert!(campaign.num_faults() > 0);
        for scheme in [
            Scheme::RandomSelection,
            Scheme::IntervalBased,
            Scheme::TWO_STEP_DEFAULT,
            Scheme::FixedInterval,
        ] {
            let report = campaign.run(scheme).unwrap();
            assert_eq!(report.faults, campaign.num_faults());
            assert!(report.dr >= -1.0, "{scheme:?} dr = {}", report.dr);
            assert!(
                report.dr_pruned <= report.dr + 1e-9,
                "pruning must not worsen DR"
            );
            assert_eq!(report.dr_by_prefix.len(), 4);
            // Prefix DR is non-increasing in the partition count.
            for w in report.dr_by_prefix.windows(2) {
                assert!(w[1] <= w[0] + 1e-9);
            }
            assert!((report.dr_by_prefix[3] - report.dr).abs() < 1e-9);
        }
    }

    #[test]
    fn s27_campaign_is_tiny_but_sound() {
        let n = bench::s27();
        let mut spec = CampaignSpec::new(32, 2, 2);
        spec.num_faults = 10;
        let campaign = PreparedCampaign::from_circuit(&n, &spec).unwrap();
        let report = campaign.run(Scheme::RandomSelection).unwrap();
        assert!(report.faults > 0);
        assert!(report.mean_actual > 0.0);
    }

    #[test]
    fn reports_are_reproducible() {
        let n = generate::benchmark("s386");
        let spec = spec_small();
        let a = PreparedCampaign::from_circuit(&n, &spec)
            .unwrap()
            .run(Scheme::TWO_STEP_DEFAULT)
            .unwrap();
        let b = PreparedCampaign::from_circuit(&n, &spec)
            .unwrap()
            .run(Scheme::TWO_STEP_DEFAULT)
            .unwrap();
        assert_eq!(a.dr, b.dr);
        assert_eq!(a.dr_pruned, b.dr_pruned);
    }

    #[test]
    fn partitions_to_reach_finds_threshold() {
        let report = SchemeReport {
            scheme: Scheme::RandomSelection,
            partitions: 4,
            faults: 1,
            dr: 0.2,
            dr_pruned: 0.2,
            dr_by_prefix: vec![3.0, 1.0, 0.4, 0.2],
            mean_candidates: 0.0,
            mean_actual: 0.0,
            lost_cells: 0,
        };
        assert_eq!(report.partitions_to_reach(0.5), Some(3));
        assert_eq!(report.partitions_to_reach(0.1), None);
    }

    #[test]
    fn x_masking_degrades_but_stays_sound() {
        let n = generate::benchmark("s953");
        let mut spec = CampaignSpec::new(64, 4, 4);
        spec.num_faults = 40;
        let clean = PreparedCampaign::from_circuit(&n, &spec).unwrap();
        spec.x_mask_fraction = 0.15;
        let masked_campaign = PreparedCampaign::from_circuit(&n, &spec).unwrap();
        let masked_cells = masked_campaign.masked_cells();
        assert!(!masked_cells.is_empty());
        let clean_report = clean.run(Scheme::TWO_STEP_DEFAULT).unwrap();
        let masked_report = masked_campaign.run(Scheme::TWO_STEP_DEFAULT).unwrap();
        assert!(masked_report.faults > 0);
        // Masked cells never appear among candidates (checked via the
        // mean: removing cells can only shrink candidate counts).
        assert!(masked_report.mean_candidates <= clean_report.mean_candidates + 1e-9);
    }

    #[test]
    fn multiplet_campaign_runs() {
        let n = generate::benchmark("s953");
        let mut spec = CampaignSpec::new(64, 4, 4);
        spec.num_faults = 20;
        let campaign = PreparedCampaign::from_circuit_multiplets(&n, &spec, 2).unwrap();
        assert!(campaign.num_faults() > 0);
        let report = campaign.run(Scheme::TWO_STEP_DEFAULT).unwrap();
        // Two simultaneous faults fail at least as many cells on
        // average as the single-fault campaign would.
        assert!(report.mean_actual > 0.0);
        assert!(report.dr >= -1.0);
    }

    #[test]
    fn ordering_changes_results_but_stays_sound() {
        let n = generate::benchmark("s953");
        let mut spec = CampaignSpec::new(64, 4, 2);
        spec.num_faults = 40;
        let natural = PreparedCampaign::from_circuit(&n, &spec).unwrap();
        spec.ordering = ScanOrdering::Shuffled(7);
        let shuffled = PreparedCampaign::from_circuit(&n, &spec).unwrap();
        let rn = natural.run(Scheme::IntervalBased).unwrap();
        let rs = shuffled.run(Scheme::IntervalBased).unwrap();
        // Both run to completion; the shuffled chain loses clustering so
        // interval-based resolution typically degrades.
        assert!(rn.faults > 0 && rs.faults > 0);
        assert!(rn.dr <= rs.dr * 1.5 + 1.0, "sanity bound");
    }

    #[test]
    fn invalid_core_is_an_error() {
        let cores = vec![scan_soc::CoreModule::new(bench::s27())];
        let soc = Soc::single_chain("one", cores).unwrap();
        let err = PreparedCampaign::from_soc(&soc, 3, &spec_small());
        assert!(matches!(err, Err(CampaignError::NoSuchCore { .. })));
    }

    #[test]
    fn localization_identifies_the_faulty_core() {
        let cores = vec![
            scan_soc::CoreModule::new(generate::benchmark("s298")),
            scan_soc::CoreModule::new(generate::benchmark("s344")),
            scan_soc::CoreModule::new(generate::benchmark("s386")),
        ];
        let soc = Soc::single_chain("trio", cores).unwrap();
        let mut spec = CampaignSpec::new(64, 8, 6);
        spec.num_faults = 30;
        let campaign = PreparedCampaign::from_soc(&soc, 1, &spec).unwrap();
        let report = campaign.run_localization(Scheme::TWO_STEP_DEFAULT).unwrap();
        assert!(
            report.top1_accuracy > 0.7,
            "accuracy {} too low",
            report.top1_accuracy
        );
        assert!(report.mean_margin >= 0.0);
    }

    #[test]
    fn localization_requires_soc_campaign() {
        let n = generate::benchmark("s386");
        let campaign = PreparedCampaign::from_circuit(&n, &spec_small()).unwrap();
        assert!(campaign.run_localization(Scheme::RandomSelection).is_err());
    }

    #[test]
    fn soc_campaign_diagnoses_within_faulty_core() {
        let cores = vec![
            scan_soc::CoreModule::new(generate::benchmark("s298")),
            scan_soc::CoreModule::new(generate::benchmark("s344")),
            scan_soc::CoreModule::new(generate::benchmark("s386")),
        ];
        let soc = Soc::single_chain("trio", cores).unwrap();
        let mut spec = CampaignSpec::new(64, 4, 4);
        spec.num_faults = 25;
        let campaign = PreparedCampaign::from_soc(&soc, 1, &spec).unwrap();
        let report = campaign.run(Scheme::TWO_STEP_DEFAULT).unwrap();
        assert!(report.faults > 0);
        assert!(report.dr >= -1.0);
    }

    #[test]
    #[allow(clippy::float_cmp)] // bit-identity with the strict engine is the contract
    fn robust_noiseless_matches_strict_campaign() {
        let n = generate::benchmark("s953");
        let campaign = PreparedCampaign::from_circuit(&n, &spec_small()).unwrap();
        let strict = campaign.run(Scheme::TWO_STEP_DEFAULT).unwrap();
        let noise = NoiseModel::new(NoiseConfig::noiseless(7)).unwrap();
        let robust = campaign
            .run_robust(Scheme::TWO_STEP_DEFAULT, &noise, &RobustPolicy::default())
            .unwrap();
        // Noise rate 0: every fault resolves exactly, nothing retried,
        // and DR/candidate means are bit-identical to the strict run.
        assert_eq!(robust.exact, robust.faults);
        assert_eq!(robust.degraded, 0);
        assert_eq!(robust.inconclusive, 0);
        assert_eq!(robust.retry_rounds, 0);
        assert_eq!(robust.retried_sessions, 0);
        assert_eq!(robust.fallbacks, 0);
        assert_eq!(robust.strict_failures, 0);
        assert_eq!(robust.dr, strict.dr);
        assert_eq!(robust.mean_candidates, strict.mean_candidates);
        assert_eq!(robust.mean_actual, strict.mean_actual);
    }

    #[test]
    fn robust_campaign_recovers_most_strict_failures_under_noise() {
        let n = generate::benchmark("s953");
        let mut spec = CampaignSpec::new(64, 4, 4);
        spec.num_faults = 60;
        let campaign = PreparedCampaign::from_circuit(&n, &spec).unwrap();
        let mut cfg = NoiseConfig::noiseless(11);
        cfg.flip_rate = 0.02;
        let noise = NoiseModel::new(cfg).unwrap();
        let report = campaign
            .run_robust(Scheme::TWO_STEP_DEFAULT, &noise, &RobustPolicy::default())
            .unwrap();
        assert_eq!(report.faults, campaign.num_faults());
        assert!(
            report.strict_failures > 0,
            "2% flips should break some strict intersections"
        );
        assert!(
            report.conclusive_fraction() >= 0.9,
            "conclusive fraction {} below the 90% bar",
            report.conclusive_fraction()
        );
        assert!(report.recovered_fraction() >= 0.5);
        assert!(report.hits > 0);
    }

    #[test]
    fn robust_invalid_noise_config_is_a_campaign_error() {
        let mut cfg = NoiseConfig::noiseless(1);
        cfg.flip_rate = 1.5;
        let err = NoiseModel::new(cfg).map_err(CampaignError::from).unwrap_err();
        assert!(matches!(err, CampaignError::Noise(_)));
        assert!(err.to_string().contains("flip_rate"));
    }

    #[test]
    fn robust_audit_covers_every_fault() {
        let n = generate::benchmark("s386");
        let mut spec = CampaignSpec::new(64, 4, 4);
        spec.num_faults = 12;
        let campaign = PreparedCampaign::from_circuit(&n, &spec).unwrap();
        let mut cfg = NoiseConfig::noiseless(5);
        cfg.flip_rate = 0.05;
        let noise = NoiseModel::new(cfg).unwrap();
        let audit = campaign
            .audit_robust(Scheme::TWO_STEP_DEFAULT, &noise, &RobustPolicy::default())
            .unwrap();
        assert_eq!(audit.faults.len(), campaign.num_faults());
        assert_eq!(audit.votes, 3);
        for fault in &audit.faults {
            assert_eq!(fault.steps.len(), spec.partitions);
            assert_eq!(
                fault.confidence == Confidence::Inconclusive,
                fault.inconclusive.is_some()
            );
        }
        // The audit replays the same engine the report ran.
        let report = campaign
            .run_robust(Scheme::TWO_STEP_DEFAULT, &noise, &RobustPolicy::default())
            .unwrap();
        let exact = audit
            .faults
            .iter()
            .filter(|f| f.confidence == Confidence::Exact)
            .count();
        assert_eq!(exact, report.exact);
    }
}
