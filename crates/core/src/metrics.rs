//! Diagnostic resolution metrics.

use std::fmt;

/// Accumulates the paper's diagnostic resolution metric over a fault
/// campaign:
///
/// ```text
/// DR = (Σ_f |candidates(f)| − Σ_f |actual(f)|) / Σ_f |actual(f)|
/// ```
///
/// `DR = 0` is ideal (the candidate set equals the actual failing
/// cells); larger values mean more suspects per true failing cell.
///
/// # Examples
///
/// ```
/// use scan_diagnosis::DrAccumulator;
///
/// let mut acc = DrAccumulator::new();
/// acc.add(10, 4); // fault 1: 10 candidates, 4 actual failing cells
/// acc.add(6, 4);  // fault 2
/// assert!((acc.dr() - 1.0).abs() < 1e-9); // (16 − 8) / 8
/// ```
#[derive(Clone, Copy, Default, PartialEq, Debug)]
pub struct DrAccumulator {
    candidates: u64,
    actual: u64,
    faults: usize,
}

impl DrAccumulator {
    /// An empty accumulator.
    #[must_use]
    pub fn new() -> Self {
        DrAccumulator::default()
    }

    /// Records one fault's diagnosis outcome.
    pub fn add(&mut self, candidates: usize, actual: usize) {
        self.candidates += candidates as u64;
        self.actual += actual as u64;
        self.faults += 1;
    }

    /// Number of faults accumulated.
    #[must_use]
    pub fn num_faults(&self) -> usize {
        self.faults
    }

    /// Total candidates over all faults.
    #[must_use]
    pub fn total_candidates(&self) -> u64 {
        self.candidates
    }

    /// Total actual failing cells over all faults.
    #[must_use]
    pub fn total_actual(&self) -> u64 {
        self.actual
    }

    /// The diagnostic resolution. Returns `0.0` for an empty
    /// accumulator (no faults, no misdiagnosis).
    #[must_use]
    pub fn dr(&self) -> f64 {
        if self.actual == 0 {
            return 0.0;
        }
        (self.candidates as f64 - self.actual as f64) / self.actual as f64
    }

    /// Mean candidates per fault.
    #[must_use]
    pub fn mean_candidates(&self) -> f64 {
        if self.faults == 0 {
            0.0
        } else {
            self.candidates as f64 / self.faults as f64
        }
    }

    /// Mean actual failing cells per fault.
    #[must_use]
    pub fn mean_actual(&self) -> f64 {
        if self.faults == 0 {
            0.0
        } else {
            self.actual as f64 / self.faults as f64
        }
    }
}

impl fmt::Display for DrAccumulator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "DR {:.3} over {} faults ({} candidates / {} actual)",
            self.dr(),
            self.faults,
            self.candidates,
            self.actual
        )
    }
}

#[cfg(test)]
#[allow(clippy::float_cmp)] // exact-value checks on deterministic math
mod tests {
    use super::*;

    #[test]
    fn perfect_diagnosis_is_zero() {
        let mut acc = DrAccumulator::new();
        acc.add(4, 4);
        acc.add(7, 7);
        assert_eq!(acc.dr(), 0.0);
    }

    #[test]
    fn empty_accumulator_is_zero() {
        assert_eq!(DrAccumulator::new().dr(), 0.0);
    }

    #[test]
    fn formula_matches_paper() {
        let mut acc = DrAccumulator::new();
        acc.add(30, 10);
        acc.add(10, 10);
        // (40 − 20) / 20 = 1.0
        assert!((acc.dr() - 1.0).abs() < 1e-12);
        assert_eq!(acc.num_faults(), 2);
        assert_eq!(acc.total_candidates(), 40);
        assert_eq!(acc.total_actual(), 20);
    }

    #[test]
    fn means() {
        let mut acc = DrAccumulator::new();
        acc.add(8, 2);
        acc.add(4, 4);
        assert!((acc.mean_candidates() - 6.0).abs() < 1e-12);
        assert!((acc.mean_actual() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn display_mentions_fault_count() {
        let mut acc = DrAccumulator::new();
        acc.add(5, 1);
        assert!(acc.to_string().contains("1 faults"));
    }
}
