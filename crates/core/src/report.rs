//! Human-readable per-fault diagnosis reports.
//!
//! Campaigns aggregate thousands of faults into one DR number; a
//! failure analyst debugging *one* part wants the opposite: which
//! sessions failed, which chain intervals remain suspect, and how the
//! evidence narrowed. [`FaultReport`] captures that and renders it as
//! text (used by `scanbist diagnose --fault`).

use std::fmt;

use scan_netlist::BitSet;

use crate::diagnose::{diagnose, Diagnosis};
use crate::pruning::prune_by_cover;
use crate::session::{DiagnosisPlan, SessionOutcome};

/// The full evidence trail of diagnosing one fault.
#[derive(Clone, Debug)]
pub struct FaultReport {
    /// Displayable fault name (e.g. `G10/SA1`).
    pub fault: String,
    /// Actually failing observation positions (ground truth, when
    /// available from simulation).
    pub actual: Vec<usize>,
    /// Failing groups per partition.
    pub failing_groups: Vec<Vec<u16>>,
    /// Candidate count after each partition prefix.
    pub prefix_counts: Vec<usize>,
    /// Final candidate positions, as maximal runs `[start, end]`.
    pub candidate_runs: Vec<(usize, usize)>,
    /// Candidates after cover pruning, as maximal runs.
    pub pruned_runs: Vec<(usize, usize)>,
}

impl FaultReport {
    /// Diagnoses one fault's error bits under `plan` and assembles the
    /// report. `fault` is a display name; `actual` the ground-truth
    /// failing positions (empty slice when unknown).
    #[must_use]
    pub fn build<I>(
        fault: impl Into<String>,
        plan: &DiagnosisPlan,
        error_bits: I,
        actual: &[usize],
    ) -> Self
    where
        I: IntoIterator<Item = (usize, usize)>,
    {
        let bits: Vec<(usize, usize)> = error_bits.into_iter().collect();
        let outcome = plan.analyze(bits.iter().copied());
        let diag = diagnose(plan, &outcome);
        let pruned = prune_by_cover(plan, &outcome, diag.candidates());
        Self::from_parts(fault, plan, &outcome, &diag, &pruned, actual)
    }

    /// Assembles a report from already-computed diagnosis artifacts.
    #[must_use]
    pub fn from_parts(
        fault: impl Into<String>,
        plan: &DiagnosisPlan,
        outcome: &SessionOutcome,
        diag: &Diagnosis,
        pruned: &BitSet,
        actual: &[usize],
    ) -> Self {
        let failing_groups = (0..plan.partitions().len())
            .map(|p| outcome.failing_groups(p).collect())
            .collect();
        FaultReport {
            fault: fault.into(),
            actual: actual.to_vec(),
            failing_groups,
            prefix_counts: diag.prefix_counts().to_vec(),
            candidate_runs: runs(diag.candidates()),
            pruned_runs: runs(pruned),
        }
    }

    /// Number of final candidates.
    #[must_use]
    pub fn num_candidates(&self) -> usize {
        self.candidate_runs.iter().map(|&(s, e)| e - s + 1).sum()
    }
}

/// Collapses a set of positions into maximal inclusive runs.
#[must_use]
pub fn runs(set: &BitSet) -> Vec<(usize, usize)> {
    let mut out: Vec<(usize, usize)> = Vec::new();
    for cell in set {
        match out.last_mut() {
            Some((_, end)) if *end + 1 == cell => *end = cell,
            _ => out.push((cell, cell)),
        }
    }
    out
}

fn fmt_runs(runs: &[(usize, usize)]) -> String {
    if runs.is_empty() {
        return "(none)".to_owned();
    }
    runs.iter()
        .map(|&(s, e)| {
            if s == e {
                s.to_string()
            } else {
                format!("{s}-{e}")
            }
        })
        .collect::<Vec<_>>()
        .join(", ")
}

impl fmt::Display for FaultReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "fault {}", self.fault)?;
        if !self.actual.is_empty() {
            writeln!(f, "  true failing positions: {:?}", self.actual)?;
        }
        for (p, groups) in self.failing_groups.iter().enumerate() {
            writeln!(f, "  partition {p}: failing groups {groups:?}")?;
        }
        writeln!(
            f,
            "  candidates by partition prefix: {:?}",
            self.prefix_counts
        )?;
        writeln!(
            f,
            "  final candidates ({}): {}",
            self.num_candidates(),
            fmt_runs(&self.candidate_runs)
        )?;
        writeln!(f, "  after pruning: {}", fmt_runs(&self.pruned_runs))?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::ChainLayout;
    use crate::session::BistConfig;
    use scan_bist::Scheme;
    use scan_netlist::BitSet;

    #[test]
    fn runs_collapse_consecutive_cells() {
        let mut set = BitSet::new(20);
        for i in [1usize, 2, 3, 7, 10, 11] {
            set.insert(i);
        }
        assert_eq!(runs(&set), vec![(1, 3), (7, 7), (10, 11)]);
        assert_eq!(runs(&BitSet::new(5)), vec![]);
    }

    #[test]
    fn report_renders_evidence_trail() {
        let plan = DiagnosisPlan::new(
            ChainLayout::single_chain(64),
            16,
            &BistConfig::new(4, 3, Scheme::TWO_STEP_DEFAULT),
        )
        .unwrap();
        let report = FaultReport::build("demo/SA1", &plan, [(20usize, 3usize), (21, 4)], &[20, 21]);
        assert_eq!(report.failing_groups.len(), 3);
        assert!(report.num_candidates() >= 2);
        let text = report.to_string();
        assert!(text.contains("fault demo/SA1"));
        assert!(text.contains("partition 0"));
        assert!(text.contains("after pruning"));
        assert!(text.contains("true failing positions"));
    }

    #[test]
    fn candidate_count_matches_runs() {
        let plan = DiagnosisPlan::new(
            ChainLayout::single_chain(32),
            8,
            &BistConfig::new(2, 2, Scheme::RandomSelection),
        )
        .unwrap();
        let report = FaultReport::build("x", &plan, [(5usize, 1usize)], &[]);
        let total: usize = report.candidate_runs.iter().map(|&(s, e)| e - s + 1).sum();
        assert_eq!(total, report.num_candidates());
    }
}
