//! Windowed signature analysis: using time *and* space information.
//!
//! The paper's reference \[2\] (Ghosh-Dastidar, Das & Touba) improves
//! scan-BIST diagnosis by reading intermediate MISR snapshots during a
//! session instead of one final signature. Snapshot `w` taken every
//! `window` patterns localizes errors in time: by MISR linearity, the
//! window's own error contribution is nonzero iff the snapshot sequence
//! deviates from the fault-free one at that point — so each session
//! yields one pass/fail verdict *per window*, at the cost of unloading
//! the signature register more often.
//!
//! Combined with the paper's cell-axis partitions this gives
//! `(partition, group, window)` granularity: failing cells from the
//! space axis, failing pattern windows from the time axis.

use scan_netlist::BitSet;

use crate::session::DiagnosisPlan;

/// Per-window pass/fail verdicts for every session of a plan.
#[derive(Clone, Eq, PartialEq, Debug)]
pub struct WindowedOutcome {
    /// `fails[partition][group][window]`.
    fails: Vec<Vec<Vec<bool>>>,
    window: usize,
    num_patterns: usize,
}

impl WindowedOutcome {
    /// Whether window `w` of group `g` in partition `p` failed.
    ///
    /// # Panics
    ///
    /// Panics if indices are out of range.
    #[must_use]
    pub fn failed(&self, partition: usize, group: u16, window: usize) -> bool {
        self.fails[partition][usize::from(group)][window]
    }

    /// Patterns per window.
    #[must_use]
    pub fn window(&self) -> usize {
        self.window
    }

    /// Number of windows per session.
    #[must_use]
    pub fn num_windows(&self) -> usize {
        self.num_patterns.div_ceil(self.window)
    }

    /// Candidate failing vectors: the union over sessions of patterns
    /// inside failing windows, intersected across partitions.
    #[must_use]
    pub fn candidate_vectors(&self) -> BitSet {
        let mut candidates = BitSet::full(self.num_patterns);
        for partition in &self.fails {
            let mut this = BitSet::new(self.num_patterns);
            for group in partition {
                for (w, &failed) in group.iter().enumerate() {
                    if failed {
                        let start = w * self.window;
                        let end = ((w + 1) * self.window).min(self.num_patterns);
                        for t in start..end {
                            this.insert(t);
                        }
                    }
                }
            }
            candidates.intersect_with(&this);
        }
        candidates
    }
}

/// Analyzes a sparse error map with intermediate snapshots every
/// `window` patterns.
///
/// # Panics
///
/// Panics if `window` is zero or any error bit is out of range.
#[must_use]
pub fn analyze_windows<I>(plan: &DiagnosisPlan, window: usize, error_bits: I) -> WindowedOutcome
where
    I: IntoIterator<Item = (usize, usize)>,
{
    assert!(window >= 1, "window must be at least one pattern");
    let num_patterns = plan.num_patterns();
    let num_windows = num_patterns.div_ceil(window);
    let groups = usize::from(
        plan.partitions()
            .iter()
            .map(scan_bist::Partition::num_groups)
            .max()
            .unwrap_or(0),
    );
    let mut signatures =
        vec![vec![vec![0u64; num_windows]; groups]; plan.partitions().len()];
    for (cell, pattern) in error_bits {
        let (_, pos) = plan.layout().coord(cell);
        let contribution = plan.contribution(cell, pattern);
        let w = pattern / window;
        for (p, partition) in plan.partitions().iter().enumerate() {
            let g = usize::from(partition.group_of(pos as usize));
            signatures[p][g][w] ^= contribution;
        }
    }
    let fails = signatures
        .iter()
        .map(|partition| {
            partition
                .iter()
                .map(|group| group.iter().map(|&s| s != 0).collect())
                .collect()
        })
        .collect();
    WindowedOutcome {
        fails,
        window,
        num_patterns,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::ChainLayout;
    use crate::session::BistConfig;
    use scan_bist::Scheme;

    fn plan(chain_len: usize, patterns: usize) -> DiagnosisPlan {
        DiagnosisPlan::new(
            ChainLayout::single_chain(chain_len),
            patterns,
            &BistConfig::new(4, 2, Scheme::TWO_STEP_DEFAULT),
        )
        .unwrap()
    }

    #[test]
    fn windows_localize_errors_in_time() {
        let plan = plan(40, 64);
        let outcome = analyze_windows(&plan, 16, [(5usize, 20usize)]);
        assert_eq!(outcome.num_windows(), 4);
        // The error at pattern 20 is in window 1 only.
        for p in 0..plan.partitions().len() {
            let g = plan.partitions()[p].group_of(5);
            assert!(outcome.failed(p, g, 1));
            assert!(!outcome.failed(p, g, 0));
            assert!(!outcome.failed(p, g, 2));
        }
    }

    #[test]
    fn candidate_vectors_are_window_bounded() {
        let plan = plan(40, 64);
        let outcome = analyze_windows(&plan, 8, [(5usize, 20usize), (30, 55)]);
        let candidates = outcome.candidate_vectors();
        assert!(candidates.contains(20));
        assert!(candidates.contains(55));
        // Patterns in untouched windows are excluded.
        assert!(!candidates.contains(0));
        assert!(!candidates.contains(40));
        // Resolution is window-granular: the whole window of 20 remains.
        assert!(candidates.contains(16) && candidates.contains(23));
    }

    #[test]
    fn window_one_gives_exact_vectors_without_aliasing() {
        let plan = plan(40, 32);
        let bits = [(3usize, 7usize), (9, 19)];
        let outcome = analyze_windows(&plan, 1, bits.iter().copied());
        let candidates = outcome.candidate_vectors();
        assert_eq!(candidates.iter().collect::<Vec<_>>(), vec![7, 19]);
    }

    #[test]
    fn finer_windows_never_lose_failing_vectors() {
        let plan = plan(64, 64);
        let bits: Vec<(usize, usize)> = vec![(1, 4), (2, 4), (17, 40), (60, 63)];
        for window in [1usize, 4, 16, 64] {
            let outcome = analyze_windows(&plan, window, bits.iter().copied());
            let candidates = outcome.candidate_vectors();
            for &(_, t) in &bits {
                assert!(candidates.contains(t), "window {window} lost pattern {t}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "window must be at least one pattern")]
    fn zero_window_rejected() {
        let plan = plan(8, 8);
        let _ = analyze_windows(&plan, 0, std::iter::empty());
    }
}
