//! A virtual tester: the complete scan-BIST diagnosis flow executed
//! through the *hardware* path.
//!
//! Everything else in this crate computes session verdicts through the
//! linear MISR model; [`VirtualTester`] instead replays what the silicon
//! and the ATE actually do, cycle by cycle:
//!
//! 1. the PRPG loads the chain and drives the PIs for every pattern;
//! 2. the circuit captures; the chain shifts out through the Fig. 1
//!    selection logic ([`SelectionHardware`]) into a stepwise
//!    [`Misr`];
//! 3. the tester compares each session signature against the
//!    fault-free reference and records pass/fail;
//! 4. failing groups are intersected across partitions.
//!
//! It is the executable specification the fast engine is tested
//! against (see `tests/hardware_consistency.rs` and the unit tests
//! here), and a debugging aid when hardware behaviour is in question.
//! It supports a single scan chain (the configuration of the paper's
//! Tables 1 and 2).

use scan_bist::selection::{SelectionHardware, SelectionMode};
use scan_bist::{Lfsr, Misr, Scheme};
use scan_netlist::{BitSet, Netlist, ScanView};
use scan_sim::{Fault, FaultSimulator, PatternSet, ResponseMap};

use crate::error::BuildPlanError;
use crate::session::BistConfig;

/// The hardware-path diagnosis flow for a single-chain circuit.
pub struct VirtualTester<'a> {
    netlist: &'a Netlist,
    view: &'a ScanView,
    patterns: &'a PatternSet,
    config: BistConfig,
}

/// The tester's observations for one fault: per-session verdicts and
/// the resulting candidate set.
#[derive(Clone, Debug)]
pub struct TesterRun {
    /// `fails[partition][group]`.
    pub fails: Vec<Vec<bool>>,
    /// Cells in a failing group of every partition.
    pub candidates: BitSet,
    /// BIST sessions executed.
    pub sessions: usize,
}

impl<'a> VirtualTester<'a> {
    /// Creates a tester for the circuit/patterns/BIST configuration.
    ///
    /// # Errors
    ///
    /// Returns [`BuildPlanError::DegenerateConfig`] for empty configs
    /// or [`BuildPlanError::UnsupportedDegree`] for bad register
    /// widths.
    pub fn new(
        netlist: &'a Netlist,
        view: &'a ScanView,
        patterns: &'a PatternSet,
        config: BistConfig,
    ) -> Result<Self, BuildPlanError> {
        if config.partitions == 0 || config.groups == 0 || patterns.num_patterns() == 0 {
            return Err(BuildPlanError::DegenerateConfig);
        }
        if Misr::new(config.misr_degree).is_err() {
            return Err(BuildPlanError::UnsupportedDegree {
                degree: config.misr_degree,
            });
        }
        if Lfsr::new(config.partition_lfsr_degree).is_err() {
            return Err(BuildPlanError::UnsupportedDegree {
                degree: config.partition_lfsr_degree,
            });
        }
        Ok(VirtualTester {
            netlist,
            view,
            patterns,
            config,
        })
    }

    /// Executes the full diagnosis flow for one injected fault,
    /// replaying every session through the selection hardware and a
    /// stepwise MISR.
    ///
    /// # Panics
    ///
    /// Panics if the underlying simulators disagree on shapes (ruled
    /// out by construction).
    #[must_use]
    pub fn diagnose(&self, fault: &Fault) -> TesterRun {
        let fsim = FaultSimulator::new(self.netlist, self.view, self.patterns)
            .expect("tester shapes are consistent");
        let golden = fsim.golden().clone();
        let faulty = fsim.response(fault);
        let chain_len = self.view.len();

        let mut fails: Vec<Vec<bool>> = Vec::with_capacity(self.config.partitions);
        let mut sessions = 0usize;

        // Interval-based partitions first (two-step/interval schemes).
        let interval_count = match self.config.scheme {
            Scheme::IntervalBased => self.config.partitions,
            Scheme::TwoStep {
                interval_partitions,
            } => interval_partitions.min(self.config.partitions),
            _ => 0,
        };
        for salt in 0..interval_count {
            let found = scan_bist::seed::find_interval_seed(
                chain_len,
                self.config.groups,
                self.config.partition_lfsr_degree,
                salt as u64,
            );
            let Ok(found) = found else {
                // Mirror the engine's fallback: fixed intervals need no
                // hardware randomness, so emulate them with a mask
                // directly.
                fails.push(self.fixed_interval_partition_fails(
                    &golden,
                    &faulty,
                    &mut sessions,
                ));
                continue;
            };
            let mut hw = SelectionHardware::new(
                Lfsr::new(self.config.partition_lfsr_degree).expect("degree checked"),
                found.seed,
                self.config.groups,
                SelectionMode::Interval {
                    k_bits: found.k_bits,
                },
            );
            fails.push(self.run_partition(&mut hw, &golden, &faulty, &mut sessions));
        }

        // Random-selection partitions for the remainder.
        let remaining = self.config.partitions - fails.len();
        if remaining > 0 || matches!(self.config.scheme, Scheme::FixedInterval) {
            if self.config.scheme == Scheme::FixedInterval {
                for _ in 0..self.config.partitions {
                    fails.push(self.fixed_interval_partition_fails(
                        &golden,
                        &faulty,
                        &mut sessions,
                    ));
                }
            } else {
                let mut hw = SelectionHardware::new(
                    Lfsr::new(self.config.partition_lfsr_degree).expect("degree checked"),
                    self.config.partition_seed,
                    self.config.groups,
                    SelectionMode::RandomSelection,
                );
                for _ in 0..remaining {
                    fails.push(self.run_partition(&mut hw, &golden, &faulty, &mut sessions));
                    hw.finish_partition(chain_len);
                }
            }
        }

        // Intersect failing groups. Group membership per position comes
        // from replaying the masks once more — the tester knows its own
        // schedule, not the engine's partition tables.
        let mut candidates = BitSet::full(chain_len);
        // Rebuild masks in the same order to attribute positions.
        let masks = self.all_session_masks();
        for (p, partition_fails) in fails.iter().enumerate() {
            let mut keep = BitSet::new(chain_len);
            for (g, &failed) in partition_fails.iter().enumerate() {
                if failed {
                    for (pos, &selected) in masks[p][g].iter().enumerate() {
                        if selected && candidates.contains(pos) {
                            keep.insert(pos);
                        }
                    }
                }
            }
            candidates = keep;
        }

        TesterRun {
            fails,
            candidates,
            sessions,
        }
    }

    fn run_partition(
        &self,
        hw: &mut SelectionHardware,
        golden: &ResponseMap,
        faulty: &ResponseMap,
        sessions: &mut usize,
    ) -> Vec<bool> {
        let chain_len = self.view.len();
        (0..self.config.groups)
            .map(|g| {
                *sessions += 1;
                let mask = hw.session_mask(g, chain_len);
                self.session_fails(&mask, golden, faulty)
            })
            .collect()
    }

    fn fixed_interval_partition_fails(
        &self,
        golden: &ResponseMap,
        faulty: &ResponseMap,
        sessions: &mut usize,
    ) -> Vec<bool> {
        let chain_len = self.view.len();
        let partition = scan_bist::partition::fixed_interval_partition(
            &scan_bist::PartitionConfig::new(chain_len, self.config.groups),
        );
        (0..self.config.groups)
            .map(|g| {
                *sessions += 1;
                let mask: Vec<bool> = (0..chain_len).map(|pos| partition.group_of(pos) == g).collect();
                self.session_fails(&mask, golden, faulty)
            })
            .collect()
    }

    /// One BIST session: shift every pattern's response through the
    /// masked single-input MISR, for both machines; compare signatures.
    fn session_fails(&self, mask: &[bool], golden: &ResponseMap, faulty: &ResponseMap) -> bool {
        let mut misr_golden = Misr::new(self.config.misr_degree).expect("degree checked");
        let mut misr_faulty = Misr::new(self.config.misr_degree).expect("degree checked");
        for t in 0..self.patterns.num_patterns() {
            for (pos, &selected) in mask.iter().enumerate() {
                misr_golden.clock(u64::from(golden.bit(pos, t) && selected));
                misr_faulty.clock(u64::from(faulty.bit(pos, t) && selected));
            }
        }
        misr_golden.signature() != misr_faulty.signature()
    }

    /// Replays all session masks in schedule order (used to attribute
    /// chain positions to groups during intersection).
    fn all_session_masks(&self) -> Vec<Vec<Vec<bool>>> {
        let chain_len = self.view.len();
        let mut masks = Vec::with_capacity(self.config.partitions);
        let interval_count = match self.config.scheme {
            Scheme::IntervalBased => self.config.partitions,
            Scheme::TwoStep {
                interval_partitions,
            } => interval_partitions.min(self.config.partitions),
            _ => 0,
        };
        for salt in 0..interval_count {
            match scan_bist::seed::find_interval_seed(
                chain_len,
                self.config.groups,
                self.config.partition_lfsr_degree,
                salt as u64,
            ) {
                Ok(found) => {
                    let mut hw = SelectionHardware::new(
                        Lfsr::new(self.config.partition_lfsr_degree).expect("degree checked"),
                        found.seed,
                        self.config.groups,
                        SelectionMode::Interval {
                            k_bits: found.k_bits,
                        },
                    );
                    masks.push(
                        (0..self.config.groups)
                            .map(|g| hw.session_mask(g, chain_len))
                            .collect(),
                    );
                }
                Err(_) => masks.push(self.fixed_masks(chain_len)),
            }
        }
        if self.config.scheme == Scheme::FixedInterval {
            for _ in 0..self.config.partitions {
                masks.push(self.fixed_masks(chain_len));
            }
        } else {
            let mut hw = SelectionHardware::new(
                Lfsr::new(self.config.partition_lfsr_degree).expect("degree checked"),
                self.config.partition_seed,
                self.config.groups,
                SelectionMode::RandomSelection,
            );
            for _ in 0..self.config.partitions - masks.len() {
                masks.push(
                    (0..self.config.groups)
                        .map(|g| hw.session_mask(g, chain_len))
                        .collect(),
                );
                hw.finish_partition(chain_len);
            }
        }
        masks
    }

    fn fixed_masks(&self, chain_len: usize) -> Vec<Vec<bool>> {
        let partition = scan_bist::partition::fixed_interval_partition(
            &scan_bist::PartitionConfig::new(chain_len, self.config.groups),
        );
        (0..self.config.groups)
            .map(|g| (0..chain_len).map(|pos| partition.group_of(pos) == g).collect())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diagnose::diagnose;
    use crate::layout::ChainLayout;
    use crate::lfsr_patterns;
    use crate::session::DiagnosisPlan;
    use scan_netlist::generate;

    #[test]
    fn virtual_tester_agrees_with_fast_engine() {
        // The headline consistency result: the hardware path and the
        // superposition engine produce identical verdicts and identical
        // candidate sets, fault for fault, for every scheme.
        let circuit = generate::benchmark("s953");
        let view = ScanView::natural(&circuit, true);
        let patterns = lfsr_patterns(&circuit, 24, 0xACE1);
        let fsim = FaultSimulator::new(&circuit, &view, &patterns).unwrap();
        let faults = fsim.sample_detected_faults(4, 7);
        for scheme in [
            Scheme::RandomSelection,
            Scheme::IntervalBased,
            Scheme::TWO_STEP_DEFAULT,
            Scheme::FixedInterval,
        ] {
            let config = BistConfig::new(4, 3, scheme);
            let tester = VirtualTester::new(&circuit, &view, &patterns, config).unwrap();
            let plan =
                DiagnosisPlan::new(ChainLayout::single_chain(view.len()), 24, &config).unwrap();
            for fault in &faults {
                let hw_run = tester.diagnose(fault);
                let outcome = plan.analyze(fsim.error_map(fault).iter_bits());
                for (p, partition) in plan.partitions().iter().enumerate() {
                    for g in 0..partition.num_groups() {
                        assert_eq!(
                            hw_run.fails[p][usize::from(g)],
                            outcome.failed(p, g),
                            "{scheme:?} fault {} partition {p} group {g}",
                            fault.describe(&circuit)
                        );
                    }
                }
                let engine = diagnose(&plan, &outcome);
                assert_eq!(
                    &hw_run.candidates,
                    engine.candidates(),
                    "{scheme:?} fault {} candidate sets differ",
                    fault.describe(&circuit)
                );
            }
        }
    }

    #[test]
    fn session_count_matches_schedule() {
        let circuit = generate::benchmark("s386");
        let view = ScanView::natural(&circuit, true);
        let patterns = lfsr_patterns(&circuit, 16, 1);
        let config = BistConfig::new(4, 3, Scheme::TWO_STEP_DEFAULT);
        let tester = VirtualTester::new(&circuit, &view, &patterns, config).unwrap();
        let fsim = FaultSimulator::new(&circuit, &view, &patterns).unwrap();
        let fault = fsim.sample_detected_faults(1, 1)[0];
        let run = tester.diagnose(&fault);
        assert_eq!(run.sessions, 3 * 4);
    }

    #[test]
    fn degenerate_config_rejected() {
        let circuit = generate::benchmark("s386");
        let view = ScanView::natural(&circuit, true);
        let patterns = lfsr_patterns(&circuit, 16, 1);
        let config = BistConfig::new(0, 3, Scheme::RandomSelection);
        assert!(VirtualTester::new(&circuit, &view, &patterns, config).is_err());
    }
}
