//! Post-processing pruning of the candidate set.
//!
//! The paper refines the intersection-based candidate set with the
//! superposition technique of Bayraktaroglu & Orailoglu \[7\]. This
//! module implements a *cover-based* refinement with the same role (see
//! `DESIGN.md` §3/§5): every failing session must be *explained* by at
//! least one error-capturing cell it compacts, so
//!
//! 1. a failing group whose only remaining candidate is `c` *confirms*
//!    `c` (it must be failing);
//! 2. a candidate is pruned when every failing group containing it is
//!    already explained by a confirmed cell;
//! 3. pruning can create new single-candidate groups, so the two rules
//!    iterate to a fixpoint.
//!
//! The refinement is conservative for isolated errors and, like \[7\],
//! heuristic in general: it never removes the last possible explanation
//! of any failing session.

use scan_netlist::BitSet;

use crate::session::{DiagnosisPlan, SessionOutcome};

/// Prunes a candidate set using failing-group cover analysis.
///
/// `candidates` is the intersection-based candidate set from
/// [`diagnose`](crate::diagnose::diagnose); the result is a subset that
/// still explains every failing session.
#[must_use]
pub fn prune_by_cover(
    plan: &DiagnosisPlan,
    outcome: &SessionOutcome,
    candidates: &BitSet,
) -> BitSet {
    let layout = plan.layout();
    // Collect failing groups as lists of candidate member cells.
    let mut groups: Vec<Vec<usize>> = Vec::new();
    for (p, partition) in plan.partitions().iter().enumerate() {
        let failing: Vec<bool> = (0..partition.num_groups())
            .map(|g| outcome.failed(p, g))
            .collect();
        let mut members: Vec<Vec<usize>> =
            vec![Vec::new(); usize::from(partition.num_groups())];
        for cell in candidates {
            let (_, pos) = layout.coord(cell);
            let g = usize::from(partition.group_of(pos as usize));
            if failing[g] {
                members[g].push(cell);
            }
        }
        for (g, cells) in members.into_iter().enumerate() {
            if failing[g] {
                groups.push(cells);
            }
        }
    }

    let mut current = candidates.clone();
    loop {
        // Rule 1: single-candidate groups confirm their cell.
        let mut confirmed = BitSet::new(current.capacity());
        for group in &groups {
            let members: Vec<usize> = group.iter().copied().filter(|&c| current.contains(c)).collect();
            if members.len() == 1 {
                confirmed.insert(members[0]);
            }
        }
        // Rule 2: keep confirmed cells plus every member of a group not
        // yet explained by a confirmed cell.
        let mut next = confirmed.clone();
        for group in &groups {
            let explained = group.iter().any(|&c| confirmed.contains(c));
            if !explained {
                for &c in group {
                    if current.contains(c) {
                        next.insert(c);
                    }
                }
            }
        }
        if next == current {
            return current;
        }
        current = next;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diagnose::diagnose;
    use crate::layout::ChainLayout;
    use crate::session::BistConfig;
    use scan_bist::Scheme;

    fn plan(chain_len: usize, groups: u16, partitions: usize, scheme: Scheme) -> DiagnosisPlan {
        DiagnosisPlan::new(
            ChainLayout::single_chain(chain_len),
            16,
            &BistConfig::new(groups, partitions, scheme),
        )
        .unwrap()
    }

    #[test]
    fn pruning_never_grows_the_set() {
        let plan = plan(128, 4, 4, Scheme::RandomSelection);
        let bits = [(10usize, 0usize), (11, 1), (90, 3)];
        let outcome = plan.analyze(bits.iter().copied());
        let diag = diagnose(&plan, &outcome);
        let pruned = prune_by_cover(&plan, &outcome, diag.candidates());
        assert!(pruned.is_subset(diag.candidates()));
    }

    #[test]
    fn pruning_keeps_every_session_explained() {
        let plan = plan(200, 8, 6, Scheme::TWO_STEP_DEFAULT);
        let bits = [(20usize, 2usize), (21, 2), (22, 4), (160, 1)];
        let outcome = plan.analyze(bits.iter().copied());
        let diag = diagnose(&plan, &outcome);
        let pruned = prune_by_cover(&plan, &outcome, diag.candidates());
        // Every failing group retains at least one pruned candidate —
        // unless the failing group had no candidates at all (aliasing),
        // which cannot happen for these explicit error bits.
        for (p, partition) in plan.partitions().iter().enumerate() {
            for g in outcome.failing_groups(p) {
                let has = partition.members(g).any(|pos| pruned.contains(pos));
                assert!(has, "partition {p} group {g} lost all explanations");
            }
        }
    }

    #[test]
    fn isolated_single_error_is_confirmed_not_pruned() {
        let plan = plan(100, 4, 6, Scheme::RandomSelection);
        let outcome = plan.analyze([(55usize, 3usize)]);
        let diag = diagnose(&plan, &outcome);
        let pruned = prune_by_cover(&plan, &outcome, diag.candidates());
        assert!(pruned.contains(55), "true failing cell must survive");
    }

    #[test]
    fn pruning_handles_empty_candidates() {
        let plan = plan(64, 4, 2, Scheme::RandomSelection);
        let outcome = plan.analyze(std::iter::empty());
        let diag = diagnose(&plan, &outcome);
        let pruned = prune_by_cover(&plan, &outcome, diag.candidates());
        assert!(pruned.is_empty());
    }
}
