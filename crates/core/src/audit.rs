//! Per-fault diagnosis audit traces.
//!
//! A [`SchemeReport`](crate::SchemeReport) compresses a campaign into
//! aggregate DR numbers; an audit trace keeps the evidence. For every
//! injected fault it records, per partition, the partition *kind*
//! (interval vs random-selection), which groups failed their BIST
//! session, and how large the candidate set was after intersecting
//! that partition — the full convergence curve behind Fig. 5, one
//! fault at a time.
//!
//! Traces serialize to NDJSON (`scanbist --audit-out <path> diagnose …`),
//! are validated by `obs-check`, and are summarized back into a
//! human-readable report by `scanbist explain <audit.ndjson>` via
//! [`summarize_ndjson`]. Auditing is a separate replay pass over the
//! prepared campaign — the diagnosis hot path is untouched, so audited
//! and unaudited campaigns stay bit-identical.

use std::fmt::Write as _;

use scan_obs::json::{self, Value};

/// One partition's contribution to a fault's diagnosis.
#[derive(Clone, Eq, PartialEq, Debug)]
pub struct AuditStep {
    /// Partition index within the scheme (0-based).
    pub partition: usize,
    /// Partition kind: `"interval"` or `"random-selection"`.
    pub kind: &'static str,
    /// Groups whose BIST session signature mismatched.
    pub failing_groups: Vec<u16>,
    /// Candidate-set size after intersecting this partition (the raw
    /// intersection, before X-mask exclusion).
    pub candidates: usize,
}

/// The audit record of one injected fault.
#[derive(Clone, Eq, PartialEq, Debug)]
pub struct FaultAudit {
    /// Fault case index within the campaign.
    pub index: usize,
    /// Observable truly-failing cells.
    pub actual: usize,
    /// Final candidate count (after all partitions and X-mask
    /// exclusion).
    pub final_candidates: usize,
    /// One step per partition, in intersection order.
    pub steps: Vec<AuditStep>,
}

/// A full campaign audit: metadata plus one record per fault.
#[derive(Clone, Eq, PartialEq, Debug)]
pub struct CampaignAudit {
    /// Scheme name (e.g. `two-step(1+3)`).
    pub scheme: String,
    /// Groups per partition.
    pub groups: u16,
    /// Partitions per scheme.
    pub partitions: usize,
    /// Per-fault records, in fault-index order.
    pub faults: Vec<FaultAudit>,
}

impl CampaignAudit {
    /// Renders the NDJSON stream: a `meta` line followed by one `fault`
    /// line per record. The shape is what `obs-check` validates.
    #[must_use]
    pub fn to_ndjson(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            r#"{{"type":"meta","version":1,"kind":"diagnosis-audit","scheme":"{}","groups":{},"partitions":{},"faults":{}}}"#,
            self.scheme,
            self.groups,
            self.partitions,
            self.faults.len()
        );
        for fault in &self.faults {
            let _ = write!(
                out,
                r#"{{"type":"fault","index":{},"actual":{},"final":{},"steps":["#,
                fault.index, fault.actual, fault.final_candidates
            );
            for (i, step) in fault.steps.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let groups = step
                    .failing_groups
                    .iter()
                    .map(ToString::to_string)
                    .collect::<Vec<_>>()
                    .join(",");
                let _ = write!(
                    out,
                    r#"{{"partition":{},"kind":"{}","failing_groups":[{groups}],"candidates":{}}}"#,
                    step.partition, step.kind, step.candidates
                );
            }
            out.push_str("]}\n");
        }
        out
    }
}

/// Summarizes an NDJSON audit trace (as written by `--audit-out`) into
/// the human-readable report printed by `scanbist explain`.
///
/// # Errors
///
/// Returns a message if the stream is not parseable NDJSON or contains
/// no `fault` events.
pub fn summarize_ndjson(text: &str) -> Result<String, String> {
    let mut scheme = String::from("?");
    // (actual, final, per-step candidate counts, per-step kinds)
    let mut faults: Vec<(u64, u64, Vec<u64>, Vec<String>)> = Vec::new();
    for (index, line) in text.lines().enumerate() {
        if line.is_empty() {
            continue;
        }
        let value = json::parse(line).map_err(|e| format!("line {}: {e}", index + 1))?;
        match value.get("type").and_then(Value::as_str) {
            Some("meta") => {
                if let Some(name) = value.get("scheme").and_then(Value::as_str) {
                    name.clone_into(&mut scheme);
                }
            }
            Some("fault") => faults.push(parse_fault(&value).map_err(|e| {
                format!("line {}: {e}", index + 1)
            })?),
            Some(other) => return Err(format!("line {}: unknown event type `{other}`", index + 1)),
            None => return Err(format!("line {}: missing \"type\"", index + 1)),
        }
    }
    if faults.is_empty() {
        return Err("no fault events in audit trace".into());
    }

    let n = faults.len() as f64;
    let sum_actual: u64 = faults.iter().map(|f| f.0).sum();
    let sum_final: u64 = faults.iter().map(|f| f.1).sum();
    let steps = faults.iter().map(|f| f.2.len()).max().unwrap_or(0);
    let mut out = String::new();
    let _ = writeln!(out, "diagnosis audit: {} fault(s), scheme {scheme}", faults.len());
    let _ = writeln!(
        out,
        "  mean actual failing cells {:.2}, mean final candidates {:.2}",
        sum_actual as f64 / n,
        sum_final as f64 / n
    );
    if sum_actual > 0 {
        let dr = (sum_final as f64 - sum_actual as f64) / sum_actual as f64;
        let _ = writeln!(out, "  diagnostic resolution (DR) {dr:.3}");
    }
    let _ = writeln!(out, "  convergence (mean candidates after each partition):");
    for k in 0..steps {
        let with_step: Vec<&(u64, u64, Vec<u64>, Vec<String>)> =
            faults.iter().filter(|f| f.2.len() > k).collect();
        let mean = with_step.iter().map(|f| f.2[k]).sum::<u64>() as f64
            / with_step.len().max(1) as f64;
        let kind = with_step
            .first()
            .and_then(|f| f.3.get(k).cloned())
            .unwrap_or_else(|| "?".into());
        let _ = writeln!(out, "    partition {:>2} [{kind:<16}] {mean:>10.1}", k + 1);
    }
    if let Some((index, f)) = faults
        .iter()
        .enumerate()
        .max_by_key(|(_, f)| f.1.saturating_sub(f.0))
    {
        let _ = writeln!(
            out,
            "  worst fault: #{index} ({} candidates for {} actual failing cell(s))",
            f.1, f.0
        );
    }
    Ok(out)
}

#[allow(clippy::type_complexity)] // one private tuple, named in the caller
#[allow(clippy::cast_sign_loss)] // counts are clamped non-negative before the cast
fn parse_fault(value: &Value) -> Result<(u64, u64, Vec<u64>, Vec<String>), String> {
    let num = |member: &str| -> Result<u64, String> {
        value
            .get(member)
            .and_then(Value::as_f64)
            .map(|v| v.max(0.0) as u64)
            .ok_or_else(|| format!("fault event missing numeric \"{member}\""))
    };
    let actual = num("actual")?;
    let final_candidates = num("final")?;
    let steps = value
        .get("steps")
        .and_then(Value::as_array)
        .ok_or("fault event missing \"steps\" array")?;
    let mut counts = Vec::with_capacity(steps.len());
    let mut kinds = Vec::with_capacity(steps.len());
    for step in steps {
        counts.push(
            step.get("candidates")
                .and_then(Value::as_f64)
                .map(|v| v.max(0.0) as u64)
                .ok_or("audit step missing numeric \"candidates\"")?,
        );
        kinds.push(
            step.get("kind")
                .and_then(Value::as_str)
                .ok_or("audit step missing \"kind\"")?
                .to_owned(),
        );
    }
    Ok((actual, final_candidates, counts, kinds))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CampaignAudit {
        CampaignAudit {
            scheme: "two-step(1+1)".into(),
            groups: 4,
            partitions: 2,
            faults: vec![
                FaultAudit {
                    index: 0,
                    actual: 2,
                    final_candidates: 5,
                    steps: vec![
                        AuditStep {
                            partition: 0,
                            kind: "interval",
                            failing_groups: vec![1, 3],
                            candidates: 40,
                        },
                        AuditStep {
                            partition: 1,
                            kind: "random-selection",
                            failing_groups: vec![0],
                            candidates: 5,
                        },
                    ],
                },
                FaultAudit {
                    index: 1,
                    actual: 1,
                    final_candidates: 3,
                    steps: vec![
                        AuditStep {
                            partition: 0,
                            kind: "interval",
                            failing_groups: vec![2],
                            candidates: 20,
                        },
                        AuditStep {
                            partition: 1,
                            kind: "random-selection",
                            failing_groups: vec![1],
                            candidates: 3,
                        },
                    ],
                },
            ],
        }
    }

    #[test]
    fn ndjson_golden() {
        let expected = concat!(
            r#"{"type":"meta","version":1,"kind":"diagnosis-audit","scheme":"two-step(1+1)","groups":4,"partitions":2,"faults":2}"#,
            "\n",
            r#"{"type":"fault","index":0,"actual":2,"final":5,"steps":[{"partition":0,"kind":"interval","failing_groups":[1,3],"candidates":40},{"partition":1,"kind":"random-selection","failing_groups":[0],"candidates":5}]}"#,
            "\n",
            r#"{"type":"fault","index":1,"actual":1,"final":3,"steps":[{"partition":0,"kind":"interval","failing_groups":[2],"candidates":20},{"partition":1,"kind":"random-selection","failing_groups":[1],"candidates":3}]}"#,
            "\n",
        );
        assert_eq!(sample().to_ndjson(), expected);
    }

    #[test]
    fn ndjson_lines_parse_back() {
        for line in sample().to_ndjson().lines() {
            json::parse(line).expect("audit NDJSON must be valid JSON");
        }
    }

    #[test]
    fn summarize_round_trip() {
        let text = sample().to_ndjson();
        let summary = summarize_ndjson(&text).unwrap();
        assert!(summary.contains("2 fault(s)"), "{summary}");
        assert!(summary.contains("scheme two-step(1+1)"), "{summary}");
        assert!(summary.contains("interval"), "{summary}");
        assert!(summary.contains("random-selection"), "{summary}");
        // Mean after partition 1 = (40+20)/2 = 30.0.
        assert!(summary.contains("30.0"), "{summary}");
        // DR = (8 − 3) / 3.
        assert!(summary.contains("1.667"), "{summary}");
    }

    #[test]
    fn summarize_rejects_garbage() {
        assert!(summarize_ndjson("not json\n").is_err());
        assert!(summarize_ndjson("").is_err());
        assert!(summarize_ndjson(r#"{"type":"meta"}"#).is_err(), "no faults");
        assert!(summarize_ndjson(r#"{"type":"fault","actual":1}"#).is_err());
    }
}
