//! Per-fault diagnosis audit traces.
//!
//! A [`SchemeReport`](crate::SchemeReport) compresses a campaign into
//! aggregate DR numbers; an audit trace keeps the evidence. For every
//! injected fault it records, per partition, the partition *kind*
//! (interval vs random-selection), which groups failed their BIST
//! session, and how large the candidate set was after intersecting
//! that partition — the full convergence curve behind Fig. 5, one
//! fault at a time.
//!
//! Traces serialize to NDJSON (`scanbist --audit-out <path> diagnose …`),
//! are validated by `obs-check`, and are summarized back into a
//! human-readable report by `scanbist explain <audit.ndjson>` via
//! [`summarize_ndjson`]. Auditing is a separate replay pass over the
//! prepared campaign — the diagnosis hot path is untouched, so audited
//! and unaudited campaigns stay bit-identical.

use std::fmt::Write as _;

use scan_obs::json::{self, Value};

use crate::noise::NoiseConfig;
use crate::robust::{Confidence, InconclusiveReason, RobustEvent};

/// One partition's contribution to a fault's diagnosis.
#[derive(Clone, Eq, PartialEq, Debug)]
pub struct AuditStep {
    /// Partition index within the scheme (0-based).
    pub partition: usize,
    /// Partition kind: `"interval"` or `"random-selection"`.
    pub kind: &'static str,
    /// Groups whose BIST session signature mismatched.
    pub failing_groups: Vec<u16>,
    /// Candidate-set size after intersecting this partition (the raw
    /// intersection, before X-mask exclusion).
    pub candidates: usize,
}

/// The audit record of one injected fault.
#[derive(Clone, Eq, PartialEq, Debug)]
pub struct FaultAudit {
    /// Fault case index within the campaign.
    pub index: usize,
    /// Observable truly-failing cells.
    pub actual: usize,
    /// Final candidate count (after all partitions and X-mask
    /// exclusion).
    pub final_candidates: usize,
    /// One step per partition, in intersection order.
    pub steps: Vec<AuditStep>,
}

/// A full campaign audit: metadata plus one record per fault.
#[derive(Clone, Eq, PartialEq, Debug)]
pub struct CampaignAudit {
    /// Scheme name (e.g. `two-step(1+3)`).
    pub scheme: String,
    /// Groups per partition.
    pub groups: u16,
    /// Partitions per scheme.
    pub partitions: usize,
    /// Per-fault records, in fault-index order.
    pub faults: Vec<FaultAudit>,
}

impl CampaignAudit {
    /// Renders the NDJSON stream: a `meta` line followed by one `fault`
    /// line per record. The shape is what `obs-check` validates.
    #[must_use]
    pub fn to_ndjson(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            r#"{{"type":"meta","version":1,"kind":"diagnosis-audit","scheme":"{}","groups":{},"partitions":{},"faults":{}}}"#,
            self.scheme,
            self.groups,
            self.partitions,
            self.faults.len()
        );
        for fault in &self.faults {
            let _ = write!(
                out,
                r#"{{"type":"fault","index":{},"actual":{},"final":{},"steps":["#,
                fault.index, fault.actual, fault.final_candidates
            );
            for (i, step) in fault.steps.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let groups = step
                    .failing_groups
                    .iter()
                    .map(ToString::to_string)
                    .collect::<Vec<_>>()
                    .join(",");
                let _ = write!(
                    out,
                    r#"{{"partition":{},"kind":"{}","failing_groups":[{groups}],"candidates":{}}}"#,
                    step.partition, step.kind, step.candidates
                );
            }
            out.push_str("]}\n");
        }
        out
    }
}

/// The robust-audit record of one injected fault: the strict
/// convergence evidence plus every recovery action the fault-tolerant
/// engine took.
#[derive(Clone, PartialEq, Debug)]
pub struct RobustFaultAudit {
    /// Fault case index within the campaign.
    pub index: usize,
    /// Observable truly-failing cells.
    pub actual: usize,
    /// Final candidate count (after mask exclusion).
    pub final_candidates: usize,
    /// Confidence of the resolved diagnosis.
    pub confidence: Confidence,
    /// Why the fault is inconclusive, when it is.
    pub inconclusive: Option<InconclusiveReason>,
    /// Retry rounds executed for this fault.
    pub retry_rounds: usize,
    /// Whether the candidates came from the weighted-voting fallback.
    pub used_fallback: bool,
    /// Ordered recovery actions (serialized as `retry`/`vote`/
    /// `fallback` NDJSON records preceding the `fault` record).
    pub events: Vec<RobustEvent>,
    /// One step per partition of the final strict attempt.
    pub steps: Vec<AuditStep>,
}

/// A full fault-tolerant campaign audit.
#[derive(Clone, PartialEq, Debug)]
pub struct RobustAudit {
    /// Scheme name.
    pub scheme: String,
    /// Groups per partition.
    pub groups: u16,
    /// Partitions per scheme.
    pub partitions: usize,
    /// The noise configuration the campaign ran under.
    pub noise: NoiseConfig,
    /// Effective (odd) ballots per retried session.
    pub votes: usize,
    /// Retry-round budget.
    pub max_retry_rounds: usize,
    /// Per-fault records, in fault-index order.
    pub faults: Vec<RobustFaultAudit>,
}

/// Serializes one recovery action as its NDJSON record.
fn write_event(out: &mut String, fault_index: usize, event: &RobustEvent) {
    match *event {
        RobustEvent::Retry { round, sessions } => {
            let _ = writeln!(
                out,
                r#"{{"type":"retry","fault":{fault_index},"round":{round},"sessions":{sessions}}}"#,
            );
        }
        RobustEvent::Vote {
            partition,
            group,
            fail_votes,
            pass_votes,
            lost_votes,
            verdict,
        } => {
            let _ = writeln!(
                out,
                concat!(
                    r#"{{"type":"vote","fault":{fault_index},"partition":{partition},"#,
                    r#""group":{group},"fail":{fail},"pass":{pass},"#,
                    r#""lost":{lost},"verdict":"{verdict}"}}"#
                ),
                fault_index = fault_index,
                partition = partition,
                group = group,
                fail = fail_votes,
                pass = pass_votes,
                lost = lost_votes,
                verdict = verdict.label(),
            );
        }
        RobustEvent::Fallback {
            partition,
            support,
            candidates,
        } => {
            let _ = writeln!(
                out,
                concat!(
                    r#"{{"type":"fallback","fault":{fault_index},"partition":{partition},"#,
                    r#""support":{support},"candidates":{candidates}}}"#
                ),
                fault_index = fault_index,
                partition = partition,
                support = support,
                candidates = candidates,
            );
        }
    }
}

impl RobustAudit {
    /// Renders the NDJSON stream: a `meta` line (kind `robust-audit`),
    /// then per fault its `retry`/`vote`/`fallback` event records
    /// followed by the `fault` record. The shape is what `obs-check`
    /// validates.
    #[must_use]
    pub fn to_ndjson(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            concat!(
                r#"{{"type":"meta","version":1,"kind":"robust-audit","scheme":"{}","#,
                r#""groups":{},"partitions":{},"faults":{},"noise_seed":{},"#,
                r#""flip_rate":{},"dropout_rate":{},"intermittent_rate":{},"#,
                r#""intermittent_miss":{},"x_corrupt_fraction":{},"votes":{},"#,
                r#""max_retry_rounds":{}}}"#
            ),
            self.scheme,
            self.groups,
            self.partitions,
            self.faults.len(),
            self.noise.seed,
            self.noise.flip_rate,
            self.noise.dropout_rate,
            self.noise.intermittent_rate,
            self.noise.intermittent_miss,
            self.noise.x_corrupt_fraction,
            self.votes,
            self.max_retry_rounds,
        );
        for fault in &self.faults {
            for event in &fault.events {
                write_event(&mut out, fault.index, event);
            }
            let reason = fault
                .inconclusive
                .map_or(String::new(), |r| format!(r#","reason":"{}""#, r.label()));
            let _ = write!(
                out,
                concat!(
                    r#"{{"type":"fault","index":{},"actual":{},"final":{},"#,
                    r#""confidence":"{}"{},"retry_rounds":{},"fallback":{},"steps":["#
                ),
                fault.index,
                fault.actual,
                fault.final_candidates,
                fault.confidence.label(),
                reason,
                fault.retry_rounds,
                fault.used_fallback,
            );
            for (i, step) in fault.steps.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let groups = step
                    .failing_groups
                    .iter()
                    .map(ToString::to_string)
                    .collect::<Vec<_>>()
                    .join(",");
                let _ = write!(
                    out,
                    r#"{{"partition":{},"kind":"{}","failing_groups":[{groups}],"candidates":{}}}"#,
                    step.partition, step.kind, step.candidates
                );
            }
            out.push_str("]}\n");
        }
        out
    }
}

/// Summarizes an NDJSON audit trace (as written by `--audit-out`) into
/// the human-readable report printed by `scanbist explain`.
///
/// # Errors
///
/// Returns a message if the stream is not parseable NDJSON or contains
/// no `fault` events.
pub fn summarize_ndjson(text: &str) -> Result<String, String> {
    let mut scheme = String::from("?");
    // (actual, final, per-step candidate counts, per-step kinds)
    let mut faults: Vec<(u64, u64, Vec<u64>, Vec<String>)> = Vec::new();
    // Robust-audit extras: confidence tallies and recovery-event counts.
    let mut confidences: std::collections::BTreeMap<String, usize> =
        std::collections::BTreeMap::new();
    let mut retries = 0usize;
    let mut votes = 0usize;
    let mut fallbacks = 0usize;
    for (index, line) in text.lines().enumerate() {
        if line.is_empty() {
            continue;
        }
        let value = json::parse(line).map_err(|e| format!("line {}: {e}", index + 1))?;
        match value.get("type").and_then(Value::as_str) {
            Some("meta") => {
                if let Some(name) = value.get("scheme").and_then(Value::as_str) {
                    name.clone_into(&mut scheme);
                }
            }
            Some("fault") => {
                if let Some(level) = value.get("confidence").and_then(Value::as_str) {
                    *confidences.entry(level.to_owned()).or_insert(0) += 1;
                }
                faults.push(
                    parse_fault(&value).map_err(|e| format!("line {}: {e}", index + 1))?,
                );
            }
            Some("retry") => retries += 1,
            Some("vote") => votes += 1,
            Some("fallback") => fallbacks += 1,
            Some(other) => return Err(format!("line {}: unknown event type `{other}`", index + 1)),
            None => return Err(format!("line {}: missing \"type\"", index + 1)),
        }
    }
    if faults.is_empty() {
        return Err("no fault events in audit trace".into());
    }

    let n = faults.len() as f64;
    let sum_actual: u64 = faults.iter().map(|f| f.0).sum();
    let sum_final: u64 = faults.iter().map(|f| f.1).sum();
    let steps = faults.iter().map(|f| f.2.len()).max().unwrap_or(0);
    let mut out = String::new();
    let _ = writeln!(out, "diagnosis audit: {} fault(s), scheme {scheme}", faults.len());
    let _ = writeln!(
        out,
        "  mean actual failing cells {:.2}, mean final candidates {:.2}",
        sum_actual as f64 / n,
        sum_final as f64 / n
    );
    if sum_actual > 0 {
        let dr = (sum_final as f64 - sum_actual as f64) / sum_actual as f64;
        let _ = writeln!(out, "  diagnostic resolution (DR) {dr:.3}");
    }
    let _ = writeln!(out, "  convergence (mean candidates after each partition):");
    for k in 0..steps {
        let with_step: Vec<&(u64, u64, Vec<u64>, Vec<String>)> =
            faults.iter().filter(|f| f.2.len() > k).collect();
        let mean = with_step.iter().map(|f| f.2[k]).sum::<u64>() as f64
            / with_step.len().max(1) as f64;
        let kind = with_step
            .first()
            .and_then(|f| f.3.get(k).cloned())
            .unwrap_or_else(|| "?".into());
        let _ = writeln!(out, "    partition {:>2} [{kind:<16}] {mean:>10.1}", k + 1);
    }
    if let Some((index, f)) = faults
        .iter()
        .enumerate()
        .max_by_key(|(_, f)| f.1.saturating_sub(f.0))
    {
        let _ = writeln!(
            out,
            "  worst fault: #{index} ({} candidates for {} actual failing cell(s))",
            f.1, f.0
        );
    }
    if !confidences.is_empty() {
        let levels = confidences
            .iter()
            .map(|(level, count)| format!("{level} {count}"))
            .collect::<Vec<_>>()
            .join(", ");
        let _ = writeln!(out, "  confidence: {levels}");
        let _ = writeln!(
            out,
            "  recovery: {retries} retry round(s), {votes} session vote(s), {fallbacks} fallback(s)"
        );
    }
    Ok(out)
}

#[allow(clippy::type_complexity)] // one private tuple, named in the caller
#[allow(clippy::cast_sign_loss)] // counts are clamped non-negative before the cast
fn parse_fault(value: &Value) -> Result<(u64, u64, Vec<u64>, Vec<String>), String> {
    let num = |member: &str| -> Result<u64, String> {
        value
            .get(member)
            .and_then(Value::as_f64)
            .map(|v| v.max(0.0) as u64)
            .ok_or_else(|| format!("fault event missing numeric \"{member}\""))
    };
    let actual = num("actual")?;
    let final_candidates = num("final")?;
    let steps = value
        .get("steps")
        .and_then(Value::as_array)
        .ok_or("fault event missing \"steps\" array")?;
    let mut counts = Vec::with_capacity(steps.len());
    let mut kinds = Vec::with_capacity(steps.len());
    for step in steps {
        counts.push(
            step.get("candidates")
                .and_then(Value::as_f64)
                .map(|v| v.max(0.0) as u64)
                .ok_or("audit step missing numeric \"candidates\"")?,
        );
        kinds.push(
            step.get("kind")
                .and_then(Value::as_str)
                .ok_or("audit step missing \"kind\"")?
                .to_owned(),
        );
    }
    Ok((actual, final_candidates, counts, kinds))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CampaignAudit {
        CampaignAudit {
            scheme: "two-step(1+1)".into(),
            groups: 4,
            partitions: 2,
            faults: vec![
                FaultAudit {
                    index: 0,
                    actual: 2,
                    final_candidates: 5,
                    steps: vec![
                        AuditStep {
                            partition: 0,
                            kind: "interval",
                            failing_groups: vec![1, 3],
                            candidates: 40,
                        },
                        AuditStep {
                            partition: 1,
                            kind: "random-selection",
                            failing_groups: vec![0],
                            candidates: 5,
                        },
                    ],
                },
                FaultAudit {
                    index: 1,
                    actual: 1,
                    final_candidates: 3,
                    steps: vec![
                        AuditStep {
                            partition: 0,
                            kind: "interval",
                            failing_groups: vec![2],
                            candidates: 20,
                        },
                        AuditStep {
                            partition: 1,
                            kind: "random-selection",
                            failing_groups: vec![1],
                            candidates: 3,
                        },
                    ],
                },
            ],
        }
    }

    #[test]
    fn ndjson_golden() {
        let expected = concat!(
            r#"{"type":"meta","version":1,"kind":"diagnosis-audit","scheme":"two-step(1+1)","groups":4,"partitions":2,"faults":2}"#,
            "\n",
            r#"{"type":"fault","index":0,"actual":2,"final":5,"steps":[{"partition":0,"kind":"interval","failing_groups":[1,3],"candidates":40},{"partition":1,"kind":"random-selection","failing_groups":[0],"candidates":5}]}"#,
            "\n",
            r#"{"type":"fault","index":1,"actual":1,"final":3,"steps":[{"partition":0,"kind":"interval","failing_groups":[2],"candidates":20},{"partition":1,"kind":"random-selection","failing_groups":[1],"candidates":3}]}"#,
            "\n",
        );
        assert_eq!(sample().to_ndjson(), expected);
    }

    #[test]
    fn ndjson_lines_parse_back() {
        for line in sample().to_ndjson().lines() {
            json::parse(line).expect("audit NDJSON must be valid JSON");
        }
    }

    #[test]
    fn summarize_round_trip() {
        let text = sample().to_ndjson();
        let summary = summarize_ndjson(&text).unwrap();
        assert!(summary.contains("2 fault(s)"), "{summary}");
        assert!(summary.contains("scheme two-step(1+1)"), "{summary}");
        assert!(summary.contains("interval"), "{summary}");
        assert!(summary.contains("random-selection"), "{summary}");
        // Mean after partition 1 = (40+20)/2 = 30.0.
        assert!(summary.contains("30.0"), "{summary}");
        // DR = (8 − 3) / 3.
        assert!(summary.contains("1.667"), "{summary}");
    }

    #[test]
    fn summarize_rejects_garbage() {
        assert!(summarize_ndjson("not json\n").is_err());
        assert!(summarize_ndjson("").is_err());
        assert!(summarize_ndjson(r#"{"type":"meta"}"#).is_err(), "no faults");
        assert!(summarize_ndjson(r#"{"type":"fault","actual":1}"#).is_err());
        assert!(
            summarize_ndjson(r#"{"type":"mystery"}"#).is_err(),
            "unknown kinds still rejected"
        );
    }

    fn robust_sample() -> RobustAudit {
        RobustAudit {
            scheme: "two-step(1+1)".into(),
            groups: 4,
            partitions: 2,
            noise: {
                let mut config = NoiseConfig::noiseless(7);
                config.flip_rate = 0.02;
                config
            },
            votes: 3,
            max_retry_rounds: 2,
            faults: vec![RobustFaultAudit {
                index: 0,
                actual: 2,
                final_candidates: 5,
                confidence: Confidence::Degraded,
                inconclusive: None,
                retry_rounds: 1,
                used_fallback: false,
                events: vec![
                    RobustEvent::Retry { round: 0, sessions: 4 },
                    RobustEvent::Vote {
                        partition: 1,
                        group: 2,
                        fail_votes: 2,
                        pass_votes: 1,
                        lost_votes: 0,
                        verdict: crate::noise::Verdict::Fail,
                    },
                    RobustEvent::Fallback {
                        partition: 1,
                        support: 1.5,
                        candidates: 5,
                    },
                ],
                steps: vec![AuditStep {
                    partition: 0,
                    kind: "interval",
                    failing_groups: vec![1],
                    candidates: 5,
                }],
            }],
        }
    }

    #[test]
    fn robust_ndjson_lines_parse_back() {
        let text = robust_sample().to_ndjson();
        let mut kinds = Vec::new();
        for line in text.lines() {
            let value = json::parse(line).expect("robust audit NDJSON must be valid JSON");
            kinds.push(
                value
                    .get("type")
                    .and_then(Value::as_str)
                    .expect("every line has a type")
                    .to_owned(),
            );
        }
        assert_eq!(kinds, ["meta", "retry", "vote", "fallback", "fault"]);
        let meta = json::parse(text.lines().next().unwrap()).unwrap();
        assert_eq!(
            meta.get("kind").and_then(Value::as_str),
            Some("robust-audit")
        );
        assert_eq!(meta.get("flip_rate").and_then(Value::as_f64), Some(0.02));
    }

    #[test]
    fn robust_summarize_reports_confidence_and_recovery() {
        let summary = summarize_ndjson(&robust_sample().to_ndjson()).unwrap();
        assert!(summary.contains("confidence: degraded 1"), "{summary}");
        assert!(
            summary.contains("1 retry round(s), 1 session vote(s), 1 fallback(s)"),
            "{summary}"
        );
    }

    #[test]
    fn robust_fault_records_satisfy_strict_fault_shape() {
        // The `fault` records of a robust audit must stay parseable by
        // the plain-audit fault parser (obs-check shares the shape).
        let text = robust_sample().to_ndjson();
        let fault_line = text
            .lines()
            .find(|l| l.contains(r#""type":"fault""#))
            .unwrap();
        let value = json::parse(fault_line).unwrap();
        parse_fault(&value).expect("robust fault keeps the strict shape");
        assert_eq!(
            value.get("confidence").and_then(Value::as_str),
            Some("degraded")
        );
    }
}
