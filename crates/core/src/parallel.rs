//! Deterministic std-thread sharding of fault-injection campaigns.
//!
//! A prepared campaign diagnoses each injected fault independently:
//! [`PreparedCampaign`] holds no interior mutability, so its per-case
//! analysis is pure and can run on any thread. This module shards the
//! fault indices across [`std::thread::scope`] workers in contiguous
//! chunks, then folds the per-case statistics back **in fault-index
//! order** through the exact same fold the serial path uses.
//!
//! # Determinism guarantee
//!
//! Parallel results are *bit-identical* to serial results at any thread
//! count, by construction rather than by tolerance:
//!
//! 1. every per-fault statistic is computed from shared immutable state
//!    (plan, mask, error maps) with no cross-case data flow;
//! 2. workers write each case's result into that case's own slot of a
//!    pre-sized buffer — completion order is irrelevant;
//! 3. aggregation (integer [`DrAccumulator`](crate::DrAccumulator)
//!    counts and the order-sensitive floating-point margin sums) happens
//!    serially over that buffer in fault-index order.
//!
//! Where a stream seed must vary per shard — e.g. the per-core PRPG
//! seeds of an SOC campaign — it is derived as
//! [`derive_seed`]`(base, index)`, a `SplitMix64` mix of the base seed
//! with the shard index, never by handing one sequential RNG stream to
//! racing workers. The integration test `tests/parallel_determinism.rs`
//! checks the guarantee end-to-end at 1, 2, and 8 threads.

use std::num::NonZeroUsize;

use scan_bist::Scheme;

use crate::experiment::{
    CampaignError, LocalizationReport, PreparedCampaign, RobustReport, SchemeReport,
};
use crate::noise::NoiseModel;
use crate::robust::RobustPolicy;

/// Number of worker threads the `threads = 0` ("auto") setting resolves
/// to: one per core the OS reports available, with a floor of 1.
#[must_use]
pub fn available_threads() -> usize {
    std::thread::available_parallelism().map_or(1, NonZeroUsize::get)
}

/// The workspace's shard-seed derivation rule: decorrelates a base seed
/// per fault (or core, or worker) index through `SplitMix64`, so sharded
/// streams never overlap and never depend on worker scheduling.
///
/// Re-exported from [`scan_rng::derive`].
#[must_use]
pub fn derive_seed(base: u64, index: u64) -> u64 {
    scan_rng::derive(base, index)
}

/// Resolves a user thread request: `0` means auto, and there is never a
/// reason to spawn more workers than cases.
fn effective_threads(threads: usize, cases: usize) -> usize {
    let t = if threads == 0 {
        available_threads()
    } else {
        threads
    };
    t.clamp(1, cases.max(1))
}

/// Shards `0..cases` across `threads` workers in contiguous chunks,
/// filling `slot[i]` with `work(i)`, and returns the slots in index
/// order.
fn sharded_map<T, F>(cases: usize, threads: usize, work: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let threads = effective_threads(threads, cases);
    let mut slots: Vec<Option<T>> = (0..cases).map(|_| None).collect();
    if threads == 1 {
        for (i, slot) in slots.iter_mut().enumerate() {
            *slot = Some(work(i));
            scan_obs::progress::tick_worker(0, i + 1, cases);
        }
        scan_obs::metrics::add("parallel.worker0.cases", cases as u64);
    } else {
        let chunk = cases.div_ceil(threads);
        std::thread::scope(|scope| {
            for (w, shard) in slots.chunks_mut(chunk).enumerate() {
                let work = &work;
                scope.spawn(move || {
                    {
                        let _span = scan_obs::span!("worker");
                        let base = w * chunk;
                        let total = shard.len();
                        for (off, slot) in shard.iter_mut().enumerate() {
                            *slot = Some(work(base + off));
                            scan_obs::progress::tick_worker(w, off + 1, total);
                        }
                        scan_obs::metrics::add_fmt(
                            || format!("parallel.worker{w}.cases"),
                            total as u64,
                        );
                    }
                    // Fold this worker's shard before the scope join can
                    // observe thread termination: the automatic TLS-drop
                    // merge may run after the scope unblocks, racing a
                    // snapshot taken by the parent thread.
                    scan_obs::flush_thread();
                });
            }
        });
    }
    slots.into_iter().map(|s| s.expect("every case computed")).collect()
}

/// Runs one scheme over every prepared fault, sharded across `threads`
/// std threads (`0` = [`available_threads`]).
///
/// # Errors
///
/// Returns [`CampaignError::Plan`] if the diagnosis plan cannot be
/// built for this layout/spec.
pub fn run_campaign(
    campaign: &PreparedCampaign,
    scheme: Scheme,
    threads: usize,
) -> Result<SchemeReport, CampaignError> {
    let _span = scan_obs::span!("diagnose");
    let plan = campaign.build_plan(scheme)?;
    let masked = campaign.masked_cells();
    let stats = sharded_map(campaign.num_faults(), threads, |i| {
        campaign.case_stats(&plan, &masked, i)
    });
    Ok(campaign.fold_report(scheme, stats))
}

/// Runs several schemes over the same prepared campaign, each sharded
/// like [`run_campaign`] — the table binaries' comparison loop.
///
/// # Errors
///
/// Returns [`CampaignError::Plan`] if any scheme's plan cannot be
/// built.
pub fn run_schemes(
    campaign: &PreparedCampaign,
    schemes: &[Scheme],
    threads: usize,
) -> Result<Vec<SchemeReport>, CampaignError> {
    schemes
        .iter()
        .map(|&scheme| run_campaign(campaign, scheme, threads))
        .collect()
}

/// Per-fault final candidate sets (ascending cell ids), sharded across
/// `threads` std threads. Identical to
/// [`PreparedCampaign::candidate_sets`] at any thread count.
///
/// # Errors
///
/// Returns [`CampaignError::Plan`] if the diagnosis plan cannot be
/// built for this layout/spec.
pub fn candidate_sets(
    campaign: &PreparedCampaign,
    scheme: Scheme,
    threads: usize,
) -> Result<Vec<Vec<usize>>, CampaignError> {
    let plan = campaign.build_plan(scheme)?;
    let masked = campaign.masked_cells();
    Ok(sharded_map(campaign.num_faults(), threads, |i| {
        campaign.case_candidates(&plan, &masked, i)
    }))
}

/// Runs the fault-tolerant (noisy) diagnosis over every prepared fault,
/// sharded across `threads` std threads. Bit-identical to
/// [`PreparedCampaign::run_robust`] at any thread count: every noise
/// draw is keyed by `(seed, fault, attempt, session)` rather than by a
/// shared sequential stream, and the fold runs in fault-index order.
///
/// # Errors
///
/// Same as [`PreparedCampaign::run_robust`].
pub fn run_robust(
    campaign: &PreparedCampaign,
    scheme: Scheme,
    noise: &NoiseModel,
    policy: &RobustPolicy,
    threads: usize,
) -> Result<RobustReport, CampaignError> {
    let _span = scan_obs::span!("diagnose_robust_campaign");
    let plan = campaign.build_plan(scheme)?;
    let masked = campaign.robust_masked(noise);
    let stats = sharded_map(campaign.num_faults(), threads, |i| {
        campaign.robust_case_stats(&plan, &masked, noise, policy, i)
    });
    Ok(campaign.fold_robust_report(scheme, stats))
}

/// First-level SOC diagnosis (which core is faulty?) sharded across
/// `threads` std threads. Bit-identical to
/// [`PreparedCampaign::run_localization`] — the floating-point margin
/// sum folds in fault-index order regardless of completion order.
///
/// # Errors
///
/// Same as [`PreparedCampaign::run_localization`].
pub fn run_localization(
    campaign: &PreparedCampaign,
    scheme: Scheme,
    threads: usize,
) -> Result<LocalizationReport, CampaignError> {
    let ctx = campaign.soc_context()?;
    let plan = campaign.build_plan(scheme)?;
    let stats = sharded_map(campaign.num_faults(), threads, |i| {
        campaign.loc_case_stats(&plan, ctx, i)
    });
    Ok(campaign.fold_localization(scheme, stats))
}

#[cfg(test)]
#[allow(clippy::float_cmp)] // bit-identical results are the contract
mod tests {
    use super::*;
    use crate::experiment::CampaignSpec;
    use scan_netlist::generate;

    #[test]
    fn effective_threads_clamps() {
        assert_eq!(effective_threads(4, 2), 2);
        assert_eq!(effective_threads(1, 100), 1);
        assert_eq!(effective_threads(8, 0), 1);
        assert!(effective_threads(0, 100) >= 1);
    }

    #[test]
    fn sharded_map_preserves_index_order() {
        for threads in [1, 2, 3, 8, 17] {
            let out = sharded_map(13, threads, |i| i * i);
            assert_eq!(out, (0..13).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn sharded_map_handles_empty_input() {
        let out: Vec<usize> = sharded_map(0, 4, |i| i);
        assert!(out.is_empty());
    }

    #[test]
    fn derive_seed_matches_rng_crate() {
        assert_eq!(derive_seed(2003, 7), scan_rng::derive(2003, 7));
        assert_ne!(derive_seed(2003, 7), derive_seed(2003, 8));
    }

    #[test]
    #[allow(clippy::float_cmp)]
    fn parallel_robust_run_is_bit_identical_to_serial() {
        use crate::noise::{NoiseConfig, NoiseModel};
        let n = generate::benchmark("s386");
        let mut spec = CampaignSpec::new(64, 4, 4);
        spec.num_faults = 30;
        let campaign = PreparedCampaign::from_circuit(&n, &spec).unwrap();
        let mut cfg = NoiseConfig::noiseless(13);
        cfg.flip_rate = 0.03;
        cfg.dropout_rate = 0.01;
        let noise = NoiseModel::new(cfg).unwrap();
        let policy = RobustPolicy::default();
        let serial = campaign
            .run_robust(Scheme::TWO_STEP_DEFAULT, &noise, &policy)
            .unwrap();
        for threads in [1, 2, 8] {
            let par = campaign
                .run_robust_parallel(Scheme::TWO_STEP_DEFAULT, &noise, &policy, threads)
                .unwrap();
            assert_eq!(par.exact, serial.exact);
            assert_eq!(par.degraded, serial.degraded);
            assert_eq!(par.inconclusive, serial.inconclusive);
            assert_eq!(par.dr, serial.dr);
            assert_eq!(par.retry_rounds, serial.retry_rounds);
            assert_eq!(par.retried_sessions, serial.retried_sessions);
            assert_eq!(par.fallbacks, serial.fallbacks);
            assert_eq!(par.strict_failures, serial.strict_failures);
            assert_eq!(par.recovered, serial.recovered);
            assert_eq!(par.hits, serial.hits);
        }
    }

    #[test]
    fn parallel_run_is_bit_identical_to_serial() {
        let n = generate::benchmark("s386");
        let mut spec = CampaignSpec::new(64, 4, 4);
        spec.num_faults = 30;
        let campaign = PreparedCampaign::from_circuit(&n, &spec).unwrap();
        let serial = campaign.run(Scheme::TWO_STEP_DEFAULT).unwrap();
        for threads in [1, 2, 8] {
            let par = campaign.run_parallel(Scheme::TWO_STEP_DEFAULT, threads).unwrap();
            assert_eq!(par.dr, serial.dr);
            assert_eq!(par.dr_pruned, serial.dr_pruned);
            assert_eq!(par.dr_by_prefix, serial.dr_by_prefix);
            assert_eq!(par.mean_candidates, serial.mean_candidates);
            assert_eq!(par.lost_cells, serial.lost_cells);
        }
    }
}
