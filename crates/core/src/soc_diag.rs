//! SOC-level diagnosis campaigns: one faulty core at a time.
//!
//! The paper's SOC experiments (Tables 3 and 4, Fig. 5) assume a spot
//! defect confined to a single embedded core: for each core in turn,
//! 500 stuck-at faults are injected into it and the failing scan cells
//! are located on the SOC's *meta* scan chains. This module drives
//! [`PreparedCampaign::from_soc`] across every core and scheme.

use scan_bist::Scheme;
use scan_soc::Soc;

use crate::experiment::{
    CampaignError, CampaignSpec, PreparedCampaign, RobustReport, SchemeReport,
};
use crate::noise::NoiseModel;
use crate::robust::RobustPolicy;

/// Results for one failing core: one report per requested scheme.
#[derive(Clone, Debug)]
pub struct CoreRow {
    /// Name of the (assumed faulty) core.
    pub core: String,
    /// Reports in the order the schemes were given.
    pub reports: Vec<SchemeReport>,
}

/// Runs the SOC diagnosis campaign for every core and every scheme.
///
/// The same prepared fault evidence is reused across schemes for each
/// core, matching the paper's controlled comparison.
///
/// # Errors
///
/// Returns the first [`CampaignError`] encountered.
pub fn diagnose_each_core(
    soc: &Soc,
    spec: &CampaignSpec,
    schemes: &[Scheme],
) -> Result<Vec<CoreRow>, CampaignError> {
    diagnose_each_core_parallel(soc, spec, schemes, 1)
}

/// [`diagnose_each_core`] with each core's per-fault diagnosis sharded
/// across `threads` std threads (`0` = one per available CPU) — the
/// workspace's slowest path, and bit-identical to the serial run at any
/// thread count (see [`crate::parallel`]).
///
/// # Errors
///
/// Returns the first [`CampaignError`] encountered.
pub fn diagnose_each_core_parallel(
    soc: &Soc,
    spec: &CampaignSpec,
    schemes: &[Scheme],
    threads: usize,
) -> Result<Vec<CoreRow>, CampaignError> {
    let num_cores = soc.cores().len();
    let mut rows = Vec::with_capacity(num_cores);
    for (index, core) in soc.cores().iter().enumerate() {
        {
            let _span = scan_obs::span!("core[{}]", core.name());
            let campaign = PreparedCampaign::from_soc(soc, index, spec)?;
            let reports = crate::parallel::run_schemes(&campaign, schemes, threads)?;
            rows.push(CoreRow {
                core: core.name().to_owned(),
                reports,
            });
        }
        // Fold this thread's shard at the core boundary so live
        // telemetry (sampler ticks, SLO evaluation, a mid-sweep
        // /metrics scrape) sees per-core progress rather than one
        // burst at process exit. The core span is closed above, so
        // nothing open is discarded.
        scan_obs::flush_thread();
        scan_obs::progress::tick("soc_cores", index + 1, num_cores);
    }
    Ok(rows)
}

/// Fault-tolerant results for one failing core.
#[derive(Clone, Debug)]
pub struct RobustCoreRow {
    /// Name of the (assumed faulty) core.
    pub core: String,
    /// The robust campaign report for that core's faults.
    pub report: RobustReport,
}

/// Runs the fault-tolerant diagnosis campaign for every core under a
/// shared noise model — the SOC counterpart of
/// [`PreparedCampaign::run_robust`]. Each core's per-fault loop is
/// sharded across `threads` std threads (`0` = one per available CPU)
/// and is bit-identical to a serial run at any thread count.
///
/// # Errors
///
/// Returns the first [`CampaignError`] encountered.
pub fn diagnose_each_core_robust(
    soc: &Soc,
    spec: &CampaignSpec,
    scheme: Scheme,
    noise: &NoiseModel,
    policy: &RobustPolicy,
    threads: usize,
) -> Result<Vec<RobustCoreRow>, CampaignError> {
    let num_cores = soc.cores().len();
    let mut rows = Vec::with_capacity(num_cores);
    for (index, core) in soc.cores().iter().enumerate() {
        {
            let _span = scan_obs::span!("core[{}]", core.name());
            let campaign = PreparedCampaign::from_soc(soc, index, spec)?;
            let report =
                crate::parallel::run_robust(&campaign, scheme, noise, policy, threads)?;
            rows.push(RobustCoreRow {
                core: core.name().to_owned(),
                report,
            });
        }
        // Same per-core fold as `diagnose_each_core_parallel`: live
        // telemetry sees each core land as it completes.
        scan_obs::flush_thread();
        scan_obs::progress::tick("soc_cores", index + 1, num_cores);
    }
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use scan_netlist::generate;
    use scan_soc::CoreModule;

    #[test]
    fn rows_cover_every_core_and_scheme() {
        let cores = vec![
            CoreModule::new(generate::benchmark("s298")),
            CoreModule::new(generate::benchmark("s344")),
        ];
        let soc = Soc::single_chain("duo", cores).unwrap();
        let mut spec = CampaignSpec::new(32, 4, 3);
        spec.num_faults = 15;
        let schemes = [Scheme::RandomSelection, Scheme::TWO_STEP_DEFAULT];
        let rows = diagnose_each_core(&soc, &spec, &schemes).unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].core, "s298");
        for row in &rows {
            assert_eq!(row.reports.len(), 2);
            assert_eq!(row.reports[0].scheme, Scheme::RandomSelection);
        }
    }

    #[test]
    fn robust_rows_cover_every_core() {
        use crate::noise::{NoiseConfig, NoiseModel};
        use crate::robust::RobustPolicy;
        let cores = vec![
            CoreModule::new(generate::benchmark("s298")),
            CoreModule::new(generate::benchmark("s344")),
        ];
        let soc = Soc::single_chain("duo", cores).unwrap();
        let mut spec = CampaignSpec::new(32, 4, 3);
        spec.num_faults = 12;
        let mut cfg = NoiseConfig::noiseless(9);
        cfg.flip_rate = 0.02;
        let noise = NoiseModel::new(cfg).unwrap();
        let policy = RobustPolicy::default();
        let rows =
            diagnose_each_core_robust(&soc, &spec, Scheme::TWO_STEP_DEFAULT, &noise, &policy, 2)
                .unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].core, "s298");
        for row in &rows {
            assert_eq!(row.report.faults, 12);
            assert_eq!(
                row.report.exact + row.report.degraded + row.report.inconclusive,
                row.report.faults
            );
        }
    }

    #[test]
    #[allow(clippy::float_cmp)] // bit-identical results are the contract
    fn parallel_rows_are_bit_identical() {
        let cores = vec![
            CoreModule::new(generate::benchmark("s298")),
            CoreModule::new(generate::benchmark("s344")),
        ];
        let soc = Soc::single_chain("duo", cores).unwrap();
        let mut spec = CampaignSpec::new(32, 4, 3);
        spec.num_faults = 15;
        let schemes = [Scheme::RandomSelection, Scheme::TWO_STEP_DEFAULT];
        let serial = diagnose_each_core(&soc, &spec, &schemes).unwrap();
        for threads in [2, 8] {
            let par = diagnose_each_core_parallel(&soc, &spec, &schemes, threads).unwrap();
            for (s, p) in serial.iter().zip(&par) {
                assert_eq!(s.core, p.core);
                for (sr, pr) in s.reports.iter().zip(&p.reports) {
                    assert_eq!(sr.dr, pr.dr);
                    assert_eq!(sr.dr_pruned, pr.dr_pruned);
                    assert_eq!(sr.dr_by_prefix, pr.dr_by_prefix);
                }
            }
        }
    }
}
