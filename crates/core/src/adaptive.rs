//! Adaptive binary-search diagnosis — the interruption-heavy baseline
//! the paper contrasts against.
//!
//! Ghosh-Dastidar & Touba's scheme (\[6\] in the paper) locates failing
//! cells by *adaptive* sessions: start with the whole chain as one
//! suspect region, split every failing region in half, and re-run BIST
//! sessions for the halves, recursing until regions are single cells.
//! It converges in `O(f · log n)` sessions for `f` failing cells but —
//! as the paper emphasizes — requires interrupting test application
//! after every round to compute the next masks, whereas partition-based
//! diagnosis runs a fixed, precomputed session schedule.
//!
//! The implementation uses the same [`ResponseModel`] signature oracle
//! as the partition schemes, so the comparison (sessions used vs
//! resolution reached) is apples-to-apples, including signature
//! aliasing.

use scan_netlist::BitSet;

use crate::session::ResponseModel;

/// Outcome of an adaptive binary-search diagnosis.
#[derive(Clone, Eq, PartialEq, Debug)]
pub struct AdaptiveOutcome {
    /// Candidate failing cells when the search stopped.
    pub candidates: BitSet,
    /// BIST sessions executed.
    pub sessions_used: usize,
    /// `true` if the search refined every region to a single cell
    /// within the session budget.
    pub converged: bool,
}

/// Runs adaptive binary-search diagnosis over a fault's error bits.
///
/// Each *session* asks the signature oracle whether the cells of one
/// contiguous shift-position region captured any error (nonzero error
/// signature — aliasing can hide a region, exactly as in hardware).
/// Regions that fail are split in half and re-examined; the search
/// stops when all failing regions are single cells or `max_sessions` is
/// exhausted (remaining multi-cell regions are reported wholesale, like
/// an aborted hardware run would).
#[must_use]
pub fn adaptive_binary_search<I>(
    model: &ResponseModel,
    error_bits: I,
    max_sessions: usize,
) -> AdaptiveOutcome
where
    I: IntoIterator<Item = (usize, usize)>,
{
    let bits: Vec<(usize, usize)> = error_bits.into_iter().collect();
    let len = model.layout().max_len();
    let num_cells = model.layout().num_cells();
    let mut sessions_used = 0usize;
    // Regions are half-open shift-position ranges.
    let mut work: Vec<(usize, usize)> = vec![(0, len)];
    let mut confirmed: Vec<(usize, usize)> = Vec::new();
    let mut aborted: Vec<(usize, usize)> = Vec::new();

    while let Some((lo, hi)) = work.pop() {
        if sessions_used >= max_sessions {
            aborted.push((lo, hi));
            continue;
        }
        sessions_used += 1;
        let signature = model.masked_signature(bits.iter().copied(), |cell, _| {
            let (_, pos) = model.layout().coord(cell);
            (lo..hi).contains(&(pos as usize))
        });
        if signature == 0 {
            continue;
        }
        if hi - lo == 1 {
            confirmed.push((lo, hi));
        } else {
            let mid = lo + (hi - lo) / 2;
            work.push((lo, mid));
            work.push((mid, hi));
        }
    }

    let mut candidates = BitSet::new(num_cells);
    for cell in 0..num_cells {
        let (_, pos) = model.layout().coord(cell);
        let pos = pos as usize;
        let inside = |ranges: &[(usize, usize)]| {
            ranges.iter().any(|&(lo, hi)| (lo..hi).contains(&pos))
        };
        if inside(&confirmed) || inside(&aborted) {
            candidates.insert(cell);
        }
    }
    AdaptiveOutcome {
        candidates,
        sessions_used,
        converged: aborted.is_empty(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::ChainLayout;

    fn model(chain_len: usize, patterns: usize) -> ResponseModel {
        ResponseModel::new(ChainLayout::single_chain(chain_len), patterns, 16).unwrap()
    }

    #[test]
    fn finds_isolated_failing_cell_exactly() {
        let m = model(64, 8);
        let outcome = adaptive_binary_search(&m, [(37usize, 2usize)], 1000);
        assert!(outcome.converged);
        assert_eq!(outcome.candidates.iter().collect::<Vec<_>>(), vec![37]);
        // log2(64) levels ⇒ far fewer than exhaustive sessions.
        assert!(outcome.sessions_used <= 2 * 7 + 1);
    }

    #[test]
    fn finds_multiple_failing_cells() {
        let m = model(128, 4);
        let cells = [3usize, 64, 90];
        let bits: Vec<(usize, usize)> = cells.iter().map(|&c| (c, 1usize)).collect();
        let outcome = adaptive_binary_search(&m, bits, 1000);
        assert!(outcome.converged);
        let found: Vec<usize> = outcome.candidates.iter().collect();
        assert_eq!(found, vec![3, 64, 90]);
    }

    #[test]
    fn budget_exhaustion_reports_regions_wholesale() {
        let m = model(256, 4);
        let bits: Vec<(usize, usize)> = (0..16).map(|c| (c * 16, 0usize)).collect();
        let outcome = adaptive_binary_search(&m, bits.iter().copied(), 10);
        assert!(!outcome.converged);
        // Every true failing cell is still inside a reported region.
        for &(cell, _) in &bits {
            assert!(outcome.candidates.contains(cell), "lost cell {cell}");
        }
        assert!(outcome.sessions_used <= 10);
    }

    #[test]
    fn no_errors_one_session() {
        let m = model(64, 4);
        let outcome = adaptive_binary_search(&m, std::iter::empty(), 100);
        assert!(outcome.converged);
        assert!(outcome.candidates.is_empty());
        assert_eq!(outcome.sessions_used, 1);
    }

    #[test]
    fn sessions_scale_logarithmically() {
        // One failing cell on progressively longer chains: sessions grow
        // like ~2·log2(n), not n.
        let mut last = 0usize;
        for exp in [6u32, 8, 10] {
            let n = 1usize << exp;
            let m = model(n, 2);
            let outcome = adaptive_binary_search(&m, [(n / 3, 1usize)], 10_000);
            assert!(outcome.converged);
            assert!(
                outcome.sessions_used <= 2 * exp as usize + 2,
                "chain {n}: {} sessions",
                outcome.sessions_used
            );
            assert!(outcome.sessions_used >= last);
            last = outcome.sessions_used;
        }
    }
}
