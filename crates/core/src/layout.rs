//! Chain layouts: where each diagnosed cell sits in the scan-out
//! geometry.

use scan_soc::Soc;

/// Maps every diagnosed cell to its `(chain, shift position)`
/// coordinate.
///
/// Cells are identified by dense *global* indices. For a single-chain
/// circuit the global index equals the shift position; for a multi-chain
/// SOC the indices are chain-major (all of chain 0 in shift order, then
/// chain 1, …), matching [`Soc::layout`].
///
/// Partitioning operates on *shift positions* (`0 ..
/// max_chain_len`): at shift cycle `p` the selection logic gates the
/// cells at position `p` of every chain simultaneously, so cells at the
/// same position in different chains always share a group.
#[derive(Clone, Eq, PartialEq, Debug)]
pub struct ChainLayout {
    coords: Vec<(u32, u32)>,
    num_chains: usize,
    max_len: usize,
}

impl ChainLayout {
    /// A single chain of `len` cells: cell `i` at `(0, i)`.
    ///
    /// # Panics
    ///
    /// Panics if `len` is zero.
    #[must_use]
    pub fn single_chain(len: usize) -> Self {
        assert!(len > 0, "empty chain layout");
        ChainLayout {
            coords: (0..len as u32).map(|i| (0, i)).collect(),
            num_chains: 1,
            max_len: len,
        }
    }

    /// The layout of an SOC's meta scan chains (chain-major global
    /// indices, as in [`Soc::layout`]).
    ///
    /// # Panics
    ///
    /// Panics if the SOC has no cells.
    #[must_use]
    pub fn from_soc(soc: &Soc) -> Self {
        let coords: Vec<(u32, u32)> = soc
            .layout()
            .into_iter()
            .map(|(_, chain, pos)| (chain, pos))
            .collect();
        assert!(!coords.is_empty(), "SOC has no observation positions");
        ChainLayout {
            num_chains: soc.num_chains(),
            max_len: soc.max_chain_len(),
            coords,
        }
    }

    /// Builds a layout from explicit coordinates.
    ///
    /// # Panics
    ///
    /// Panics if `coords` is empty.
    #[must_use]
    pub fn from_coords(coords: Vec<(u32, u32)>) -> Self {
        assert!(!coords.is_empty(), "empty chain layout");
        let num_chains = coords.iter().map(|&(c, _)| c as usize + 1).max().unwrap_or(1);
        let max_len = coords.iter().map(|&(_, p)| p as usize + 1).max().unwrap_or(1);
        ChainLayout {
            coords,
            num_chains,
            max_len,
        }
    }

    /// Number of diagnosed cells.
    #[must_use]
    pub fn num_cells(&self) -> usize {
        self.coords.len()
    }

    /// Number of parallel chains.
    #[must_use]
    pub fn num_chains(&self) -> usize {
        self.num_chains
    }

    /// Longest chain length (shift cycles per pattern unload, and the
    /// domain partitions are defined over).
    #[must_use]
    pub fn max_len(&self) -> usize {
        self.max_len
    }

    /// The `(chain, shift position)` of a global cell index.
    ///
    /// # Panics
    ///
    /// Panics if `cell` is out of range.
    #[must_use]
    pub fn coord(&self, cell: usize) -> (u32, u32) {
        self.coords[cell]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_chain_identity() {
        let l = ChainLayout::single_chain(5);
        assert_eq!(l.num_cells(), 5);
        assert_eq!(l.num_chains(), 1);
        assert_eq!(l.max_len(), 5);
        assert_eq!(l.coord(3), (0, 3));
    }

    #[test]
    fn from_coords_derives_dims() {
        let l = ChainLayout::from_coords(vec![(0, 0), (0, 1), (1, 0), (2, 5)]);
        assert_eq!(l.num_chains(), 3);
        assert_eq!(l.max_len(), 6);
    }

    #[test]
    #[should_panic(expected = "empty chain layout")]
    fn empty_rejected() {
        let _ = ChainLayout::single_chain(0);
    }
}
