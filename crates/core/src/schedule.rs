//! Test program export: the complete, self-contained description of a
//! diagnosis run that a tester (or the on-chip BIST controller) needs.
//!
//! A partition-based diagnosis is fully determined by a handful of
//! seeds and counts — that is the paper's operational advantage over
//! adaptive schemes ("the entire diagnosis process can be carried out
//! without interruptions or manual intervention"). [`TestProgram`]
//! materializes that description: per partition, the selection mode and
//! seed; globally, the PRPG seed, pattern count, and MISR polynomial.
//! Rendering it yields a human-auditable program listing.

use std::fmt;

use scan_bist::seed::find_interval_seed;
use scan_bist::{primitive_poly, Scheme};

use crate::error::BuildPlanError;
use crate::session::BistConfig;

/// The selection-hardware setup of one partition.
#[derive(Clone, Copy, Eq, PartialEq, Debug)]
pub enum PartitionProgram {
    /// Interval mode: IVR seed and the number of selected length bits.
    Interval {
        /// IVR value.
        seed: u64,
        /// Stages read per interval length.
        k_bits: u32,
    },
    /// Fixed-interval fallback (no per-partition state needed).
    FixedInterval,
    /// Random-selection mode; the IVR chains from the previous random
    /// partition, so only the first seed is stored.
    RandomSelection {
        /// IVR value at the start of this partition.
        ivr: u64,
    },
}

/// A complete diagnosis test program.
#[derive(Clone, Eq, PartialEq, Debug)]
pub struct TestProgram {
    /// Scan chain length (shift cycles per pattern).
    pub chain_len: usize,
    /// Patterns per session.
    pub num_patterns: usize,
    /// PRPG seed for stimulus generation.
    pub prpg_seed: u64,
    /// Groups per partition.
    pub groups: u16,
    /// MISR feedback polynomial (coefficient mask).
    pub misr_poly: u64,
    /// Partition LFSR feedback polynomial.
    pub partition_poly: u64,
    /// Per-partition hardware setup, in execution order.
    pub partitions: Vec<PartitionProgram>,
}

impl TestProgram {
    /// Derives the program for a single-chain configuration, running
    /// the same seed search and IVR chaining the diagnosis plan uses.
    ///
    /// # Errors
    ///
    /// Returns [`BuildPlanError`] on degenerate configurations or
    /// unsupported register widths.
    pub fn generate(
        chain_len: usize,
        num_patterns: usize,
        prpg_seed: u64,
        config: &BistConfig,
    ) -> Result<Self, BuildPlanError> {
        if chain_len == 0 || num_patterns == 0 || config.partitions == 0 || config.groups == 0 {
            return Err(BuildPlanError::DegenerateConfig);
        }
        let misr_poly = primitive_poly(config.misr_degree)
            .map_err(|_| BuildPlanError::UnsupportedDegree {
                degree: config.misr_degree,
            })?;
        let partition_poly = primitive_poly(config.partition_lfsr_degree).map_err(|_| {
            BuildPlanError::UnsupportedDegree {
                degree: config.partition_lfsr_degree,
            }
        })?;
        let interval_count = match config.scheme {
            Scheme::IntervalBased => config.partitions,
            Scheme::TwoStep {
                interval_partitions,
            } => interval_partitions.min(config.partitions),
            Scheme::FixedInterval => {
                return Ok(TestProgram {
                    chain_len,
                    num_patterns,
                    prpg_seed,
                    groups: config.groups,
                    misr_poly,
                    partition_poly,
                    partitions: vec![PartitionProgram::FixedInterval; config.partitions],
                })
            }
            Scheme::RandomSelection => 0,
        };
        let mut partitions = Vec::with_capacity(config.partitions);
        for salt in 0..interval_count {
            match find_interval_seed(
                chain_len,
                config.groups,
                config.partition_lfsr_degree,
                salt as u64,
            ) {
                Ok(found) => partitions.push(PartitionProgram::Interval {
                    seed: found.seed,
                    k_bits: found.k_bits,
                }),
                Err(_) => partitions.push(PartitionProgram::FixedInterval),
            }
        }
        if partitions.len() < config.partitions {
            // Random partitions chain through the IVR; record each
            // partition's starting IVR for auditability.
            let mut lfsr = scan_bist::Lfsr::new(config.partition_lfsr_degree)
                .map_err(|_| BuildPlanError::UnsupportedDegree {
                    degree: config.partition_lfsr_degree,
                })?;
            let mut ivr = config.partition_seed;
            while partitions.len() < config.partitions {
                partitions.push(PartitionProgram::RandomSelection { ivr });
                lfsr.load(ivr);
                for _ in 0..chain_len {
                    lfsr.step();
                }
                ivr = lfsr.state();
            }
        }
        Ok(TestProgram {
            chain_len,
            num_patterns,
            prpg_seed,
            groups: config.groups,
            misr_poly,
            partition_poly,
            partitions,
        })
    }

    /// Total BIST sessions the program executes.
    #[must_use]
    pub fn total_sessions(&self) -> usize {
        self.partitions.len() * usize::from(self.groups)
    }

    /// Total tester storage for the program in bits: seeds, counts, and
    /// per-session reference signatures.
    #[must_use]
    pub fn storage_bits(&self, misr_degree: u32) -> usize {
        let seeds: usize = self
            .partitions
            .iter()
            .map(|p| match p {
                PartitionProgram::Interval { .. } | PartitionProgram::RandomSelection { .. } => 16,
                PartitionProgram::FixedInterval => 0,
            })
            .sum();
        // PRPG seed (32) + counts (~48) + one golden signature per
        // session.
        32 + 48 + seeds + self.total_sessions() * misr_degree as usize
    }
}

/// Computes the fault-free reference signature of every session of a
/// plan — the values the tester compares against (the dominant part of
/// [`TestProgram::storage_bits`]).
///
/// Uses the same linear superposition machinery as diagnosis: the
/// golden signature of a session is the MISR image of the golden `1`
/// bits it compacts, so no stepwise replay is needed.
///
/// Returns `signatures[partition][group]`.
#[must_use]
pub fn golden_signatures(
    plan: &crate::session::DiagnosisPlan,
    golden: &scan_sim::ResponseMap,
) -> Vec<Vec<u64>> {
    let layout = plan.layout();
    let groups = usize::from(
        plan.partitions()
            .iter()
            .map(scan_bist::Partition::num_groups)
            .max()
            .unwrap_or(0),
    );
    let mut signatures = vec![vec![0u64; groups]; plan.partitions().len()];
    for cell in 0..layout.num_cells() {
        let (_, pos) = layout.coord(cell);
        for t in 0..plan.num_patterns() {
            if !golden.bit(cell, t) {
                continue;
            }
            let contribution = plan.contribution(cell, t);
            for (p, partition) in plan.partitions().iter().enumerate() {
                let g = usize::from(partition.group_of(pos as usize));
                signatures[p][g] ^= contribution;
            }
        }
    }
    signatures
}

impl fmt::Display for TestProgram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "# scan-BIST diagnosis test program")?;
        writeln!(f, "chain_len    {}", self.chain_len)?;
        writeln!(f, "patterns     {}", self.num_patterns)?;
        writeln!(f, "prpg_seed    {:#010x}", self.prpg_seed)?;
        writeln!(f, "groups       {}", self.groups)?;
        writeln!(f, "misr_poly    {:#x}", self.misr_poly)?;
        writeln!(f, "part_poly    {:#x}", self.partition_poly)?;
        for (i, p) in self.partitions.iter().enumerate() {
            match p {
                PartitionProgram::Interval { seed, k_bits } => {
                    writeln!(f, "partition {i}: interval seed={seed:#06x} k={k_bits}")?;
                }
                PartitionProgram::FixedInterval => {
                    writeln!(f, "partition {i}: fixed-interval")?;
                }
                PartitionProgram::RandomSelection { ivr } => {
                    writeln!(f, "partition {i}: random ivr={ivr:#06x}")?;
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_step_program_structure() {
        let config = BistConfig::new(4, 5, Scheme::TWO_STEP_DEFAULT);
        let program = TestProgram::generate(228, 128, 0xACE1, &config).unwrap();
        assert_eq!(program.partitions.len(), 5);
        assert!(matches!(
            program.partitions[0],
            PartitionProgram::Interval { .. }
        ));
        for p in &program.partitions[1..] {
            assert!(matches!(p, PartitionProgram::RandomSelection { .. }));
        }
        assert_eq!(program.total_sessions(), 20);
    }

    #[test]
    fn random_partitions_chain_ivrs() {
        let config = BistConfig::new(4, 3, Scheme::RandomSelection);
        let program = TestProgram::generate(100, 16, 1, &config).unwrap();
        let ivrs: Vec<u64> = program
            .partitions
            .iter()
            .map(|p| match p {
                PartitionProgram::RandomSelection { ivr } => *ivr,
                other => panic!("unexpected {other:?}"),
            })
            .collect();
        assert_eq!(ivrs[0], 1);
        assert_ne!(ivrs[0], ivrs[1]);
        assert_ne!(ivrs[1], ivrs[2]);
    }

    #[test]
    fn program_matches_plan_partitions() {
        // The recorded interval seed regenerates exactly the plan's
        // first partition.
        use crate::layout::ChainLayout;
        use crate::session::DiagnosisPlan;
        use scan_bist::partition::Partition;
        use scan_bist::seed::lengths_from_seed;
        let config = BistConfig::new(8, 2, Scheme::TWO_STEP_DEFAULT);
        let chain_len = 300;
        let program = TestProgram::generate(chain_len, 32, 1, &config).unwrap();
        let plan = DiagnosisPlan::new(ChainLayout::single_chain(chain_len), 32, &config).unwrap();
        if let PartitionProgram::Interval { seed, k_bits } = program.partitions[0] {
            let lengths = lengths_from_seed(seed, 8, k_bits, config.partition_lfsr_degree);
            let rebuilt = Partition::from_interval_lengths(chain_len, &lengths);
            assert_eq!(&rebuilt, &plan.partitions()[0]);
        } else {
            panic!("first partition must be interval mode");
        }
    }

    #[test]
    fn golden_signatures_match_stepwise_misr() {
        use crate::layout::ChainLayout;
        use crate::lfsr_patterns;
        use crate::session::DiagnosisPlan;
        use scan_bist::Misr;
        use scan_netlist::{bench, ScanView};
        use scan_sim::FaultSimulator;

        let circuit = bench::s27();
        let view = ScanView::natural(&circuit, true);
        let num_patterns = 20usize;
        let patterns = lfsr_patterns(&circuit, num_patterns, 0xACE1);
        let fsim = FaultSimulator::new(&circuit, &view, &patterns).unwrap();
        let config = BistConfig::new(2, 2, Scheme::TWO_STEP_DEFAULT);
        let plan =
            DiagnosisPlan::new(ChainLayout::single_chain(view.len()), num_patterns, &config)
                .unwrap();
        let fast = super::golden_signatures(&plan, fsim.golden());
        for (p, partition) in plan.partitions().iter().enumerate() {
            for g in 0..partition.num_groups() {
                let mut misr = Misr::new(config.misr_degree).unwrap();
                for t in 0..num_patterns {
                    for pos in 0..view.len() {
                        let bit = fsim.golden().bit(pos, t) && partition.group_of(pos) == g;
                        misr.clock(u64::from(bit));
                    }
                }
                assert_eq!(
                    fast[p][usize::from(g)],
                    misr.signature(),
                    "partition {p} group {g}"
                );
            }
        }
    }

    #[test]
    fn display_lists_every_partition() {
        let config = BistConfig::new(2, 4, Scheme::FixedInterval);
        let program = TestProgram::generate(64, 8, 7, &config).unwrap();
        let text = program.to_string();
        assert_eq!(text.matches("fixed-interval").count(), 4);
        assert!(text.contains("prpg_seed"));
    }

    #[test]
    fn storage_is_modest() {
        let config = BistConfig::new(32, 8, Scheme::TWO_STEP_DEFAULT);
        let program = TestProgram::generate(7244, 128, 1, &config).unwrap();
        // 256 sessions × 16-bit signatures + seeds: well under 1 KB.
        assert!(program.storage_bits(16) < 8 * 1024);
    }
}
