//! Error types for the diagnosis engine.

use std::error::Error;
use std::fmt;

/// Error returned when a diagnosis plan cannot be constructed.
#[derive(Clone, Copy, Eq, PartialEq, Debug)]
#[non_exhaustive]
pub enum BuildPlanError {
    /// The chain layout is empty.
    EmptyLayout,
    /// The MISR is narrower than the number of parallel chains, so some
    /// chains have no injection stage.
    MisrTooNarrow {
        /// MISR width.
        misr_degree: u32,
        /// Parallel chains to compact.
        chains: usize,
    },
    /// Zero partitions or zero groups were requested.
    DegenerateConfig,
    /// An unsupported LFSR/MISR degree was requested.
    UnsupportedDegree {
        /// The offending degree.
        degree: u32,
    },
}

impl fmt::Display for BuildPlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildPlanError::EmptyLayout => write!(f, "chain layout has no cells"),
            BuildPlanError::MisrTooNarrow {
                misr_degree,
                chains,
            } => write!(
                f,
                "MISR of width {misr_degree} cannot compact {chains} parallel chains"
            ),
            BuildPlanError::DegenerateConfig => {
                write!(f, "partitions and groups must both be nonzero")
            }
            BuildPlanError::UnsupportedDegree { degree } => {
                write!(f, "unsupported LFSR/MISR degree {degree}")
            }
        }
    }
}

impl Error for BuildPlanError {}

/// Explicit outcome of a strict intersection diagnosis that could not
/// produce a meaningful candidate set.
///
/// The plain [`diagnose`](crate::diagnose) function returns an empty
/// candidate set in both situations below, which is ambiguous: "no
/// session failed" and "the sessions contradict each other" demand
/// very different responses from a production diagnosis service. The
/// checked entry point [`diagnose_checked`](crate::diagnose_checked)
/// surfaces them as errors instead, and the robust engine
/// ([`crate::robust`]) uses them to decide when to retry and when to
/// fall back to weighted voting.
#[derive(Clone, Copy, Eq, PartialEq, Debug)]
#[non_exhaustive]
pub enum DiagnoseError {
    /// Every session of every partition passed: either the device is
    /// fault-free or the fault aliased away entirely. There is no
    /// evidence to intersect.
    AllSessionsPassed,
    /// The session history is internally inconsistent: intersecting
    /// this partition's failing groups with the candidates surviving
    /// all earlier partitions leaves nothing, so at least one recorded
    /// verdict must be wrong (a flipped verdict, MISR aliasing, or an
    /// intermittent fault that fired in some sessions but not others).
    ContradictoryHistory {
        /// The 0-based partition whose intersection step first emptied
        /// the candidate set.
        partition: usize,
    },
    /// The run was cancelled cooperatively (deadline expiry, shutdown
    /// drain) before all partitions were intersected. Any partial
    /// candidate set is discarded — a prefix intersection is an
    /// over-approximation, not a diagnosis.
    Cancelled {
        /// Partitions fully intersected before the cancellation was
        /// observed.
        completed_partitions: usize,
    },
}

impl fmt::Display for DiagnoseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DiagnoseError::AllSessionsPassed => {
                write!(f, "every BIST session passed; nothing to diagnose")
            }
            DiagnoseError::ContradictoryHistory { partition } => write!(
                f,
                "session history is contradictory: partition {partition} leaves an empty \
                 intersection"
            ),
            DiagnoseError::Cancelled {
                completed_partitions,
            } => write!(
                f,
                "diagnosis cancelled after {completed_partitions} completed partition(s)"
            ),
        }
    }
}

impl Error for DiagnoseError {}

/// Error returned when a [`NoiseConfig`](crate::noise::NoiseConfig)
/// carries an unusable rate.
#[derive(Clone, Copy, PartialEq, Debug)]
#[non_exhaustive]
pub enum NoiseConfigError {
    /// A probability field is outside `[0, 1]` or NaN.
    InvalidRate {
        /// Name of the offending field.
        field: &'static str,
        /// The rejected value.
        value: f64,
    },
}

impl fmt::Display for NoiseConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NoiseConfigError::InvalidRate { field, value } => {
                write!(f, "noise rate `{field}` must be in [0, 1], got {value}")
            }
        }
    }
}

impl Error for NoiseConfigError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_plan_errors_display() {
        assert_eq!(
            BuildPlanError::EmptyLayout.to_string(),
            "chain layout has no cells"
        );
        let text = BuildPlanError::MisrTooNarrow {
            misr_degree: 8,
            chains: 12,
        }
        .to_string();
        assert!(text.contains('8') && text.contains("12"), "{text}");
    }

    #[test]
    fn diagnose_errors_display_and_are_std_errors() {
        let all = DiagnoseError::AllSessionsPassed;
        assert!(all.to_string().contains("passed"));
        let contra = DiagnoseError::ContradictoryHistory { partition: 3 };
        assert!(contra.to_string().contains("partition 3"), "{contra}");
        let cancelled = DiagnoseError::Cancelled {
            completed_partitions: 2,
        };
        assert!(cancelled.to_string().contains("cancelled"), "{cancelled}");
        assert!(cancelled.to_string().contains('2'), "{cancelled}");
        // Both participate in the std error ecosystem.
        let boxed: Box<dyn Error> = Box::new(contra);
        assert!(boxed.source().is_none());
    }

    #[test]
    fn noise_config_error_displays_field_and_value() {
        let e = NoiseConfigError::InvalidRate {
            field: "flip_rate",
            value: 1.5,
        };
        let text = e.to_string();
        assert!(text.contains("flip_rate") && text.contains("1.5"), "{text}");
        let _: &dyn Error = &e;
    }
}
