//! Error types for the diagnosis engine.

use std::error::Error;
use std::fmt;

/// Error returned when a diagnosis plan cannot be constructed.
#[derive(Clone, Copy, Eq, PartialEq, Debug)]
pub enum BuildPlanError {
    /// The chain layout is empty.
    EmptyLayout,
    /// The MISR is narrower than the number of parallel chains, so some
    /// chains have no injection stage.
    MisrTooNarrow {
        /// MISR width.
        misr_degree: u32,
        /// Parallel chains to compact.
        chains: usize,
    },
    /// Zero partitions or zero groups were requested.
    DegenerateConfig,
    /// An unsupported LFSR/MISR degree was requested.
    UnsupportedDegree {
        /// The offending degree.
        degree: u32,
    },
}

impl fmt::Display for BuildPlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildPlanError::EmptyLayout => write!(f, "chain layout has no cells"),
            BuildPlanError::MisrTooNarrow {
                misr_degree,
                chains,
            } => write!(
                f,
                "MISR of width {misr_degree} cannot compact {chains} parallel chains"
            ),
            BuildPlanError::DegenerateConfig => {
                write!(f, "partitions and groups must both be nonzero")
            }
            BuildPlanError::UnsupportedDegree { degree } => {
                write!(f, "unsupported LFSR/MISR degree {degree}")
            }
        }
    }
}

impl Error for BuildPlanError {}
