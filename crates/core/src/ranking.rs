//! Suspect ranking: ordering candidate cells by evidence strength.
//!
//! The intersection-based candidate set is flat — every surviving cell
//! is equally suspect. Failure analysis benefits from an ordering:
//! physical inspection starts at the most likely cell. This module
//! scores each candidate by how *selective* the failing groups
//! containing it are (a cell that explains several small failing groups
//! outranks one that merely tags along in large ones), the same
//! evidence the cover pruning uses, kept as a ranking instead of a cut.

use scan_netlist::BitSet;

use crate::session::{DiagnosisPlan, SessionOutcome};

/// A ranked list of suspect cells, strongest evidence first.
#[derive(Clone, Debug)]
pub struct SuspectRanking {
    ranked: Vec<(usize, f64)>,
}

impl SuspectRanking {
    /// Scores and sorts the candidate cells.
    ///
    /// Each candidate's score is `Σ 1 / |failing group ∩ candidates|`
    /// over the failing groups containing it (one per partition): being
    /// one of few possible explanations of a session is strong
    /// evidence; sharing a big failing group is weak evidence. Ties
    /// break toward lower cell ids for determinism.
    #[must_use]
    pub fn compute(
        plan: &DiagnosisPlan,
        outcome: &SessionOutcome,
        candidates: &BitSet,
    ) -> Self {
        let layout = plan.layout();
        // Candidate count per (partition, group).
        let mut group_sizes: Vec<Vec<usize>> = plan
            .partitions()
            .iter()
            .map(|p| vec![0usize; usize::from(p.num_groups())])
            .collect();
        for cell in candidates {
            let (_, pos) = layout.coord(cell);
            for (p, partition) in plan.partitions().iter().enumerate() {
                group_sizes[p][usize::from(partition.group_of(pos as usize))] += 1;
            }
        }
        let mut ranked: Vec<(usize, f64)> = candidates
            .iter()
            .map(|cell| {
                let (_, pos) = layout.coord(cell);
                let score: f64 = plan
                    .partitions()
                    .iter()
                    .enumerate()
                    .map(|(p, partition)| {
                        let g = partition.group_of(pos as usize);
                        if outcome.failed(p, g) {
                            1.0 / group_sizes[p][usize::from(g)].max(1) as f64
                        } else {
                            0.0
                        }
                    })
                    .sum();
                (cell, score)
            })
            .collect();
        ranked.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        SuspectRanking { ranked }
    }

    /// The ranked suspects as `(cell, score)`, strongest first.
    #[must_use]
    pub fn suspects(&self) -> &[(usize, f64)] {
        &self.ranked
    }

    /// The rank (0 = strongest) of a cell, if it is a suspect.
    #[must_use]
    pub fn rank_of(&self, cell: usize) -> Option<usize> {
        self.ranked.iter().position(|&(c, _)| c == cell)
    }

    /// Mean rank of a set of true failing cells — the inspection effort
    /// a perfect-first-guess analyst would spend (0 is ideal).
    #[must_use]
    pub fn mean_rank_of(&self, cells: &BitSet) -> f64 {
        let mut total = 0usize;
        let mut counted = 0usize;
        for cell in cells {
            if let Some(rank) = self.rank_of(cell) {
                total += rank;
                counted += 1;
            }
        }
        if counted == 0 {
            0.0
        } else {
            total as f64 / counted as f64
        }
    }
}

#[cfg(test)]
#[allow(clippy::float_cmp)] // exact sentinel values are the contract
mod tests {
    use super::*;
    use crate::diagnose::diagnose;
    use crate::layout::ChainLayout;
    use crate::session::BistConfig;
    use scan_bist::Scheme;

    fn plan(chain_len: usize, groups: u16, partitions: usize) -> DiagnosisPlan {
        DiagnosisPlan::new(
            ChainLayout::single_chain(chain_len),
            16,
            &BistConfig::new(groups, partitions, Scheme::TWO_STEP_DEFAULT),
        )
        .unwrap()
    }

    #[test]
    fn true_cell_ranks_first_for_isolated_error() {
        let plan = plan(100, 8, 5);
        let outcome = plan.analyze([(42usize, 3usize)]);
        let diag = diagnose(&plan, &outcome);
        let ranking = SuspectRanking::compute(&plan, &outcome, diag.candidates());
        // With an isolated error, every candidate shares exactly the
        // same failing groups as cell 42, so 42 is among the top ties;
        // it must at least be present and carry the maximum score.
        let top_score = ranking.suspects()[0].1;
        let rank42 = ranking.rank_of(42).expect("true cell is a suspect");
        assert!(
            (ranking.suspects()[rank42].1 - top_score).abs() < 1e-12,
            "true cell must carry the top score"
        );
    }

    #[test]
    fn scores_are_sorted_and_deterministic() {
        let plan = plan(200, 8, 4);
        let bits = [(10usize, 0usize), (11, 1), (150, 2)];
        let outcome = plan.analyze(bits.iter().copied());
        let diag = diagnose(&plan, &outcome);
        let a = SuspectRanking::compute(&plan, &outcome, diag.candidates());
        let b = SuspectRanking::compute(&plan, &outcome, diag.candidates());
        assert_eq!(a.suspects(), b.suspects());
        for w in a.suspects().windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
    }

    #[test]
    fn mean_rank_reflects_quality() {
        let plan = plan(100, 4, 6);
        let bits = [(20usize, 1usize), (21, 2)];
        let outcome = plan.analyze(bits.iter().copied());
        let diag = diagnose(&plan, &outcome);
        let ranking = SuspectRanking::compute(&plan, &outcome, diag.candidates());
        let mut truth = BitSet::new(100);
        truth.insert(20);
        truth.insert(21);
        let mean = ranking.mean_rank_of(&truth);
        // The true cells should sit in the upper half of the list.
        assert!(
            mean <= diag.num_candidates() as f64 / 2.0,
            "mean rank {mean} of {} candidates",
            diag.num_candidates()
        );
    }

    #[test]
    fn empty_candidates_empty_ranking() {
        let plan = plan(50, 4, 2);
        let outcome = plan.analyze(std::iter::empty());
        let diag = diagnose(&plan, &outcome);
        let ranking = SuspectRanking::compute(&plan, &outcome, diag.candidates());
        assert!(ranking.suspects().is_empty());
        assert_eq!(ranking.mean_rank_of(&BitSet::new(50)), 0.0);
    }
}
