//! A minimal, shrink-free property-test harness.
//!
//! This replaces the workspace's previous external `proptest`
//! dependency with a few hundred lines of in-tree code driven by
//! [`ScanRng`]. The trade-offs are deliberate:
//!
//! * **Fixed seeds, fixed case counts.** Every property runs the same
//!   deterministic case sequence on every machine; there is no
//!   persistence file and no flakiness.
//! * **No shrinking.** On failure the harness reports the *exact*
//!   labelled inputs of the failing case plus a one-line reproduction
//!   recipe (property seed + case index), which for the generator
//!   sizes used in this workspace is as actionable as a shrunk case.
//! * **Plain `assert!`.** Property bodies use ordinary assertions;
//!   panics are caught per-case and re-raised with the input trace
//!   attached.
//!
//! # Examples
//!
//! ```
//! use scan_rng::testkit::Runner;
//!
//! Runner::new(64).run("addition commutes", |g| {
//!     let a = g.u64("a", 0, 1000);
//!     let b = g.u64("b", 0, 1000);
//!     assert_eq!(a + b, b + a);
//! });
//! ```

use std::fmt::Write as _;
use std::panic::{catch_unwind, AssertUnwindSafe};

use crate::{derive, ScanRng};

/// Labelled random-input generator handed to each property case.
///
/// Every draw records `label = value` into a trace that is printed if
/// the case fails, so failures are reproducible by reading the report
/// alone.
pub struct Gen {
    rng: ScanRng,
    trace: Vec<String>,
}

impl Gen {
    fn new(rng: ScanRng) -> Self {
        Gen {
            rng,
            trace: Vec::new(),
        }
    }

    fn record(&mut self, label: &str, value: &dyn std::fmt::Debug) {
        self.trace.push(format!("{label} = {value:?}"));
    }

    /// Direct access to the underlying stream for unlabelled draws.
    pub fn rng(&mut self) -> &mut ScanRng {
        &mut self.rng
    }

    /// A uniform `usize` in `[low, high]`, recorded under `label`.
    ///
    /// # Panics
    ///
    /// Panics if `low > high`.
    pub fn usize(&mut self, label: &str, low: usize, high: usize) -> usize {
        let v = self.rng.gen_range_inclusive(low, high);
        self.record(label, &v);
        v
    }

    /// A uniform `u64` in `[low, high]`, recorded under `label`.
    ///
    /// # Panics
    ///
    /// Panics if `low > high`.
    pub fn u64(&mut self, label: &str, low: u64, high: u64) -> u64 {
        assert!(low <= high, "u64 range {low}..={high} is empty");
        let v = if low == 0 && high == u64::MAX {
            self.rng.next_u64()
        } else {
            low + self.rng.gen_u64_below(high - low + 1)
        };
        self.record(label, &v);
        v
    }

    /// A uniform `u32` in `[low, high]`, recorded under `label`.
    ///
    /// # Panics
    ///
    /// Panics if `low > high`.
    pub fn u32(&mut self, label: &str, low: u32, high: u32) -> u32 {
        #[allow(clippy::cast_possible_truncation)] // bounded by `high`
        let v = self.u64_unrecorded(u64::from(low), u64::from(high)) as u32;
        self.record(label, &v);
        v
    }

    /// A uniform `u16` in `[low, high]`, recorded under `label`.
    ///
    /// # Panics
    ///
    /// Panics if `low > high`.
    pub fn u16(&mut self, label: &str, low: u16, high: u16) -> u16 {
        #[allow(clippy::cast_possible_truncation)] // bounded by `high`
        let v = self.u64_unrecorded(u64::from(low), u64::from(high)) as u16;
        self.record(label, &v);
        v
    }

    fn u64_unrecorded(&mut self, low: u64, high: u64) -> u64 {
        assert!(low <= high, "range {low}..={high} is empty");
        low + self.rng.gen_u64_below(high - low + 1)
    }

    /// A fair boolean, recorded under `label`.
    pub fn bool(&mut self, label: &str) -> bool {
        let v = self.rng.next_bool();
        self.record(label, &v);
        v
    }

    /// A uniform `f64` in `[low, high)`, recorded under `label`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty or either bound is not finite.
    pub fn f64(&mut self, label: &str, low: f64, high: f64) -> f64 {
        assert!(low.is_finite() && high.is_finite() && low < high);
        let v = low + self.rng.next_f64() * (high - low);
        self.record(label, &v);
        v
    }

    /// A uniformly chosen element of `options`, recorded under
    /// `label`.
    ///
    /// # Panics
    ///
    /// Panics if `options` is empty.
    pub fn pick<T: Clone + std::fmt::Debug>(&mut self, label: &str, options: &[T]) -> T {
        let v = self
            .rng
            .choose(options)
            .expect("pick requires at least one option")
            .clone();
        self.record(label, &v);
        v
    }

    /// A vector of `min..=max` items drawn by `item` (which receives
    /// the raw stream), recorded as a whole under `label`.
    ///
    /// # Panics
    ///
    /// Panics if `min > max`.
    pub fn vec<T: std::fmt::Debug>(
        &mut self,
        label: &str,
        min: usize,
        max: usize,
        mut item: impl FnMut(&mut ScanRng) -> T,
    ) -> Vec<T> {
        let len = self.rng.gen_range_inclusive(min, max);
        let v: Vec<T> = (0..len).map(|_| item(&mut self.rng)).collect();
        self.record(label, &v);
        v
    }

    /// A sorted, deduplicated set of `min..=max` items drawn by
    /// `item`, recorded as a whole under `label`. Fewer than `min`
    /// items may result if draws collide.
    pub fn set<T: Ord + std::fmt::Debug>(
        &mut self,
        label: &str,
        min: usize,
        max: usize,
        mut item: impl FnMut(&mut ScanRng) -> T,
    ) -> std::collections::BTreeSet<T> {
        let len = self.rng.gen_range_inclusive(min, max);
        let v: std::collections::BTreeSet<T> = (0..len).map(|_| item(&mut self.rng)).collect();
        self.record(label, &v);
        v
    }

    /// A string of `min..=max` chars drawn uniformly from `alphabet`,
    /// recorded under `label`.
    ///
    /// # Panics
    ///
    /// Panics if `alphabet` is empty or `min > max`.
    pub fn string_of(&mut self, label: &str, alphabet: &[char], min: usize, max: usize) -> String {
        let len = self.rng.gen_range_inclusive(min, max);
        let s: String = (0..len)
            .map(|_| *self.rng.choose(alphabet).expect("non-empty alphabet"))
            .collect();
        self.record(label, &s);
        s
    }

    /// A string of `min..=max` printable-ASCII chars (space through
    /// `~`), recorded under `label`.
    pub fn ascii_string(&mut self, label: &str, min: usize, max: usize) -> String {
        let len = self.rng.gen_range_inclusive(min, max);
        let s: String = (0..len)
            .map(|_| char::from(self.rng.gen_range_inclusive(0x20, 0x7E) as u8))
            .collect();
        self.record(label, &s);
        s
    }

    /// A string of `min..=max` printable chars mixing ASCII and a few
    /// non-ASCII ranges (Latin-1 letters, Greek, CJK, emoji), recorded
    /// under `label`.
    ///
    /// # Panics
    ///
    /// Never in practice: every drawn code point lies in a range of
    /// valid Unicode scalar values.
    pub fn unicode_string(&mut self, label: &str, min: usize, max: usize) -> String {
        const RANGES: [(u32, u32); 5] = [
            (0x20, 0x7E),       // printable ASCII
            (0xA1, 0xFF),       // Latin-1 supplement
            (0x391, 0x3C9),     // Greek
            (0x4E00, 0x4E80),   // CJK sample
            (0x1F600, 0x1F640), // emoji
        ];
        let len = self.rng.gen_range_inclusive(min, max);
        let s: String = (0..len)
            .map(|_| {
                let (lo, hi) = RANGES[self.rng.gen_index(RANGES.len())];
                char::from_u32(self.rng.gen_range_u64(u64::from(lo), u64::from(hi) + 1) as u32)
                    .expect("ranges contain only valid scalar values")
            })
            .collect();
        self.record(label, &s);
        s
    }
}

/// Runs one property over a deterministic sequence of generated cases.
///
/// Defaults: 256 cases, a fixed workspace-wide base seed. Each case
/// `i` of a property seeds its [`Gen`] with
/// [`derive`]`(base ^ fnv(name), i)`, so properties are decorrelated
/// from each other and every case is individually reproducible.
#[derive(Clone, Copy, Debug)]
pub struct Runner {
    cases: u32,
    seed: u64,
}

/// The workspace-wide default base seed for property streams.
pub const DEFAULT_SEED: u64 = 0x5CA9_B157_2003_0DA7;

impl Default for Runner {
    fn default() -> Self {
        Runner::new(256)
    }
}

impl Runner {
    /// A runner executing `cases` cases per property with the default
    /// base seed.
    #[must_use]
    pub fn new(cases: u32) -> Self {
        Runner {
            cases,
            seed: DEFAULT_SEED,
        }
    }

    /// Overrides the base seed (for reproducing a reported failure).
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Runs `body` over the case sequence, panicking with a labelled
    /// input trace on the first failing case.
    ///
    /// # Panics
    ///
    /// Panics (after printing the failing case's inputs) if any case
    /// panics.
    pub fn run(&self, name: &str, body: impl Fn(&mut Gen)) {
        let property_seed = self.seed ^ fnv1a(name);
        for case in 0..self.cases {
            let rng = ScanRng::seed_from_u64(derive(property_seed, u64::from(case)));
            let mut gen = Gen::new(rng);
            let result = catch_unwind(AssertUnwindSafe(|| body(&mut gen)));
            if let Err(payload) = result {
                let mut report = format!(
                    "property `{name}` failed on case {case}/{} (base seed {:#018X})\n",
                    self.cases, self.seed
                );
                if gen.trace.is_empty() {
                    report.push_str("  (no recorded inputs)\n");
                } else {
                    for line in &gen.trace {
                        let _ = writeln!(report, "  {line}");
                    }
                }
                let msg = payload
                    .downcast_ref::<String>()
                    .map(String::as_str)
                    .or_else(|| payload.downcast_ref::<&str>().copied())
                    .unwrap_or("<non-string panic payload>");
                let _ = write!(report, "  failure: {msg}");
                panic!("{report}");
            }
        }
    }
}

fn fnv1a(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for byte in name.bytes() {
        h ^= u64::from(byte);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_property_runs_all_cases() {
        let counter = std::cell::Cell::new(0u32);
        Runner::new(10).run("counts cases", |_| {
            counter.set(counter.get() + 1);
        });
        assert_eq!(counter.get(), 10);
    }

    #[test]
    fn failing_property_reports_inputs() {
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            Runner::new(50).run("always fails", |g| {
                let x = g.usize("x", 10, 20);
                assert!(x > 100, "x was small");
            });
        }));
        let payload = outcome.expect_err("property must fail");
        let msg = payload
            .downcast_ref::<String>()
            .expect("report is a String");
        assert!(msg.contains("always fails"), "missing name: {msg}");
        assert!(msg.contains("x = "), "missing trace: {msg}");
        assert!(msg.contains("x was small"), "missing cause: {msg}");
        assert!(msg.contains("case 0/"), "missing case index: {msg}");
    }

    #[test]
    fn case_streams_are_deterministic() {
        let collect = || {
            let values = std::cell::RefCell::new(Vec::new());
            Runner::new(5).run("stable", |g| {
                values.borrow_mut().push(g.u64("v", 0, u64::MAX));
            });
            values.into_inner()
        };
        assert_eq!(collect(), collect());
    }

    #[test]
    fn generators_respect_bounds() {
        Runner::new(200).run("bounds", |g| {
            assert!((2..=16).contains(&g.u32("degree", 2, 16)));
            assert!((8..=600).contains(&g.usize("len", 8, 600)));
            let v = g.vec("bits", 0, 10, |r| r.gen_index(100));
            assert!(v.len() <= 10 && v.iter().all(|&b| b < 100));
            let s = g.set("set", 1, 5, |r| r.gen_index(4));
            assert!(!s.is_empty() && s.len() <= 4);
            let text = g.ascii_string("text", 0, 12);
            assert!(text.len() <= 12);
            assert!(text.chars().all(|c| (' '..='~').contains(&c)));
            let uni = g.unicode_string("uni", 1, 8);
            assert!(uni.chars().all(|c| c as u32 >= 0x20));
            let f = g.f64("f", -1e6, 1e6);
            assert!((-1e6..1e6).contains(&f));
        });
    }

    #[test]
    fn pick_chooses_from_options() {
        Runner::new(64).run("pick", |g| {
            let v = g.pick("opt", &[1, 2, 3]);
            assert!((1..=3).contains(&v));
        });
    }
}
