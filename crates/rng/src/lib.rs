//! Deterministic pseudo-random numbers for the scan-BIST workspace.
//!
//! Every experiment in this workspace must be reproducible bit-for-bit:
//! the diagnostic-resolution tables are only meaningful if the same
//! seed always yields the same synthetic circuit, the same fault
//! sample, and the same pattern set — on every machine, at every
//! thread count, forever. Leaning on an external registry crate for
//! that guarantee couples the whole reproduction to a network
//! dependency and to someone else's stream-stability policy, so the
//! workspace vendors its own generator instead.
//!
//! The design is deliberately boring and well-studied:
//!
//! * [`SplitMix64`] — Steele, Lea & Flood's 64-bit mixer. Used to
//!   expand a single `u64` seed into full generator state (every bit
//!   of the seed affects every bit of the state) and to derive
//!   decorrelated per-index child seeds for parallel work sharding
//!   (see [`derive`]).
//! * [`ScanRng`] — Blackman & Vigna's xoshiro256\*\*, a 256-bit-state
//!   generator with period 2²⁵⁶ − 1 that passes `BigCrush`. This is the
//!   workspace's one and only general-purpose stream.
//! * [`testkit`] — a shrink-free property-test harness driven by
//!   [`ScanRng`] case generation, replacing the external `proptest`
//!   dependency for the workspace's invariant tests.
//!
//! The stream produced by a given seed is **frozen**: regression tests
//! pin the first outputs of several seeds, so any edit that would
//! silently re-randomize every experiment in the workspace fails CI
//! instead.
//!
//! # Examples
//!
//! ```
//! use scan_rng::ScanRng;
//!
//! let mut rng = ScanRng::seed_from_u64(2003);
//! let a = rng.next_u64();
//! let mut again = ScanRng::seed_from_u64(2003);
//! assert_eq!(a, again.next_u64()); // same seed ⇒ same stream
//! ```

#![warn(missing_docs)]
#![warn(clippy::pedantic)]
#![allow(clippy::must_use_candidate, clippy::module_name_repetitions)]
// Narrow-on-purpose casts are the business of an RNG: high-bits
// extraction and mantissa scaling truncate by design.
#![allow(clippy::cast_possible_truncation, clippy::cast_precision_loss)]

pub mod testkit;

/// Steele–Lea–Flood `SplitMix64`: a tiny, full-period (2⁶⁴) generator
/// whose real job here is *seeding* — expanding one `u64` into
/// well-mixed state words for [`ScanRng`] and deriving decorrelated
/// child seeds for parallel sharding.
///
/// # Examples
///
/// ```
/// use scan_rng::SplitMix64;
///
/// let mut sm = SplitMix64::new(0);
/// let first = sm.next_u64();
/// assert_ne!(first, SplitMix64::new(1).next_u64());
/// ```
#[derive(Clone, Copy, Eq, PartialEq, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a raw 64-bit seed.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// The next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Derives a decorrelated child seed for stream `index` of a family
/// rooted at `seed`.
///
/// This is the workspace's parallel-sharding primitive: when a
/// campaign fans out over faults, trials, or worker shards, shard `i`
/// seeds its private [`ScanRng`] with `derive(seed, i)` instead of
/// splitting one sequential stream — so results are independent of how
/// work is assigned to threads, and serial and parallel runs are
/// bit-identical.
///
/// Both arguments pass through `SplitMix64` mixing (not a bare XOR), so
/// `(seed, index)` families do not collide in the obvious ways —
/// `derive(0, 1)`, `derive(1, 0)` and `derive(1, 1)` are unrelated.
///
/// # Examples
///
/// ```
/// use scan_rng::derive;
///
/// assert_ne!(derive(2003, 0), derive(2003, 1));
/// assert_ne!(derive(0, 1), derive(1, 0));
/// ```
#[must_use]
pub fn derive(seed: u64, index: u64) -> u64 {
    let root = SplitMix64::new(seed).next_u64();
    SplitMix64::new(root ^ index).next_u64()
}

/// Blackman–Vigna xoshiro256\*\*: the workspace's deterministic
/// general-purpose generator.
///
/// 256 bits of state, period 2²⁵⁶ − 1, and excellent statistical
/// quality (BigCrush-clean). Seeded from a single `u64` via
/// [`SplitMix64`] expansion, as the xoshiro authors recommend.
///
/// The API is the small surface the workspace actually uses: raw
/// words, uniform integers in a range, Bernoulli draws, unit-interval
/// floats, Fisher–Yates shuffling, and element choice.
///
/// # Examples
///
/// ```
/// use scan_rng::ScanRng;
///
/// let mut rng = ScanRng::seed_from_u64(42);
/// let die = rng.gen_range_inclusive(1, 6);
/// assert!((1..=6).contains(&die));
/// let mut deck: Vec<u8> = (0..52).collect();
/// rng.shuffle(&mut deck);
/// assert_eq!(deck.len(), 52);
/// ```
#[derive(Clone, Eq, PartialEq, Debug)]
pub struct ScanRng {
    s: [u64; 4],
}

impl ScanRng {
    /// Creates a generator whose 256-bit state is expanded from `seed`
    /// by four `SplitMix64` steps.
    ///
    /// The expansion guarantees a nonzero state for every seed
    /// (`SplitMix64` visits zero exactly once over its 2⁶⁴ period, so at
    /// most one of the four words can be zero).
    #[must_use]
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        ScanRng {
            s: [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()],
        }
    }

    /// The next 64-bit output word.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1]
            .wrapping_mul(5)
            .rotate_left(7)
            .wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// The next 32-bit output (the high half of a 64-bit word, which
    /// carries xoshiro's best-mixed bits).
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// A fair coin flip.
    pub fn next_bool(&mut self) -> bool {
        // The top bit of the output word.
        self.next_u64() >> 63 != 0
    }

    /// A uniform float in `[0, 1)` with 53 random mantissa bits.
    pub fn next_f64(&mut self) -> f64 {
        // 53 top bits / 2^53: the standard xoshiro double recipe.
        #[allow(clippy::cast_precision_loss)] // value fits in 53 bits
        let mantissa = (self.next_u64() >> 11) as f64;
        mantissa * (1.0 / (1u64 << 53) as f64)
    }

    /// A Bernoulli draw: `true` with probability `p` (clamped to
    /// `[0, 1]`).
    ///
    /// # Panics
    ///
    /// Panics if `p` is NaN.
    pub fn gen_bool(&mut self, p: f64) -> bool {
        // lint:allow(L012): documented `# Panics` contract on a caller-supplied argument
        assert!(!p.is_nan(), "gen_bool probability is NaN");
        self.next_f64() < p
    }

    /// A uniform `u64` in `[0, bound)`, via Lemire's unbiased
    /// multiply-shift rejection method.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn gen_u64_below(&mut self, bound: u64) -> u64 {
        // lint:allow(L012): documented `# Panics` contract on a caller-supplied argument
        assert!(bound > 0, "gen_u64_below bound must be nonzero");
        // Lemire 2018: draw x, take hi 64 bits of x*bound; reject the
        // small biased slice of the bottom range.
        // lint:allow(L012): `bound > 0` is asserted on entry
        let threshold = bound.wrapping_neg() % bound;
        loop {
            let x = self.next_u64();
            let wide = u128::from(x) * u128::from(bound);
            if (wide as u64) >= threshold {
                return (wide >> 64) as u64;
            }
        }
    }

    /// A uniform index in `[0, len)`.
    ///
    /// # Panics
    ///
    /// Panics if `len` is zero.
    pub fn gen_index(&mut self, len: usize) -> usize {
        #[allow(clippy::cast_possible_truncation)] // bound fits in usize
        {
            self.gen_u64_below(len as u64) as usize
        }
    }

    /// A uniform `usize` in the half-open range `[low, high)`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn gen_range(&mut self, low: usize, high: usize) -> usize {
        // lint:allow(L012): documented `# Panics` contract on a caller-supplied argument
        assert!(low < high, "gen_range range {low}..{high} is empty");
        low + self.gen_index(high - low)
    }

    /// A uniform `usize` in the closed range `[low, high]`.
    ///
    /// # Panics
    ///
    /// Panics if `low > high`.
    pub fn gen_range_inclusive(&mut self, low: usize, high: usize) -> usize {
        assert!(low <= high, "gen_range_inclusive range {low}..={high} is empty");
        #[allow(clippy::cast_possible_truncation)] // width fits in usize
        {
            low + self.gen_u64_below((high - low) as u64 + 1) as usize
        }
    }

    /// A uniform `u64` in the half-open range `[low, high)`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn gen_range_u64(&mut self, low: u64, high: u64) -> u64 {
        assert!(low < high, "gen_range_u64 range {low}..{high} is empty");
        low + self.gen_u64_below(high - low)
    }

    /// In-place Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.gen_index(i + 1);
            slice.swap(i, j);
        }
    }

    /// A uniformly chosen element, or `None` if the slice is empty.
    pub fn choose<'a, T>(&mut self, slice: &'a [T]) -> Option<&'a T> {
        if slice.is_empty() {
            None
        } else {
            Some(&slice[self.gen_index(slice.len())])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_advances() {
        let mut sm = SplitMix64::new(7);
        let a = sm.next_u64();
        let b = sm.next_u64();
        assert_ne!(a, b);
    }

    #[test]
    fn seeding_is_deterministic_and_seed_sensitive() {
        let mut first = ScanRng::seed_from_u64(1);
        let mut twin = ScanRng::seed_from_u64(1);
        let mut other = ScanRng::seed_from_u64(2);
        let same = first.next_u64();
        assert_eq!(same, twin.next_u64());
        assert_ne!(same, other.next_u64());
    }

    #[test]
    fn state_is_never_all_zero() {
        for seed in 0..64u64 {
            let rng = ScanRng::seed_from_u64(seed);
            assert_ne!(rng.s, [0; 4], "seed {seed} expanded to zero state");
        }
    }

    #[test]
    fn gen_u64_below_respects_bound() {
        let mut rng = ScanRng::seed_from_u64(3);
        for bound in [1u64, 2, 3, 7, 64, 1000, u64::MAX] {
            for _ in 0..200 {
                assert!(rng.gen_u64_below(bound) < bound);
            }
        }
    }

    #[test]
    fn gen_u64_below_one_is_zero() {
        let mut rng = ScanRng::seed_from_u64(4);
        assert_eq!(rng.gen_u64_below(1), 0);
    }

    #[test]
    fn ranges_cover_their_support() {
        let mut rng = ScanRng::seed_from_u64(5);
        let mut seen = [false; 6];
        for _ in 0..500 {
            seen[rng.gen_range_inclusive(1, 6) - 1] = true;
        }
        assert!(seen.iter().all(|&s| s), "die faces missing: {seen:?}");
        for _ in 0..100 {
            let v = rng.gen_range(10, 12);
            assert!(v == 10 || v == 11);
        }
        assert_eq!(rng.gen_range_inclusive(9, 9), 9);
    }

    #[test]
    fn gen_range_u64_stays_in_range() {
        let mut rng = ScanRng::seed_from_u64(11);
        for _ in 0..200 {
            let v = rng.gen_range_u64(1 << 40, (1 << 40) + 17);
            assert!((1 << 40..(1 << 40) + 17).contains(&v));
        }
    }

    #[test]
    fn next_f64_is_a_unit_float() {
        let mut rng = ScanRng::seed_from_u64(6);
        for _ in 0..1000 {
            let f = rng.next_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = ScanRng::seed_from_u64(7);
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = ScanRng::seed_from_u64(8);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2600..=3400).contains(&hits), "p=0.3 gave {hits}/10000");
    }

    #[test]
    fn fair_coin_is_roughly_fair() {
        let mut rng = ScanRng::seed_from_u64(9);
        let heads = (0..10_000).filter(|_| rng.next_bool()).count();
        assert!((4600..=5400).contains(&heads), "coin gave {heads}/10000");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = ScanRng::seed_from_u64(10);
        let mut v: Vec<usize> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, (0..100).collect::<Vec<_>>(), "shuffle left identity");
    }

    #[test]
    fn shuffle_handles_degenerate_slices() {
        let mut rng = ScanRng::seed_from_u64(12);
        let mut empty: [u8; 0] = [];
        rng.shuffle(&mut empty);
        let mut one = [42u8];
        rng.shuffle(&mut one);
        assert_eq!(one, [42]);
    }

    #[test]
    fn choose_is_none_only_on_empty() {
        let mut rng = ScanRng::seed_from_u64(13);
        let empty: [u8; 0] = [];
        assert!(rng.choose(&empty).is_none());
        let items = [1, 2, 3];
        for _ in 0..50 {
            assert!(items.contains(rng.choose(&items).unwrap()));
        }
    }

    #[test]
    fn derive_decorrelates_indices_and_seeds() {
        let mut seen = std::collections::HashSet::new();
        for seed in 0..8u64 {
            for index in 0..8u64 {
                assert!(seen.insert(derive(seed, index)), "collision at ({seed},{index})");
            }
        }
    }

    #[test]
    fn derive_is_stable() {
        assert_eq!(derive(2003, 5), derive(2003, 5));
    }
}
