//! Frozen-stream regression tests.
//!
//! Every experiment in the workspace derives its pseudo-randomness
//! from these streams, so *any* change to the generator — seeding,
//! core recurrence, output scrambler — silently re-randomizes every
//! table and figure. These tests pin the first 16 outputs of several
//! seeds; an edit that alters the streams must consciously update the
//! constants (and expect every recorded experiment to change).

use scan_rng::{derive, ScanRng, SplitMix64};

/// First 8 outputs of SplitMix64 from seed 0 — matches the published
/// reference implementation (Steele/Lea/Flood), independently checked
/// against other SplitMix64 implementations.
const SPLITMIX_SEED0: [u64; 8] = [
    0xE220_A839_7B1D_CDAF,
    0x6E78_9E6A_A1B9_65F4,
    0x06C4_5D18_8009_454F,
    0xF88B_B8A8_724C_81EC,
    0x1B39_896A_51A8_749B,
    0x53CB_9F0C_747E_A2EA,
    0x2C82_9ABE_1F45_32E1,
    0xC584_133A_C916_AB3C,
];

const SEEDS: [u64; 5] = [0, 1, 42, 2003, 0xDA7E_2003];

const PINNED: [[u64; 16]; 5] = [
    [
        0x99EC_5F36_CB75_F2B4,
        0xBF6E_1F78_4956_452A,
        0x1A5F_849D_4933_E6E0,
        0x6AA5_94F1_262D_2D2C,
        0xBBA5_AD4A_1F84_2E59,
        0xFFEF_8375_D9EB_CACA,
        0x6C16_0DEE_D2F5_4C98,
        0x8920_AD64_8FC3_0A3F,
        0xDB03_2C0B_A753_9731,
        0xEB3A_475A_3E74_9A3D,
        0x1D42_993F_A43F_2A54,
        0x1136_1BF5_26A1_4BB5,
        0x1B4F_07A5_AB3D_8E9C,
        0xA7A3_257F_6986_DB7F,
        0x7EFD_AA95_605D_FC9C,
        0x4BDE_97C0_A78E_AAB8,
    ],
    [
        0xB3F2_AF6D_0FC7_10C5,
        0x853B_5596_4736_4CEA,
        0x92F8_9756_082A_4514,
        0x642E_1C7B_C266_A3A7,
        0xB27A_48E2_9A23_3673,
        0x24C1_2312_6FFD_A722,
        0x1230_04EF_8DF5_10E6,
        0x6195_4DCC_47B1_E89D,
        0xDDFD_B48A_B9ED_4A21,
        0x8D3C_DB8C_3AA5_B1D0,
        0xEEBD_114B_D872_26D1,
        0xF50C_3FF1_E7D7_E8A6,
        0xEECA_3115_E23B_C8F1,
        0xAB49_ED3D_B4C6_6435,
        0x9995_3C6C_5780_8DD7,
        0xE3FA_941B_0521_9325,
    ],
    [
        0x1578_0B2E_0C2E_C716,
        0x6104_D986_6D11_3A7E,
        0xAE17_5332_39E4_99A1,
        0xECB8_AD47_03B3_60A1,
        0xFDE6_DC7F_E2EC_5E64,
        0xC50D_A531_0179_5238,
        0xB821_5485_5A65_DDB2,
        0xD99A_2743_EBE6_0087,
        0xC2E9_6E72_6E97_647E,
        0x9556_615F_775F_BC3D,
        0xAEB5_3B34_0C10_3971,
        0x4A69_DB98_73AF_8965,
        0xCD0F_EDA9_3006_C6B6,
        0x5248_0865_A4B4_2742,
        0xB60D_EC3B_F2D8_87CD,
        0xE0B5_5A68_B966_77FA,
    ],
    [
        0x1F20_B273_CD36_F7EC,
        0x7EF5_33F5_B9E2_6568,
        0x626B_FBA6_3C6F_9BF0,
        0xC5A7_3DD4_C045_2D1D,
        0xB422_5E57_253F_9165,
        0x1B56_E70D_4F42_CC58,
        0xEABC_E738_E7CC_0B70,
        0x82D4_12BC_CB1F_DF0F,
        0x1907_8307_A82E_B72C,
        0x6AA4_8E85_AB4D_A91E,
        0x82BC_6E09_7C66_1ACE,
        0x0494_571F_9CA7_1A1D,
        0x176E_1EF2_E06F_18AA,
        0x9EF4_4831_7F5E_F3B8,
        0x5F42_E2FD_8D30_5402,
        0x21BF_CEC0_E8DC_92E4,
    ],
    [
        0xD6CA_C05B_6EC8_32E6,
        0x43B7_DDE0_4E06_344B,
        0x0B3C_D45A_1AEB_1838,
        0x5343_B24A_B682_1340,
        0x6190_51AF_A06D_EBA8,
        0x57CF_0B80_CCF8_0439,
        0x1786_1699_7A3B_12A7,
        0x7BAA_21C9_C993_4EF7,
        0x66AD_A823_FF0E_084A,
        0x918C_1013_C658_90B2,
        0xFE23_EB55_ABB1_E216,
        0xA8FE_8DE7_04BF_8C6C,
        0x6666_DD15_2E02_1D37,
        0x4ECC_DF28_7427_EAEE,
        0x3FB6_D06D_0C8D_F12B,
        0x7F96_DE84_E632_9A8A,
    ],
];

const DERIVE_2003: [u64; 8] = [
    0xDCEA_A9FA_7FCF_402B,
    0x3F04_3F9C_7140_2604,
    0x58D3_8A5D_2854_1C62,
    0xFF45_510D_1C61_4A0A,
    0x0345_2CFD_33CF_A595,
    0x1EBA_74D6_467B_7258,
    0xC0A7_ECEF_EF00_9E17,
    0x98B1_2D52_F949_CB64,
];

#[test]
fn splitmix64_matches_reference_vector() {
    let mut sm = SplitMix64::new(0);
    for (i, &want) in SPLITMIX_SEED0.iter().enumerate() {
        assert_eq!(sm.next_u64(), want, "SplitMix64(0) output {i} drifted");
    }
}

#[test]
fn scanrng_streams_are_frozen() {
    for (seed, pinned) in SEEDS.iter().zip(&PINNED) {
        let mut rng = ScanRng::seed_from_u64(*seed);
        for (i, &want) in pinned.iter().enumerate() {
            assert_eq!(
                rng.next_u64(),
                want,
                "ScanRng seed {seed:#x} output {i} drifted — every recorded \
                 experiment in EXPERIMENTS.md would silently change"
            );
        }
    }
}

#[test]
fn derived_child_seeds_are_frozen() {
    for (i, &want) in DERIVE_2003.iter().enumerate() {
        assert_eq!(
            derive(2003, i as u64),
            want,
            "derive(2003, {i}) drifted — parallel campaign sharding would \
             no longer reproduce recorded results"
        );
    }
}

#[test]
fn next_u32_is_the_high_half() {
    let mut a = ScanRng::seed_from_u64(77);
    let mut b = ScanRng::seed_from_u64(77);
    for _ in 0..16 {
        assert_eq!(u64::from(a.next_u32()), b.next_u64() >> 32);
    }
}
