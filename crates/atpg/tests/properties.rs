//! Property-based tests for the ATPG crate: every generated cube is a
//! real test, five-valued logic laws hold, and X-fill never violates
//! assignments. Runs on the in-workspace shrink-free harness.

use scan_rng::testkit::Runner;

use scan_atpg::logic::{eval_gate, Trit, V5};
use scan_atpg::{single_pattern_set, Podem, PodemLimits, PodemResult};
use scan_netlist::generate::{generate_with, profile, GeneratorConfig};
use scan_netlist::{GateKind, ScanView};
use scan_sim::{FaultSimulator, FaultUniverse};

/// Concretize a V5 value in the good machine (X → pick).
fn good_bool(v: V5, pick: bool) -> bool {
    match v.good() {
        Trit::One => true,
        Trit::Zero => false,
        Trit::X => pick,
    }
}

/// Five-valued gate evaluation is consistent with boolean evaluation
/// on the good machine whenever inputs are known.
#[test]
fn v5_consistent_with_boolean() {
    Runner::new(256).run("v5_consistent_with_boolean", |g| {
        let kind_idx = g.usize("kind_idx", 0, 7);
        let vals = g.vec("vals", 1, 3, |r| r.gen_index(4) as u8);
        let pick = g.bool("pick");
        let kind = GateKind::ALL[kind_idx];
        let v5s: Vec<V5> = vals
            .iter()
            .map(|&v| match v {
                0 => V5::Zero,
                1 => V5::One,
                2 => V5::D,
                _ => V5::DBar,
            })
            .collect();
        let v5s = if kind.is_unary() {
            vec![v5s[0]]
        } else if v5s.len() < 2 {
            vec![v5s[0], v5s[0]]
        } else {
            v5s
        };
        let out = eval_gate(kind, &v5s);
        // Good machine booleans.
        let bools: Vec<bool> = v5s.iter().map(|&v| good_bool(v, pick)).collect();
        let expected = kind.eval_bools(&bools);
        assert_eq!(good_bool(out, pick), expected);
    });
}

/// Every cube PODEM produces for a sampled fault of a random synthetic
/// circuit is verified as a test by the independent simulator.
#[test]
fn podem_cubes_always_verify() {
    Runner::new(32).run("podem_cubes_always_verify", |g| {
        let seed = g.u64("seed", 0, 9);
        let fill_seed = g.u64("fill_seed", 0, 7);
        let p = profile("s344").unwrap();
        let netlist = generate_with(p, seed, &GeneratorConfig::default());
        let view = ScanView::natural(&netlist, true);
        let mut podem = Podem::new(&netlist);
        let universe = FaultUniverse::collapsed(&netlist);
        for fault in universe.faults().iter().step_by(17).take(12) {
            if let PodemResult::Test(cube) = podem.generate(fault, &PodemLimits::default()) {
                let (pi, state) = cube.x_fill(fill_seed);
                let pattern_set = single_pattern_set(&netlist, &pi, &state);
                let fsim = FaultSimulator::new(&netlist, &view, &pattern_set).unwrap();
                assert!(
                    fsim.is_detected(fault),
                    "cube fails for {}",
                    fault.describe(&netlist)
                );
            }
        }
    });
}

/// X-fill preserves every specified bit of the cube.
#[test]
fn x_fill_preserves_assignments() {
    Runner::new(32).run("x_fill_preserves_assignments", |g| {
        let seed = g.u64("seed", 0, 19);
        let netlist = scan_netlist::bench::s27();
        let mut podem = Podem::new(&netlist);
        let universe = FaultUniverse::collapsed(&netlist);
        for fault in universe.faults().iter().take(10) {
            if let PodemResult::Test(cube) = podem.generate(fault, &PodemLimits::default()) {
                let (pi, state) = cube.x_fill(seed);
                for (bit, trit) in pi.iter().zip(&cube.pi) {
                    match trit {
                        Trit::One => assert!(*bit),
                        Trit::Zero => assert!(!*bit),
                        Trit::X => {}
                    }
                }
                for (bit, trit) in state.iter().zip(&cube.state) {
                    match trit {
                        Trit::One => assert!(*bit),
                        Trit::Zero => assert!(!*bit),
                        Trit::X => {}
                    }
                }
            }
        }
    });
}
