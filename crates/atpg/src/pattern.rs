//! Deterministic test patterns (cubes) produced by the generator.

use scan_netlist::Netlist;
use scan_rng::ScanRng;

use crate::logic::Trit;

/// One deterministic test cube for a full-scan circuit: a (possibly
/// partial) assignment to the primary inputs and the scan-loaded
/// flip-flop states.
#[derive(Clone, Eq, PartialEq, Debug)]
pub struct TestPattern {
    /// Primary input assignments, indexed like
    /// [`Netlist::inputs`].
    pub pi: Vec<Trit>,
    /// Scan-load assignments, indexed like [`Netlist::dffs`].
    pub state: Vec<Trit>,
}

impl TestPattern {
    /// An all-`X` cube shaped for `netlist`.
    #[must_use]
    pub fn unassigned(netlist: &Netlist) -> Self {
        TestPattern {
            pi: vec![Trit::X; netlist.num_inputs()],
            state: vec![Trit::X; netlist.num_dffs()],
        }
    }

    /// Number of specified (non-`X`) bits.
    #[must_use]
    pub fn specified_bits(&self) -> usize {
        self.pi
            .iter()
            .chain(&self.state)
            .filter(|&&t| t != Trit::X)
            .count()
    }

    /// Fills the don't-care positions with seeded random values,
    /// returning fully specified PI and state bit vectors.
    #[must_use]
    pub fn x_fill(&self, seed: u64) -> (Vec<bool>, Vec<bool>) {
        let mut rng = ScanRng::seed_from_u64(seed);
        let fill = |t: &Trit, rng: &mut ScanRng| match t {
            Trit::Zero => false,
            Trit::One => true,
            Trit::X => rng.next_bool(),
        };
        let pi = self.pi.iter().map(|t| fill(t, &mut rng)).collect();
        let state = self.state.iter().map(|t| fill(t, &mut rng)).collect();
        (pi, state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scan_netlist::bench;

    #[test]
    fn unassigned_shape() {
        let n = bench::s27();
        let p = TestPattern::unassigned(&n);
        assert_eq!(p.pi.len(), 4);
        assert_eq!(p.state.len(), 3);
        assert_eq!(p.specified_bits(), 0);
    }

    #[test]
    fn x_fill_respects_assignments() {
        let n = bench::s27();
        let mut p = TestPattern::unassigned(&n);
        p.pi[0] = Trit::One;
        p.state[2] = Trit::Zero;
        let (pi, state) = p.x_fill(1);
        assert!(pi[0]);
        assert!(!state[2]);
        // X-fill is reproducible.
        assert_eq!(p.x_fill(1), (pi, state));
    }
}
