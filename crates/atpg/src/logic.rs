//! Five-valued test generation logic.
//!
//! PODEM reasons about the good and the faulty machine at once; each
//! net carries one of five values: `0`, `1`, `X` (unassigned), `D`
//! (good 1 / faulty 0) and `D̄` (good 0 / faulty 1).

use scan_netlist::GateKind;

/// Three-valued component logic (one machine).
#[derive(Copy, Clone, Eq, PartialEq, Hash, Debug)]
pub enum Trit {
    /// Logic 0.
    Zero,
    /// Logic 1.
    One,
    /// Unassigned / unknown.
    X,
}

impl Trit {
    /// Converts a concrete bool.
    #[must_use]
    pub fn from_bool(b: bool) -> Self {
        if b {
            Trit::One
        } else {
            Trit::Zero
        }
    }

    /// The complement (X stays X).
    #[must_use]
    pub fn complement(self) -> Self {
        match self {
            Trit::Zero => Trit::One,
            Trit::One => Trit::Zero,
            Trit::X => Trit::X,
        }
    }
}

/// The composite five-valued domain.
#[derive(Copy, Clone, Eq, PartialEq, Hash, Debug)]
pub enum V5 {
    /// 0 in both machines.
    Zero,
    /// 1 in both machines.
    One,
    /// Unassigned.
    X,
    /// Good 1, faulty 0 (the fault effect).
    D,
    /// Good 0, faulty 1 (the complementary fault effect).
    DBar,
}

impl V5 {
    /// The good-machine component.
    #[must_use]
    pub fn good(self) -> Trit {
        match self {
            V5::Zero | V5::DBar => Trit::Zero,
            V5::One | V5::D => Trit::One,
            V5::X => Trit::X,
        }
    }

    /// The faulty-machine component.
    #[must_use]
    pub fn faulty(self) -> Trit {
        match self {
            V5::Zero | V5::D => Trit::Zero,
            V5::One | V5::DBar => Trit::One,
            V5::X => Trit::X,
        }
    }

    /// Reassembles a five-valued value from components. Any `X`
    /// component makes the composite `X` (pessimistic, standard for
    /// PODEM implication).
    #[must_use]
    pub fn from_parts(good: Trit, faulty: Trit) -> Self {
        match (good, faulty) {
            (Trit::Zero, Trit::Zero) => V5::Zero,
            (Trit::One, Trit::One) => V5::One,
            (Trit::One, Trit::Zero) => V5::D,
            (Trit::Zero, Trit::One) => V5::DBar,
            _ => V5::X,
        }
    }

    /// Converts a concrete bool (same value in both machines).
    #[must_use]
    pub fn from_bool(b: bool) -> Self {
        if b {
            V5::One
        } else {
            V5::Zero
        }
    }

    /// The complement (`D̄` for `D`, `X` stays `X`).
    #[must_use]
    pub fn complement(self) -> Self {
        match self {
            V5::Zero => V5::One,
            V5::One => V5::Zero,
            V5::X => V5::X,
            V5::D => V5::DBar,
            V5::DBar => V5::D,
        }
    }

    /// Returns `true` if the value carries a fault effect.
    #[must_use]
    pub fn is_fault_effect(self) -> bool {
        matches!(self, V5::D | V5::DBar)
    }
}

impl std::ops::Not for Trit {
    type Output = Trit;

    fn not(self) -> Trit {
        self.complement()
    }
}

impl std::ops::Not for V5 {
    type Output = V5;

    fn not(self) -> V5 {
        self.complement()
    }
}

fn and3(a: Trit, b: Trit) -> Trit {
    match (a, b) {
        (Trit::Zero, _) | (_, Trit::Zero) => Trit::Zero,
        (Trit::One, Trit::One) => Trit::One,
        _ => Trit::X,
    }
}

fn or3(a: Trit, b: Trit) -> Trit {
    match (a, b) {
        (Trit::One, _) | (_, Trit::One) => Trit::One,
        (Trit::Zero, Trit::Zero) => Trit::Zero,
        _ => Trit::X,
    }
}

fn xor3(a: Trit, b: Trit) -> Trit {
    match (a, b) {
        (Trit::X, _) | (_, Trit::X) => Trit::X,
        (x, y) if x == y => Trit::Zero,
        _ => Trit::One,
    }
}

/// Evaluates a gate over five-valued inputs by evaluating the two
/// machines independently and recombining.
///
/// # Panics
///
/// Panics if `inputs` is empty.
#[must_use]
pub fn eval_gate(kind: GateKind, inputs: &[V5]) -> V5 {
    assert!(!inputs.is_empty(), "gate must have inputs");
    let fold = |component: fn(V5) -> Trit| -> Trit {
        let mut acc = component(inputs[0]);
        let op: fn(Trit, Trit) -> Trit = match kind {
            GateKind::And | GateKind::Nand => and3,
            GateKind::Or | GateKind::Nor => or3,
            GateKind::Xor | GateKind::Xnor => xor3,
            GateKind::Not | GateKind::Buf => |a, _| a,
        };
        for &v in &inputs[1..] {
            acc = op(acc, component(v));
        }
        if kind.is_inverting() {
            acc.complement()
        } else {
            acc
        }
    };
    V5::from_parts(fold(V5::good), fold(V5::faulty))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn components_roundtrip() {
        for v in [V5::Zero, V5::One, V5::D, V5::DBar] {
            assert_eq!(V5::from_parts(v.good(), v.faulty()), v);
        }
        assert_eq!(V5::from_parts(Trit::X, Trit::X), V5::X);
        assert_eq!(V5::from_parts(Trit::One, Trit::X), V5::X);
    }

    #[test]
    fn and_gate_propagates_d() {
        // D AND 1 = D; D AND 0 = 0; D AND X = X.
        assert_eq!(eval_gate(GateKind::And, &[V5::D, V5::One]), V5::D);
        assert_eq!(eval_gate(GateKind::And, &[V5::D, V5::Zero]), V5::Zero);
        assert_eq!(eval_gate(GateKind::And, &[V5::D, V5::X]), V5::X);
        // D AND D̄ = 0 (good 1∧0=0, faulty 0∧1=0).
        assert_eq!(eval_gate(GateKind::And, &[V5::D, V5::DBar]), V5::Zero);
    }

    #[test]
    fn nand_inverts() {
        assert_eq!(eval_gate(GateKind::Nand, &[V5::D, V5::One]), V5::DBar);
        assert_eq!(eval_gate(GateKind::Nand, &[V5::Zero, V5::X]), V5::One);
    }

    #[test]
    fn xor_propagates_d() {
        assert_eq!(eval_gate(GateKind::Xor, &[V5::D, V5::Zero]), V5::D);
        assert_eq!(eval_gate(GateKind::Xor, &[V5::D, V5::One]), V5::DBar);
        // D XOR D = 0 in both machines.
        assert_eq!(eval_gate(GateKind::Xor, &[V5::D, V5::D]), V5::Zero);
    }

    #[test]
    fn not_and_buf() {
        assert_eq!(eval_gate(GateKind::Not, &[V5::D]), V5::DBar);
        assert_eq!(eval_gate(GateKind::Buf, &[V5::DBar]), V5::DBar);
        assert_eq!(eval_gate(GateKind::Not, &[V5::X]), V5::X);
    }

    #[test]
    fn v5_not_is_involutive() {
        for v in [V5::Zero, V5::One, V5::X, V5::D, V5::DBar] {
            assert_eq!(v.complement().complement(), v);
        }
    }
}
