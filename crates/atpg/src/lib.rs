//! Deterministic test pattern generation (PODEM) for stuck-at faults
//! in full-scan circuits.
//!
//! The diagnosis experiments in this workspace run on pseudorandom
//! BIST patterns (as the paper does); this crate supplies the
//! deterministic complement a DFT flow needs:
//!
//! * quantify what pseudorandom patterns *miss* (random-pattern-
//!   resistant faults) and top them off with generated cubes;
//! * prove faults redundant (untestable), which calibrates the
//!   coverage statistics of the synthetic benchmark circuits;
//! * produce guaranteed-detecting patterns for worked examples.
//!
//! The generator is a classical PODEM: decisions on primary inputs and
//! scan state bits only, full five-valued forward implication per
//! decision ([`logic`]), activation/D-frontier objectives with
//! backtrace, and bounded backtracking. [`run_atpg`] adds
//! fault-simulation-based pattern dropping over the collapsed fault
//! universe, cross-verified against the independent bit-parallel
//! simulator from `scan-sim`.
//!
//! # Examples
//!
//! ```
//! use scan_atpg::{run_atpg, PodemLimits};
//! use scan_netlist::bench;
//!
//! let s27 = bench::s27();
//! let result = run_atpg(&s27, &PodemLimits::default(), 1);
//! assert!(result.coverage() > 0.95);
//! assert_eq!(result.aborted, 0);
//! ```

#![warn(missing_docs)]
#![warn(clippy::pedantic)]
#![allow(clippy::must_use_candidate, clippy::module_name_repetitions)]
#![allow(clippy::cast_precision_loss)]

pub mod logic;
mod pattern;
mod podem;
mod runner;

pub use pattern::TestPattern;
pub use podem::{Podem, PodemLimits, PodemResult};
pub use runner::{run_atpg, single_pattern_set, AtpgResult};
