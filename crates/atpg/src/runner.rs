//! Whole-fault-list ATPG with fault-simulation-based pattern dropping.

use scan_netlist::{Netlist, ScanView};
use scan_sim::{Fault, FaultSimulator, FaultUniverse, PatternSet};

use crate::pattern::TestPattern;
use crate::podem::{Podem, PodemLimits, PodemResult};

/// Aggregate results of an ATPG run over a fault list.
#[derive(Clone, Debug)]
pub struct AtpgResult {
    /// The generated test cubes, in generation order.
    pub patterns: Vec<TestPattern>,
    /// Faults detected (by a generated pattern, including fortuitous
    /// detection through fault dropping).
    pub detected: usize,
    /// Faults proven redundant.
    pub redundant: usize,
    /// Faults aborted at the backtrack limit.
    pub aborted: usize,
    /// Total faults targeted.
    pub total: usize,
}

impl AtpgResult {
    /// Stuck-at fault coverage: detected / total.
    #[must_use]
    pub fn coverage(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.detected as f64 / self.total as f64
        }
    }

    /// Test efficiency: (detected + redundant) / total — the fraction
    /// of faults with a definite resolution.
    #[must_use]
    pub fn efficiency(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            (self.detected + self.redundant) as f64 / self.total as f64
        }
    }
}

/// Runs PODEM over the collapsed fault universe with fault dropping:
/// every generated cube is X-filled and fault-simulated against the
/// remaining undetected faults, so fortuitously covered faults are
/// never targeted.
///
/// `x_fill_seed` controls the don't-care fill (and therefore the
/// fortuitous coverage); the run is fully deterministic.
///
/// # Panics
///
/// Panics only on internal invariant violations (e.g. a generated cube
/// failing to detect its own target fault).
#[must_use]
pub fn run_atpg(netlist: &Netlist, limits: &PodemLimits, x_fill_seed: u64) -> AtpgResult {
    let universe = FaultUniverse::collapsed(netlist);
    let faults: Vec<Fault> = universe.faults().to_vec();
    let view = ScanView::natural(netlist, true);
    let mut alive: Vec<bool> = faults.iter().map(|f| scan_sim::site_has_fanout(netlist, f)).collect();
    // Faults with no fanout are structurally undetectable; count them
    // as redundant up front.
    let mut redundant = alive.iter().filter(|&&a| !a).count();
    let mut detected = 0usize;
    let mut aborted = 0usize;
    let mut patterns: Vec<TestPattern> = Vec::new();
    let mut podem = Podem::new(netlist);

    for i in 0..faults.len() {
        if !alive[i] {
            continue;
        }
        match podem.generate(&faults[i], limits) {
            PodemResult::Test(cube) => {
                // Fault-drop: simulate the concrete pattern against all
                // still-alive faults.
                let (pi, state) = cube.x_fill(x_fill_seed.wrapping_add(patterns.len() as u64));
                let pattern_set = single_pattern_set(netlist, &pi, &state);
                let fsim = FaultSimulator::new(netlist, &view, &pattern_set)
                    .expect("pattern set shaped for the netlist");
                for (j, fault) in faults.iter().enumerate() {
                    if alive[j] && fsim.is_detected(fault) {
                        alive[j] = false;
                        detected += 1;
                    }
                }
                // The target fault must be among them (the cube is a
                // test for it by construction).
                debug_assert!(!alive[i], "generated cube missed its target");
                // Extremely defensively: if X-fill masked the target
                // (cannot happen for a correct cube), drop it anyway to
                // guarantee progress.
                if alive[i] {
                    alive[i] = false;
                    detected += 1;
                }
                patterns.push(cube);
            }
            PodemResult::Untestable => {
                alive[i] = false;
                redundant += 1;
            }
            PodemResult::Aborted => {
                alive[i] = false;
                aborted += 1;
            }
        }
    }

    AtpgResult {
        patterns,
        detected,
        redundant,
        aborted,
        total: faults.len(),
    }
}

/// Builds a one-pattern [`PatternSet`] from concrete PI/state vectors.
///
/// # Panics
///
/// Panics if `pi`/`state` are shorter than the circuit's interface.
#[must_use]
pub fn single_pattern_set(netlist: &Netlist, pi: &[bool], state: &[bool]) -> PatternSet {
    let mut st_iter = state.iter();
    let mut pi_iter = pi.iter();
    PatternSet::from_bit_stream(netlist.num_inputs(), netlist.num_dffs(), 1, || {
        if let Some(&b) = st_iter.next() {
            b
        } else {
            *pi_iter.next().expect("enough pattern bits")
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use scan_netlist::bench;

    #[test]
    fn s27_reaches_full_efficiency() {
        let n = bench::s27();
        let result = run_atpg(&n, &PodemLimits::default(), 1);
        assert_eq!(result.aborted, 0);
        assert!(result.coverage() > 0.95, "coverage {}", result.coverage());
        assert!((result.efficiency() - 1.0).abs() < 1e-9);
        // Fault dropping keeps the pattern count well below the fault
        // count.
        assert!(result.patterns.len() < result.total / 2);
    }

    #[test]
    fn synthetic_s298_efficiency_high() {
        let n = scan_netlist::generate::benchmark("s298");
        let result = run_atpg(&n, &PodemLimits::default(), 1);
        assert!(
            result.efficiency() > 0.9,
            "efficiency {} (detected {}, redundant {}, aborted {} of {})",
            result.efficiency(),
            result.detected,
            result.redundant,
            result.aborted,
            result.total
        );
    }

    #[test]
    fn deterministic_runs() {
        let n = bench::s27();
        let a = run_atpg(&n, &PodemLimits::default(), 9);
        let b = run_atpg(&n, &PodemLimits::default(), 9);
        assert_eq!(a.patterns, b.patterns);
        assert_eq!(a.detected, b.detected);
    }
}
