//! PODEM: path-oriented decision making for stuck-at test generation.
//!
//! The implementation follows the classical algorithm: decisions are
//! made only on primary inputs (and, under full scan, flip-flop state
//! bits), implications run a full five-valued forward simulation with
//! the fault injected, objectives alternate between fault activation
//! and D-frontier advancement, and backtracking is bounded.

use scan_netlist::scoap::Scoap;
use scan_netlist::{Driver, NetId, Netlist};
use scan_sim::{Fault, FaultSite};

use crate::logic::{eval_gate, Trit, V5};
use crate::pattern::TestPattern;

/// Resource limits for one PODEM run.
#[derive(Clone, Copy, Debug)]
pub struct PodemLimits {
    /// Maximum decision backtracks before aborting.
    pub max_backtracks: usize,
}

impl Default for PodemLimits {
    fn default() -> Self {
        PodemLimits {
            max_backtracks: 400,
        }
    }
}

/// The outcome of one test generation attempt.
#[derive(Clone, Eq, PartialEq, Debug)]
pub enum PodemResult {
    /// A test cube that detects the fault.
    Test(TestPattern),
    /// The fault is proven untestable (the full decision space was
    /// exhausted without a test): it is *redundant* under single
    /// stuck-at semantics.
    Untestable,
    /// The backtrack limit was hit before a conclusion.
    Aborted,
}

/// One decision point: which input, which value, whether the
/// alternative value was already tried.
#[derive(Clone, Copy, Debug)]
struct Decision {
    input: usize,
    tried_both: bool,
}

/// A PODEM test generator bound to one circuit.
///
/// # Examples
///
/// ```
/// use scan_netlist::bench;
/// use scan_sim::Fault;
/// use scan_atpg::{Podem, PodemResult};
///
/// let s27 = bench::s27();
/// let g10 = s27.find_net("G10").expect("net exists");
/// let mut podem = Podem::new(&s27);
/// match podem.generate(&Fault::stem(g10, true), &Default::default()) {
///     PodemResult::Test(cube) => assert!(cube.specified_bits() > 0),
///     other => panic!("expected a test, got {other:?}"),
/// }
/// ```
pub struct Podem<'a> {
    netlist: &'a Netlist,
    /// Decision inputs: PIs first, then flip-flop state bits, each
    /// identified by the net it drives.
    input_nets: Vec<NetId>,
    /// Per-net current five-valued value.
    values: Vec<V5>,
    /// SCOAP measures guiding backtrace input choice.
    scoap: Scoap,
    /// Backtracks spent across all calls (instrumentation).
    total_backtracks: usize,
}

impl<'a> Podem<'a> {
    /// Creates a generator for the circuit.
    #[must_use]
    pub fn new(netlist: &'a Netlist) -> Self {
        let mut input_nets: Vec<NetId> = netlist.inputs().to_vec();
        input_nets.extend(netlist.dffs().iter().map(|d| d.q));
        Podem {
            netlist,
            input_nets,
            values: vec![V5::X; netlist.num_nets()],
            scoap: Scoap::compute(netlist),
            total_backtracks: 0,
        }
    }

    /// Total backtracks spent across every [`Podem::generate`] call on
    /// this instance (search-effort instrumentation).
    #[must_use]
    pub fn total_backtracks(&self) -> usize {
        self.total_backtracks
    }

    /// Attempts to generate a test for `fault`.
    pub fn generate(&mut self, fault: &Fault, limits: &PodemLimits) -> PodemResult {
        let mut assignment: Vec<Trit> = vec![Trit::X; self.input_nets.len()];
        let mut stack: Vec<Decision> = Vec::new();
        let mut backtracks = 0usize;

        self.imply(fault, &assignment);
        loop {
            if self.test_found() {
                return PodemResult::Test(self.cube_from(&assignment));
            }
            let objective = self.pick_objective(fault);
            let backtraced = objective.and_then(|(net, value)| self.backtrace(net, value));
            match backtraced {
                Some((input, value)) if assignment[input] == Trit::X => {
                    assignment[input] = value;
                    stack.push(Decision {
                        input,
                        tried_both: false,
                    });
                    self.imply(fault, &assignment);
                }
                _ => {
                    // No objective can be advanced: backtrack.
                    loop {
                        let Some(top) = stack.last_mut() else {
                            return PodemResult::Untestable;
                        };
                        if top.tried_both {
                            assignment[top.input] = Trit::X;
                            stack.pop();
                            continue;
                        }
                        top.tried_both = true;
                        assignment[top.input] = !assignment[top.input];
                        backtracks += 1;
                        self.total_backtracks += 1;
                        if backtracks > limits.max_backtracks {
                            return PodemResult::Aborted;
                        }
                        break;
                    }
                    self.imply(fault, &assignment);
                }
            }
        }
    }

    /// Full five-valued forward implication with the fault injected.
    fn imply(&mut self, fault: &Fault, assignment: &[Trit]) {
        for v in &mut self.values {
            *v = V5::X;
        }
        for (i, &net) in self.input_nets.iter().enumerate() {
            self.values[net.index()] = match assignment[i] {
                Trit::Zero => V5::Zero,
                Trit::One => V5::One,
                Trit::X => V5::X,
            };
        }
        // Stem faults on source nets activate directly.
        if let FaultSite::Stem(net) = fault.site {
            if matches!(
                self.netlist.driver(net),
                Driver::PrimaryInput | Driver::Dff(_)
            ) {
                self.values[net.index()] =
                    inject(self.values[net.index()], fault.stuck);
            }
        }
        let mut inputs: Vec<V5> = Vec::with_capacity(4);
        for &gid in self.netlist.topo_order() {
            let gate = self.netlist.gate(gid);
            inputs.clear();
            inputs.extend(gate.inputs.iter().map(|n| self.values[n.index()]));
            if let FaultSite::Pin { gate: fgate, pin } = fault.site {
                if fgate == gid {
                    inputs[pin as usize] = inject(inputs[pin as usize], fault.stuck);
                }
            }
            let mut out = eval_gate(gate.kind, &inputs);
            if let FaultSite::Stem(net) = fault.site {
                if net == gate.output {
                    out = inject(out, fault.stuck);
                }
            }
            self.values[gate.output.index()] = out;
        }
    }

    /// A fault effect at any observation point (PO or flip-flop data
    /// input) means a test is found.
    fn test_found(&self) -> bool {
        self.netlist
            .outputs()
            .iter()
            .map(|&net| self.values[net.index()])
            .chain(
                self.netlist
                    .dffs()
                    .iter()
                    .map(|d| self.values[d.d.index()]),
            )
            .any(V5::is_fault_effect)
    }

    /// Picks the next objective `(net, desired good-machine value)`.
    ///
    /// If the fault is not activated yet (no `D`/`D̄` anywhere), the
    /// objective is to set the fault site to the opposite of the stuck
    /// value. Otherwise a D-frontier gate (output `X`, some input
    /// `D`/`D̄`) is advanced by setting one of its `X` inputs to the
    /// non-controlling value.
    fn pick_objective(&self, fault: &Fault) -> Option<(NetId, bool)> {
        let site_net = match fault.site {
            FaultSite::Stem(net) => net,
            FaultSite::Pin { gate, pin } => self.netlist.gate(gate).inputs[pin as usize],
        };
        let site_value = self.values[site_net.index()];
        // Activation: the good machine must drive the site to !stuck.
        match site_value.good() {
            Trit::X => return Some((site_net, !fault.stuck)),
            good if good == Trit::from_bool(fault.stuck) => {
                // Site pinned at the stuck value: this branch cannot
                // activate the fault.
                return None;
            }
            _ => {}
        }
        // For a pin fault the fault effect lives *inside* the faulted
        // gate until its other inputs sensitize it; treat that gate as
        // the first D-frontier member.
        if let FaultSite::Pin { gate, .. } = fault.site {
            let g = self.netlist.gate(gate);
            if self.values[g.output.index()] == V5::X {
                if let Some(&x_input) = g
                    .inputs
                    .iter()
                    .find(|n| self.values[n.index()] == V5::X)
                {
                    let non_controlling = g.kind.controlling_value().is_none_or(|c| !c);
                    return Some((x_input, non_controlling));
                }
            }
        }
        // Propagation objective: advance the D-frontier.
        for &gid in self.netlist.topo_order() {
            let gate = self.netlist.gate(gid);
            if self.values[gate.output.index()] != V5::X {
                continue;
            }
            let has_effect = gate
                .inputs
                .iter()
                .any(|n| self.values[n.index()].is_fault_effect());
            if !has_effect {
                continue;
            }
            if let Some(&x_input) = gate
                .inputs
                .iter()
                .find(|n| self.values[n.index()] == V5::X)
            {
                let non_controlling = gate
                    .kind
                    .controlling_value()
                    .is_none_or(|c| !c);
                return Some((x_input, non_controlling));
            }
        }
        None
    }

    /// Walks an objective backward to an unassigned decision input,
    /// inverting the desired value through inverting gates.
    fn backtrace(&self, mut net: NetId, mut value: bool) -> Option<(usize, Trit)> {
        loop {
            match self.netlist.driver(net) {
                Driver::PrimaryInput | Driver::Dff(_) => {
                    let index = self.input_nets.iter().position(|&n| n == net)?;
                    if self.values[net.index()] != V5::X {
                        return None;
                    }
                    return Some((index, Trit::from_bool(value)));
                }
                Driver::Gate(gid) => {
                    let gate = self.netlist.gate(gid);
                    if gate.kind.is_inverting() {
                        value = !value;
                    }
                    // Standard SCOAP-guided multiple-backtrace choice:
                    // if one input suffices (the target value is the
                    // controlled output of a controlling input), take
                    // the *easiest* input; if all inputs are needed,
                    // take the *hardest* so conflicts surface early.
                    let needs_all = match gate.kind.controlling_value() {
                        Some(c) => value != c, // AND/NAND need all 1s for 1 etc.
                        None => false,
                    };
                    let x_inputs = gate
                        .inputs
                        .iter()
                        .filter(|n| self.values[n.index()] == V5::X);
                    let chosen = if needs_all {
                        x_inputs.max_by_key(|n| self.scoap.cc(**n, value))
                    } else {
                        x_inputs.min_by_key(|n| self.scoap.cc(**n, value))
                    };
                    let fallback = chosen.or_else(|| gate.inputs.first())?;
                    net = *fallback;
                }
            }
        }
    }

    fn cube_from(&self, assignment: &[Trit]) -> TestPattern {
        let num_pis = self.netlist.num_inputs();
        TestPattern {
            pi: assignment[..num_pis].to_vec(),
            state: assignment[num_pis..].to_vec(),
        }
    }
}

fn inject(value: V5, stuck: bool) -> V5 {
    // The faulty machine sees the stuck value; the good machine keeps
    // its own.
    let faulty = Trit::from_bool(stuck);
    V5::from_parts(value.good(), faulty)
}

#[cfg(test)]
mod tests {
    use super::*;
    use scan_netlist::bench;
    use scan_netlist::Netlist;

    fn assert_is_test(netlist: &Netlist, fault: &Fault, cube: &TestPattern) {
        // Verify with the independent bit-parallel simulator: the cube,
        // X-filled, must flip at least one observed value.
        use scan_netlist::ScanView;
        use scan_sim::{FaultSimulator, PatternSet};
        let (pi, state) = cube.x_fill(0);
        let mut pi_iter = pi.iter();
        let mut st_iter = state.iter();
        let patterns = PatternSet::from_bit_stream(
            netlist.num_inputs(),
            netlist.num_dffs(),
            1,
            // Scan order: state bits first, then PIs.
            || {
                if let Some(&b) = st_iter.next() {
                    b
                } else {
                    *pi_iter.next().expect("enough bits")
                }
            },
        );
        let view = ScanView::natural(netlist, true);
        let fsim = FaultSimulator::new(netlist, &view, &patterns).unwrap();
        assert!(
            fsim.is_detected(fault),
            "cube does not detect {}",
            fault.describe(netlist)
        );
    }

    #[test]
    fn generates_tests_for_all_detectable_s27_faults() {
        let n = bench::s27();
        let universe = scan_sim::FaultUniverse::collapsed(&n);
        let mut podem = Podem::new(&n);
        let mut tests = 0;
        let mut untestable = 0;
        for fault in universe.faults() {
            match podem.generate(fault, &PodemLimits::default()) {
                PodemResult::Test(cube) => {
                    assert_is_test(&n, fault, &cube);
                    tests += 1;
                }
                PodemResult::Untestable => untestable += 1,
                PodemResult::Aborted => panic!("s27 fault aborted: {}", fault.describe(&n)),
            }
        }
        // s27 is fully testable for collapsed stuck-at faults.
        assert!(tests > 0);
        assert_eq!(untestable, 0, "s27 has no redundant collapsed faults");
    }

    #[test]
    fn proves_redundant_fault_untestable() {
        // y = OR(a, NOT(a)) is constant 1: y stuck-at-1 is redundant.
        let n = Netlist::from_bench(
            "redundant",
            "INPUT(a)\nOUTPUT(y)\nna = NOT(a)\ny = OR(a, na)\n",
        )
        .unwrap();
        let y = n.find_net("y").unwrap();
        let mut podem = Podem::new(&n);
        assert_eq!(
            podem.generate(&Fault::stem(y, true), &PodemLimits::default()),
            PodemResult::Untestable
        );
        // y stuck-at-0 is testable (any input works).
        assert!(matches!(
            podem.generate(&Fault::stem(y, false), &PodemLimits::default()),
            PodemResult::Test(_)
        ));
    }

    #[test]
    fn pin_faults_get_tests() {
        let n = bench::s27();
        let mut podem = Podem::new(&n);
        let universe = scan_sim::FaultUniverse::all(&n);
        let pin_faults: Vec<&Fault> = universe
            .faults()
            .iter()
            .filter(|f| matches!(f.site, FaultSite::Pin { .. }))
            .collect();
        assert!(!pin_faults.is_empty());
        let mut found = 0;
        for fault in pin_faults {
            if let PodemResult::Test(cube) = podem.generate(fault, &PodemLimits::default()) {
                assert_is_test(&n, fault, &cube);
                found += 1;
            }
        }
        assert!(found > 0);
    }

    #[test]
    fn synthetic_circuit_tests_verify() {
        let n = scan_netlist::generate::benchmark("s298");
        let universe = scan_sim::FaultUniverse::collapsed(&n);
        let mut podem = Podem::new(&n);
        let mut tested = 0;
        for fault in universe.faults().iter().take(120) {
            if let PodemResult::Test(cube) = podem.generate(fault, &PodemLimits::default()) {
                assert_is_test(&n, fault, &cube);
                tested += 1;
            }
        }
        assert!(tested > 30, "only {tested} testable faults found");
    }
}
