//! Satellite: the wire error contract is a public API. Every
//! [`DiagnoseError`], [`CampaignError`], and [`DiagnosisStatus`]
//! variant is pinned here to its stable `{"error":{...}}` shape —
//! code, HTTP status, and round-trip through the repo's own JSON
//! parser. A new variant that silently falls through to `internal`
//! or a renamed code breaks clients; this suite makes that a test
//! failure instead of a production surprise.

use scan_daemon::protocol::ErrorBody;
use scan_diagnosis::{
    BuildPlanError, CampaignError, DiagnoseError, DiagnosisStatus, NoiseConfig, NoiseConfigError,
    NoiseModel,
};
use scan_obs::json::{self, Value};
use scan_sim::PatternShapeError;

/// Parses a rendered NDJSON error line and returns
/// `(id, code, http, message)` from the envelope.
fn decode(line: &str) -> (Option<String>, String, f64, String) {
    let value = json::parse(line).expect("error lines are valid JSON");
    let object = value.as_object().expect("envelope is an object");
    assert_eq!(
        object.get("status").and_then(Value::as_str),
        Some("error"),
        "status field"
    );
    let id = object.get("id").and_then(Value::as_str).map(str::to_owned);
    let error = object
        .get("error")
        .and_then(Value::as_object)
        .expect("error object");
    let code = error
        .get("code")
        .and_then(Value::as_str)
        .expect("code string")
        .to_owned();
    let http = error.get("http").and_then(Value::as_f64).expect("http number");
    let message = error
        .get("message")
        .and_then(Value::as_str)
        .expect("message string")
        .to_owned();
    (id, code, http, message)
}

fn assert_shape(body: &ErrorBody, code: &str, http: u16) {
    assert_eq!(body.code, code);
    assert_eq!(body.http, http);
    let (id, got_code, got_http, message) = decode(&body.render(Some("req-1")));
    assert_eq!(id.as_deref(), Some("req-1"));
    assert_eq!(got_code, code);
    assert!((got_http - f64::from(http)).abs() < 0.5);
    assert!(!message.is_empty(), "{code}: message must not be empty");
}

fn pattern_shape_error() -> PatternShapeError {
    PatternShapeError {
        expected_pis: 4,
        expected_ffs: 3,
        found_pis: 5,
        found_ffs: 3,
    }
}

fn noise_config_error() -> NoiseConfigError {
    let bad = NoiseConfig {
        flip_rate: 2.0,
        ..NoiseConfig::noiseless(1)
    };
    NoiseModel::new(bad).expect_err("rate 2.0 is invalid")
}

#[test]
fn every_diagnose_error_variant_is_pinned() {
    let cases: Vec<(DiagnoseError, &str, u16)> = vec![
        (DiagnoseError::AllSessionsPassed, "all-passed", 422),
        (
            DiagnoseError::ContradictoryHistory { partition: 3 },
            "contradictory",
            422,
        ),
        (
            DiagnoseError::Cancelled {
                completed_partitions: 2,
            },
            "cancelled",
            504,
        ),
    ];
    for (error, code, http) in cases {
        assert_shape(&ErrorBody::from_diagnose_error(&error), code, http);
    }
}

#[test]
fn every_campaign_error_variant_is_pinned() {
    let cases: Vec<(CampaignError, &str, u16)> = vec![
        (
            CampaignError::Patterns(pattern_shape_error()),
            "bad-patterns",
            400,
        ),
        (
            CampaignError::Plan(BuildPlanError::EmptyLayout),
            "bad-plan",
            400,
        ),
        (
            CampaignError::Plan(BuildPlanError::DegenerateConfig),
            "bad-plan",
            400,
        ),
        (
            CampaignError::NoSuchCore {
                core: 9,
                available: 4,
            },
            "no-such-core",
            404,
        ),
        (CampaignError::NoDetectedFaults, "no-detected-faults", 422),
        (CampaignError::NotSocCampaign, "not-soc-campaign", 400),
        (
            CampaignError::Noise(noise_config_error()),
            "bad-noise",
            400,
        ),
    ];
    for (error, code, http) in cases {
        assert_shape(&ErrorBody::from_campaign_error(&error), code, http);
    }
}

#[test]
fn every_diagnosis_status_variant_is_pinned() {
    assert!(
        ErrorBody::from_status(&DiagnosisStatus::Consistent).is_none(),
        "a consistent history is not an error"
    );
    let all_passed =
        ErrorBody::from_status(&DiagnosisStatus::AllPassed).expect("all-passed is an error");
    assert_shape(&all_passed, "all-passed", 422);
    let contradictory = ErrorBody::from_status(&DiagnosisStatus::Contradictory { partition: 1 })
        .expect("contradictory is an error");
    assert_shape(&contradictory, "contradictory", 422);
}

#[test]
fn messages_carry_variant_detail() {
    let body = ErrorBody::from_diagnose_error(&DiagnoseError::ContradictoryHistory {
        partition: 7,
    });
    assert!(body.message.contains('7'), "partition index: {}", body.message);

    let body = ErrorBody::from_campaign_error(&CampaignError::NoSuchCore {
        core: 9,
        available: 4,
    });
    assert!(body.message.contains('9'), "core index: {}", body.message);
    assert!(body.message.contains('4'), "available: {}", body.message);
}

#[test]
fn null_id_and_escaping_round_trip() {
    let body = ErrorBody::bad_request("line 3: bad \"evidence\"\n<tab\t>".to_owned());
    let anonymous = body.render(None);
    let value = json::parse(&anonymous).expect("valid JSON with null id");
    let object = value.as_object().unwrap();
    assert!(matches!(object.get("id"), Some(Value::Null)));

    let (id, code, _, message) = decode(&body.render(Some("id \"quoted\"")));
    assert_eq!(id.as_deref(), Some("id \"quoted\""));
    assert_eq!(code, "bad-request");
    assert_eq!(message, "line 3: bad \"evidence\"\n<tab\t>");
}

#[test]
fn codes_are_stable_kebab_case() {
    // The full closed set of error codes the daemon can emit at the
    // NDJSON line level. Adding a code is fine (append here); renaming
    // or dropping one is a breaking change.
    let known = [
        "bad-request",
        "all-passed",
        "contradictory",
        "cancelled",
        "internal",
        "bad-patterns",
        "bad-plan",
        "no-such-core",
        "no-detected-faults",
        "not-soc-campaign",
        "bad-noise",
        "http",
    ];
    for code in known {
        assert!(
            code.chars().all(|c| c.is_ascii_lowercase() || c == '-'),
            "{code} must be kebab-case"
        );
    }
    let bodies = [
        ErrorBody::bad_request("x".to_owned()),
        ErrorBody::from_diagnose_error(&DiagnoseError::AllSessionsPassed),
        ErrorBody::from_campaign_error(&CampaignError::NoDetectedFaults),
        ErrorBody::from_http_error(&scan_daemon::http::HttpError::BodyTooLarge),
    ];
    for body in &bodies {
        assert!(known.contains(&body.code), "unknown code {}", body.code);
    }
}

#[test]
fn http_errors_map_to_http_code() {
    use scan_daemon::http::HttpError;
    let cases: Vec<(HttpError, u16)> = vec![
        (HttpError::Timeout, 408),
        (HttpError::Malformed("bad request line"), 400),
        (HttpError::DuplicateContentLength, 400),
        (HttpError::RequestLineTooLong, 414),
        (HttpError::HeadTooLarge, 431),
        (HttpError::BodyTooLarge, 413),
        (HttpError::UnsupportedTransferEncoding, 501),
    ];
    for (error, http) in cases {
        let body = ErrorBody::from_http_error(&error);
        assert_shape(&body, "http", http);
    }
}
