//! End-to-end tests against a live `scanbistd` on an ephemeral port:
//! happy-path NDJSON batches, bounded-queue backpressure (429),
//! deadline expiry (504), drain semantics (/readyz flip + 503), and
//! deterministic chaos injection.
//!
//! The daemon publishes readiness through process-global scan-obs
//! state, so every test serializes on [`lock`].

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::Duration;

use scan_daemon::{ChaosConfig, Daemon, DaemonConfig};

fn lock() -> MutexGuard<'static, ()> {
    static GATE: OnceLock<Mutex<()>> = OnceLock::new();
    GATE.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

struct Reply {
    status: u16,
    headers: Vec<(String, String)>,
    body: String,
}

impl Reply {
    fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    fn lines(&self) -> Vec<&str> {
        self.body.lines().filter(|l| !l.trim().is_empty()).collect()
    }
}

fn roundtrip(addr: std::net::SocketAddr, raw: &str) -> Reply {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    stream.write_all(raw.as_bytes()).expect("send");
    let mut buffer = Vec::new();
    stream.read_to_end(&mut buffer).expect("read");
    let text = String::from_utf8_lossy(&buffer).into_owned();
    let (head, body) = text
        .split_once("\r\n\r\n")
        .unwrap_or_else(|| panic!("no header/body split in: {text:?}"));
    let mut lines = head.lines();
    let status_line = lines.next().expect("status line");
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("bad status line: {status_line}"));
    let headers = lines
        .filter_map(|l| l.split_once(':'))
        .map(|(k, v)| (k.trim().to_owned(), v.trim().to_owned()))
        .collect();
    Reply {
        status,
        headers,
        body: body.to_owned(),
    }
}

fn post_diagnose(addr: std::net::SocketAddr, ndjson: &str) -> Reply {
    let raw = format!(
        "POST /diagnose HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{}",
        ndjson.len(),
        ndjson
    );
    roundtrip(addr, &raw)
}

fn get(addr: std::net::SocketAddr, path: &str) -> Reply {
    roundtrip(addr, &format!("GET {path} HTTP/1.1\r\nHost: t\r\n\r\n"))
}

/// One valid request line against the tiny s27 circuit (4 scan
/// cells): partition 0 reports group 1 failing, the rest pass.
fn s27_line(id: &str) -> String {
    format!(
        "{{\"id\":\"{id}\",\"circuit\":\"s27\",\"groups\":2,\"partitions\":3,\
         \"patterns\":16,\"failing\":[[1],[],[]]}}"
    )
}

fn field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let marker = format!("\"{key}\":");
    let rest = &line[line.find(&marker)? + marker.len()..];
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    Some(rest[..end].trim_matches('"'))
}

#[test]
fn happy_path_batch_returns_ranked_candidates() {
    let _gate = lock();
    let daemon = Daemon::start(DaemonConfig::default()).expect("start");
    let addr = daemon.addr();

    let batch = format!("{}\n{}\n", s27_line("a"), s27_line("b"));
    let reply = post_diagnose(addr, &batch);
    assert_eq!(reply.status, 200, "body: {}", reply.body);
    assert_eq!(
        reply.header("content-type"),
        Some("application/x-ndjson"),
        "NDJSON content type"
    );
    assert!(reply.header("x-scanbist-trace").is_some(), "trace id header");
    let lines = reply.lines();
    assert_eq!(lines.len(), 2, "one response line per request line");
    for line in &lines {
        assert_eq!(field(line, "status"), Some("ok"), "line: {line}");
        assert!(line.contains("\"candidates\":["), "line: {line}");
        assert_eq!(field(line, "cells"), Some("4"), "s27 scan view has 4 cells");
    }
    // Request ids round-trip in order.
    assert_eq!(field(lines[0], "id"), Some("a"));
    assert_eq!(field(lines[1], "id"), Some("b"));

    daemon.shutdown();
}

#[test]
fn obs_routes_and_statz_are_mounted() {
    let _gate = lock();
    let daemon = Daemon::start(DaemonConfig::default()).expect("start");
    let addr = daemon.addr();

    assert_eq!(get(addr, "/healthz").status, 200);
    assert_eq!(get(addr, "/readyz").status, 200, "ready while serving");
    assert_eq!(get(addr, "/metrics").status, 200);
    let statz = get(addr, "/statz");
    assert_eq!(statz.status, 200);
    assert!(statz.body.contains("\"queue_depth\""), "{}", statz.body);
    assert!(statz.body.contains("\"queue_capacity\""), "{}", statz.body);
    assert_eq!(get(addr, "/nope").status, 404);

    // Wrong methods on the two POST routes.
    let bad = roundtrip(addr, "PUT /diagnose HTTP/1.1\r\nHost: t\r\n\r\n");
    assert_eq!(bad.status, 405);

    daemon.shutdown();
}

#[test]
fn malformed_lines_get_error_lines_not_connection_drops() {
    let _gate = lock();
    let daemon = Daemon::start(DaemonConfig::default()).expect("start");
    let addr = daemon.addr();

    // Line 1 is valid, line 2 is garbage, line 3 references a circuit
    // that does not exist.
    let batch = format!(
        "{}\nnot json at all\n{{\"id\":\"c\",\"circuit\":\"sNOPE\",\"groups\":2,\
         \"partitions\":3,\"patterns\":16,\"failing\":[[1],[],[]]}}\n",
        s27_line("a")
    );
    let reply = post_diagnose(addr, &batch);
    assert_eq!(reply.status, 200, "batch survives bad lines: {}", reply.body);
    let lines = reply.lines();
    assert_eq!(lines.len(), 3);
    assert_eq!(field(lines[0], "status"), Some("ok"));
    assert_eq!(field(lines[1], "status"), Some("error"));
    assert_eq!(field(lines[2], "status"), Some("error"));
    assert_eq!(field(lines[2], "id"), Some("c"), "id echoes even on error");
    assert_eq!(field(lines[2], "code"), Some("unknown-circuit"));

    // An empty batch is a request-level 400.
    assert_eq!(post_diagnose(addr, "\n\n").status, 400);

    daemon.shutdown();
}

#[test]
fn full_queue_sheds_the_batch_with_429_and_retry_after() {
    let _gate = lock();
    let daemon = Daemon::start(DaemonConfig {
        workers: 1,
        queue_capacity: 2,
        default_deadline_ms: 30_000,
        ..DaemonConfig::default()
    })
    .expect("start");
    let addr = daemon.addr();

    // One batch with more lines than the queue can hold, against a
    // circuit whose first plan build pins the single worker long
    // enough for admission to hit the bound.
    let mut batch = String::new();
    for i in 0..8 {
        batch.push_str(&format!(
            "{{\"id\":\"q{i}\",\"circuit\":\"s953\",\"groups\":8,\"partitions\":6,\
             \"patterns\":64,\"failing\":[[1],[2],[],[],[],[]]}}\n"
        ));
    }
    let reply = post_diagnose(addr, &batch);
    assert_eq!(reply.status, 429, "body: {}", reply.body);
    assert_eq!(reply.header("retry-after"), Some("1"), "shed says when to retry");
    assert!(reply.body.contains("queue-full"), "{}", reply.body);

    // The daemon is still healthy afterwards: a small batch succeeds.
    let ok = post_diagnose(addr, &format!("{}\n", s27_line("after")));
    assert_eq!(ok.status, 200, "body: {}", ok.body);

    daemon.shutdown();
}

#[test]
fn expired_deadline_returns_504_and_cancels_work() {
    let _gate = lock();
    let daemon = Daemon::start(DaemonConfig {
        workers: 1,
        ..DaemonConfig::default()
    })
    .expect("start");
    let addr = daemon.addr();

    // deadline_ms=1 cannot cover a cold s953 plan build.
    let batch = "{\"id\":\"late\",\"circuit\":\"s953\",\"groups\":8,\"partitions\":6,\
                 \"patterns\":64,\"deadline_ms\":1,\"failing\":[[1],[2],[],[],[],[]]}\n";
    let reply = post_diagnose(addr, batch);
    assert_eq!(reply.status, 504, "body: {}", reply.body);
    assert!(reply.body.contains("deadline"), "{}", reply.body);
    assert!(reply.header("x-scanbist-trace").is_some());

    daemon.shutdown();
}

#[test]
fn drain_flips_readyz_sheds_new_work_and_exits_cleanly() {
    let _gate = lock();
    let daemon = Daemon::start(DaemonConfig {
        drain_ms: 2_000,
        ..DaemonConfig::default()
    })
    .expect("start");
    let addr = daemon.addr();
    assert_eq!(get(addr, "/readyz").status, 200);

    let drain = roundtrip(
        addr,
        "POST /admin/drain HTTP/1.1\r\nHost: t\r\nContent-Length: 0\r\n\r\n",
    );
    assert_eq!(drain.status, 200);
    assert!(drain.body.contains("draining"), "{}", drain.body);

    // Readiness goes false immediately; new diagnosis work is shed
    // with a retryable 503.
    assert_eq!(get(addr, "/readyz").status, 503, "draining is not ready");
    let shed = post_diagnose(addr, &format!("{}\n", s27_line("x")));
    assert_eq!(shed.status, 503);
    assert_eq!(shed.header("retry-after"), Some("1"));

    // wait() observes the drain request and joins everything.
    daemon.wait();
}

#[test]
fn chaos_injections_are_labeled_and_contained() {
    let _gate = lock();
    // latency=1.0 and panic=1.0 fire on every request: the response
    // carries the chaos header, and the injected worker panic becomes
    // a line-level `injected-panic` error inside an HTTP 200 — never
    // a crash, never an unlabeled 5xx.
    let chaos = ChaosConfig::parse("seed=11,latency=1.0,latency_ms=1,panic=1.0")
        .expect("valid chaos spec");
    let daemon = Daemon::start(DaemonConfig {
        chaos: Some(chaos),
        ..DaemonConfig::default()
    })
    .expect("start");
    let addr = daemon.addr();

    let batch = format!("{}\n{}\n", s27_line("a"), s27_line("b"));
    let reply = post_diagnose(addr, &batch);
    assert_eq!(reply.status, 200, "body: {}", reply.body);
    let chaos_header = reply.header("x-scanbist-chaos").expect("chaos header");
    assert!(chaos_header.contains("latency"), "{chaos_header}");
    let lines = reply.lines();
    assert_eq!(lines.len(), 2);
    // Exactly one injected panic per batch: the first job dies with a
    // labeled error, the second still completes.
    assert_eq!(field(lines[0], "status"), Some("error"));
    assert_eq!(field(lines[0], "code"), Some("injected-panic"));
    assert_eq!(field(lines[1], "status"), Some("ok"), "line: {}", lines[1]);

    daemon.shutdown();
}
