//! Satellite: table-driven edge-case coverage for the daemon's
//! hardened HTTP/1.1 parser — the request-smuggling and
//! resource-exhaustion shapes a diagnosis daemon on a lab network
//! actually sees.

use scan_daemon::http::{parse_request, HttpError, Limits};

fn parse(raw: &[u8]) -> Result<scan_daemon::http::Request, HttpError> {
    let mut reader = raw;
    parse_request(&mut reader, &Limits::default())
}

struct Case {
    name: &'static str,
    raw: Vec<u8>,
    expect_status: u16,
    expect_message_contains: &'static str,
}

#[test]
fn rejection_table() {
    let long_target = format!(
        "GET /{} HTTP/1.1\r\n\r\n",
        "a".repeat(Limits::default().request_line)
    );
    let many_headers = {
        let mut raw = String::from("GET / HTTP/1.1\r\n");
        for i in 0..(Limits::default().headers + 1) {
            raw.push_str(&format!("X-Filler-{i}: {i}\r\n"));
        }
        raw.push_str("\r\n");
        raw
    };
    let cases = vec![
        Case {
            name: "chunked transfer-encoding",
            raw: b"POST /diagnose HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n".to_vec(),
            expect_status: 501,
            expect_message_contains: "transfer encoding",
        },
        Case {
            name: "any transfer-encoding at all",
            raw: b"POST /diagnose HTTP/1.1\r\nTransfer-Encoding: gzip\r\n\r\n".to_vec(),
            expect_status: 501,
            expect_message_contains: "transfer encoding",
        },
        Case {
            name: "duplicate content-length (smuggling)",
            raw: b"POST /diagnose HTTP/1.1\r\nContent-Length: 4\r\nContent-Length: 5\r\n\r\nabcd"
                .to_vec(),
            expect_status: 400,
            expect_message_contains: "content-length",
        },
        Case {
            name: "CRLF injection in a header value",
            raw: b"GET / HTTP/1.1\r\nX-Trace: abc\rSet-Cookie: pwn\r\n\r\n".to_vec(),
            expect_status: 400,
            expect_message_contains: "header",
        },
        Case {
            name: "control byte in a header value",
            raw: b"GET / HTTP/1.1\r\nX-Trace: a\x0bb\r\n\r\n".to_vec(),
            expect_status: 400,
            expect_message_contains: "header",
        },
        Case {
            name: "oversized request line",
            raw: long_target.into_bytes(),
            expect_status: 414,
            expect_message_contains: "request line",
        },
        Case {
            name: "too many headers",
            raw: many_headers.into_bytes(),
            expect_status: 431,
            expect_message_contains: "head",
        },
        Case {
            name: "oversized declared body",
            raw: format!(
                "POST /diagnose HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
                Limits::default().body + 1
            )
            .into_bytes(),
            expect_status: 413,
            expect_message_contains: "body",
        },
        Case {
            name: "non-numeric content-length",
            raw: b"POST / HTTP/1.1\r\nContent-Length: banana\r\n\r\n".to_vec(),
            expect_status: 400,
            expect_message_contains: "content-length",
        },
        Case {
            name: "negative content-length",
            raw: b"POST / HTTP/1.1\r\nContent-Length: -5\r\n\r\n".to_vec(),
            expect_status: 400,
            expect_message_contains: "content-length",
        },
        Case {
            name: "missing version token",
            raw: b"GET /\r\n\r\n".to_vec(),
            expect_status: 400,
            expect_message_contains: "version",
        },
        Case {
            name: "unsupported version",
            raw: b"GET / HTTP/2.0\r\n\r\n".to_vec(),
            expect_status: 400,
            expect_message_contains: "version",
        },
        Case {
            name: "lowercase method",
            raw: b"get / HTTP/1.1\r\n\r\n".to_vec(),
            expect_status: 400,
            expect_message_contains: "method",
        },
        Case {
            name: "target not starting with slash",
            raw: b"GET http//x HTTP/1.1\r\n\r\n".to_vec(),
            expect_status: 400,
            expect_message_contains: "target",
        },
        Case {
            name: "folded header continuation",
            raw: b"GET / HTTP/1.1\r\nX-A: 1\r\n  continued\r\n\r\n".to_vec(),
            expect_status: 400,
            expect_message_contains: "header",
        },
        Case {
            name: "truncated body",
            raw: b"POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc".to_vec(),
            expect_status: 400,
            expect_message_contains: "body",
        },
    ];
    for case in cases {
        let err = parse(&case.raw).expect_err(case.name);
        assert_eq!(
            err.status(),
            Some(case.expect_status),
            "{}: got {err:?}",
            case.name
        );
        let message = err.message().to_ascii_lowercase();
        assert!(
            message.contains(case.expect_message_contains),
            "{}: message `{message}` lacks `{}`",
            case.name,
            case.expect_message_contains
        );
    }
}

#[test]
fn well_formed_requests_parse() {
    let request =
        parse(b"POST /diagnose?x=1 HTTP/1.1\r\nHost: h\r\nContent-Length: 4\r\n\r\n{\"a\"")
            .expect("valid POST");
    assert_eq!(request.method, "POST");
    assert_eq!(request.path(), "/diagnose");
    assert_eq!(request.target, "/diagnose?x=1");
    assert_eq!(request.header("host"), Some("h"));
    assert_eq!(request.header("Host"), Some("h"));
    assert_eq!(request.body, b"{\"a\"");

    let get = parse(b"GET /healthz HTTP/1.0\r\n\r\n").expect("valid GET, HTTP/1.0 accepted");
    assert_eq!(get.method, "GET");
    assert!(get.body.is_empty());
}

#[test]
fn closed_and_empty_connections_are_silent() {
    assert_eq!(parse(b"").expect_err("empty"), HttpError::Closed);
    assert_eq!(HttpError::Closed.status(), None, "nothing to answer");
}

#[test]
fn body_longer_than_declared_is_rejected() {
    let err = parse(b"POST / HTTP/1.1\r\nContent-Length: 2\r\n\r\nabcd").expect_err("extra bytes");
    assert_eq!(err.status(), Some(400));
}

#[test]
fn custom_limits_are_honored() {
    let limits = Limits {
        body: 8,
        ..Limits::default()
    };
    let raw: &[u8] = b"POST / HTTP/1.1\r\nContent-Length: 9\r\n\r\n123456789";
    let mut reader = raw;
    let err = parse_request(&mut reader, &limits).expect_err("over custom limit");
    assert_eq!(err, HttpError::BodyTooLarge);
}
