//! `scanbistd` — the diagnosis-as-a-service daemon.
//!
//! One accept thread, one handler thread per connection (capped), and
//! a fixed worker pool draining the bounded admission queue. The
//! daemon is engineered to degrade instead of falling over:
//!
//! * **Backpressure** — admission goes through a [`BoundedQueue`];
//!   when it is full the batch is refused with `429` and
//!   `Retry-After`, never buffered.
//! * **Deadlines** — each batch carries a deadline (the minimum of its
//!   lines' `deadline_ms` and the configured default). The connection
//!   thread waits no longer; on expiry it cancels the batch's
//!   [`CancelToken`] (workers stop between partition sessions) and
//!   answers `504`.
//! * **Load shedding** — before refusing work the daemon sheds
//!   *quality*: a job admitted into a queue at or beyond half capacity
//!   runs in degraded mode, dropping the robust retry/voting budget
//!   and answering from the single-pass reported-evidence path.
//! * **Drain** — `POST /admin/drain` (or [`Daemon::shutdown`]) flips
//!   `/readyz` to 503, refuses new diagnosis batches, finishes or
//!   times out in-flight work, closes the queue, joins the workers,
//!   and flushes telemetry.
//!
//! GET routes are shared with the rest of the workspace by mounting
//! [`scan_obs::serve::route`] (`/metrics`, `/metrics.json`, `/alerts.json`,
//! `/healthz`, `/readyz`, dashboards) next to the daemon's own
//! `/statz`. The [`crate::chaos`] layer, when enabled, injects its
//! faults in this module's connection and worker paths.

use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use scan_diagnosis::ranking::SuspectRanking;
use scan_diagnosis::{
    diagnose_reported, diagnose_robust_cancellable, CancelToken, DiagnoseError, NoiseModel,
};
use scan_obs::metrics;

use crate::cache::{CachedPlan, PlanCache};
use crate::chaos::{ChaosConfig, ChaosPlan};
use crate::http::{parse_request, write_response, HttpError, Limits, Request};
use crate::protocol::{scheme_from_label, DiagnoseRequest, ErrorBody, OkLine};
use crate::queue::BoundedQueue;

/// Socket read/write timeout (slow-loris guard).
const IO_TIMEOUT: Duration = Duration::from_secs(2);
/// Maximum request lines per batch.
const MAX_BATCH: usize = 256;

/// Daemon tuning knobs; `Default` is sized for tests and small hosts.
#[derive(Clone, Debug)]
pub struct DaemonConfig {
    /// Bind address (`host:port`; port `0` picks an ephemeral one).
    pub addr: String,
    /// Worker threads; `0` means [`scan_diagnosis::parallel::available_threads`].
    pub workers: usize,
    /// Admission queue capacity (jobs, not batches).
    pub queue_capacity: usize,
    /// Maximum concurrent connections; excess get an immediate `503`.
    pub max_connections: usize,
    /// Default per-batch deadline when no line carries `deadline_ms`.
    pub default_deadline_ms: u64,
    /// How long [`Daemon::shutdown`] waits for in-flight batches.
    pub drain_ms: u64,
    /// Plan-cache capacity (distinct circuit configurations).
    pub cache_capacity: usize,
    /// Fault injection, from `SCANBIST_CHAOS`.
    pub chaos: Option<ChaosConfig>,
}

impl Default for DaemonConfig {
    fn default() -> Self {
        DaemonConfig {
            addr: "127.0.0.1:0".to_owned(),
            workers: 0,
            queue_capacity: 64,
            max_connections: 64,
            default_deadline_ms: 2_000,
            drain_ms: 5_000,
            cache_capacity: 8,
            chaos: None,
        }
    }
}

/// One queued diagnosis job (one NDJSON line of one batch).
struct Job {
    batch: Arc<Batch>,
    index: usize,
    request: DiagnoseRequest,
    /// Shedding tier at admission: `0` full service, `1` degraded.
    tier: u8,
    /// Chaos: panic the worker instead of diagnosing.
    injected_panic: bool,
}

/// Shared state of one in-flight batch.
struct Batch {
    results: Mutex<Vec<Option<String>>>,
    remaining: Mutex<usize>,
    done: Condvar,
    cancel: CancelToken,
    trace: String,
}

impl Batch {
    fn complete(&self, index: usize, line: String) {
        if let Ok(mut results) = self.results.lock() {
            if let Some(slot) = results.get_mut(index) {
                *slot = Some(line);
            }
        }
        if let Ok(mut remaining) = self.remaining.lock() {
            *remaining = remaining.saturating_sub(1);
        }
        self.done.notify_all();
    }
}

struct Inner {
    config: DaemonConfig,
    addr: SocketAddr,
    queue: BoundedQueue<Job>,
    cache: PlanCache,
    draining: AtomicBool,
    accepting: AtomicBool,
    active_conns: AtomicUsize,
    inflight_batches: Mutex<usize>,
    inflight_done: Condvar,
    requests: AtomicU64,
    drain_requested: Mutex<bool>,
    drain_cv: Condvar,
}

impl Inner {
    /// Flags the daemon for drain: `/readyz` flips to 503, new
    /// diagnosis batches are refused, and [`Daemon::wait`] wakes.
    fn request_drain(&self) {
        if !self.draining.swap(true, Ordering::SeqCst) {
            scan_obs::serve::set_ready(false);
            metrics::incr("daemon.drains");
        }
        if let Ok(mut requested) = self.drain_requested.lock() {
            *requested = true;
        }
        self.drain_cv.notify_all();
    }
}

/// A running daemon; dropping it without [`Daemon::shutdown`] leaves
/// threads running for the life of the process.
pub struct Daemon {
    inner: Arc<Inner>,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Daemon {
    /// Binds, spawns the worker pool and the accept thread, and
    /// returns immediately.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn start(config: DaemonConfig) -> std::io::Result<Daemon> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let worker_count = if config.workers == 0 {
            scan_diagnosis::parallel::available_threads()
        } else {
            config.workers
        };
        let inner = Arc::new(Inner {
            queue: BoundedQueue::new(config.queue_capacity),
            cache: PlanCache::new(config.cache_capacity),
            config,
            addr,
            draining: AtomicBool::new(false),
            accepting: AtomicBool::new(true),
            active_conns: AtomicUsize::new(0),
            inflight_batches: Mutex::new(0),
            inflight_done: Condvar::new(),
            requests: AtomicU64::new(0),
            drain_requested: Mutex::new(false),
            drain_cv: Condvar::new(),
        });
        scan_obs::serve::set_ready(true);
        let workers = (0..worker_count.max(1))
            .map(|w| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("scanbistd-worker-{w}"))
                    .spawn(move || worker_loop(&inner))
            })
            .collect::<std::io::Result<Vec<_>>>()?;
        let accept = {
            let inner = Arc::clone(&inner);
            std::thread::Builder::new()
                .name("scanbistd-accept".to_owned())
                .spawn(move || accept_loop(&listener, &inner))?
        };
        Ok(Daemon {
            inner,
            accept: Some(accept),
            workers,
        })
    }

    /// The bound address.
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.inner.addr
    }

    /// Flags the daemon for drain without blocking (same effect as
    /// `POST /admin/drain`).
    pub fn request_drain(&self) {
        self.inner.request_drain();
    }

    /// Blocks until a drain is requested (HTTP or
    /// [`Daemon::request_drain`]), then drains and joins everything.
    pub fn wait(mut self) {
        if let Ok(mut requested) = self.inner.drain_requested.lock() {
            while !*requested {
                match self.inner.drain_cv.wait(requested) {
                    Ok(r) => requested = r,
                    Err(_) => break,
                }
            }
        }
        self.drain_and_join();
    }

    /// Drains immediately: refuse new work, wait (bounded) for
    /// in-flight batches, stop accepting, close the queue, join all
    /// threads, flush telemetry.
    pub fn shutdown(mut self) {
        self.inner.request_drain();
        self.drain_and_join();
    }

    fn drain_and_join(&mut self) {
        let inner = &self.inner;
        // 1. Bounded wait for in-flight batches to finish.
        let deadline = Instant::now() + Duration::from_millis(inner.config.drain_ms);
        if let Ok(mut inflight) = inner.inflight_batches.lock() {
            while *inflight > 0 {
                let now = Instant::now();
                if now >= deadline {
                    metrics::incr("daemon.drain_timeouts");
                    break;
                }
                match inner.inflight_done.wait_timeout(inflight, deadline - now) {
                    Ok((g, _)) => inflight = g,
                    Err(_) => break,
                }
            }
        }
        // 2. Stop accepting; nudge the blocked accept() with one last
        //    connection so the thread observes the flag.
        inner.accepting.store(false, Ordering::SeqCst);
        if let Ok(nudge) = TcpStream::connect(inner.addr) {
            drop(nudge);
        }
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        // 3. Close the queue: queued jobs drain, then workers exit.
        //    Any batch still waiting on those jobs is cancelled so its
        //    connection answers promptly instead of riding its full
        //    deadline.
        inner.queue.close();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        scan_obs::registry::flush_thread();
    }
}

fn accept_loop(listener: &TcpListener, inner: &Arc<Inner>) {
    for stream in listener.incoming() {
        if !inner.accepting.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        if inner.active_conns.load(Ordering::SeqCst) >= inner.config.max_connections {
            metrics::incr("daemon.conns_refused");
            refuse_connection(stream);
            continue;
        }
        inner.active_conns.fetch_add(1, Ordering::SeqCst);
        let conn_inner = Arc::clone(inner);
        let spawned = std::thread::Builder::new()
            .name("scanbistd-conn".to_owned())
            .spawn(move || {
                handle_connection(&conn_inner, stream);
                conn_inner.active_conns.fetch_sub(1, Ordering::SeqCst);
                scan_obs::registry::flush_thread();
            });
        if spawned.is_err() {
            inner.active_conns.fetch_sub(1, Ordering::SeqCst);
        }
    }
    scan_obs::registry::flush_thread();
}

fn refuse_connection(mut stream: TcpStream) {
    let _ = stream.set_write_timeout(Some(IO_TIMEOUT));
    let body = ErrorBody {
        code: "overloaded",
        http: 503,
        message: "connection limit reached".to_owned(),
    }
    .render(None);
    let _ = write_response(
        &mut stream,
        503,
        "application/json",
        body.as_bytes(),
        &[("Retry-After", "1".to_owned())],
    );
}

fn handle_connection(inner: &Arc<Inner>, mut stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(IO_TIMEOUT));
    let _ = stream.set_write_timeout(Some(IO_TIMEOUT));
    let request_index = inner.requests.fetch_add(1, Ordering::SeqCst);
    let chaos = inner
        .config
        .chaos
        .map(|c| c.plan(request_index))
        .unwrap_or_default();
    if chaos.pre_read_delay_ms > 0 {
        metrics::incr("daemon.chaos.slow_reads");
        std::thread::sleep(Duration::from_millis(chaos.pre_read_delay_ms));
    }
    let request = {
        let mut reader = &stream;
        parse_request(&mut reader, &Limits::default())
    };
    let request = match request {
        Ok(request) => request,
        Err(HttpError::Closed) => return,
        Err(e) => {
            metrics::incr("daemon.http_errors");
            let status = e.status().unwrap_or(400);
            let body = ErrorBody::from_http_error(&e).render(None);
            let _ = write_response(&mut stream, status, "application/json", body.as_bytes(), &[]);
            return;
        }
    };
    metrics::incr("daemon.requests");
    match (request.method.as_str(), request.path()) {
        ("GET" | "HEAD", "/statz") => {
            let body = statz(inner);
            let _ = write_response(&mut stream, 200, "application/json", body.as_bytes(), &[]);
        }
        ("GET" | "HEAD", path) => {
            let (status, content_type, body) = scan_obs::serve::route(path);
            let _ = write_response(&mut stream, status, content_type, body.as_bytes(), &[]);
        }
        ("POST", "/admin/drain") => {
            inner.request_drain();
            let _ = write_response(
                &mut stream,
                200,
                "application/json",
                b"{\"status\":\"draining\"}",
                &[],
            );
        }
        ("POST", "/diagnose") => {
            handle_diagnose(inner, &mut stream, request, &chaos, request_index);
        }
        (_, "/diagnose" | "/admin/drain") => {
            let body = ErrorBody {
                code: "method-not-allowed",
                http: 405,
                message: "use POST".to_owned(),
            }
            .render(None);
            let _ = write_response(&mut stream, 405, "application/json", body.as_bytes(), &[]);
        }
        _ => {
            let body = ErrorBody {
                code: "not-found",
                http: 404,
                message: format!("no route for {}", request.path()),
            }
            .render(None);
            let _ = write_response(&mut stream, 404, "application/json", body.as_bytes(), &[]);
        }
    }
}

/// The daemon's own status endpoint.
fn statz(inner: &Inner) -> String {
    format!(
        "{{\"queue_depth\":{},\"queue_capacity\":{},\"active_connections\":{},\"draining\":{},\"cached_plans\":{}}}",
        inner.queue.depth(),
        inner.queue.capacity(),
        inner.active_conns.load(Ordering::SeqCst),
        inner.draining.load(Ordering::SeqCst),
        inner.cache.len(),
    )
}

/// Tracks a batch through `inner.inflight_batches` for drain.
struct InflightGuard<'a>(&'a Inner);

impl<'a> InflightGuard<'a> {
    fn enter(inner: &'a Inner) -> Self {
        if let Ok(mut inflight) = inner.inflight_batches.lock() {
            *inflight += 1;
        }
        InflightGuard(inner)
    }
}

impl Drop for InflightGuard<'_> {
    fn drop(&mut self) {
        if let Ok(mut inflight) = self.0.inflight_batches.lock() {
            *inflight = inflight.saturating_sub(1);
        }
        self.0.inflight_done.notify_all();
    }
}

#[allow(clippy::too_many_lines)]
fn handle_diagnose(
    inner: &Arc<Inner>,
    stream: &mut TcpStream,
    request: Request,
    chaos: &ChaosPlan,
    request_index: u64,
) {
    if inner.draining.load(Ordering::SeqCst) {
        metrics::incr("daemon.shed_draining");
        let body = ErrorBody {
            code: "draining",
            http: 503,
            message: "daemon is draining; retry against another instance".to_owned(),
        }
        .render(None);
        let _ = write_response(
            stream,
            503,
            "application/json",
            body.as_bytes(),
            &[("Retry-After", "1".to_owned())],
        );
        return;
    }
    let mut body = request.body;
    if chaos.corrupt_body {
        metrics::incr("daemon.chaos.corrupted");
        if let Some(config) = &inner.config.chaos {
            config.corrupt(request_index, &mut body);
        }
    }
    let text = String::from_utf8_lossy(&body);
    let lines: Vec<&str> = text
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty())
        .collect();
    if lines.is_empty() {
        let body = ErrorBody::bad_request("empty batch: no NDJSON lines".to_owned()).render(None);
        let _ = write_response(stream, 400, "application/json", body.as_bytes(), &[]);
        return;
    }
    if lines.len() > MAX_BATCH {
        let body = ErrorBody {
            code: "batch-too-large",
            http: 413,
            message: format!("{} lines; the batch limit is {MAX_BATCH}", lines.len()),
        }
        .render(None);
        let _ = write_response(stream, 413, "application/json", body.as_bytes(), &[]);
        return;
    }
    let _inflight = InflightGuard::enter(inner);
    metrics::incr("daemon.batches");
    metrics::add("daemon.lines", lines.len() as u64);

    // Parse every line up front; parse failures become response lines
    // without consuming queue slots.
    let batch = Arc::new(Batch {
        results: Mutex::new(vec![None; lines.len()]),
        remaining: Mutex::new(0),
        done: Condvar::new(),
        cancel: CancelToken::new(),
        trace: scan_obs::context::generate_trace_id(),
    });
    let mut jobs = Vec::new();
    let mut min_deadline_ms = inner.config.default_deadline_ms;
    for (index, line) in lines.iter().enumerate() {
        match DiagnoseRequest::parse_line(line) {
            Ok(parsed) => {
                if let Some(deadline) = parsed.deadline_ms {
                    min_deadline_ms = min_deadline_ms.min(deadline.max(1));
                }
                jobs.push((index, parsed));
            }
            Err((id, error)) => {
                metrics::incr("daemon.parse_errors");
                batch.complete_parse_error(index, &error, id.as_deref());
            }
        }
    }
    if let Ok(mut remaining) = batch.remaining.lock() {
        *remaining = jobs.len();
    }

    // Admission: push every job or shed the whole batch with 429.
    let mut peak_depth = 0usize;
    let capacity = inner.queue.capacity();
    let panic_used = std::sync::atomic::AtomicBool::new(false);
    for (index, parsed) in jobs {
        let depth_before = inner.queue.depth();
        let tier = u8::from((depth_before + 1) * 2 >= capacity);
        // Inject at most one worker panic per batch, on its first job.
        let injected_panic = chaos.panic_worker && !panic_used.swap(true, Ordering::SeqCst);
        let job = Job {
            batch: Arc::clone(&batch),
            index,
            request: parsed,
            tier,
            injected_panic,
        };
        match inner.queue.try_push(job) {
            Ok(depth) => {
                peak_depth = peak_depth.max(depth);
                metrics::record_pow2("daemon.queue_depth", depth as u64);
            }
            Err(_rejected) => {
                metrics::incr("daemon.shed_429");
                metrics::record_pow2("daemon.queue_depth", capacity as u64);
                // Already-admitted jobs of this batch are wasted work:
                // cancel so workers skip them between partitions.
                batch.cancel.cancel();
                let body = ErrorBody {
                    code: "queue-full",
                    http: 429,
                    message: format!("admission queue full ({capacity} jobs); retry later"),
                }
                .render(None);
                let _ = write_response(
                    stream,
                    429,
                    "application/json",
                    body.as_bytes(),
                    &[
                        ("Retry-After", "1".to_owned()),
                        ("X-Scanbist-Trace", batch.trace.clone()),
                    ],
                );
                return;
            }
        }
    }

    // Wait for the workers, bounded by the batch deadline.
    let deadline = Instant::now() + Duration::from_millis(min_deadline_ms.max(1));
    let mut timed_out = false;
    if let Ok(mut remaining) = batch.remaining.lock() {
        while *remaining > 0 {
            let now = Instant::now();
            if now >= deadline {
                timed_out = true;
                break;
            }
            match batch.done.wait_timeout(remaining, deadline - now) {
                Ok((g, _)) => remaining = g,
                Err(_) => break,
            }
        }
    }
    if timed_out {
        batch.cancel.cancel();
        metrics::incr("daemon.deadline_504");
        let body = ErrorBody {
            code: "deadline",
            http: 504,
            message: format!("batch deadline of {min_deadline_ms} ms expired"),
        }
        .render(None);
        let _ = write_response(
            stream,
            504,
            "application/json",
            body.as_bytes(),
            &[("X-Scanbist-Trace", batch.trace.clone())],
        );
        return;
    }

    let mut response = String::new();
    if let Ok(results) = batch.results.lock() {
        for line in results.iter() {
            match line {
                Some(line) => response.push_str(line),
                None => response.push_str(
                    &ErrorBody {
                        code: "internal",
                        http: 500,
                        message: "result missing".to_owned(),
                    }
                    .render(None),
                ),
            }
            response.push('\n');
        }
    }
    if chaos.extra_latency_ms > 0 {
        metrics::incr("daemon.chaos.delays");
        std::thread::sleep(Duration::from_millis(chaos.extra_latency_ms));
    }
    let mut headers = vec![
        ("X-Scanbist-Trace", batch.trace.clone()),
        ("X-Queue-Depth", peak_depth.to_string()),
        ("X-Queue-Capacity", capacity.to_string()),
    ];
    if chaos.any() {
        headers.push(("X-Scanbist-Chaos", chaos.labels()));
    }
    if chaos.truncate_response {
        metrics::incr("daemon.chaos.truncated");
        truncate_write(stream, response.as_bytes(), &headers);
        return;
    }
    let _ = write_response(
        stream,
        200,
        "application/x-ndjson",
        response.as_bytes(),
        &headers,
    );
}

impl Batch {
    fn complete_parse_error(&self, index: usize, error: &ErrorBody, id: Option<&str>) {
        if let Ok(mut results) = self.results.lock() {
            if let Some(slot) = results.get_mut(index) {
                *slot = Some(error.render(id));
            }
        }
    }
}

/// Chaos: write full headers but only half the body, then hang up.
fn truncate_write(stream: &mut TcpStream, body: &[u8], headers: &[(&str, String)]) {
    let mut head = format!(
        "HTTP/1.1 200 OK\r\nContent-Type: application/x-ndjson\r\nContent-Length: {}\r\nConnection: close\r\n",
        body.len()
    );
    for (name, value) in headers {
        head.push_str(&format!("{name}: {value}\r\n"));
    }
    head.push_str("\r\n");
    let _ = stream.write_all(head.as_bytes());
    // lint:allow(L012): `len / 2 <= len`, the slice is always in range
    let _ = stream.write_all(&body[..body.len() / 2]);
    let _ = stream.flush();
}

fn worker_loop(inner: &Arc<Inner>) {
    while let Some(job) = inner.queue.pop() {
        let injected = job.injected_panic;
        let id = job.request.id.clone();
        let line =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| execute_job(inner, &job)))
                .unwrap_or_else(|_| {
                    let code = if injected { "injected-panic" } else { "internal" };
                    if !injected {
                        metrics::incr("daemon.worker_panics");
                    }
                    ErrorBody {
                        code,
                        http: 500,
                        message: "diagnosis worker panicked".to_owned(),
                    }
                    .render(Some(&id))
                });
        job.batch.complete(job.index, line);
    }
    scan_obs::registry::flush_thread();
}

fn execute_job(inner: &Arc<Inner>, job: &Job) -> String {
    if job.injected_panic {
        metrics::incr("daemon.chaos.panics");
        panic!("chaos: injected worker panic");
    }
    let request = &job.request;
    let cancel = &job.batch.cancel;
    if cancel.is_cancelled() {
        metrics::incr("daemon.jobs_skipped");
        return ErrorBody::from_diagnose_error(&DiagnoseError::Cancelled {
            completed_partitions: 0,
        })
        .render(Some(&request.id));
    }
    let started = Instant::now();
    let built = inner.cache.get_or_build(&request.cache_key(), || build_plan(request));
    let cached = match built {
        Ok(cached) => cached,
        Err(error) => return error.render(Some(&request.id)),
    };
    let outcome = request.outcome();
    let degraded_by_load = job.tier >= 1;
    let robust_replay = request
        .robust
        .filter(|r| !degraded_by_load && (r.flip > 0.0 || r.dropout > 0.0));
    let result = match robust_replay {
        Some(params) => {
            let noise = match NoiseModel::new(params.noise_config()) {
                Ok(noise) => noise,
                Err(e) => {
                    return ErrorBody {
                        code: "bad-noise",
                        http: 400,
                        message: e.to_string(),
                    }
                    .render(Some(&request.id));
                }
            };
            diagnose_robust_cancellable(
                &cached.plan,
                &outcome,
                &noise,
                &params.policy(),
                params.seed,
                cancel,
            )
        }
        None => diagnose_reported(&cached.plan, &outcome, cancel),
    };
    let mode = if request.robust.is_some() && degraded_by_load {
        metrics::incr("daemon.degraded");
        "degraded"
    } else {
        "full"
    };
    match result {
        Ok(diagnosis) => {
            let rank_outcome = diagnosis.verdicts.to_outcome();
            let ranking = SuspectRanking::compute(&cached.plan, &rank_outcome, &diagnosis.candidates);
            let top: Vec<(usize, f64)> = ranking
                .suspects()
                .iter()
                .take(request.top)
                .copied()
                .collect();
            let reason = diagnosis
                .inconclusive
                .map(scan_diagnosis::InconclusiveReason::label);
            #[allow(clippy::cast_possible_truncation)]
            let elapsed_us = started.elapsed().as_micros() as u64;
            metrics::record_pow2("daemon.job_us", elapsed_us);
            OkLine {
                id: &request.id,
                mode,
                confidence: diagnosis.confidence.label(),
                reason,
                candidates: &top,
                cells: cached.cells,
                elapsed_us,
                trace: &job.batch.trace,
            }
            .render()
        }
        Err(error) => {
            metrics::incr("daemon.job_errors");
            ErrorBody::from_diagnose_error(&error).render(Some(&request.id))
        }
    }
}

/// Builds a plan for the cache: resolve the circuit, derive the scan
/// view, synthesize partitions.
fn build_plan(request: &DiagnoseRequest) -> Result<CachedPlan, ErrorBody> {
    let known = request.circuit == "s27"
        || scan_netlist::generate::profile(&request.circuit).is_some();
    if !known {
        return Err(ErrorBody {
            code: "unknown-circuit",
            http: 404,
            message: format!("unknown circuit `{}`", request.circuit),
        });
    }
    let netlist = scan_netlist::generate::benchmark(&request.circuit);
    let view = scan_netlist::ScanView::natural(&netlist, true);
    let cells = view.len();
    let scheme = scheme_from_label(request.scheme).map_err(ErrorBody::bad_request)?;
    let plan = scan_diagnosis::DiagnosisPlan::new(
        scan_diagnosis::ChainLayout::single_chain(cells),
        request.patterns,
        &scan_diagnosis::BistConfig::new(request.groups, request.partitions, scheme),
    )
    .map_err(|e| ErrorBody {
        code: "bad-plan",
        http: 400,
        message: e.to_string(),
    })?;
    Ok(CachedPlan { plan, cells })
}
