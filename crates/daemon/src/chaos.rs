//! `SCANBIST_CHAOS` — deterministic fault injection.
//!
//! Robustness claims need an adversary. When the `SCANBIST_CHAOS`
//! environment variable is set, the daemon injects failures into its
//! own request path: slow reads, truncated response bodies, corrupted
//! (malformed-NDJSON) request bodies, worker panics, and artificial
//! latency. Every draw is keyed `(seed, request index)` through
//! [`scan_rng::derive`], so a chaos run is **bit-reproducible**: the
//! same seed and arrival order injects the same faults into the same
//! requests.
//!
//! Spec grammar (comma-separated `key=value`):
//!
//! ```text
//! SCANBIST_CHAOS="seed=7,slow_read=0.05,slow_read_ms=40,malformed=0.02,panic=0.02,latency=0.1,latency_ms=25,truncate=0.02"
//! ```
//!
//! Probabilities are in `[0,1]`; unknown keys are errors (a typo that
//! silently disables chaos would invalidate a robustness run). Every
//! injected fault is surfaced to the client via the
//! `X-Scanbist-Chaos` response header (and counted under
//! `daemon.chaos.*`), so load generators can separate injected
//! failures from real ones.

use scan_rng::ScanRng;

/// Parsed chaos configuration; all-zero rates mean disabled.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct ChaosConfig {
    /// Base seed for per-request derivation.
    pub seed: u64,
    /// Probability of stalling before reading the request.
    pub slow_read: f64,
    /// Stall duration for `slow_read` hits.
    pub slow_read_ms: u64,
    /// Probability of corrupting the request body before NDJSON
    /// parsing (malformed-input injection).
    pub malformed: f64,
    /// Probability of panicking the diagnosis worker mid-job.
    pub panic: f64,
    /// Probability of adding artificial latency before responding.
    pub latency: f64,
    /// Added latency for `latency` hits.
    pub latency_ms: u64,
    /// Probability of truncating the response body mid-write.
    pub truncate: f64,
}

/// The concrete faults drawn for one request.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ChaosPlan {
    /// Stall this long before reading the request.
    pub pre_read_delay_ms: u64,
    /// Corrupt the request body before parsing.
    pub corrupt_body: bool,
    /// Panic the worker handling this request's jobs.
    pub panic_worker: bool,
    /// Sleep this long before writing the response.
    pub extra_latency_ms: u64,
    /// Cut the response body off halfway and close the socket.
    pub truncate_response: bool,
}

impl ChaosPlan {
    /// Whether any fault fires for this request.
    #[must_use]
    pub fn any(&self) -> bool {
        self.pre_read_delay_ms > 0
            || self.corrupt_body
            || self.panic_worker
            || self.extra_latency_ms > 0
            || self.truncate_response
    }

    /// Stable comma-separated labels of the injected faults, for the
    /// `X-Scanbist-Chaos` header.
    #[must_use]
    pub fn labels(&self) -> String {
        let mut labels: Vec<&'static str> = Vec::new();
        if self.pre_read_delay_ms > 0 {
            labels.push("slow-read");
        }
        if self.corrupt_body {
            labels.push("malformed");
        }
        if self.panic_worker {
            labels.push("panic");
        }
        if self.extra_latency_ms > 0 {
            labels.push("latency");
        }
        if self.truncate_response {
            labels.push("truncate");
        }
        labels.join(",")
    }
}

impl ChaosConfig {
    /// Whether any injection can ever fire.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.slow_read > 0.0
            || self.malformed > 0.0
            || self.panic > 0.0
            || self.latency > 0.0
            || self.truncate > 0.0
    }

    /// Parses a `key=value,...` spec.
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending key or value; unknown
    /// keys and out-of-range probabilities are rejected.
    pub fn parse(spec: &str) -> Result<ChaosConfig, String> {
        let mut config = ChaosConfig {
            slow_read_ms: 50,
            latency_ms: 25,
            ..ChaosConfig::default()
        };
        for part in spec.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| format!("chaos key `{part}` missing `=value`"))?;
            let prob = |v: &str| -> Result<f64, String> {
                let p: f64 = v
                    .parse()
                    .map_err(|_| format!("chaos `{key}` is not a number: `{v}`"))?;
                if !(0.0..=1.0).contains(&p) {
                    return Err(format!("chaos `{key}` must be in [0,1], got {p}"));
                }
                Ok(p)
            };
            let millis = |v: &str| -> Result<u64, String> {
                v.parse()
                    .map_err(|_| format!("chaos `{key}` is not an integer: `{v}`"))
            };
            match key.trim() {
                "seed" => config.seed = millis(value)?,
                "slow_read" => config.slow_read = prob(value)?,
                "slow_read_ms" => config.slow_read_ms = millis(value)?,
                "malformed" => config.malformed = prob(value)?,
                "panic" => config.panic = prob(value)?,
                "latency" => config.latency = prob(value)?,
                "latency_ms" => config.latency_ms = millis(value)?,
                "truncate" => config.truncate = prob(value)?,
                other => return Err(format!("unknown chaos key `{other}`")),
            }
        }
        Ok(config)
    }

    /// Reads `SCANBIST_CHAOS`; `Ok(None)` when unset or empty.
    ///
    /// # Errors
    ///
    /// Propagates [`ChaosConfig::parse`] errors for a set-but-invalid
    /// spec.
    pub fn from_env() -> Result<Option<ChaosConfig>, String> {
        match std::env::var("SCANBIST_CHAOS") {
            Ok(spec) if !spec.trim().is_empty() => Self::parse(&spec).map(Some),
            _ => Ok(None),
        }
    }

    /// Draws the fault plan for request number `request`. Draw order
    /// is fixed (slow-read, malformed, panic, latency, truncate), so a
    /// given `(seed, request)` always yields the same plan regardless
    /// of which rates are enabled elsewhere in the config.
    #[must_use]
    pub fn plan(&self, request: u64) -> ChaosPlan {
        if !self.is_enabled() {
            return ChaosPlan::default();
        }
        let mut rng = ScanRng::seed_from_u64(scan_rng::derive(self.seed, request));
        let mut plan = ChaosPlan::default();
        if rng.gen_bool(self.slow_read) {
            plan.pre_read_delay_ms = self.slow_read_ms;
        }
        plan.corrupt_body = rng.gen_bool(self.malformed);
        plan.panic_worker = rng.gen_bool(self.panic);
        if rng.gen_bool(self.latency) {
            plan.extra_latency_ms = self.latency_ms;
        }
        plan.truncate_response = rng.gen_bool(self.truncate);
        plan
    }

    /// Deterministically corrupts a request body in place: flips a few
    /// bytes and chops the tail, keyed like [`plan`](Self::plan) on the
    /// same request index (separate derivation lane).
    pub fn corrupt(&self, request: u64, body: &mut Vec<u8>) {
        if body.is_empty() {
            return;
        }
        let mut rng = ScanRng::seed_from_u64(scan_rng::derive(self.seed ^ 0xC0DE_D00D, request));
        // The first flip always hits byte 0 (the opening `{`), so the
        // body is guaranteed malformed even if later random flips land
        // on the same byte twice and cancel out.
        body[0] ^= 0x5A;
        let flips = rng.gen_range(0, 4);
        for _ in 0..flips {
            let at = rng.gen_range(0, body.len());
            // lint:allow(L012): `at < body.len()` by construction; nonempty guarded above
            body[at] ^= 0x5A;
        }
        if rng.gen_bool(0.5) && body.len() > 2 {
            let keep = rng.gen_range(1, body.len());
            body.truncate(keep);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_full_spec() {
        let c = ChaosConfig::parse(
            "seed=7,slow_read=0.5,slow_read_ms=40,malformed=0.25,panic=0.1,latency=1.0,latency_ms=5,truncate=0.125",
        )
        .expect("valid spec");
        assert_eq!(c.seed, 7);
        assert!((c.slow_read - 0.5).abs() < f64::EPSILON);
        assert_eq!(c.slow_read_ms, 40);
        assert!((c.latency - 1.0).abs() < f64::EPSILON);
        assert!(c.is_enabled());
    }

    #[test]
    fn parse_rejects_unknown_keys_and_bad_rates() {
        assert!(ChaosConfig::parse("sloow_read=0.5").is_err());
        assert!(ChaosConfig::parse("slow_read=1.5").is_err());
        assert!(ChaosConfig::parse("slow_read").is_err());
        assert!(ChaosConfig::parse("seed=x").is_err());
    }

    #[test]
    fn empty_spec_is_disabled() {
        let c = ChaosConfig::parse("").expect("empty ok");
        assert!(!c.is_enabled());
        assert_eq!(c.plan(42), ChaosPlan::default());
    }

    #[test]
    fn plans_are_deterministic_per_request() {
        let c = ChaosConfig::parse("seed=3,panic=0.3,latency=0.3,malformed=0.3").unwrap();
        for request in 0..64u64 {
            assert_eq!(c.plan(request), c.plan(request), "request {request}");
        }
        // And not all identical: at 30% rates some requests draw faults
        // and some do not.
        let hits = (0..64u64).filter(|&r| c.plan(r).any()).count();
        assert!(hits > 0 && hits < 64, "hits={hits}");
    }

    #[test]
    fn corruption_changes_bodies_deterministically() {
        let c = ChaosConfig::parse("seed=9,malformed=1.0").unwrap();
        let original = b"{\"id\":\"r1\",\"circuit\":\"s27\"}".to_vec();
        let mut a = original.clone();
        let mut b = original.clone();
        c.corrupt(5, &mut a);
        c.corrupt(5, &mut b);
        assert_eq!(a, b, "same request corrupts identically");
        assert_ne!(a, original, "corruption must change the body");
    }

    #[test]
    fn labels_name_injected_faults() {
        let plan = ChaosPlan {
            pre_read_delay_ms: 10,
            corrupt_body: false,
            panic_worker: true,
            extra_latency_ms: 0,
            truncate_response: true,
        };
        assert_eq!(plan.labels(), "slow-read,panic,truncate");
        assert!(plan.any());
        assert!(!ChaosPlan::default().any());
    }
}
