//! The NDJSON diagnosis protocol.
//!
//! One request per line, one response line per request, in order:
//!
//! ```text
//! {"id":"r1","circuit":"s953","groups":8,"partitions":6,"patterns":64,
//!  "scheme":"two-step","signatures":[[..],[..]],"deadline_ms":500,
//!  "robust":{"flip":0.02,"seed":7},"top":16}
//! ```
//!
//! Evidence is either `"signatures"` (`u64` MISR error signature per
//! group per partition; nonzero = failed) or `"failing"` (failing
//! group indices per partition) — exactly one of the two. Responses:
//!
//! ```text
//! {"id":"r1","status":"ok","mode":"full","confidence":"exact",
//!  "candidates":[[17,1.0]],"cells":125,"elapsed_us":412,"trace":"…"}
//! {"id":"r2","status":"error","error":{"code":"contradictory","http":422,
//!  "message":"…"}}
//! ```
//!
//! Every error variant the engine can raise maps to one stable
//! `(code, http)` pair — pinned by round-trip tests so daemon clients
//! can match on codes without fear of drift.

use scan_diagnosis::{
    CampaignError, DiagnoseError, DiagnosisStatus, NoiseConfig, RobustPolicy, SessionOutcome,
};

use crate::http::HttpError;

/// Escapes a string for embedding in a JSON string literal.
#[must_use]
pub fn json_escape(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for c in text.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

/// The stable wire shape of a failure: a machine-matchable `code`, the
/// HTTP status the same condition maps to when it is request-level,
/// and a human message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ErrorBody {
    /// Stable machine-readable code (kebab-case, never renamed).
    pub code: &'static str,
    /// The HTTP status this condition carries at the request level.
    pub http: u16,
    /// Human-readable detail; not stable, not for matching.
    pub message: String,
}

impl ErrorBody {
    /// A malformed-request error (bad JSON, bad field, bad shape).
    #[must_use]
    pub fn bad_request(message: String) -> ErrorBody {
        ErrorBody {
            code: "bad-request",
            http: 400,
            message,
        }
    }

    /// Maps a [`DiagnoseError`] to its pinned wire shape.
    #[must_use]
    pub fn from_diagnose_error(e: &DiagnoseError) -> ErrorBody {
        let (code, http) = match e {
            DiagnoseError::AllSessionsPassed => ("all-passed", 422),
            DiagnoseError::ContradictoryHistory { .. } => ("contradictory", 422),
            DiagnoseError::Cancelled { .. } => ("cancelled", 504),
            // `DiagnoseError` is non_exhaustive: future variants must
            // not silently reuse an existing code.
            _ => ("internal", 500),
        };
        ErrorBody {
            code,
            http,
            message: e.to_string(),
        }
    }

    /// Maps a [`CampaignError`] to its pinned wire shape.
    #[must_use]
    pub fn from_campaign_error(e: &CampaignError) -> ErrorBody {
        let (code, http) = match e {
            CampaignError::Patterns(_) => ("bad-patterns", 400),
            CampaignError::Plan(_) => ("bad-plan", 400),
            CampaignError::NoSuchCore { .. } => ("no-such-core", 404),
            CampaignError::NoDetectedFaults => ("no-detected-faults", 422),
            CampaignError::NotSocCampaign => ("not-soc-campaign", 400),
            CampaignError::Noise(_) => ("bad-noise", 400),
            // `CampaignError` is non_exhaustive: future variants must
            // not silently reuse an existing code.
            _ => ("internal", 500),
        };
        ErrorBody {
            code,
            http,
            message: e.to_string(),
        }
    }

    /// Maps a checked [`DiagnosisStatus`] to a wire shape; `None` for
    /// [`DiagnosisStatus::Consistent`] (which is not an error).
    #[must_use]
    pub fn from_status(status: &DiagnosisStatus) -> Option<ErrorBody> {
        match status {
            DiagnosisStatus::Consistent => None,
            DiagnosisStatus::AllPassed => Some(ErrorBody {
                code: "all-passed",
                http: 422,
                message: "every BIST session passed; nothing to diagnose".to_owned(),
            }),
            DiagnosisStatus::Contradictory { partition } => Some(ErrorBody {
                code: "contradictory",
                http: 422,
                message: format!(
                    "session history contradicts itself at partition {partition}"
                ),
            }),
        }
    }

    /// Maps an [`HttpError`] to a wire shape (connection-level codes).
    #[must_use]
    pub fn from_http_error(e: &HttpError) -> ErrorBody {
        ErrorBody {
            code: "http",
            http: e.status().unwrap_or(400),
            message: e.message().to_owned(),
        }
    }

    /// Renders the response line: `{"id":…,"status":"error","error":{…}}`.
    #[must_use]
    pub fn render(&self, id: Option<&str>) -> String {
        let id = match id {
            Some(id) => format!("\"{}\"", json_escape(id)),
            None => "null".to_owned(),
        };
        format!(
            "{{\"id\":{id},\"status\":\"error\",\"error\":{{\"code\":\"{}\",\"http\":{},\"message\":\"{}\"}}}}",
            self.code,
            self.http,
            json_escape(&self.message)
        )
    }
}

/// Failing-session evidence, in one of the two accepted encodings.
#[derive(Clone, Debug, PartialEq)]
pub enum Evidence {
    /// `signatures[partition][group]` — MISR error signatures, zero
    /// for passing sessions.
    Signatures(Vec<Vec<u64>>),
    /// `failing[partition]` — indices of the failing groups.
    Failing(Vec<Vec<usize>>),
}

/// Requested fault-tolerance replay parameters.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RobustParams {
    /// Verdict flip probability.
    pub flip: f64,
    /// Session dropout probability.
    pub dropout: f64,
    /// Noise stream seed.
    pub seed: u64,
    /// Maximum retry rounds.
    pub retries: usize,
    /// Ballots per retried session.
    pub votes: usize,
}

impl RobustParams {
    /// The engine-facing noise configuration.
    #[must_use]
    pub fn noise_config(&self) -> NoiseConfig {
        NoiseConfig {
            seed: self.seed,
            flip_rate: self.flip,
            dropout_rate: self.dropout,
            ..NoiseConfig::noiseless(self.seed)
        }
    }

    /// The engine-facing retry policy.
    #[must_use]
    pub fn policy(&self) -> RobustPolicy {
        RobustPolicy {
            max_retry_rounds: self.retries,
            votes: self.votes,
        }
    }
}

/// One parsed NDJSON diagnosis request.
#[derive(Clone, Debug, PartialEq)]
pub struct DiagnoseRequest {
    /// Client-chosen correlation id, echoed in the response line.
    pub id: String,
    /// Benchmark circuit name (e.g. `s953`).
    pub circuit: String,
    /// Session groups per partition.
    pub groups: u16,
    /// Number of partitions.
    pub partitions: usize,
    /// BIST patterns per session.
    pub patterns: usize,
    /// Partitioning scheme label (`two-step|random|interval|fixed`).
    pub scheme: &'static str,
    /// The failing-session evidence.
    pub evidence: Evidence,
    /// Per-request deadline override, milliseconds.
    pub deadline_ms: Option<u64>,
    /// Robust-replay parameters, when requested.
    pub robust: Option<RobustParams>,
    /// Maximum candidates to return.
    pub top: usize,
}

const DEFAULT_GROUPS: u16 = 16;
const DEFAULT_PARTITIONS: usize = 16;
const DEFAULT_PATTERNS: usize = 64;
const DEFAULT_TOP: usize = 32;

/// The engine scheme for a protocol label.
///
/// # Errors
///
/// Rejects unknown labels with the accepted set.
pub fn scheme_from_label(label: &str) -> Result<scan_bist::Scheme, String> {
    match label {
        "two-step" => Ok(scan_bist::Scheme::TWO_STEP_DEFAULT),
        "random" => Ok(scan_bist::Scheme::RandomSelection),
        "interval" => Ok(scan_bist::Scheme::IntervalBased),
        "fixed" => Ok(scan_bist::Scheme::FixedInterval),
        other => Err(format!(
            "unknown scheme `{other}` (expected two-step|random|interval|fixed)"
        )),
    }
}

fn canonical_scheme(label: &str) -> Result<&'static str, String> {
    // Validate against the engine mapping, then intern the label so
    // the request can carry a `&'static str` cache-key component.
    scheme_from_label(label)?;
    Ok(match label {
        "two-step" => "two-step",
        "random" => "random",
        "interval" => "interval",
        _ => "fixed",
    })
}

fn get_u64(value: &scan_obs::json::Value, key: &str) -> Result<Option<u64>, String> {
    match value.get(key) {
        None => Ok(None),
        Some(v) => {
            let n = v
                .as_f64()
                .ok_or_else(|| format!("`{key}` must be a number"))?;
            if n < 0.0 || n.fract() != 0.0 || n > 9_007_199_254_740_992.0 {
                return Err(format!("`{key}` must be a non-negative integer"));
            }
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            Ok(Some(n as u64))
        }
    }
}

fn get_f64(value: &scan_obs::json::Value, key: &str) -> Result<Option<f64>, String> {
    match value.get(key) {
        None => Ok(None),
        Some(v) => v
            .as_f64()
            .map(Some)
            .ok_or_else(|| format!("`{key}` must be a number")),
    }
}

impl DiagnoseRequest {
    /// Parses one NDJSON line.
    ///
    /// # Errors
    ///
    /// Returns a `bad-request` [`ErrorBody`] naming the offending
    /// field; the caller still gets the request `id` when one could be
    /// extracted (so the error line can be correlated).
    pub fn parse_line(line: &str) -> Result<DiagnoseRequest, (Option<String>, ErrorBody)> {
        let value = scan_obs::json::parse(line)
            .map_err(|e| (None, ErrorBody::bad_request(format!("malformed JSON: {e}"))))?;
        let id = value
            .get("id")
            .and_then(|v| v.as_str())
            .map(str::to_owned);
        Self::parse_value(&value, id.clone()).map_err(|e| (id, e))
    }

    fn parse_value(
        value: &scan_obs::json::Value,
        id: Option<String>,
    ) -> Result<DiagnoseRequest, ErrorBody> {
        let bad = |m: String| ErrorBody::bad_request(m);
        let id = id.ok_or_else(|| bad("`id` (string) is required".to_owned()))?;
        let circuit = value
            .get("circuit")
            .and_then(|v| v.as_str())
            .ok_or_else(|| bad("`circuit` (string) is required".to_owned()))?
            .to_owned();
        let groups = get_u64(value, "groups").map_err(&bad)?;
        let groups = match groups {
            None => DEFAULT_GROUPS,
            Some(g) if (1..=u64::from(u16::MAX)).contains(&g) =>
            {
                #[allow(clippy::cast_possible_truncation)]
                {
                    g as u16
                }
            }
            Some(g) => return Err(bad(format!("`groups` out of range: {g}"))),
        };
        let partitions = get_u64(value, "partitions")
            .map_err(&bad)?
            .map_or(DEFAULT_PARTITIONS, |p| p as usize);
        if partitions == 0 || partitions > 4096 {
            return Err(bad(format!("`partitions` out of range: {partitions}")));
        }
        let patterns = get_u64(value, "patterns")
            .map_err(&bad)?
            .map_or(DEFAULT_PATTERNS, |p| p as usize);
        if patterns == 0 || patterns > 1 << 20 {
            return Err(bad(format!("`patterns` out of range: {patterns}")));
        }
        let scheme_label = value
            .get("scheme")
            .map(|v| {
                v.as_str()
                    .map(str::to_owned)
                    .ok_or_else(|| bad("`scheme` must be a string".to_owned()))
            })
            .transpose()?
            .unwrap_or_else(|| "two-step".to_owned());
        let scheme = canonical_scheme(&scheme_label).map_err(&bad)?;
        let evidence = Self::parse_evidence(value, groups, partitions)?;
        let deadline_ms = get_u64(value, "deadline_ms").map_err(&bad)?;
        let robust = Self::parse_robust(value)?;
        let top = get_u64(value, "top")
            .map_err(&bad)?
            .map_or(DEFAULT_TOP, |t| (t as usize).clamp(1, 4096));
        Ok(DiagnoseRequest {
            id,
            circuit,
            groups,
            partitions,
            patterns,
            scheme,
            evidence,
            deadline_ms,
            robust,
            top,
        })
    }

    fn parse_evidence(
        value: &scan_obs::json::Value,
        groups: u16,
        partitions: usize,
    ) -> Result<Evidence, ErrorBody> {
        let bad = |m: String| ErrorBody::bad_request(m);
        let signatures = value.get("signatures");
        let failing = value.get("failing");
        match (signatures, failing) {
            (Some(_), Some(_)) => Err(bad(
                "exactly one of `signatures` or `failing` is required, not both".to_owned(),
            )),
            (None, None) => Err(bad(
                "exactly one of `signatures` or `failing` is required".to_owned(),
            )),
            (Some(sig), None) => {
                let rows = sig
                    .as_array()
                    .ok_or_else(|| bad("`signatures` must be an array".to_owned()))?;
                if rows.len() != partitions {
                    return Err(bad(format!(
                        "`signatures` has {} rows; expected one per partition ({partitions})",
                        rows.len()
                    )));
                }
                let mut grid = Vec::with_capacity(rows.len());
                for (p, row) in rows.iter().enumerate() {
                    let cells = row
                        .as_array()
                        .ok_or_else(|| bad(format!("`signatures[{p}]` must be an array")))?;
                    if cells.len() != usize::from(groups) {
                        return Err(bad(format!(
                            "`signatures[{p}]` has {} entries; expected one per group ({groups})",
                            cells.len()
                        )));
                    }
                    let mut out = Vec::with_capacity(cells.len());
                    for (g, cell) in cells.iter().enumerate() {
                        let n = cell.as_f64().ok_or_else(|| {
                            bad(format!("`signatures[{p}][{g}]` must be a number"))
                        })?;
                        if n < 0.0 || n.fract() != 0.0 {
                            return Err(bad(format!(
                                "`signatures[{p}][{g}]` must be a non-negative integer"
                            )));
                        }
                        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
                        out.push(n as u64);
                    }
                    grid.push(out);
                }
                Ok(Evidence::Signatures(grid))
            }
            (None, Some(fail)) => {
                let rows = fail
                    .as_array()
                    .ok_or_else(|| bad("`failing` must be an array".to_owned()))?;
                if rows.len() != partitions {
                    return Err(bad(format!(
                        "`failing` has {} rows; expected one per partition ({partitions})",
                        rows.len()
                    )));
                }
                let mut grid = Vec::with_capacity(rows.len());
                for (p, row) in rows.iter().enumerate() {
                    let indices = row
                        .as_array()
                        .ok_or_else(|| bad(format!("`failing[{p}]` must be an array")))?;
                    let mut out = Vec::with_capacity(indices.len());
                    for (i, idx) in indices.iter().enumerate() {
                        let n = idx.as_f64().ok_or_else(|| {
                            bad(format!("`failing[{p}][{i}]` must be a number"))
                        })?;
                        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
                        let g = n as usize;
                        if n < 0.0 || n.fract() != 0.0 || g >= usize::from(groups) {
                            return Err(bad(format!(
                                "`failing[{p}][{i}]` = {n} is not a group index < {groups}"
                            )));
                        }
                        out.push(g);
                    }
                    grid.push(out);
                }
                Ok(Evidence::Failing(grid))
            }
        }
    }

    fn parse_robust(
        value: &scan_obs::json::Value,
    ) -> Result<Option<RobustParams>, ErrorBody> {
        let bad = |m: String| ErrorBody::bad_request(m);
        let Some(robust) = value.get("robust") else {
            return Ok(None);
        };
        if robust.as_object().is_none() {
            return Err(bad("`robust` must be an object".to_owned()));
        }
        let flip = get_f64(robust, "flip").map_err(&bad)?.unwrap_or(0.0);
        let dropout = get_f64(robust, "dropout").map_err(&bad)?.unwrap_or(0.0);
        for (key, rate) in [("flip", flip), ("dropout", dropout)] {
            if !(0.0..=1.0).contains(&rate) {
                return Err(bad(format!("`robust.{key}` must be in [0,1], got {rate}")));
            }
        }
        let seed = get_u64(robust, "seed").map_err(&bad)?.unwrap_or(1);
        let retries = get_u64(robust, "retries").map_err(&bad)?.map_or(2, |r| {
            #[allow(clippy::cast_possible_truncation)]
            {
                (r as usize).min(8)
            }
        });
        let votes = get_u64(robust, "votes").map_err(&bad)?.map_or(3, |v| {
            #[allow(clippy::cast_possible_truncation)]
            {
                (v as usize).clamp(1, 15)
            }
        });
        Ok(Some(RobustParams {
            flip,
            dropout,
            seed,
            retries,
            votes,
        }))
    }

    /// The plan-cache key: every field that shapes the
    /// [`DiagnosisPlan`](scan_diagnosis::DiagnosisPlan).
    #[must_use]
    pub fn cache_key(&self) -> String {
        format!(
            "{}/{}/{}/{}/{}",
            self.circuit, self.groups, self.partitions, self.patterns, self.scheme
        )
    }

    /// The request's evidence as an engine [`SessionOutcome`].
    #[must_use]
    pub fn outcome(&self) -> SessionOutcome {
        match &self.evidence {
            Evidence::Signatures(grid) => SessionOutcome::from_signatures(grid.clone()),
            Evidence::Failing(grid) => {
                let fails = grid
                    .iter()
                    .map(|row| {
                        let mut flags = vec![false; usize::from(self.groups)];
                        for &g in row {
                            flags[g] = true;
                        }
                        flags
                    })
                    .collect();
                SessionOutcome::from_verdicts(fails)
            }
        }
    }
}

/// The fields of a success response line; [`OkLine::render`] turns it
/// into the wire string.
pub struct OkLine<'a> {
    /// Echoed correlation id.
    pub id: &'a str,
    /// Service mode: `full`, `robust`, or `degraded`.
    pub mode: &'a str,
    /// Confidence label from the engine.
    pub confidence: &'a str,
    /// Inconclusive reason, when there is one.
    pub reason: Option<&'a str>,
    /// Ranked `[cell, score]` pairs.
    pub candidates: &'a [(usize, f64)],
    /// Scan-chain length the candidate indices refer to.
    pub cells: usize,
    /// Wall time spent on the job.
    pub elapsed_us: u64,
    /// Trace id stamped on the batch.
    pub trace: &'a str,
}

impl OkLine<'_> {
    /// Renders the success line.
    #[must_use]
    pub fn render(&self) -> String {
        let mut line = format!(
            "{{\"id\":\"{}\",\"status\":\"ok\",\"mode\":\"{}\",\"confidence\":\"{}\"",
            json_escape(self.id),
            self.mode,
            self.confidence
        );
        if let Some(reason) = self.reason {
            line.push_str(&format!(",\"reason\":\"{reason}\""));
        }
        line.push_str(",\"candidates\":[");
        for (i, (cell, score)) in self.candidates.iter().enumerate() {
            if i > 0 {
                line.push(',');
            }
            line.push_str(&format!("[{cell},{score:.6}]"));
        }
        line.push_str(&format!(
            "],\"cells\":{},\"elapsed_us\":{},\"trace\":\"{}\"}}",
            self.cells,
            self.elapsed_us,
            json_escape(self.trace)
        ));
        line
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MINIMAL: &str = r#"{"id":"r1","circuit":"s27","groups":4,"partitions":2,
        "patterns":8,"failing":[[0],[1,2]]}"#;

    #[test]
    fn minimal_request_parses_with_defaults() {
        let req = DiagnoseRequest::parse_line(MINIMAL).expect("parses");
        assert_eq!(req.id, "r1");
        assert_eq!(req.circuit, "s27");
        assert_eq!(req.groups, 4);
        assert_eq!(req.partitions, 2);
        assert_eq!(req.scheme, "two-step");
        assert_eq!(req.top, 32);
        assert!(req.robust.is_none());
        assert_eq!(
            req.evidence,
            Evidence::Failing(vec![vec![0], vec![1, 2]])
        );
        let outcome = req.outcome();
        assert!(outcome.failed(0, 0));
        assert!(!outcome.failed(0, 1));
        assert!(outcome.failed(1, 2));
    }

    #[test]
    fn signatures_request_round_trips_to_outcome() {
        let line = r#"{"id":"s","circuit":"s27","groups":2,"partitions":2,
            "signatures":[[5,0],[0,9]]}"#;
        let req = DiagnoseRequest::parse_line(line).expect("parses");
        let outcome = req.outcome();
        assert!(outcome.failed(0, 0));
        assert_eq!(outcome.error_signature(0, 0), 5);
        assert!(!outcome.failed(0, 1));
        assert!(outcome.failed(1, 1));
    }

    #[test]
    fn shape_errors_name_the_field() {
        let cases: &[(&str, &str)] = &[
            (r#"{"circuit":"s27","failing":[[0]]}"#, "`id`"),
            (r#"{"id":"x","failing":[[0]]}"#, "`circuit`"),
            (r#"{"id":"x","circuit":"s27"}"#, "`signatures` or `failing`"),
            (
                r#"{"id":"x","circuit":"s27","failing":[[0]],"signatures":[[1]]}"#,
                "not both",
            ),
            (
                r#"{"id":"x","circuit":"s27","partitions":2,"failing":[[0]]}"#,
                "one per partition",
            ),
            (
                r#"{"id":"x","circuit":"s27","groups":4,"partitions":1,"failing":[[9]]}"#,
                "group index",
            ),
            (
                r#"{"id":"x","circuit":"s27","scheme":"zigzag","failing":[[0]]}"#,
                "unknown scheme",
            ),
            (
                r#"{"id":"x","circuit":"s27","partitions":1,"groups":2,"signatures":[[1]]}"#,
                "one per group",
            ),
        ];
        for (line, needle) in cases {
            let (_, err) = DiagnoseRequest::parse_line(line).expect_err(line);
            assert_eq!(err.code, "bad-request", "{line}");
            assert_eq!(err.http, 400, "{line}");
            assert!(err.message.contains(needle), "{line} -> {}", err.message);
        }
    }

    #[test]
    fn malformed_json_still_reports_cleanly() {
        let (id, err) = DiagnoseRequest::parse_line("{nope").expect_err("bad json");
        assert!(id.is_none());
        assert_eq!(err.code, "bad-request");
        assert!(err.message.contains("malformed JSON"));
    }

    #[test]
    fn robust_block_parses_with_defaults_and_bounds() {
        let line = r#"{"id":"x","circuit":"s27","partitions":1,"groups":2,
            "failing":[[0]],"robust":{"flip":0.1,"seed":9}}"#;
        let req = DiagnoseRequest::parse_line(line).expect("parses");
        let robust = req.robust.expect("robust set");
        assert!((robust.flip - 0.1).abs() < f64::EPSILON);
        assert_eq!(robust.seed, 9);
        assert_eq!(robust.retries, 2);
        assert_eq!(robust.votes, 3);
        assert!((robust.noise_config().flip_rate - 0.1).abs() < f64::EPSILON);

        let bad = r#"{"id":"x","circuit":"s27","partitions":1,"groups":2,
            "failing":[[0]],"robust":{"flip":1.5}}"#;
        let (_, err) = DiagnoseRequest::parse_line(bad).expect_err("rate bound");
        assert!(err.message.contains("robust.flip"));
    }

    #[test]
    fn cache_key_covers_all_plan_inputs() {
        let req = DiagnoseRequest::parse_line(MINIMAL).expect("parses");
        assert_eq!(req.cache_key(), "s27/4/2/8/two-step");
    }

    #[test]
    fn ok_line_renders_valid_json() {
        let line = OkLine {
            id: "r\"1",
            mode: "full",
            confidence: "exact",
            reason: None,
            candidates: &[(17, 1.0), (20, 0.5)],
            cells: 125,
            elapsed_us: 412,
            trace: "0123456789abcdef",
        }
        .render();
        let value = scan_obs::json::parse(&line).expect("valid JSON");
        assert_eq!(value.get("id").and_then(|v| v.as_str()), Some("r\"1"));
        assert_eq!(value.get("status").and_then(|v| v.as_str()), Some("ok"));
        let cands = value.get("candidates").and_then(|v| v.as_array()).unwrap();
        assert_eq!(cands.len(), 2);
        assert_eq!(cands[0].as_array().unwrap()[0].as_f64(), Some(17.0));
    }

    #[test]
    fn error_line_renders_valid_json() {
        let body = ErrorBody::from_diagnose_error(&DiagnoseError::ContradictoryHistory {
            partition: 3,
        });
        let line = body.render(Some("r9"));
        let value = scan_obs::json::parse(&line).expect("valid JSON");
        assert_eq!(value.get("status").and_then(|v| v.as_str()), Some("error"));
        let error = value.get("error").unwrap();
        assert_eq!(
            error.get("code").and_then(|v| v.as_str()),
            Some("contradictory")
        );
        assert_eq!(error.get("http").and_then(|v| v.as_f64()), Some(422.0));
        // Without an id the field is null, still valid JSON.
        let anon = scan_obs::json::parse(&body.render(None)).expect("valid JSON");
        assert_eq!(anon.get("id"), Some(&scan_obs::json::Value::Null));
    }
}
