//! The bounded admission queue.
//!
//! A fixed-capacity ring over a preallocated `Vec<Option<T>>` guarded
//! by one mutex and one condvar. There is deliberately **no**
//! `VecDeque` and no `mpsc::channel` here (lint L011): the queue's
//! whole reason to exist is that it can refuse work — [`try_push`]
//! returns the rejected item instead of growing, which is what turns
//! overload into an explicit `429` instead of an unbounded buffer.
//!
//! [`try_push`]: BoundedQueue::try_push

use std::sync::{Condvar, Mutex};

struct Ring<T> {
    slots: Vec<Option<T>>,
    head: usize,
    len: usize,
    closed: bool,
}

/// A blocking MPMC queue with a hard capacity.
pub struct BoundedQueue<T> {
    ring: Mutex<Ring<T>>,
    not_empty: Condvar,
}

impl<T> BoundedQueue<T> {
    /// A queue holding at most `capacity` items (minimum 1).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        let mut slots = Vec::with_capacity(capacity);
        slots.resize_with(capacity, || None);
        BoundedQueue {
            ring: Mutex::new(Ring {
                slots,
                head: 0,
                len: 0,
                closed: false,
            }),
            not_empty: Condvar::new(),
        }
    }

    /// The fixed capacity.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.ring.lock().map_or(0, |r| r.slots.len())
    }

    /// Current occupancy.
    #[must_use]
    pub fn depth(&self) -> usize {
        self.ring.lock().map_or(0, |r| r.len)
    }

    /// Enqueues `item`, or hands it back when the queue is full or
    /// closed. On success returns the depth *after* the push — the
    /// admission-control signal shedding tiers key off.
    ///
    /// # Errors
    ///
    /// Returns `Err(item)` (ownership back to the caller) when full or
    /// closed; the queue never grows past its capacity.
    pub fn try_push(&self, item: T) -> Result<usize, T> {
        let Ok(mut ring) = self.ring.lock() else {
            return Err(item);
        };
        if ring.closed || ring.len == ring.slots.len() {
            return Err(item);
        }
        let cap = ring.slots.len();
        // lint:allow(L012): `new()` clamps capacity to >= 1, so `cap > 0`
        let tail = (ring.head + ring.len) % cap;
        // lint:allow(L012): `tail < cap` from the modulo above
        ring.slots[tail] = Some(item);
        ring.len += 1;
        let depth = ring.len;
        drop(ring);
        self.not_empty.notify_one();
        Ok(depth)
    }

    /// Blocks until an item is available or the queue is closed and
    /// drained; `None` means shut down.
    pub fn pop(&self) -> Option<T> {
        let Ok(mut ring) = self.ring.lock() else {
            return None;
        };
        loop {
            if ring.len > 0 {
                let head = ring.head;
                // lint:allow(L012): `head < cap` is the ring invariant
                let item = ring.slots[head].take();
                let cap = ring.slots.len();
                // lint:allow(L012): `new()` clamps capacity to >= 1, so `cap > 0`
                ring.head = (ring.head + 1) % cap;
                ring.len -= 1;
                return item;
            }
            if ring.closed {
                return None;
            }
            ring = self.not_empty.wait(ring).ok()?;
        }
    }

    /// Closes the queue: pushes start failing, pops drain what is left
    /// and then return `None`. Idempotent.
    pub fn close(&self) {
        if let Ok(mut ring) = self.ring.lock() {
            ring.closed = true;
        }
        self.not_empty.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fifo_order_and_depth() {
        let q = BoundedQueue::new(4);
        assert_eq!(q.capacity(), 4);
        assert_eq!(q.try_push(1), Ok(1));
        assert_eq!(q.try_push(2), Ok(2));
        assert_eq!(q.depth(), 2);
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.depth(), 0);
    }

    #[test]
    fn full_queue_refuses_and_returns_the_item() {
        let q = BoundedQueue::new(2);
        assert!(q.try_push("a").is_ok());
        assert!(q.try_push("b").is_ok());
        assert_eq!(q.try_push("c"), Err("c"));
        assert_eq!(q.depth(), 2, "rejected push must not grow the queue");
        // Draining one slot re-opens admission.
        assert_eq!(q.pop(), Some("a"));
        assert!(q.try_push("c").is_ok());
    }

    #[test]
    fn close_drains_then_returns_none() {
        let q = BoundedQueue::new(2);
        q.try_push(7).unwrap();
        q.close();
        assert_eq!(q.try_push(8), Err(8), "closed queue refuses pushes");
        assert_eq!(q.pop(), Some(7), "close still drains queued work");
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn close_wakes_blocked_consumers() {
        let q = Arc::new(BoundedQueue::<u32>::new(1));
        let consumer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.pop())
        };
        // Give the consumer a moment to block, then close.
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.close();
        assert_eq!(consumer.join().unwrap(), None);
    }

    #[test]
    fn wraparound_preserves_order() {
        let q = BoundedQueue::new(3);
        for round in 0..10 {
            q.try_push(round * 2).unwrap();
            q.try_push(round * 2 + 1).unwrap();
            assert_eq!(q.pop(), Some(round * 2));
            assert_eq!(q.pop(), Some(round * 2 + 1));
        }
    }
}
