//! A hardened, minimal HTTP/1.1 request parser and response writer.
//!
//! `scanbistd` speaks exactly the HTTP it needs and rejects everything
//! else *explicitly* — every malformed shape maps to a specific status
//! code instead of a hung connection or an unbounded read:
//!
//! | condition                         | status |
//! |-----------------------------------|--------|
//! | unparsable head / bad header      | 400    |
//! | read timed out (slow loris)       | 408    |
//! | `Content-Length` over the limit   | 413    |
//! | request line over the limit       | 414    |
//! | head over the limit / too many headers | 431 |
//! | `Transfer-Encoding` (chunked etc.)| 501    |
//! | duplicate `Content-Length`        | 400    |
//!
//! The parser reads from any [`Read`] (tests feed byte slices, the
//! daemon feeds sockets with OS read timeouts) and never allocates
//! beyond the configured limits.

use std::io::{Read, Write};

/// Size caps enforced while reading a request.
#[derive(Clone, Copy, Debug)]
pub struct Limits {
    /// Longest accepted request line (method + target + version).
    pub request_line: usize,
    /// Longest accepted head (request line + all headers).
    pub head: usize,
    /// Largest accepted declared body.
    pub body: usize,
    /// Most headers accepted.
    pub headers: usize,
}

impl Default for Limits {
    fn default() -> Self {
        Limits {
            request_line: 2 * 1024,
            head: 8 * 1024,
            body: 1024 * 1024,
            headers: 64,
        }
    }
}

/// A parsed request: method, target, headers (order preserved), body.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Request {
    /// `GET`, `POST`, …
    pub method: String,
    /// The request target, query string included.
    pub target: String,
    /// Headers in wire order, names lowercased.
    pub headers: Vec<(String, String)>,
    /// The request body (empty unless `Content-Length` said otherwise).
    pub body: Vec<u8>,
}

impl Request {
    /// First header value for `name` (case-insensitive lookup; names
    /// are stored lowercased).
    #[must_use]
    pub fn header(&self, name: &str) -> Option<&str> {
        let lower = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(n, _)| *n == lower)
            .map(|(_, v)| v.as_str())
    }

    /// The target with any query string stripped.
    #[must_use]
    pub fn path(&self) -> &str {
        self.target.split('?').next().unwrap_or(&self.target)
    }
}

/// Every way a request can be refused, with its wire status code.
#[derive(Clone, Copy, Eq, PartialEq, Debug)]
#[non_exhaustive]
pub enum HttpError {
    /// Peer closed before sending a complete head; nothing to answer.
    Closed,
    /// Read timed out mid-request (slow loris) → 408.
    Timeout,
    /// Head is not well-formed HTTP/1.x → 400.
    Malformed(&'static str),
    /// Request line exceeds [`Limits::request_line`] → 414.
    RequestLineTooLong,
    /// Head exceeds [`Limits::head`] or [`Limits::headers`] → 431.
    HeadTooLarge,
    /// Declared body exceeds [`Limits::body`] → 413.
    BodyTooLarge,
    /// `Transfer-Encoding` is not supported (chunked bodies) → 501.
    UnsupportedTransferEncoding,
    /// More than one `Content-Length` header → 400 (smuggling guard).
    DuplicateContentLength,
}

impl HttpError {
    /// The response status for this rejection, or `None` when the
    /// connection should just be dropped (peer already gone).
    #[must_use]
    pub fn status(self) -> Option<u16> {
        match self {
            HttpError::Closed => None,
            HttpError::Timeout => Some(408),
            HttpError::Malformed(_) | HttpError::DuplicateContentLength => Some(400),
            HttpError::RequestLineTooLong => Some(414),
            HttpError::HeadTooLarge => Some(431),
            HttpError::BodyTooLarge => Some(413),
            HttpError::UnsupportedTransferEncoding => Some(501),
        }
    }

    /// A short plain-text body explaining the rejection.
    #[must_use]
    pub fn message(self) -> &'static str {
        match self {
            HttpError::Closed => "connection closed",
            HttpError::Timeout => "request timed out",
            HttpError::Malformed(why) => why,
            HttpError::RequestLineTooLong => "request line too long",
            HttpError::HeadTooLarge => "request head too large",
            HttpError::BodyTooLarge => "request body exceeds limit",
            HttpError::UnsupportedTransferEncoding => "transfer encodings are not supported",
            HttpError::DuplicateContentLength => "duplicate content-length",
        }
    }
}

fn io_error(e: &std::io::Error) -> HttpError {
    match e.kind() {
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut => HttpError::Timeout,
        _ => HttpError::Closed,
    }
}

/// Reads and validates one request.
///
/// # Errors
///
/// Returns an [`HttpError`] naming the precise rejection; see the
/// module table for the status mapping.
pub fn parse_request(reader: &mut impl Read, limits: &Limits) -> Result<Request, HttpError> {
    let (head, leftover) = read_head(reader, limits)?;
    let text = std::str::from_utf8(&head).map_err(|_| HttpError::Malformed("head is not utf-8"))?;

    let mut lines = text.split("\r\n");
    let request_line = lines.next().ok_or(HttpError::Malformed("empty head"))?;
    if request_line.len() > limits.request_line {
        return Err(HttpError::RequestLineTooLong);
    }
    let (method, target) = parse_request_line(request_line)?;

    let mut headers: Vec<(String, String)> = Vec::new();
    let mut content_length: Option<usize> = None;
    let mut content_length_count = 0usize;
    for line in lines {
        if line.is_empty() {
            continue;
        }
        if headers.len() >= limits.headers {
            return Err(HttpError::HeadTooLarge);
        }
        let (name, value) = parse_header_line(line)?;
        if name == "transfer-encoding" {
            return Err(HttpError::UnsupportedTransferEncoding);
        }
        if name == "content-length" {
            content_length_count += 1;
            if content_length_count > 1 {
                return Err(HttpError::DuplicateContentLength);
            }
            let len: usize = value
                .parse()
                .map_err(|_| HttpError::Malformed("bad content-length"))?;
            if len > limits.body {
                return Err(HttpError::BodyTooLarge);
            }
            content_length = Some(len);
        }
        headers.push((name, value));
    }

    let body = read_body(reader, leftover, content_length.unwrap_or(0))?;
    Ok(Request {
        method,
        target,
        headers,
        body,
    })
}

/// Reads until the `\r\n\r\n` head terminator; returns the head bytes
/// and whatever body prefix was read past it.
fn read_head(reader: &mut impl Read, limits: &Limits) -> Result<(Vec<u8>, Vec<u8>), HttpError> {
    let mut buf = Vec::new();
    let mut chunk = [0u8; 1024];
    loop {
        if let Some(end) = find_terminator(&buf) {
            let leftover = buf.split_off(end + 4);
            buf.truncate(end);
            return Ok((buf, leftover));
        }
        if buf.len() > limits.head {
            // No terminator within the cap: distinguish an endless
            // request line (414) from an endless header block (431).
            return Err(if !buf.contains(&b'\n') {
                HttpError::RequestLineTooLong
            } else {
                HttpError::HeadTooLarge
            });
        }
        let n = reader.read(&mut chunk).map_err(|e| io_error(&e))?;
        if n == 0 {
            return Err(if buf.is_empty() {
                HttpError::Closed
            } else {
                HttpError::Malformed("truncated head")
            });
        }
        // lint:allow(L012): `read()` guarantees `n <= chunk.len()`
        buf.extend_from_slice(&chunk[..n]);
    }
}

fn find_terminator(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

fn parse_request_line(line: &str) -> Result<(String, String), HttpError> {
    let mut parts = line.split(' ');
    let method = parts.next().unwrap_or("");
    let target = parts
        .next()
        .ok_or(HttpError::Malformed("missing request target"))?;
    let version = parts
        .next()
        .ok_or(HttpError::Malformed("missing http version"))?;
    if parts.next().is_some() {
        return Err(HttpError::Malformed("extra tokens in request line"));
    }
    if method.is_empty() || !method.bytes().all(|b| b.is_ascii_uppercase()) {
        return Err(HttpError::Malformed("bad method"));
    }
    if !target.starts_with('/') || target.bytes().any(|b| b <= b' ' || b == 0x7f) {
        return Err(HttpError::Malformed("bad request target"));
    }
    if version != "HTTP/1.1" && version != "HTTP/1.0" {
        return Err(HttpError::Malformed("unsupported http version"));
    }
    Ok((method.to_owned(), target.to_owned()))
}

fn parse_header_line(line: &str) -> Result<(String, String), HttpError> {
    // Obsolete line folding would let a value smuggle a second line.
    if line.starts_with(' ') || line.starts_with('\t') {
        return Err(HttpError::Malformed("folded header"));
    }
    let (name, value) = line
        .split_once(':')
        .ok_or(HttpError::Malformed("header missing colon"))?;
    if name.is_empty()
        || !name
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || b == b'-' || b == b'_')
    {
        return Err(HttpError::Malformed("bad header name"));
    }
    let value = value.trim();
    // Any control byte in a header value — including a bare CR or LF
    // that survived the CRLF split — is an injection attempt.
    if value.bytes().any(|b| (b < 0x20 && b != b'\t') || b == 0x7f) {
        return Err(HttpError::Malformed("control byte in header value"));
    }
    Ok((name.to_ascii_lowercase(), value.to_owned()))
}

fn read_body(
    reader: &mut impl Read,
    mut body: Vec<u8>,
    declared: usize,
) -> Result<Vec<u8>, HttpError> {
    if body.len() > declared {
        // More bytes than declared: pipelining is not supported here.
        return Err(HttpError::Malformed("body longer than content-length"));
    }
    let mut chunk = [0u8; 4096];
    while body.len() < declared {
        let want = (declared - body.len()).min(chunk.len());
        // lint:allow(L012): `want` is min-clamped to `chunk.len()` above
        let n = reader.read(&mut chunk[..want]).map_err(|e| io_error(&e))?;
        if n == 0 {
            return Err(HttpError::Malformed("truncated body"));
        }
        // lint:allow(L012): `read()` guarantees `n <= want <= chunk.len()`
        body.extend_from_slice(&chunk[..n]);
    }
    Ok(body)
}

/// The canonical reason phrase for every status this daemon emits.
#[must_use]
pub fn status_reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        414 => "URI Too Long",
        422 => "Unprocessable Entity",
        429 => "Too Many Requests",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        501 => "Not Implemented",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Unknown",
    }
}

/// Writes a full `Connection: close` response. `extra_headers` lets
/// callers attach `Retry-After`, trace ids, or chaos markers.
///
/// # Errors
///
/// Propagates socket write errors.
pub fn write_response(
    w: &mut impl Write,
    status: u16,
    content_type: &str,
    body: &[u8],
    extra_headers: &[(&str, String)],
) -> std::io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n",
        status_reason(status),
        body.len()
    );
    for (name, value) in extra_headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    w.write_all(head.as_bytes())?;
    w.write_all(body)?;
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(bytes: &[u8]) -> Result<Request, HttpError> {
        parse_request(&mut &bytes[..], &Limits::default())
    }

    #[test]
    fn parses_a_post_with_body() {
        let req = parse(b"POST /diagnose HTTP/1.1\r\nHost: x\r\nContent-Length: 5\r\n\r\nhello")
            .expect("valid request");
        assert_eq!(req.method, "POST");
        assert_eq!(req.path(), "/diagnose");
        assert_eq!(req.header("host"), Some("x"));
        assert_eq!(req.body, b"hello");
    }

    #[test]
    fn parses_a_get_without_body() {
        let req = parse(b"GET /metrics?x=1 HTTP/1.1\r\n\r\n").expect("valid request");
        assert_eq!(req.method, "GET");
        assert_eq!(req.path(), "/metrics");
        assert!(req.body.is_empty());
    }

    #[test]
    fn empty_connection_reports_closed() {
        assert_eq!(parse(b""), Err(HttpError::Closed));
    }

    #[test]
    fn status_mapping_is_total() {
        for e in [
            HttpError::Timeout,
            HttpError::Malformed("x"),
            HttpError::RequestLineTooLong,
            HttpError::HeadTooLarge,
            HttpError::BodyTooLarge,
            HttpError::UnsupportedTransferEncoding,
            HttpError::DuplicateContentLength,
        ] {
            assert!(e.status().is_some(), "{e:?}");
            assert!(!e.message().is_empty());
        }
        assert_eq!(HttpError::Closed.status(), None);
    }

    #[test]
    fn response_writer_emits_extra_headers() {
        let mut out = Vec::new();
        write_response(
            &mut out,
            429,
            "application/json",
            b"{}",
            &[("Retry-After", "1".to_owned())],
        )
        .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 429 Too Many Requests\r\n"), "{text}");
        assert!(text.contains("Retry-After: 1\r\n"), "{text}");
        assert!(text.ends_with("\r\n\r\n{}"), "{text}");
    }
}
