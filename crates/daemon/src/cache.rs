//! Per-circuit plan cache with single-flight deduplication.
//!
//! Building a [`DiagnosisPlan`] for a large circuit (netlist
//! generation + partition synthesis + MISR model) costs orders of
//! magnitude more than serving a diagnosis from it, so a cache-miss
//! stampede — a fleet of testers all asking about the same circuit the
//! moment the daemon starts — must collapse to **one** build: the
//! first requester builds, everyone else blocks on a condvar until the
//! slot flips to ready. Entries are bounded and evicted
//! least-recently-used; a failed build is not cached (waiters get the
//! error, the next request retries).

use std::collections::BTreeMap;
use std::sync::{Arc, Condvar, Mutex};

use scan_diagnosis::DiagnosisPlan;

/// A cached, immutable plan plus the facts responses need.
#[derive(Debug)]
pub struct CachedPlan {
    /// The diagnosis plan (partitions + MISR model).
    pub plan: DiagnosisPlan,
    /// Scan cells in the chain (the candidate universe).
    pub cells: usize,
}

enum Slot {
    /// Some thread is building; wait on the condvar.
    Building,
    /// Ready to serve. `used` is the LRU clock.
    Ready { value: Arc<CachedPlan>, used: u64 },
}

struct State {
    slots: BTreeMap<String, Slot>,
    tick: u64,
}

/// The bounded single-flight cache.
pub struct PlanCache {
    state: Mutex<State>,
    changed: Condvar,
    capacity: usize,
}

impl PlanCache {
    /// A cache holding at most `capacity` ready plans (minimum 1).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        PlanCache {
            state: Mutex::new(State {
                slots: BTreeMap::new(),
                tick: 0,
            }),
            changed: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Number of ready entries (in-flight builds excluded).
    #[must_use]
    pub fn len(&self) -> usize {
        self.state.lock().map_or(0, |s| {
            s.slots
                .values()
                .filter(|slot| matches!(slot, Slot::Ready { .. }))
                .count()
        })
    }

    /// Whether the cache holds no ready entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Returns the cached plan for `key`, building it with `build` on
    /// a miss. Concurrent misses on the same key run `build` exactly
    /// once; the losers wait for the winner.
    ///
    /// # Errors
    ///
    /// Propagates the builder's error (to the builder *and* to every
    /// waiter of that flight). Failed builds are not cached.
    ///
    /// # Panics
    ///
    /// Panics only if the internal mutex was poisoned by a panicking
    /// builder thread — and builders run `build` outside the lock, so
    /// a panicking `build` cannot poison it.
    pub fn get_or_build<F, E>(&self, key: &str, build: F) -> Result<Arc<CachedPlan>, E>
    where
        F: FnOnce() -> Result<CachedPlan, E>,
    {
        let mut build = Some(build);
        let mut state = self.state.lock().expect("cache lock");
        loop {
            match state.slots.get(key) {
                Some(Slot::Ready { .. }) => {
                    state.tick += 1;
                    let tick = state.tick;
                    if let Some(Slot::Ready { value, used }) = state.slots.get_mut(key) {
                        *used = tick;
                        scan_obs::metrics::incr("daemon.cache.hits");
                        return Ok(Arc::clone(value));
                    }
                    unreachable!("slot vanished while locked");
                }
                Some(Slot::Building) => {
                    scan_obs::metrics::incr("daemon.cache.waits");
                    state = self.changed.wait(state).expect("cache lock");
                    // Loop: the flight finished (ready or removed).
                }
                None => {
                    let Some(build) = build.take() else {
                        unreachable!("builder path returns; cannot loop back here");
                    };
                    scan_obs::metrics::incr("daemon.cache.misses");
                    state.slots.insert(key.to_owned(), Slot::Building);
                    drop(state);
                    let built = build();
                    let mut state = self.state.lock().expect("cache lock");
                    match built {
                        Ok(value) => {
                            let value = Arc::new(value);
                            state.tick += 1;
                            let tick = state.tick;
                            state.slots.insert(
                                key.to_owned(),
                                Slot::Ready {
                                    value: Arc::clone(&value),
                                    used: tick,
                                },
                            );
                            self.evict_to_capacity(&mut state, key);
                            drop(state);
                            self.changed.notify_all();
                            return Ok(value);
                        }
                        Err(e) => {
                            state.slots.remove(key);
                            drop(state);
                            self.changed.notify_all();
                            return Err(e);
                        }
                    }
                }
            }
        }
    }

    /// Drops least-recently-used ready entries (never in-flight builds
    /// and never `keep`) until at most `capacity` ready entries remain.
    fn evict_to_capacity(&self, state: &mut State, keep: &str) {
        loop {
            let ready = state
                .slots
                .iter()
                .filter(|(_, slot)| matches!(slot, Slot::Ready { .. }))
                .count();
            if ready <= self.capacity {
                return;
            }
            let victim = state
                .slots
                .iter()
                .filter_map(|(k, slot)| match slot {
                    Slot::Ready { used, .. } if k != keep => Some((*used, k.clone())),
                    _ => None,
                })
                .min();
            match victim {
                Some((_, key)) => {
                    scan_obs::metrics::incr("daemon.cache.evictions");
                    state.slots.remove(&key);
                }
                None => return,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn plan(cells: usize) -> CachedPlan {
        let plan = DiagnosisPlan::new(
            scan_diagnosis::ChainLayout::single_chain(cells),
            8,
            &scan_diagnosis::BistConfig::new(4, 4, scan_bist::Scheme::RandomSelection),
        )
        .expect("small plan builds");
        CachedPlan { plan, cells }
    }

    #[test]
    fn hit_after_miss_builds_once() {
        let cache = PlanCache::new(4);
        let builds = AtomicUsize::new(0);
        for _ in 0..3 {
            let built = cache
                .get_or_build::<_, String>("s27/4/4/8", || {
                    builds.fetch_add(1, Ordering::SeqCst);
                    Ok(plan(32))
                })
                .expect("build ok");
            assert_eq!(built.cells, 32);
        }
        assert_eq!(builds.load(Ordering::SeqCst), 1);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn failed_builds_are_not_cached() {
        let cache = PlanCache::new(4);
        let err = cache
            .get_or_build("bad", || Err("nope".to_owned()))
            .expect_err("propagates");
        assert_eq!(err, "nope");
        // Next attempt retries (and can succeed).
        let ok = cache.get_or_build::<_, String>("bad", || Ok(plan(16))).expect("retried");
        assert_eq!(ok.cells, 16);
    }

    #[test]
    fn concurrent_misses_single_flight() {
        let cache = Arc::new(PlanCache::new(4));
        let builds = Arc::new(AtomicUsize::new(0));
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let cache = Arc::clone(&cache);
                let builds = Arc::clone(&builds);
                scope.spawn(move || {
                    let built = cache
                        .get_or_build::<_, String>("shared", move || {
                            builds.fetch_add(1, Ordering::SeqCst);
                            // Widen the race window so waiters really wait.
                            std::thread::sleep(std::time::Duration::from_millis(30));
                            Ok(plan(64))
                        })
                        .expect("build ok");
                    assert_eq!(built.cells, 64);
                });
            }
        });
        assert_eq!(builds.load(Ordering::SeqCst), 1, "stampede must collapse");
    }

    #[test]
    fn lru_eviction_keeps_the_bound_and_the_newest() {
        let cache = PlanCache::new(2);
        cache.get_or_build::<_, String>("a", || Ok(plan(16))).unwrap();
        cache.get_or_build::<_, String>("b", || Ok(plan(24))).unwrap();
        // Touch `a` so `b` is the LRU victim.
        cache.get_or_build::<_, String>("a", || unreachable!("hit")).unwrap();
        cache.get_or_build::<_, String>("c", || Ok(plan(40))).unwrap();
        assert_eq!(cache.len(), 2);
        // `b` was evicted: rebuilding it calls the builder again.
        let rebuilt = AtomicUsize::new(0);
        cache
            .get_or_build::<_, String>("b", || {
                rebuilt.fetch_add(1, Ordering::SeqCst);
                Ok(plan(24))
            })
            .unwrap();
        assert_eq!(rebuilt.load(Ordering::SeqCst), 1);
    }
}
