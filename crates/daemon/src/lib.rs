//! `scan-daemon` — **scanbistd**, diagnosis as a service.
//!
//! The workspace's engines ([`scan_diagnosis`]) answer one question —
//! *which scan cells explain these failing BIST sessions?* — as
//! library calls. This crate puts that answer on the network for the
//! manufacturing floor: testers `POST` NDJSON batches of partition
//! signatures to `/diagnose` and get ranked candidate cells back, with
//! an explicit `exact` / `degraded` / `inconclusive` confidence on
//! every line.
//!
//! The interesting part is not the happy path but the overload
//! behavior, built from four pieces:
//!
//! * [`queue`] — the bounded admission queue. Full means `429` +
//!   `Retry-After`, never an unbounded buffer.
//! * [`server`] — the daemon itself: worker pool, per-batch deadlines
//!   with cooperative cancellation ([`scan_diagnosis::CancelToken`]),
//!   quality-shedding tiers (robust replay degrades to single-pass
//!   before anything is refused), single-flight plan [`cache`], and
//!   drain-on-shutdown.
//! * [`http`] — a deliberately strict HTTP/1.1 parser (no chunked
//!   bodies, no duplicate `Content-Length`, no header injection).
//! * [`chaos`] — the `SCANBIST_CHAOS` fault-injection layer, keyed per
//!   request through [`scan_rng::derive`] so failures reproduce
//!   bit-for-bit.
//!
//! Observability rides on [`scan_obs`]: the daemon mounts the standard
//! `/metrics` / `/alerts.json` / `/healthz` / `/readyz` routes on its
//! own port and counts everything under `daemon.*`. The
//! `scanbistd-loadgen` bin (this crate's `src/bin/loadgen.rs`) drives
//! it open-loop and writes the goodput-under-overload evidence to
//! `BENCH_daemon.json`. See `docs/DAEMON.md` for the protocol.

pub mod cache;
pub mod chaos;
pub mod http;
pub mod protocol;
pub mod queue;
pub mod server;

pub use cache::{CachedPlan, PlanCache};
pub use chaos::{ChaosConfig, ChaosPlan};
pub use protocol::{DiagnoseRequest, ErrorBody, Evidence};
pub use queue::BoundedQueue;
pub use server::{Daemon, DaemonConfig};
