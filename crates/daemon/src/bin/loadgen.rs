//! `scanbistd-loadgen` — an open-loop load generator for `scanbistd`.
//!
//! Closed-loop clients (send, wait, send) self-throttle under
//! overload and hide exactly the failure this daemon is engineered
//! for. This generator is **open-loop**: arrivals follow a Poisson
//! process at the offered rate regardless of how the daemon is doing,
//! so when capacity is exceeded the queue bound, the `429` shedding
//! path, and the deadline machinery actually get exercised.
//!
//! A run calibrates daemon capacity with a short closed-loop burst,
//! then sweeps offered load at 0.5x / 1x / 2x the estimate and writes
//! per-scenario results — goodput, shed counts, admitted-request
//! latency percentiles, peak queue depth — to a `BENCH_daemon.json`
//! evidence file. Chaos-injected failures are separated from real
//! ones via the `X-Scanbist-Chaos` response header.
//!
//! ```text
//! scanbistd-loadgen --addr 127.0.0.1:9321 --out BENCH_daemon.json
//! scanbistd-loadgen --addr 127.0.0.1:9321 --drain
//! ```

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use scan_rng::ScanRng;

/// One parsed HTTP response, just enough for scoring.
struct Reply {
    status: u16,
    chaos: Option<String>,
    queue_depth: Option<usize>,
    truncated: bool,
    latency: Duration,
}

/// Scorecard of one offered-load scenario.
#[derive(Default)]
struct Scorecard {
    sent: usize,
    ok: usize,
    shed_429: usize,
    unavailable_503: usize,
    deadline_504: usize,
    other_status: usize,
    connect_failures: usize,
    chaos_injected: usize,
    truncated: usize,
    max_queue_depth: usize,
    /// Latencies of admitted (HTTP 200) requests, microseconds.
    ok_latencies_us: Vec<u64>,
}

impl Scorecard {
    fn absorb(&mut self, reply: &Reply) {
        self.sent += 1;
        if reply.chaos.is_some() {
            self.chaos_injected += 1;
        }
        if reply.truncated {
            self.truncated += 1;
            return;
        }
        if let Some(depth) = reply.queue_depth {
            self.max_queue_depth = self.max_queue_depth.max(depth);
        }
        match reply.status {
            200 => {
                self.ok += 1;
                #[allow(clippy::cast_possible_truncation)]
                self.ok_latencies_us.push(reply.latency.as_micros() as u64);
            }
            429 => self.shed_429 += 1,
            503 => self.unavailable_503 += 1,
            504 => self.deadline_504 += 1,
            _ => self.other_status += 1,
        }
    }

    /// Real (non-injected) server-side failures: any status outside
    /// the engineered set {200, 429, 503, 504}. The verify smoke
    /// asserts zero.
    fn real_failures(&self) -> usize {
        self.other_status
    }
}

/// Nearest-rank percentile over an ascending-sorted sample.
fn percentile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    #[allow(clippy::cast_sign_loss, clippy::cast_possible_truncation, clippy::cast_precision_loss)]
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

struct Options {
    addr: String,
    out: Option<String>,
    circuit: String,
    groups: u64,
    partitions: u64,
    patterns: u64,
    deadline_ms: u64,
    duration_ms: u64,
    seed: u64,
    drain: bool,
    /// Explicit offered rates (requests/s); empty means calibrate.
    rates: Vec<f64>,
    robust: bool,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            addr: String::new(),
            out: None,
            circuit: "s953".to_owned(),
            groups: 8,
            partitions: 6,
            patterns: 64,
            deadline_ms: 1_500,
            duration_ms: 2_000,
            seed: 1,
            drain: false,
            rates: Vec::new(),
            robust: true,
        }
    }
}

const USAGE: &str = "usage: scanbistd-loadgen --addr HOST:PORT [options]\n\
  --out PATH          write BENCH_daemon.json-style evidence here\n\
  --circuit NAME      benchmark circuit per request (default s953)\n\
  --groups N          session groups (default 8)\n\
  --partitions N      partitions (default 6)\n\
  --patterns N        BIST patterns (default 64)\n\
  --deadline-ms N     per-request deadline (default 1500)\n\
  --duration-ms N     per-scenario duration (default 2000)\n\
  --rates A,B,C       offered rates in req/s (default: calibrate, then 0.5x/1x/2x)\n\
  --seed N            workload RNG seed (default 1)\n\
  --no-robust         omit the robust block from request lines\n\
  --drain             POST /admin/drain and exit";

fn parse_args() -> Result<Options, String> {
    let mut options = Options::default();
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .ok_or_else(|| format!("{name} needs a value\n{USAGE}"))
        };
        match flag.as_str() {
            "--addr" => options.addr = value("--addr")?,
            "--out" => options.out = Some(value("--out")?),
            "--circuit" => options.circuit = value("--circuit")?,
            "--groups" => {
                options.groups = value("--groups")?.parse().map_err(|e| format!("{e}"))?;
            }
            "--partitions" => {
                options.partitions =
                    value("--partitions")?.parse().map_err(|e| format!("{e}"))?;
            }
            "--patterns" => {
                options.patterns = value("--patterns")?.parse().map_err(|e| format!("{e}"))?;
            }
            "--deadline-ms" => {
                options.deadline_ms =
                    value("--deadline-ms")?.parse().map_err(|e| format!("{e}"))?;
            }
            "--duration-ms" => {
                options.duration_ms =
                    value("--duration-ms")?.parse().map_err(|e| format!("{e}"))?;
            }
            "--seed" => options.seed = value("--seed")?.parse().map_err(|e| format!("{e}"))?,
            "--rates" => {
                options.rates = value("--rates")?
                    .split(',')
                    .map(|r| r.trim().parse::<f64>().map_err(|e| format!("{e}")))
                    .collect::<Result<_, _>>()?;
            }
            "--no-robust" => options.robust = false,
            "--drain" => options.drain = true,
            "--help" | "-h" => return Err(USAGE.to_owned()),
            other => return Err(format!("unknown flag `{other}`\n{USAGE}")),
        }
    }
    if options.addr.is_empty() {
        return Err(format!("--addr is required\n{USAGE}"));
    }
    Ok(options)
}

/// One NDJSON request line with a deterministic failing-group pattern.
fn request_line(options: &Options, rng: &mut ScanRng, index: usize) -> String {
    let mut failing = String::from("[");
    #[allow(clippy::cast_possible_truncation)]
    let groups = options.groups as usize;
    for p in 0..options.partitions {
        if p > 0 {
            failing.push(',');
        }
        // One or two failing groups per partition: noisy-but-plausible
        // evidence that exercises the voting fallback.
        let g1 = rng.gen_range(0, groups);
        if rng.gen_bool(0.3) {
            let g2 = rng.gen_range(0, groups);
            failing.push_str(&format!("[{g1},{g2}]"));
        } else {
            failing.push_str(&format!("[{g1}]"));
        }
    }
    failing.push(']');
    let robust = if options.robust {
        format!(",\"robust\":{{\"flip\":0.02,\"seed\":{}}}", options.seed)
    } else {
        String::new()
    };
    format!(
        "{{\"id\":\"lg-{index}\",\"circuit\":\"{}\",\"groups\":{},\"partitions\":{},\"patterns\":{},\"failing\":{failing},\"deadline_ms\":{}{robust},\"top\":8}}",
        options.circuit, options.groups, options.partitions, options.patterns, options.deadline_ms
    )
}

/// Sends one POST /diagnose and parses the response head.
fn send_once(addr: &str, body: &str) -> Result<Reply, String> {
    let started = Instant::now();
    let mut stream = TcpStream::connect(addr).map_err(|e| e.to_string())?;
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .map_err(|e| e.to_string())?;
    stream
        .set_write_timeout(Some(Duration::from_secs(10)))
        .map_err(|e| e.to_string())?;
    let request = format!(
        "POST /diagnose HTTP/1.1\r\nHost: scanbistd\r\nContent-Type: application/x-ndjson\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream
        .write_all(request.as_bytes())
        .map_err(|e| e.to_string())?;
    let mut raw = Vec::new();
    let _ = stream.read_to_end(&mut raw);
    let latency = started.elapsed();
    let text = String::from_utf8_lossy(&raw);
    let status: u16 = text
        .lines()
        .next()
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|s| s.parse().ok())
        .ok_or("no status line")?;
    let mut chaos = None;
    let mut queue_depth = None;
    let mut declared_len = None;
    for line in text.lines().skip(1) {
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            let value = value.trim();
            match name.to_ascii_lowercase().as_str() {
                "x-scanbist-chaos" => chaos = Some(value.to_owned()),
                "x-queue-depth" => queue_depth = value.parse().ok(),
                "content-length" => declared_len = value.parse::<usize>().ok(),
                _ => {}
            }
        }
    }
    let body_received = text
        .split_once("\r\n\r\n")
        .map_or(0, |(_, body)| body.len());
    let truncated = declared_len.is_some_and(|declared| body_received < declared);
    Ok(Reply {
        status,
        chaos,
        queue_depth,
        truncated,
        latency,
    })
}

/// Closed-loop capacity estimate: `senders` clients hammer serially
/// for `duration`; completed 200s per second approximate capacity.
fn calibrate(options: &Options, senders: usize, duration: Duration) -> f64 {
    let done = Arc::new(AtomicUsize::new(0));
    let deadline = Instant::now() + duration;
    std::thread::scope(|scope| {
        for s in 0..senders {
            let done = Arc::clone(&done);
            let mut rng = ScanRng::seed_from_u64(scan_rng::derive(options.seed, s as u64));
            scope.spawn(move || {
                let mut index = 0usize;
                while Instant::now() < deadline {
                    let line = request_line(options, &mut rng, index);
                    index += 1;
                    if let Ok(reply) = send_once(&options.addr, &line) {
                        if reply.status == 200 {
                            done.fetch_add(1, Ordering::SeqCst);
                        }
                    }
                }
            });
        }
    });
    let completed = done.load(Ordering::SeqCst);
    #[allow(clippy::cast_precision_loss)]
    let rate = completed as f64 / duration.as_secs_f64();
    rate.max(4.0)
}

/// Uniform in (0, 1]: 53 random bits, never exactly zero.
fn rng_uniform(rng: &mut ScanRng) -> f64 {
    let bits = rng.gen_range_u64(1, 1 << 53);
    #[allow(clippy::cast_precision_loss)]
    {
        bits as f64 / (1u64 << 53) as f64
    }
}

/// One open-loop Poisson scenario at `rate` requests per second.
fn run_scenario(options: &Options, rate: f64, label: &str) -> Scorecard {
    // Pre-draw the Poisson arrival schedule.
    let mut rng = ScanRng::seed_from_u64(scan_rng::derive(options.seed ^ 0x00D1_55ED, 0));
    let horizon = Duration::from_millis(options.duration_ms);
    let mut arrivals = Vec::new();
    let mut at = Duration::ZERO;
    loop {
        // Exponential inter-arrival: -ln(U)/rate.
        let gap = (-rng_uniform(&mut rng).ln() / rate).min(1.0);
        at += Duration::from_secs_f64(gap);
        if at >= horizon {
            break;
        }
        arrivals.push(at);
    }
    let scorecard = Mutex::new(Scorecard::default());
    let next = AtomicUsize::new(0);
    let start = Instant::now();
    let sender_count = 64usize;
    std::thread::scope(|scope| {
        for s in 0..sender_count {
            let scorecard = &scorecard;
            let next = &next;
            let arrivals = &arrivals;
            let mut rng =
                ScanRng::seed_from_u64(scan_rng::derive(options.seed, 1_000 + s as u64));
            scope.spawn(move || loop {
                let index = next.fetch_add(1, Ordering::SeqCst);
                let Some(at) = arrivals.get(index) else {
                    break;
                };
                let now = start.elapsed();
                if *at > now {
                    std::thread::sleep(*at - now);
                }
                let line = request_line(options, &mut rng, index);
                match send_once(&options.addr, &line) {
                    Ok(reply) => {
                        if let Ok(mut card) = scorecard.lock() {
                            card.absorb(&reply);
                        }
                    }
                    Err(_) => {
                        if let Ok(mut card) = scorecard.lock() {
                            card.sent += 1;
                            card.connect_failures += 1;
                        }
                    }
                }
            });
        }
    });
    let mut card = scorecard.into_inner().unwrap_or_default();
    card.ok_latencies_us.sort_unstable();
    #[allow(clippy::cast_precision_loss)]
    let goodput = card.ok as f64 / start.elapsed().as_secs_f64();
    println!(
        "scenario {label}: offered {rate:.0}/s sent {} ok {} 429 {} 503 {} 504 {} other {} chaos {} truncated {} goodput {goodput:.1}/s p99 {} us depth<= {}",
        card.sent,
        card.ok,
        card.shed_429,
        card.unavailable_503,
        card.deadline_504,
        card.other_status,
        card.chaos_injected,
        card.truncated,
        percentile(&card.ok_latencies_us, 0.99),
        card.max_queue_depth,
    );
    card
}

fn scenario_json(label: &str, rate: f64, duration_ms: u64, card: &Scorecard) -> String {
    #[allow(clippy::cast_precision_loss)]
    let goodput = card.ok as f64 / (duration_ms as f64 / 1_000.0);
    format!(
        "{{\"label\":\"{label}\",\"offered_rps\":{rate:.2},\"duration_ms\":{duration_ms},\
\"sent\":{},\"ok\":{},\"shed_429\":{},\"unavailable_503\":{},\"deadline_504\":{},\
\"other_status\":{},\"connect_failures\":{},\"chaos_injected\":{},\"truncated\":{},\
\"real_failures\":{},\"max_queue_depth\":{},\"goodput_rps\":{goodput:.2},\
\"latency_us\":{{\"p50\":{},\"p95\":{},\"p99\":{}}}}}",
        card.sent,
        card.ok,
        card.shed_429,
        card.unavailable_503,
        card.deadline_504,
        card.other_status,
        card.connect_failures,
        card.chaos_injected,
        card.truncated,
        card.real_failures(),
        card.max_queue_depth,
        percentile(&card.ok_latencies_us, 0.50),
        percentile(&card.ok_latencies_us, 0.95),
        percentile(&card.ok_latencies_us, 0.99),
    )
}

fn post_drain(addr: &str) -> Result<u16, String> {
    let mut stream = TcpStream::connect(addr).map_err(|e| e.to_string())?;
    stream
        .write_all(
            b"POST /admin/drain HTTP/1.1\r\nHost: scanbistd\r\nContent-Length: 0\r\nConnection: close\r\n\r\n",
        )
        .map_err(|e| e.to_string())?;
    let mut raw = String::new();
    let _ = stream.read_to_string(&mut raw);
    raw.lines()
        .next()
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| "no status line".to_owned())
}

fn main() {
    let options = match parse_args() {
        Ok(options) => options,
        Err(message) => {
            eprintln!("{message}");
            std::process::exit(2);
        }
    };
    if options.drain {
        match post_drain(&options.addr) {
            Ok(status) => {
                println!("drain: HTTP {status}");
                std::process::exit(i32::from(status != 200));
            }
            Err(e) => {
                eprintln!("drain failed: {e}");
                std::process::exit(1);
            }
        }
    }
    let (rates, capacity): (Vec<(String, f64)>, f64) = if options.rates.is_empty() {
        let capacity = calibrate(&options, 8, Duration::from_millis(700));
        println!("calibrated capacity ~{capacity:.0} req/s");
        (
            vec![
                ("underload".to_owned(), capacity * 0.5),
                ("saturation".to_owned(), capacity),
                ("overload".to_owned(), capacity * 2.0),
            ],
            capacity,
        )
    } else {
        (
            options
                .rates
                .iter()
                .enumerate()
                .map(|(i, &r)| (format!("rate-{i}"), r))
                .collect(),
            0.0,
        )
    };
    let mut results = Vec::new();
    let mut real_failures = 0usize;
    for (label, rate) in &rates {
        let card = run_scenario(&options, *rate, label);
        real_failures += card.real_failures();
        results.push(scenario_json(label, *rate, options.duration_ms, &card));
    }
    if let Some(out) = &options.out {
        let json = format!(
            "{{\"version\":1,\"suite\":\"daemon\",\"circuit\":\"{}\",\"groups\":{},\"partitions\":{},\"patterns\":{},\"deadline_ms\":{},\"calibrated_rps\":{capacity:.2},\"scenarios\":[{}]}}\n",
            options.circuit,
            options.groups,
            options.partitions,
            options.patterns,
            options.deadline_ms,
            results.join(",")
        );
        if let Err(e) = std::fs::write(out, json) {
            eprintln!("cannot write {out}: {e}");
            std::process::exit(1);
        }
        println!("wrote {out}");
    }
    std::process::exit(i32::from(real_failures > 0));
}
