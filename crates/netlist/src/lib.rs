//! Gate-level netlist substrate for the scan-BIST diagnosis workspace.
//!
//! This crate provides:
//!
//! * a validated, levelized [`Netlist`] representation of ISCAS-89-style
//!   sequential circuits ([`NetlistBuilder`], [`GateKind`] primitives);
//! * an ISCAS-89 `.bench` format parser and writer ([`mod@bench`]), with the
//!   real `s27` benchmark embedded as a golden reference;
//! * full-scan views ([`ScanView`]) mapping flip-flops and primary
//!   outputs to scan-chain shift positions;
//! * a synthetic benchmark-class circuit generator ([`generate`])
//!   matching the published ISCAS-89 interface statistics with
//!   structurally local connectivity (see `DESIGN.md` §5);
//! * structural cone analysis ([`stats`]) quantifying the failing-cell
//!   clustering the diagnosis schemes exploit;
//! * a compact [`BitSet`] shared by downstream crates.
//!
//! # Examples
//!
//! ```
//! use scan_netlist::{bench, ScanView};
//!
//! let s27 = bench::s27();
//! assert_eq!(s27.num_dffs(), 3);
//!
//! let view = ScanView::natural(&s27, true);
//! assert_eq!(view.len(), 4); // 3 scan cells + 1 primary output
//! ```

#![warn(missing_docs)]
#![warn(clippy::pedantic)]
#![allow(clippy::must_use_candidate, clippy::module_name_repetitions)]
#![allow(clippy::cast_possible_truncation, clippy::cast_precision_loss)]

pub mod bench;
mod bitset;
pub mod dot;
mod error;
mod gate;
pub mod generate;
mod netlist;
mod scan;
pub mod scoap;
pub mod stats;
pub mod verilog;

pub use bitset::{BitSet, Iter as BitSetIter};
pub use error::{NetlistError, ParseBenchError, ParseBenchErrorKind, ParseGateKindError};
pub use gate::{Dff, DffId, Driver, Gate, GateId, GateKind, NetId};
pub use netlist::{Netlist, NetlistBuilder};
pub use scan::{ObsPoint, ScanOrdering, ScanView};
