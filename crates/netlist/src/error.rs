//! Error types for netlist construction and parsing.

use std::error::Error;
use std::fmt;

/// Error returned when a `.bench` gate keyword is not recognized.
#[derive(Clone, Eq, PartialEq, Debug)]
pub struct ParseGateKindError {
    pub(crate) token: String,
}

impl fmt::Display for ParseGateKindError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown gate kind `{}`", self.token)
    }
}

impl Error for ParseGateKindError {}

/// Error returned when parsing ISCAS-89 `.bench` text fails.
#[derive(Clone, Eq, PartialEq, Debug)]
pub struct ParseBenchError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// What went wrong.
    pub kind: ParseBenchErrorKind,
}

/// The specific failure encountered while parsing `.bench` text.
#[derive(Clone, Eq, PartialEq, Debug)]
#[non_exhaustive]
pub enum ParseBenchErrorKind {
    /// A line was not a comment, an `INPUT`/`OUTPUT` declaration, or an
    /// assignment.
    MalformedLine(String),
    /// The gate keyword on an assignment line is not a known kind.
    UnknownGateKind(String),
    /// A gate had an invalid number of inputs for its kind.
    BadArity {
        /// The gate keyword.
        kind: String,
        /// Number of arguments found.
        found: usize,
    },
    /// The resulting netlist failed structural validation.
    Structure(NetlistError),
}

impl fmt::Display for ParseBenchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: ", self.line)?;
        match &self.kind {
            ParseBenchErrorKind::MalformedLine(l) => write!(f, "malformed line `{l}`"),
            ParseBenchErrorKind::UnknownGateKind(k) => write!(f, "unknown gate kind `{k}`"),
            ParseBenchErrorKind::BadArity { kind, found } => {
                write!(f, "gate `{kind}` cannot take {found} input(s)")
            }
            ParseBenchErrorKind::Structure(e) => write!(f, "{e}"),
        }
    }
}

impl Error for ParseBenchError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match &self.kind {
            ParseBenchErrorKind::Structure(e) => Some(e),
            _ => None,
        }
    }
}

/// Error returned when a netlist is structurally invalid.
#[derive(Clone, Eq, PartialEq, Debug)]
#[non_exhaustive]
pub enum NetlistError {
    /// A net is driven by more than one source.
    MultipleDrivers {
        /// Name of the multiply-driven net.
        net: String,
    },
    /// A net is referenced but never driven.
    Undriven {
        /// Name of the undriven net.
        net: String,
    },
    /// The combinational logic contains a cycle (through the named net).
    CombinationalCycle {
        /// Name of a net on the cycle.
        net: String,
    },
    /// A net name was declared twice as a primary input.
    DuplicateInput {
        /// The duplicated name.
        net: String,
    },
}

impl fmt::Display for NetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetlistError::MultipleDrivers { net } => {
                write!(f, "net `{net}` has multiple drivers")
            }
            NetlistError::Undriven { net } => write!(f, "net `{net}` is never driven"),
            NetlistError::CombinationalCycle { net } => {
                write!(f, "combinational cycle through net `{net}`")
            }
            NetlistError::DuplicateInput { net } => {
                write!(f, "net `{net}` declared as primary input twice")
            }
        }
    }
}

impl Error for NetlistError {}

impl From<NetlistError> for ParseBenchErrorKind {
    fn from(e: NetlistError) -> Self {
        ParseBenchErrorKind::Structure(e)
    }
}
