//! A compact fixed-capacity bit set used across the workspace for
//! candidate sets, cone membership, and error maps.

use std::fmt;

/// A fixed-capacity set of `usize` indices backed by `u64` words.
///
/// # Examples
///
/// ```
/// use scan_netlist::BitSet;
///
/// let mut s = BitSet::new(100);
/// s.insert(3);
/// s.insert(97);
/// assert_eq!(s.len(), 2);
/// assert!(s.contains(97));
/// assert_eq!(s.iter().collect::<Vec<_>>(), vec![3, 97]);
/// ```
#[derive(Clone, Eq, PartialEq, Hash, Default)]
pub struct BitSet {
    words: Vec<u64>,
    capacity: usize,
}

impl BitSet {
    /// Creates an empty set able to hold indices `0..capacity`.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        BitSet {
            words: vec![0; capacity.div_ceil(64)],
            capacity,
        }
    }

    /// Creates a set with every index in `0..capacity` present.
    #[must_use]
    pub fn full(capacity: usize) -> Self {
        let mut s = BitSet::new(capacity);
        for w in &mut s.words {
            *w = !0;
        }
        s.trim();
        s
    }

    /// The capacity (exclusive upper bound on member indices).
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Inserts an index. Returns `true` if it was newly inserted.
    ///
    /// # Panics
    ///
    /// Panics if `index >= capacity`.
    pub fn insert(&mut self, index: usize) -> bool {
        assert!(index < self.capacity, "index {index} out of capacity");
        let (w, b) = (index / 64, index % 64);
        let had = self.words[w] >> b & 1 != 0;
        self.words[w] |= 1 << b;
        !had
    }

    /// Removes an index. Returns `true` if it was present.
    ///
    /// # Panics
    ///
    /// Panics if `index >= capacity`.
    pub fn remove(&mut self, index: usize) -> bool {
        assert!(index < self.capacity, "index {index} out of capacity");
        let (w, b) = (index / 64, index % 64);
        let had = self.words[w] >> b & 1 != 0;
        self.words[w] &= !(1 << b);
        had
    }

    /// Returns `true` if the index is present.
    #[must_use]
    pub fn contains(&self, index: usize) -> bool {
        if index >= self.capacity {
            return false;
        }
        self.words[index / 64] >> (index % 64) & 1 != 0
    }

    /// Number of members.
    #[must_use]
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Returns `true` if the set has no members.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// In-place intersection with another set of the same capacity.
    ///
    /// # Panics
    ///
    /// Panics if the capacities differ.
    pub fn intersect_with(&mut self, other: &BitSet) {
        assert_eq!(self.capacity, other.capacity, "capacity mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= b;
        }
    }

    /// In-place union with another set of the same capacity.
    ///
    /// # Panics
    ///
    /// Panics if the capacities differ.
    pub fn union_with(&mut self, other: &BitSet) {
        assert_eq!(self.capacity, other.capacity, "capacity mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// In-place difference (`self \ other`).
    ///
    /// # Panics
    ///
    /// Panics if the capacities differ.
    pub fn difference_with(&mut self, other: &BitSet) {
        assert_eq!(self.capacity, other.capacity, "capacity mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= !b;
        }
    }

    /// Returns `true` if the sets share at least one member.
    #[must_use]
    pub fn intersects(&self, other: &BitSet) -> bool {
        self.words
            .iter()
            .zip(&other.words)
            .any(|(&a, &b)| a & b != 0)
    }

    /// Returns `true` if every member of `self` is in `other`.
    #[must_use]
    pub fn is_subset(&self, other: &BitSet) -> bool {
        self.words
            .iter()
            .zip(&other.words)
            .all(|(&a, &b)| a & !b == 0)
    }

    /// Removes all members.
    pub fn clear(&mut self) {
        for w in &mut self.words {
            *w = 0;
        }
    }

    /// Iterates over member indices in ascending order.
    pub fn iter(&self) -> Iter<'_> {
        Iter {
            set: self,
            word: 0,
            bits: self.words.first().copied().unwrap_or(0),
        }
    }

    /// The smallest member, if any.
    #[must_use]
    pub fn first(&self) -> Option<usize> {
        self.iter().next()
    }

    fn trim(&mut self) {
        let extra = self.words.len() * 64 - self.capacity;
        if extra > 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= !0u64 >> extra;
            }
        }
    }
}

impl fmt::Debug for BitSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

impl FromIterator<usize> for BitSet {
    /// Builds a set with capacity `max + 1` from the items.
    fn from_iter<I: IntoIterator<Item = usize>>(iter: I) -> Self {
        let items: Vec<usize> = iter.into_iter().collect();
        let cap = items.iter().copied().max().map_or(0, |m| m + 1);
        let mut s = BitSet::new(cap);
        for i in items {
            s.insert(i);
        }
        s
    }
}

impl Extend<usize> for BitSet {
    fn extend<I: IntoIterator<Item = usize>>(&mut self, iter: I) {
        for i in iter {
            self.insert(i);
        }
    }
}

/// Iterator over the members of a [`BitSet`].
#[derive(Clone, Debug)]
pub struct Iter<'a> {
    set: &'a BitSet,
    word: usize,
    bits: u64,
}

impl Iterator for Iter<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        loop {
            if self.bits != 0 {
                let b = self.bits.trailing_zeros() as usize;
                self.bits &= self.bits - 1;
                return Some(self.word * 64 + b);
            }
            self.word += 1;
            if self.word >= self.set.words.len() {
                return None;
            }
            self.bits = self.set.words[self.word];
        }
    }
}

impl<'a> IntoIterator for &'a BitSet {
    type Item = usize;
    type IntoIter = Iter<'a>;

    fn into_iter(self) -> Iter<'a> {
        self.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_remove_contains() {
        let mut s = BitSet::new(130);
        assert!(s.insert(0));
        assert!(!s.insert(0));
        assert!(s.insert(129));
        assert!(s.contains(0));
        assert!(s.contains(129));
        assert!(!s.contains(64));
        assert!(s.remove(0));
        assert!(!s.remove(0));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn full_respects_capacity() {
        let s = BitSet::full(70);
        assert_eq!(s.len(), 70);
        assert!(s.contains(69));
        assert!(!s.contains(70));
    }

    #[test]
    fn set_operations() {
        let a: BitSet = [1usize, 3, 5, 7].into_iter().collect();
        let mut a = {
            let mut t = BitSet::new(10);
            for i in &a {
                t.insert(i);
            }
            t
        };
        let mut b = BitSet::new(10);
        for i in [3usize, 4, 5] {
            b.insert(i);
        }
        let mut u = a.clone();
        u.union_with(&b);
        assert_eq!(u.iter().collect::<Vec<_>>(), vec![1, 3, 4, 5, 7]);
        a.intersect_with(&b);
        assert_eq!(a.iter().collect::<Vec<_>>(), vec![3, 5]);
        assert!(a.is_subset(&b));
        assert!(a.intersects(&b));
        let mut d = u;
        d.difference_with(&b);
        assert_eq!(d.iter().collect::<Vec<_>>(), vec![1, 7]);
    }

    #[test]
    fn iter_over_word_boundaries() {
        let mut s = BitSet::new(200);
        for i in [0usize, 63, 64, 127, 128, 199] {
            s.insert(i);
        }
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![0, 63, 64, 127, 128, 199]);
    }

    #[test]
    #[should_panic(expected = "out of capacity")]
    fn insert_out_of_capacity_panics() {
        let mut s = BitSet::new(8);
        s.insert(8);
    }

    #[test]
    #[should_panic(expected = "capacity mismatch")]
    fn mismatched_capacities_panic() {
        let mut a = BitSet::new(8);
        let b = BitSet::new(9);
        a.intersect_with(&b);
    }
}
