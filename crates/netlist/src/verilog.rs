//! Structural Verilog export.
//!
//! Writes a netlist as a synthesizable gate-level Verilog module using
//! primitive gates (`and`, `nand`, `or`, `nor`, `xor`, `xnor`, `not`,
//! `buf`) and behavioural D flip-flops — the handoff format for
//! inspecting the synthetic benchmarks in standard EDA tools.

use std::fmt::Write as _;

use crate::gate::{GateKind, NetId};
use crate::Netlist;

/// Renders the netlist as a structural Verilog module.
///
/// Net names are sanitized to Verilog identifiers (non-alphanumeric
/// characters become `_`; a leading digit gets an `n` prefix).
///
/// # Examples
///
/// ```
/// use scan_netlist::{bench, verilog};
///
/// let v = verilog::to_verilog(&bench::s27());
/// assert!(v.contains("module s27"));
/// assert!(v.contains("always @(posedge clk)"));
/// ```
#[must_use]
pub fn to_verilog(netlist: &Netlist) -> String {
    let mut out = String::new();
    let ident = |net: NetId| sanitize(netlist.net_name(net));
    let module = sanitize(netlist.name());

    let mut ports: Vec<String> = vec!["clk".to_owned()];
    ports.extend(netlist.inputs().iter().map(|&n| ident(n)));
    ports.extend(netlist.outputs().iter().map(|&n| ident(n)));
    let _ = writeln!(out, "module {module} ({});", ports.join(", "));
    let _ = writeln!(out, "  input clk;");
    for &net in netlist.inputs() {
        let _ = writeln!(out, "  input {};", ident(net));
    }
    for &net in netlist.outputs() {
        let _ = writeln!(out, "  output {};", ident(net));
    }
    // Internal wires: every net that is neither a PI nor a DFF output.
    let mut regs = Vec::new();
    for dff in netlist.dffs() {
        regs.push(ident(dff.q));
    }
    for net in netlist.net_ids() {
        let name = ident(net);
        let is_pi = netlist.inputs().contains(&net);
        let is_reg = regs.contains(&name);
        if !is_pi && !is_reg {
            let _ = writeln!(out, "  wire {name};");
        }
    }
    for reg in &regs {
        let _ = writeln!(out, "  reg {reg};");
    }
    let _ = writeln!(out);
    for (i, gate) in netlist.gates().iter().enumerate() {
        let prim = match gate.kind {
            GateKind::And => "and",
            GateKind::Nand => "nand",
            GateKind::Or => "or",
            GateKind::Nor => "nor",
            GateKind::Xor => "xor",
            GateKind::Xnor => "xnor",
            GateKind::Not => "not",
            GateKind::Buf => "buf",
        };
        let mut pins = vec![ident(gate.output)];
        pins.extend(gate.inputs.iter().map(|&n| ident(n)));
        let _ = writeln!(out, "  {prim} g{i} ({});", pins.join(", "));
    }
    if !netlist.dffs().is_empty() {
        let _ = writeln!(out);
        let _ = writeln!(out, "  always @(posedge clk) begin");
        for dff in netlist.dffs() {
            let _ = writeln!(out, "    {} <= {};", ident(dff.q), ident(dff.d));
        }
        let _ = writeln!(out, "  end");
    }
    let _ = writeln!(out, "endmodule");
    out
}

fn sanitize(name: &str) -> String {
    let mut ident: String = name
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() || c == '_' { c } else { '_' })
        .collect();
    if ident.chars().next().is_none_or(|c| c.is_ascii_digit()) {
        ident.insert(0, 'n');
    }
    ident
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bench;

    #[test]
    fn s27_verilog_structure() {
        let v = to_verilog(&bench::s27());
        assert!(v.starts_with("module s27 (clk, G0, G1, G2, G3, G17);"));
        assert!(v.contains("input G0;"));
        assert!(v.contains("output G17;"));
        assert!(v.contains("reg G5;"));
        assert!(v.contains("nand g"));
        assert!(v.contains("G5 <= G10;"));
        assert!(v.trim_end().ends_with("endmodule"));
    }

    #[test]
    fn gate_count_preserved() {
        let n = bench::s27();
        let v = to_verilog(&n);
        let gate_lines = v
            .lines()
            .filter(|l| {
                let t = l.trim_start();
                ["and ", "nand ", "or ", "nor ", "xor ", "xnor ", "not ", "buf "]
                    .iter()
                    .any(|p| t.starts_with(p))
            })
            .count();
        assert_eq!(gate_lines, n.num_gates());
    }

    #[test]
    fn sanitize_handles_awkward_names() {
        assert_eq!(sanitize("G10"), "G10");
        assert_eq!(sanitize("10g"), "n10g");
        assert_eq!(sanitize("a.b[3]"), "a_b_3_");
        assert_eq!(sanitize(""), "n");
    }

    #[test]
    fn combinational_circuit_has_no_always_block() {
        let n = crate::Netlist::from_bench("inv", "INPUT(a)\nOUTPUT(y)\ny = NOT(a)\n").unwrap();
        let v = to_verilog(&n);
        assert!(!v.contains("always"));
        assert!(v.contains("not g0 (y, a);"));
    }
}
