//! Netlist storage, construction, validation, and levelization.

use std::collections::HashMap;

use crate::error::NetlistError;
use crate::gate::{Dff, DffId, Driver, Gate, GateId, GateKind, NetId};

/// A gate-level sequential netlist in the ISCAS-89 style.
///
/// A netlist consists of named nets, primary inputs and outputs,
/// combinational gates, and D flip-flops. Under the full-scan assumption
/// every flip-flop is a scan cell: its output (`q`) acts as a
/// pseudo-primary input and its data input (`d`) as a pseudo-primary
/// output.
///
/// Construct a netlist with [`NetlistBuilder`], by parsing `.bench` text
/// with [`Netlist::from_bench`](crate::Netlist::from_bench), or with the
/// synthetic generator in [`generate`](crate::generate).
///
/// # Examples
///
/// ```
/// use scan_netlist::{NetlistBuilder, GateKind};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = NetlistBuilder::new("toy");
/// let a = b.input("a");
/// let clk_q = b.dff("state", "next");
/// let out = b.gate(GateKind::And, "out", &["a", "state"]);
/// b.output("out");
/// b.connect_dff_d("next", &["out"])?; // next = BUF(out)
/// let netlist = b.finish()?;
/// assert_eq!(netlist.num_inputs(), 1);
/// assert_eq!(netlist.num_dffs(), 1);
/// # let _ = (a, clk_q, out);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct Netlist {
    name: String,
    net_names: Vec<String>,
    drivers: Vec<Driver>,
    gates: Vec<Gate>,
    dffs: Vec<Dff>,
    inputs: Vec<NetId>,
    outputs: Vec<NetId>,
    /// Gates in topological (levelized) order.
    topo: Vec<GateId>,
    /// Level of each gate (1 + max level of its input drivers; PIs and FF
    /// outputs are level 0).
    levels: Vec<u32>,
    /// Fanout gate lists per net.
    fanouts: Vec<Vec<GateId>>,
}

impl Netlist {
    /// The circuit name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of nets.
    #[must_use]
    pub fn num_nets(&self) -> usize {
        self.net_names.len()
    }

    /// Number of combinational gates.
    #[must_use]
    pub fn num_gates(&self) -> usize {
        self.gates.len()
    }

    /// Number of flip-flops (scan cells under full scan).
    #[must_use]
    pub fn num_dffs(&self) -> usize {
        self.dffs.len()
    }

    /// Number of primary inputs.
    #[must_use]
    pub fn num_inputs(&self) -> usize {
        self.inputs.len()
    }

    /// Number of primary outputs.
    #[must_use]
    pub fn num_outputs(&self) -> usize {
        self.outputs.len()
    }

    /// Primary input nets, in declaration order.
    #[must_use]
    pub fn inputs(&self) -> &[NetId] {
        &self.inputs
    }

    /// Primary output nets, in declaration order.
    #[must_use]
    pub fn outputs(&self) -> &[NetId] {
        &self.outputs
    }

    /// All flip-flops, in declaration order.
    #[must_use]
    pub fn dffs(&self) -> &[Dff] {
        &self.dffs
    }

    /// All combinational gates.
    #[must_use]
    pub fn gates(&self) -> &[Gate] {
        &self.gates
    }

    /// Looks up a gate by id.
    #[must_use]
    pub fn gate(&self, id: GateId) -> &Gate {
        &self.gates[id.index()]
    }

    /// Looks up a flip-flop by id.
    #[must_use]
    pub fn dff(&self, id: DffId) -> Dff {
        self.dffs[id.index()]
    }

    /// The name of a net.
    #[must_use]
    pub fn net_name(&self, net: NetId) -> &str {
        &self.net_names[net.index()]
    }

    /// The driver of a net.
    #[must_use]
    pub fn driver(&self, net: NetId) -> Driver {
        self.drivers[net.index()]
    }

    /// Finds a net by name.
    #[must_use]
    pub fn find_net(&self, name: &str) -> Option<NetId> {
        self.net_names
            .iter()
            .position(|n| n == name)
            .map(|i| NetId(i as u32))
    }

    /// Gates in topological order (inputs before users); suitable for a
    /// single-pass levelized evaluation.
    #[must_use]
    pub fn topo_order(&self) -> &[GateId] {
        &self.topo
    }

    /// The level of a gate (length of the longest combinational path from
    /// any primary input or flip-flop output to the gate).
    #[must_use]
    pub fn gate_level(&self, id: GateId) -> u32 {
        self.levels[id.index()]
    }

    /// The maximum gate level (combinational depth) of the circuit.
    #[must_use]
    pub fn depth(&self) -> u32 {
        self.levels.iter().copied().max().unwrap_or(0)
    }

    /// Gates that read the given net.
    #[must_use]
    pub fn fanout(&self, net: NetId) -> &[GateId] {
        &self.fanouts[net.index()]
    }

    /// Number of gate input pins reading the given net (fanout count,
    /// counting repeated pins of one gate individually).
    #[must_use]
    pub fn fanout_count(&self, net: NetId) -> usize {
        self.fanouts[net.index()]
            .iter()
            .map(|&g| {
                self.gates[g.index()]
                    .inputs
                    .iter()
                    .filter(|&&n| n == net)
                    .count()
            })
            .sum()
    }

    /// Iterates over all net ids.
    pub fn net_ids(&self) -> impl Iterator<Item = NetId> + '_ {
        (0..self.net_names.len() as u32).map(NetId)
    }

    /// Iterates over all gate ids in storage order.
    pub fn gate_ids(&self) -> impl Iterator<Item = GateId> + '_ {
        (0..self.gates.len() as u32).map(GateId)
    }

    /// Iterates over all flip-flop ids in declaration order.
    pub fn dff_ids(&self) -> impl Iterator<Item = DffId> + '_ {
        (0..self.dffs.len() as u32).map(DffId)
    }
}

/// Incremental builder for [`Netlist`].
///
/// Nets are created on first reference by name; [`NetlistBuilder::finish`]
/// validates single-driver discipline, absence of combinational cycles,
/// and that every referenced net is driven.
#[derive(Clone, Debug)]
pub struct NetlistBuilder {
    name: String,
    net_names: Vec<String>,
    by_name: HashMap<String, NetId>,
    drivers: Vec<Option<Driver>>,
    gates: Vec<Gate>,
    dffs: Vec<Dff>,
    inputs: Vec<NetId>,
    outputs: Vec<NetId>,
    /// Nets that received a second driver; reported by `finish`.
    conflicts: Vec<NetId>,
}

impl NetlistBuilder {
    /// Creates an empty builder for a circuit with the given name.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        NetlistBuilder {
            name: name.into(),
            net_names: Vec::new(),
            // lint:allow(L014): name→id lookup only (get/insert), never iterated
            by_name: HashMap::new(),
            drivers: Vec::new(),
            gates: Vec::new(),
            dffs: Vec::new(),
            inputs: Vec::new(),
            outputs: Vec::new(),
            conflicts: Vec::new(),
        }
    }

    /// Returns the id for a named net, creating the net if needed.
    pub fn net(&mut self, name: &str) -> NetId {
        if let Some(&id) = self.by_name.get(name) {
            return id;
        }
        let id = NetId(self.net_names.len() as u32);
        self.net_names.push(name.to_owned());
        self.by_name.insert(name.to_owned(), id);
        self.drivers.push(None);
        id
    }

    /// Declares a primary input net.
    pub fn input(&mut self, name: &str) -> NetId {
        let id = self.net(name);
        // A repeated INPUT(x) is reported as DuplicateInput by finish();
        // don't also record it as a driver conflict.
        if !self.inputs.contains(&id) {
            self.set_driver(id, Driver::PrimaryInput);
        }
        self.inputs.push(id);
        id
    }

    /// Declares a primary output net (the net may be driven later).
    pub fn output(&mut self, name: &str) -> NetId {
        let id = self.net(name);
        self.outputs.push(id);
        id
    }

    /// Adds a combinational gate driving `output` from `inputs`.
    ///
    /// Returns the output net id.
    pub fn gate(&mut self, kind: GateKind, output: &str, inputs: &[&str]) -> NetId {
        let out = self.net(output);
        let ins: Vec<NetId> = inputs.iter().map(|n| self.net(n)).collect();
        let gid = GateId(self.gates.len() as u32);
        self.gates.push(Gate {
            kind,
            inputs: ins,
            output: out,
        });
        self.set_driver(out, Driver::Gate(gid));
        out
    }

    /// Adds a D flip-flop with output net `q` and data input net `d`
    /// (ISCAS-89 `q = DFF(d)`), returning the Q net id.
    pub fn dff(&mut self, q: &str, d: &str) -> NetId {
        let qid = self.net(q);
        let did = self.net(d);
        let ffid = DffId(self.dffs.len() as u32);
        self.dffs.push(Dff { d: did, q: qid });
        self.set_driver(qid, Driver::Dff(ffid));
        qid
    }

    /// Convenience: drives the named DFF data net with a buffer of a
    /// single source (used by doc examples and generators).
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::MultipleDrivers`] if `d_net` is already
    /// driven.
    pub fn connect_dff_d(&mut self, d_net: &str, sources: &[&str]) -> Result<(), NetlistError> {
        let d = self.net(d_net);
        if self.drivers[d.index()].is_some() {
            return Err(NetlistError::MultipleDrivers {
                net: self.net_names[d.index()].clone(),
            });
        }
        let kind = if sources.len() == 1 {
            GateKind::Buf
        } else {
            GateKind::And
        };
        self.gate(kind, d_net, sources);
        Ok(())
    }

    fn set_driver(&mut self, net: NetId, driver: Driver) {
        let slot = &mut self.drivers[net.index()];
        if slot.is_none() {
            *slot = Some(driver);
        } else {
            // Record the conflict by leaving the first driver in place and
            // remembering the net; simplest is to push a sentinel gate-level
            // error at finish time. We tag conflicts in a side list.
            self.conflicts.push(net);
        }
    }

    /// Validates and freezes the netlist.
    ///
    /// # Errors
    ///
    /// Returns an error if any net has zero or multiple drivers, a primary
    /// input is declared twice, or the combinational logic is cyclic.
    ///
    /// # Panics
    ///
    /// Panics only on internal invariant violations (never for caller
    /// mistakes, which are reported as errors).
    pub fn finish(self) -> Result<Netlist, NetlistError> {
        // Duplicate primary input declarations.
        {
            // lint:allow(L014): duplicate detection via insert(), never iterated
            let mut seen = std::collections::HashSet::new();
            for &i in &self.inputs {
                if !seen.insert(i) {
                    return Err(NetlistError::DuplicateInput {
                        net: self.net_names[i.index()].clone(),
                    });
                }
            }
        }
        if let Some(&net) = self.conflicts.first() {
            return Err(NetlistError::MultipleDrivers {
                net: self.net_names[net.index()].clone(),
            });
        }
        // Every net driven.
        let mut drivers = Vec::with_capacity(self.drivers.len());
        for (i, d) in self.drivers.iter().enumerate() {
            match d {
                Some(d) => drivers.push(*d),
                None => {
                    return Err(NetlistError::Undriven {
                        net: self.net_names[i].clone(),
                    })
                }
            }
        }
        // Levelize: Kahn's algorithm over gates only (PIs and DFF Qs are
        // sources; DFF D inputs are sinks and do not feed back
        // combinationally).
        let num_gates = self.gates.len();
        let mut indegree = vec![0u32; num_gates];
        let mut fanouts: Vec<Vec<GateId>> = vec![Vec::new(); self.net_names.len()];
        for (gi, gate) in self.gates.iter().enumerate() {
            for &input in &gate.inputs {
                // A gate reading the same net on several pins appears once
                // in the fanout list; fanout_count() counts pins.
                if fanouts[input.index()].last() != Some(&GateId(gi as u32)) {
                    fanouts[input.index()].push(GateId(gi as u32));
                    if let Driver::Gate(_) = drivers[input.index()] {
                        indegree[gi] += 1;
                    }
                }
            }
        }
        let mut levels = vec![0u32; num_gates];
        let mut topo = Vec::with_capacity(num_gates);
        let mut queue: Vec<GateId> = indegree
            .iter()
            .enumerate()
            .filter(|&(_, &d)| d == 0)
            .map(|(i, _)| GateId(i as u32))
            .collect();
        let mut head = 0;
        while head < queue.len() {
            let g = queue[head];
            head += 1;
            topo.push(g);
            let out = self.gates[g.index()].output;
            let lvl = levels[g.index()];
            for &succ in &fanouts[out.index()] {
                levels[succ.index()] = levels[succ.index()].max(lvl + 1);
                indegree[succ.index()] -= 1;
                if indegree[succ.index()] == 0 {
                    queue.push(succ);
                }
            }
        }
        if topo.len() != num_gates {
            // Some gate is on a combinational cycle; find one for the error.
            let cyclic = (0..num_gates)
                .find(|&i| indegree[i] > 0)
                .expect("cycle implies a gate with nonzero indegree");
            return Err(NetlistError::CombinationalCycle {
                net: self.net_names[self.gates[cyclic].output.index()].clone(),
            });
        }
        // Adjust levels so every gate level is 1 + max(level of gate-driven
        // inputs), with source-driven gates at level 1 (done: levels start
        // at 0 for source gates; shift by 1 for a conventional depth).
        for l in &mut levels {
            *l += 1;
        }
        Ok(Netlist {
            name: self.name,
            net_names: self.net_names,
            drivers,
            gates: self.gates,
            dffs: self.dffs,
            inputs: self.inputs,
            outputs: self.outputs,
            topo,
            levels,
            fanouts,
        })
    }
}

impl NetlistBuilder {
    /// Number of nets created so far.
    #[must_use]
    pub fn num_nets(&self) -> usize {
        self.net_names.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> NetlistBuilder {
        let mut b = NetlistBuilder::new("tiny");
        b.input("a");
        b.input("b");
        b.gate(GateKind::And, "x", &["a", "b"]);
        b.gate(GateKind::Not, "y", &["x"]);
        b.output("y");
        b
    }

    #[test]
    fn builds_and_levelizes() {
        let n = tiny().finish().unwrap();
        assert_eq!(n.num_gates(), 2);
        assert_eq!(n.depth(), 2);
        let x = n.find_net("x").unwrap();
        let y = n.find_net("y").unwrap();
        assert!(matches!(n.driver(x), Driver::Gate(_)));
        assert_eq!(n.fanout(x).len(), 1);
        assert_eq!(n.fanout(y).len(), 0);
        // topo order puts the AND before the NOT
        let order = n.topo_order();
        assert_eq!(n.gate(order[0]).kind, GateKind::And);
        assert_eq!(n.gate(order[1]).kind, GateKind::Not);
    }

    #[test]
    fn undriven_net_rejected() {
        let mut b = tiny();
        b.gate(GateKind::Or, "z", &["x", "ghost"]);
        let err = b.finish().unwrap_err();
        assert!(matches!(err, NetlistError::Undriven { net } if net == "ghost"));
    }

    #[test]
    fn multiple_drivers_rejected() {
        let mut b = tiny();
        b.gate(GateKind::Or, "x", &["a", "b"]);
        let err = b.finish().unwrap_err();
        assert!(matches!(err, NetlistError::MultipleDrivers { net } if net == "x"));
    }

    #[test]
    fn duplicate_input_rejected() {
        let mut b = NetlistBuilder::new("d");
        b.input("a");
        b.input("a");
        b.gate(GateKind::Buf, "y", &["a"]);
        b.output("y");
        let err = b.finish().unwrap_err();
        assert!(matches!(err, NetlistError::DuplicateInput { net } if net == "a"));
    }

    #[test]
    fn combinational_cycle_rejected() {
        let mut b = NetlistBuilder::new("c");
        b.input("a");
        b.gate(GateKind::And, "x", &["a", "y"]);
        b.gate(GateKind::Or, "y", &["x", "a"]);
        b.output("y");
        let err = b.finish().unwrap_err();
        assert!(matches!(err, NetlistError::CombinationalCycle { .. }));
    }

    #[test]
    fn dff_breaks_cycles() {
        // State feedback through a DFF is fine.
        let mut b = NetlistBuilder::new("seq");
        b.input("a");
        b.dff("q", "d");
        b.gate(GateKind::Xor, "d", &["a", "q"]);
        b.output("d");
        let n = b.finish().unwrap();
        assert_eq!(n.num_dffs(), 1);
        assert_eq!(n.depth(), 1);
    }

    #[test]
    fn fanout_count_counts_pins() {
        let mut b = NetlistBuilder::new("f");
        b.input("a");
        b.gate(GateKind::Xor, "y", &["a", "a"]);
        b.output("y");
        let n = b.finish().unwrap();
        let a = n.find_net("a").unwrap();
        assert_eq!(n.fanout(a).len(), 1);
        assert_eq!(n.fanout_count(a), 2);
    }
}
