//! SCOAP testability measures.
//!
//! The Sandia Controllability/Observability Analysis Program metrics
//! (Goldstein, 1979) estimate, per net, how hard it is to *control* the
//! net to 0 or 1 (`CC0`/`CC1`) and to *observe* it at an output
//! (`CO`), counting the number of circuit nodes that must be assigned.
//! They are the standard cheap testability proxy: ATPG uses them to
//! order backtrace choices, and DFT engineers use them to spot
//! hard-to-test regions.
//!
//! Under the full-scan assumption, primary inputs and flip-flop outputs
//! are directly controllable (cost 1) and flip-flop data inputs are
//! directly observable (cost 0), so the combinational formulation
//! applies to the whole circuit.

use crate::gate::{Driver, GateKind, NetId};
use crate::Netlist;

/// Cost value used for unreachable/uncomputed measures.
pub const SCOAP_INFINITY: u32 = u32::MAX / 4;

/// Per-net SCOAP measures.
#[derive(Clone, Debug)]
pub struct Scoap {
    cc0: Vec<u32>,
    cc1: Vec<u32>,
    co: Vec<u32>,
}

impl Scoap {
    /// Computes combinational SCOAP for a full-scan netlist.
    #[must_use]
    #[allow(clippy::too_many_lines)]
    pub fn compute(netlist: &Netlist) -> Self {
        let n = netlist.num_nets();
        let mut cc0 = vec![SCOAP_INFINITY; n];
        let mut cc1 = vec![SCOAP_INFINITY; n];
        // Sources: PIs and scan flip-flop outputs cost 1 either way.
        for net in netlist.net_ids() {
            if matches!(
                netlist.driver(net),
                Driver::PrimaryInput | Driver::Dff(_)
            ) {
                cc0[net.index()] = 1;
                cc1[net.index()] = 1;
            }
        }
        // Controllability: forward pass in topological order.
        for &gid in netlist.topo_order() {
            let gate = netlist.gate(gid);
            let out = gate.output.index();
            let ins: Vec<(u32, u32)> = gate
                .inputs
                .iter()
                .map(|i| (cc0[i.index()], cc1[i.index()]))
                .collect();
            let sum0: u32 = ins.iter().map(|&(a, _)| a).sum::<u32>().min(SCOAP_INFINITY);
            let sum1: u32 = ins.iter().map(|&(_, b)| b).sum::<u32>().min(SCOAP_INFINITY);
            let min0 = ins.iter().map(|&(a, _)| a).min().unwrap_or(SCOAP_INFINITY);
            let min1 = ins.iter().map(|&(_, b)| b).min().unwrap_or(SCOAP_INFINITY);
            let (c0, c1) = match gate.kind {
                // AND: output 1 needs all inputs 1; output 0 needs the
                // cheapest input at 0.
                GateKind::And => (min0 + 1, sum1 + 1),
                GateKind::Nand => (sum1 + 1, min0 + 1),
                GateKind::Or => (sum0 + 1, min1 + 1),
                GateKind::Nor => (min1 + 1, sum0 + 1),
                GateKind::Not => (ins[0].1 + 1, ins[0].0 + 1),
                GateKind::Buf => (ins[0].0 + 1, ins[0].1 + 1),
                // XOR/XNOR: parity; cost over the cheapest parity-
                // consistent assignment (exact for 2 inputs, a standard
                // approximation for wider gates).
                GateKind::Xor | GateKind::Xnor => {
                    let (even, odd) = parity_costs(&ins);
                    if gate.kind == GateKind::Xor {
                        (even + 1, odd + 1)
                    } else {
                        (odd + 1, even + 1)
                    }
                }
            };
            cc0[out] = c0.min(SCOAP_INFINITY);
            cc1[out] = c1.min(SCOAP_INFINITY);
        }
        // Observability: backward pass. Observation points cost 0.
        let mut co = vec![SCOAP_INFINITY; n];
        for &net in netlist.outputs() {
            co[net.index()] = 0;
        }
        for dff in netlist.dffs() {
            co[dff.d.index()] = 0;
        }
        for &gid in netlist.topo_order().iter().rev() {
            let gate = netlist.gate(gid);
            let out_co = co[gate.output.index()];
            if out_co >= SCOAP_INFINITY {
                continue;
            }
            for (pin, &input) in gate.inputs.iter().enumerate() {
                // To observe input `pin`, the other inputs must be set
                // to non-controlling (non-masking) values and the output
                // observed.
                let side_cost: u32 = gate
                    .inputs
                    .iter()
                    .enumerate()
                    .filter(|&(k, _)| k != pin)
                    .map(|(_, other)| {
                        let o = other.index();
                        match gate.kind {
                            GateKind::And | GateKind::Nand => cc1[o],
                            GateKind::Or | GateKind::Nor => cc0[o],
                            // XOR side inputs just need a known value.
                            GateKind::Xor | GateKind::Xnor => cc0[o].min(cc1[o]),
                            GateKind::Not | GateKind::Buf => 0,
                        }
                    })
                    .fold(0u32, u32::saturating_add);
                let cost = out_co
                    .saturating_add(side_cost)
                    .saturating_add(1)
                    .min(SCOAP_INFINITY);
                let i = input.index();
                co[i] = co[i].min(cost);
            }
        }
        Scoap { cc0, cc1, co }
    }

    /// Cost of controlling `net` to 0.
    #[must_use]
    pub fn cc0(&self, net: NetId) -> u32 {
        self.cc0[net.index()]
    }

    /// Cost of controlling `net` to 1.
    #[must_use]
    pub fn cc1(&self, net: NetId) -> u32 {
        self.cc1[net.index()]
    }

    /// Cost of controlling `net` to the given value.
    #[must_use]
    pub fn cc(&self, net: NetId, value: bool) -> u32 {
        if value {
            self.cc1(net)
        } else {
            self.cc0(net)
        }
    }

    /// Cost of observing `net`.
    #[must_use]
    pub fn co(&self, net: NetId) -> u32 {
        self.co[net.index()]
    }

    /// A combined testability cost for detecting a stuck-at fault on
    /// the net: control it to the opposite value and observe it.
    #[must_use]
    pub fn detect_cost(&self, net: NetId, stuck: bool) -> u32 {
        self.cc(net, !stuck).saturating_add(self.co(net))
    }
}

/// Suggests per-source 1-probabilities for weighted-random pattern
/// generation: each primary input and flip-flop state bit is biased
/// toward the *non-controlling* value its fanout pins want most, so
/// deep AND/OR structures are sensitized more often than uniform
/// patterns manage (the classical weighted-random BIST heuristic).
///
/// Returns `(pi_weights, state_weights)` in [`Netlist::inputs`] and
/// [`Netlist::dffs`] order; weights are Laplace-smoothed into
/// `[1/(n+2), (n+1)/(n+2)]` so no bit is ever constant.
#[must_use]
pub fn suggested_input_weights(netlist: &Netlist) -> (Vec<f64>, Vec<f64>) {
    let weight_for = |net: NetId| -> f64 {
        let mut want_one = 0usize;
        let mut total = 0usize;
        for &gid in netlist.fanout(net) {
            let gate = netlist.gate(gid);
            for &input in &gate.inputs {
                if input != net {
                    continue;
                }
                total += 1;
                // The non-controlling value keeps this pin from masking
                // the gate: 1 for AND/NAND, 0 for OR/NOR.
                if let Some(c) = gate.kind.controlling_value() {
                    if !c {
                        want_one += 1;
                    }
                } else {
                    // XOR/unary pins have no preference; split the vote.
                    total += 1;
                    want_one += 1;
                }
            }
        }
        (want_one + 1) as f64 / (total + 2) as f64
    };
    let pi = netlist.inputs().iter().map(|&n| weight_for(n)).collect();
    let state = netlist.dffs().iter().map(|d| weight_for(d.q)).collect();
    (pi, state)
}

/// Costs of achieving even / odd parity over the inputs: dynamic sweep
/// tracking the cheapest assignment of each parity class.
fn parity_costs(ins: &[(u32, u32)]) -> (u32, u32) {
    let mut even = 0u32; // all-zeros so far
    let mut odd = SCOAP_INFINITY;
    for &(c0, c1) in ins {
        let new_even = (even.saturating_add(c0)).min(odd.saturating_add(c1));
        let new_odd = (even.saturating_add(c1)).min(odd.saturating_add(c0));
        even = new_even.min(SCOAP_INFINITY);
        odd = new_odd.min(SCOAP_INFINITY);
    }
    (even, odd)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bench;
    use crate::Netlist;

    #[test]
    fn sources_cost_one_each_way() {
        let n = bench::s27();
        let s = Scoap::compute(&n);
        for net in n.net_ids() {
            if matches!(n.driver(net), Driver::PrimaryInput | Driver::Dff(_)) {
                assert_eq!(s.cc0(net), 1);
                assert_eq!(s.cc1(net), 1);
            }
        }
    }

    #[test]
    fn and_gate_costs() {
        let n = Netlist::from_bench(
            "and2",
            "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)\n",
        )
        .unwrap();
        let s = Scoap::compute(&n);
        let y = n.find_net("y").unwrap();
        // CC1(y) = CC1(a)+CC1(b)+1 = 3; CC0(y) = min(CC0)+1 = 2.
        assert_eq!(s.cc1(y), 3);
        assert_eq!(s.cc0(y), 2);
        // Observing `a` through the AND needs b at 1, cost CO(y)+CC1(b)+1.
        let a = n.find_net("a").unwrap();
        assert_eq!(s.co(a), 1 + 1);
        assert_eq!(s.co(y), 0);
    }

    #[test]
    fn xor_parity_costs() {
        let n = Netlist::from_bench(
            "xor2",
            "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = XOR(a, b)\n",
        )
        .unwrap();
        let s = Scoap::compute(&n);
        let y = n.find_net("y").unwrap();
        // Even parity (00 or 11): cost min(1+1, 1+1)+1 = 3; same odd.
        assert_eq!(s.cc0(y), 3);
        assert_eq!(s.cc1(y), 3);
    }

    #[test]
    fn deeper_nets_cost_more() {
        let n = bench::s27();
        let s = Scoap::compute(&n);
        let g0 = n.find_net("G0").unwrap(); // PI
        let g9 = n.find_net("G9").unwrap(); // internal NAND output
        assert!(s.cc1(g9) > s.cc1(g0));
        // Every net of s27 is controllable and observable.
        for net in n.net_ids() {
            assert!(s.cc0(net) < SCOAP_INFINITY, "{}", n.net_name(net));
            assert!(s.cc1(net) < SCOAP_INFINITY, "{}", n.net_name(net));
            assert!(s.co(net) < SCOAP_INFINITY, "{}", n.net_name(net));
        }
    }

    #[test]
    fn dangling_net_unobservable() {
        let n = Netlist::from_bench(
            "dangle",
            "INPUT(a)\nOUTPUT(y)\ny = BUF(a)\nz = NOT(a)\n",
        )
        .unwrap();
        let s = Scoap::compute(&n);
        let z = n.find_net("z").unwrap();
        assert_eq!(s.co(z), SCOAP_INFINITY);
        assert!(s.detect_cost(z, false) >= SCOAP_INFINITY);
    }

    #[test]
    fn suggested_weights_bias_toward_non_controlling() {
        // a feeds only an AND gate: weight toward 1. b feeds only a NOR:
        // weight toward 0.
        let n = Netlist::from_bench(
            "w",
            "INPUT(a)\nINPUT(b)\nINPUT(c)\nOUTPUT(y)\nOUTPUT(z)\ny = AND(a, c)\nz = NOR(b, c)\n",
        )
        .unwrap();
        let (pi, state) = suggested_input_weights(&n);
        assert!(state.is_empty());
        // a: 1 AND pin → (1+1)/(1+2) = 2/3.
        assert!((pi[0] - 2.0 / 3.0).abs() < 1e-9);
        // b: 1 NOR pin → (0+1)/(1+2) = 1/3.
        assert!((pi[1] - 1.0 / 3.0).abs() < 1e-9);
        // c: one AND pin (wants 1) + one NOR pin (wants 0) → 1/2.
        assert!((pi[2] - 0.5).abs() < 1e-9);
        // Weights always in the open interval.
        for &w in &pi {
            assert!(w > 0.0 && w < 1.0);
        }
    }

    #[test]
    fn detect_cost_combines_control_and_observe() {
        let n = bench::s27();
        let s = Scoap::compute(&n);
        let g8 = n.find_net("G8").unwrap();
        assert_eq!(s.detect_cost(g8, false), s.cc1(g8) + s.co(g8));
        assert_eq!(s.detect_cost(g8, true), s.cc0(g8) + s.co(g8));
    }
}
