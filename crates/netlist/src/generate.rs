//! Synthetic benchmark-class circuit generation.
//!
//! The original ISCAS-89 netlists are distribution-restricted artifacts.
//! This module generates *synthetic* sequential circuits matching the
//! published interface statistics (#PI, #PO, #DFF, approximate gate
//! count) of each benchmark, with **structurally local** connectivity:
//! every net has a spatial position in `[0, 1)`, gates draw their inputs
//! from a bounded window around their own position, and flip-flops are
//! indexed in position order (which becomes the natural scan order).
//!
//! Locality is the property the DATE 2003 experiments rely on: the cone
//! of a fault reaches a *contiguous-ish* band of scan cells, so failing
//! scan cells cluster in the scan chain — exactly the behaviour
//! interval-based partitioning exploits. See `DESIGN.md` §5 for the full
//! substitution rationale.

use scan_rng::ScanRng;

use crate::gate::GateKind;
use crate::{Netlist, NetlistBuilder};

/// Published interface statistics of a benchmark circuit.
#[derive(Clone, Copy, Eq, PartialEq, Debug)]
pub struct CircuitProfile {
    /// Benchmark name (e.g. `"s953"`).
    pub name: &'static str,
    /// Number of primary inputs.
    pub inputs: usize,
    /// Number of primary outputs.
    pub outputs: usize,
    /// Number of D flip-flops.
    pub dffs: usize,
    /// Approximate number of combinational gates.
    pub gates: usize,
}

/// Interface statistics of the ISCAS-89 benchmark family (from the
/// benchmark documentation; gate counts include inverters).
pub const ISCAS89_PROFILES: &[CircuitProfile] = &[
    CircuitProfile { name: "s27", inputs: 4, outputs: 1, dffs: 3, gates: 10 },
    CircuitProfile { name: "s298", inputs: 3, outputs: 6, dffs: 14, gates: 119 },
    CircuitProfile { name: "s344", inputs: 9, outputs: 11, dffs: 15, gates: 160 },
    CircuitProfile { name: "s349", inputs: 9, outputs: 11, dffs: 15, gates: 161 },
    CircuitProfile { name: "s382", inputs: 3, outputs: 6, dffs: 21, gates: 158 },
    CircuitProfile { name: "s386", inputs: 7, outputs: 7, dffs: 6, gates: 159 },
    CircuitProfile { name: "s400", inputs: 3, outputs: 6, dffs: 21, gates: 162 },
    CircuitProfile { name: "s420", inputs: 18, outputs: 1, dffs: 16, gates: 218 },
    CircuitProfile { name: "s444", inputs: 3, outputs: 6, dffs: 21, gates: 181 },
    CircuitProfile { name: "s510", inputs: 19, outputs: 7, dffs: 6, gates: 211 },
    CircuitProfile { name: "s526", inputs: 3, outputs: 6, dffs: 21, gates: 193 },
    CircuitProfile { name: "s641", inputs: 35, outputs: 24, dffs: 19, gates: 379 },
    CircuitProfile { name: "s713", inputs: 35, outputs: 23, dffs: 19, gates: 393 },
    CircuitProfile { name: "s820", inputs: 18, outputs: 19, dffs: 5, gates: 289 },
    CircuitProfile { name: "s832", inputs: 18, outputs: 19, dffs: 5, gates: 287 },
    CircuitProfile { name: "s838", inputs: 34, outputs: 1, dffs: 32, gates: 446 },
    CircuitProfile { name: "s953", inputs: 16, outputs: 23, dffs: 29, gates: 395 },
    CircuitProfile { name: "s1196", inputs: 14, outputs: 14, dffs: 18, gates: 529 },
    CircuitProfile { name: "s1238", inputs: 14, outputs: 14, dffs: 18, gates: 508 },
    CircuitProfile { name: "s1423", inputs: 17, outputs: 5, dffs: 74, gates: 657 },
    CircuitProfile { name: "s5378", inputs: 35, outputs: 49, dffs: 179, gates: 2779 },
    CircuitProfile { name: "s9234", inputs: 36, outputs: 39, dffs: 211, gates: 5597 },
    CircuitProfile { name: "s13207", inputs: 62, outputs: 152, dffs: 638, gates: 7951 },
    CircuitProfile { name: "s15850", inputs: 77, outputs: 150, dffs: 534, gates: 9772 },
    CircuitProfile { name: "s35932", inputs: 35, outputs: 320, dffs: 1728, gates: 16065 },
    CircuitProfile { name: "s38417", inputs: 28, outputs: 106, dffs: 1636, gates: 22179 },
    CircuitProfile { name: "s38584", inputs: 38, outputs: 304, dffs: 1426, gates: 19253 },
];

/// Interface statistics of the ISCAS-85 combinational benchmark family
/// (no flip-flops; the full d695 SOC includes two of these alongside
/// the ISCAS-89 modules).
pub const ISCAS85_PROFILES: &[CircuitProfile] = &[
    CircuitProfile { name: "c432", inputs: 36, outputs: 7, dffs: 0, gates: 160 },
    CircuitProfile { name: "c499", inputs: 41, outputs: 32, dffs: 0, gates: 202 },
    CircuitProfile { name: "c880", inputs: 60, outputs: 26, dffs: 0, gates: 383 },
    CircuitProfile { name: "c1355", inputs: 41, outputs: 32, dffs: 0, gates: 546 },
    CircuitProfile { name: "c1908", inputs: 33, outputs: 25, dffs: 0, gates: 880 },
    CircuitProfile { name: "c2670", inputs: 233, outputs: 140, dffs: 0, gates: 1193 },
    CircuitProfile { name: "c3540", inputs: 50, outputs: 22, dffs: 0, gates: 1669 },
    CircuitProfile { name: "c5315", inputs: 178, outputs: 123, dffs: 0, gates: 2307 },
    CircuitProfile { name: "c6288", inputs: 32, outputs: 32, dffs: 0, gates: 2416 },
    CircuitProfile { name: "c7552", inputs: 207, outputs: 108, dffs: 0, gates: 3512 },
];

/// The six largest ISCAS-89 benchmarks, as used in Table 2 of the paper.
pub const SIX_LARGEST: [&str; 6] = ["s9234", "s13207", "s15850", "s35932", "s38417", "s38584"];

/// Looks up the published profile for a benchmark name (ISCAS-89 or
/// ISCAS-85).
#[must_use]
pub fn profile(name: &str) -> Option<&'static CircuitProfile> {
    ISCAS89_PROFILES
        .iter()
        .chain(ISCAS85_PROFILES)
        .find(|p| p.name == name)
}

/// Tunable knobs for the synthetic generator.
#[derive(Clone, Copy, Debug)]
pub struct GeneratorConfig {
    /// Half-width of the positional window gates draw their inputs from,
    /// as a fraction of the unit position space. Smaller values produce
    /// tighter fault cones (more clustered failing scan cells).
    pub locality: f64,
    /// Number of combinational levels the gate cloud is spread over.
    pub levels: usize,
    /// Maximum gate fan-in (2..=this) for non-unary gates.
    pub max_fanin: usize,
    /// Fraction of gates that are inverters/buffers.
    pub unary_fraction: f64,
    /// Fraction of non-unary gates that are XOR/XNOR.
    pub xor_fraction: f64,
}

impl Default for GeneratorConfig {
    fn default() -> Self {
        // Tuned so pseudorandom stuck-at coverage lands in the
        // benchmark-typical range (~70% with 128 patterns on the s953
        // profile): shallow-ish clouds with fan-in ≤ 3 and a healthy
        // XOR fraction keep fault effects observable, while the small
        // locality window keeps fault cones clustered in scan order.
        GeneratorConfig {
            locality: 0.06,
            levels: 5,
            max_fanin: 3,
            unary_fraction: 0.10,
            xor_fraction: 0.20,
        }
    }
}

/// Generates a synthetic circuit matching `profile`, deterministically
/// from `seed`.
///
/// The same `(profile, seed, config)` always yields the same netlist.
/// Flip-flops are created in position order, so
/// [`ScanView::natural`](crate::ScanView::natural) yields a
/// locality-respecting scan chain.
///
/// # Examples
///
/// ```
/// use scan_netlist::generate::{generate, profile};
///
/// let p = profile("s953").expect("known benchmark");
/// let n = generate(p, 1);
/// assert_eq!(n.num_dffs(), 29);
/// assert_eq!(n.num_inputs(), 16);
/// ```
#[must_use]
pub fn generate(profile: &CircuitProfile, seed: u64) -> Netlist {
    generate_with(profile, seed, &GeneratorConfig::default())
}

/// [`generate`] with explicit generator configuration.
///
/// # Panics
///
/// Panics only if the generator violates its own structural invariants
/// (which would be a bug, not a caller error).
#[must_use]
#[allow(clippy::too_many_lines)]
pub fn generate_with(profile: &CircuitProfile, seed: u64, config: &GeneratorConfig) -> Netlist {
    let mut rng = ScanRng::seed_from_u64(seed ^ hash_name(profile.name));
    let mut b = NetlistBuilder::new(profile.name);

    // Source nets with positions: PIs spread uniformly, FF outputs at
    // their index position (scan order == position order).
    let mut sources: Vec<(f64, String)> = Vec::new();
    for i in 0..profile.inputs {
        let name = format!("pi{i}");
        b.input(&name);
        let pos = (i as f64 + 0.5) / profile.inputs.max(1) as f64;
        sources.push((pos, name));
    }
    let mut ff_d_names = Vec::with_capacity(profile.dffs);
    for i in 0..profile.dffs {
        let q = format!("q{i}");
        let d = format!("d{i}");
        b.dff(&q, &d);
        let pos = (i as f64 + 0.5) / profile.dffs.max(1) as f64;
        sources.push((pos, q));
        ff_d_names.push((pos, d));
    }
    sources.sort_by(|a, b| a.0.total_cmp(&b.0));
    // Nets already read by some gate (dangling-logic avoidance).
    // lint:allow(L014): membership-only set (contains/insert), never iterated
    let mut used: std::collections::HashSet<String> = std::collections::HashSet::new();

    // Gate cloud: `levels` layers; each layer draws inputs from a window
    // around its position in all previous layers (and the sources).
    let levels = config.levels.max(1);
    let mut layers: Vec<Vec<(f64, String)>> = vec![sources];
    let mut remaining = profile.gates;
    // Reserve one gate per FF D-input and per PO for the final hookup
    // stage so total gate count ≈ profile.gates.
    let hookups = profile.dffs + profile.outputs;
    let cloud = remaining.saturating_sub(hookups);
    let mut gate_counter = 0usize;
    for level in 0..levels {
        let this_level = if level + 1 == levels {
            cloud - cloud / levels * (levels - 1)
        } else {
            cloud / levels
        };
        let mut layer = Vec::with_capacity(this_level);
        for _ in 0..this_level {
            let pos: f64 = rng.next_f64();
            let name = format!("w{gate_counter}");
            gate_counter += 1;
            let kind = pick_kind(&mut rng, config);
            let fanin = if kind.is_unary() {
                1
            } else {
                rng.gen_range_inclusive(2, config.max_fanin)
            };
            let inputs = pick_inputs(&mut rng, &layers, &mut used, pos, fanin, config.locality);
            let input_refs: Vec<&str> = inputs.iter().map(String::as_str).collect();
            b.gate(kind, &name, &input_refs);
            layer.push((pos, name));
        }
        layer.sort_by(|a, b| a.0.total_cmp(&b.0));
        layers.push(layer);
    }
    remaining = remaining.saturating_sub(cloud);

    // Hook up FF D-inputs: a gate near the FF's own position, so state
    // feedback is local.
    for (pos, d) in &ff_d_names {
        let kind = pick_kind_nonunary(&mut rng, config);
        let fanin = rng.gen_range_inclusive(2, config.max_fanin);
        let inputs = pick_inputs(&mut rng, &layers, &mut used, *pos, fanin, config.locality);
        let input_refs: Vec<&str> = inputs.iter().map(String::as_str).collect();
        b.gate(kind, d, &input_refs);
        remaining = remaining.saturating_sub(1);
    }
    // Hook up POs similarly.
    for i in 0..profile.outputs {
        let name = format!("po{i}");
        let pos = (i as f64 + 0.5) / profile.outputs.max(1) as f64;
        let kind = pick_kind_nonunary(&mut rng, config);
        let fanin = rng.gen_range_inclusive(2, config.max_fanin);
        let inputs = pick_inputs(&mut rng, &layers, &mut used, pos, fanin, config.locality);
        let input_refs: Vec<&str> = inputs.iter().map(String::as_str).collect();
        b.gate(kind, &name, &input_refs);
        b.output(&name);
    }

    b.finish()
        .expect("generator produces structurally valid netlists")
}

/// Generates the synthetic stand-in for a named ISCAS-89 benchmark with
/// the workspace's default seed, or parses the embedded real netlist for
/// `s27`.
///
/// This is the single entry point experiments use to obtain benchmark
/// circuits, keeping every table/figure reproducible.
///
/// # Panics
///
/// Panics if `name` is not an ISCAS-89 benchmark name.
#[must_use]
pub fn benchmark(name: &str) -> Netlist {
    if name == "s27" {
        return crate::bench::s27();
    }
    let p = profile(name).unwrap_or_else(|| panic!("unknown benchmark `{name}`"));
    generate(p, DEFAULT_BENCHMARK_SEED)
}

/// Seed used by [`benchmark`] for reproducible experiment circuits.
pub const DEFAULT_BENCHMARK_SEED: u64 = 0xDA7E_2003;

fn hash_name(name: &str) -> u64 {
    // FNV-1a, so each profile gets decorrelated streams for equal seeds.
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for byte in name.bytes() {
        h ^= u64::from(byte);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn pick_kind(rng: &mut ScanRng, config: &GeneratorConfig) -> GateKind {
    if rng.gen_bool(config.unary_fraction) {
        if rng.gen_bool(0.8) {
            GateKind::Not
        } else {
            GateKind::Buf
        }
    } else {
        pick_kind_nonunary(rng, config)
    }
}

fn pick_kind_nonunary(rng: &mut ScanRng, config: &GeneratorConfig) -> GateKind {
    if rng.gen_bool(config.xor_fraction) {
        if rng.gen_bool(0.5) {
            GateKind::Xor
        } else {
            GateKind::Xnor
        }
    } else {
        match rng.gen_index(4) {
            0 => GateKind::And,
            1 => GateKind::Nand,
            2 => GateKind::Or,
            _ => GateKind::Nor,
        }
    }
}

/// Picks `fanin` distinct nets from the accumulated layers, preferring
/// nets whose position lies within `locality` of `pos`. The window is
/// widened geometrically until enough candidates exist. Among the
/// window's candidates, nets that are not yet read by any gate are
/// preferred, which keeps the dangling-logic fraction (and hence the
/// unobservable-fault fraction) low.
fn pick_inputs(
    rng: &mut ScanRng,
    layers: &[Vec<(f64, String)>],
    used: &mut std::collections::HashSet<String>,
    pos: f64,
    fanin: usize,
    locality: f64,
) -> Vec<String> {
    let mut chosen: Vec<String> = Vec::with_capacity(fanin);
    let mut window = locality;
    while chosen.len() < fanin {
        // Collect candidates in the window across all existing layers.
        let mut fresh: Vec<&String> = Vec::new();
        let mut seen: Vec<&String> = Vec::new();
        for layer in layers {
            let lo = layer.partition_point(|(p, _)| *p < pos - window);
            let hi = layer.partition_point(|(p, _)| *p <= pos + window);
            for (_, name) in &layer[lo..hi] {
                if chosen.iter().any(|c| c == name) {
                    continue;
                }
                if used.contains(name) {
                    seen.push(name);
                } else {
                    fresh.push(name);
                }
            }
        }
        // Prefer unread nets most of the time; mixing in some reuse
        // keeps fanout (and therefore branch faults) realistic.
        let pool = if !fresh.is_empty() && (seen.is_empty() || rng.gen_bool(0.8)) {
            &fresh
        } else {
            &seen
        };
        if pool.is_empty() {
            window *= 2.0;
            if window > 1.0 {
                // Degenerate (shouldn't happen: sources always exist);
                // fall back to any net from the first layer.
                let any = &layers[0][rng.gen_index(layers[0].len())].1;
                if !chosen.iter().any(|c| c == any) {
                    chosen.push(any.clone());
                }
                continue;
            }
            continue;
        }
        let pick = pool[rng.gen_index(pool.len())];
        chosen.push(pick.clone());
        used.insert(pick.clone());
        window = locality;
    }
    chosen
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_cover_the_paper_circuits() {
        for name in ["s953", "s838", "s5378"].iter().chain(SIX_LARGEST.iter()) {
            assert!(profile(name).is_some(), "missing profile {name}");
        }
    }

    #[test]
    fn generated_interface_matches_profile() {
        let p = profile("s953").unwrap();
        let n = generate(p, 7);
        assert_eq!(n.num_inputs(), p.inputs);
        assert_eq!(n.num_outputs(), p.outputs);
        assert_eq!(n.num_dffs(), p.dffs);
        // Gate count is approximate but close (hookups may slightly
        // exceed the cloud budget on tiny profiles).
        let got = n.num_gates() as f64;
        let want = p.gates as f64;
        assert!(
            (got - want).abs() / want < 0.15,
            "gate count {got} too far from {want}"
        );
    }

    #[test]
    fn generation_is_deterministic() {
        let p = profile("s386").unwrap();
        let a = generate(p, 42).to_bench_string();
        let b = generate(p, 42).to_bench_string();
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let p = profile("s386").unwrap();
        let a = generate(p, 1).to_bench_string();
        let b = generate(p, 2).to_bench_string();
        assert_ne!(a, b);
    }

    #[test]
    fn combinational_iscas85_profiles_generate() {
        let p = profile("c880").unwrap();
        let n = generate(p, 2);
        assert_eq!(n.num_dffs(), 0);
        assert_eq!(n.num_inputs(), 60);
        assert_eq!(n.num_outputs(), 26);
        assert!(n.num_gates() > 100);
    }

    #[test]
    fn benchmark_returns_real_s27() {
        let n = benchmark("s27");
        assert_eq!(n.num_gates(), 10);
        assert!(n.find_net("G17").is_some());
    }

    #[test]
    #[should_panic(expected = "unknown benchmark")]
    fn benchmark_rejects_unknown_names() {
        let _ = benchmark("s999999");
    }

    #[test]
    fn medium_profile_generates_quickly_and_validates() {
        let p = profile("s5378").unwrap();
        let n = generate(p, 3);
        assert_eq!(n.num_dffs(), 179);
        assert!(n.depth() >= 2);
    }
}
