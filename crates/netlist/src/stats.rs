//! Structural analysis: output cones and failing-cell clustering
//! potential.
//!
//! The DATE 2003 paper's key structural observation (its Fig. 2) is that
//! an error caused by a fault can only be captured by scan cells inside
//! the fault's *output cone* — the observation points reachable from the
//! fault site through sensitizable paths. This module computes the
//! structural (topological) over-approximation of those cones and
//! summarizes how tightly they cluster in scan-chain order.

use crate::bitset::BitSet;
use crate::gate::{Driver, NetId};
use crate::scan::{ObsPoint, ScanView};
use crate::Netlist;

/// Per-net structural output cones over a [`ScanView`].
///
/// `cone(net)` is the set of observation positions (indices into
/// [`ScanView::points`]) that are topologically reachable from the net.
#[derive(Clone, Debug)]
pub struct OutputCones {
    cones: Vec<BitSet>,
    view_len: usize,
}

impl OutputCones {
    /// Computes the structural output cone of every net.
    ///
    /// Runs one reverse-topological sweep; memory is
    /// `O(nets × view_len / 64)`.
    ///
    /// # Panics
    ///
    /// Panics only on internal invariant violations.
    #[must_use]
    pub fn compute(netlist: &Netlist, view: &ScanView) -> Self {
        let n = netlist.num_nets();
        let len = view.len();
        let mut cones = vec![BitSet::new(len); n];
        // Seed: observed nets reach their own observation position.
        for (pos, &point) in view.points().iter().enumerate() {
            let net = match point {
                ObsPoint::Cell(ff) => netlist.dff(ff).d,
                ObsPoint::Output(o) => netlist.outputs()[o as usize],
            };
            cones[net.index()].insert(pos);
        }
        // Reverse topological order: propagate each gate's output cone
        // into its input nets.
        for &gid in netlist.topo_order().iter().rev() {
            let gate = netlist.gate(gid);
            let out_cone = cones[gate.output.index()].clone();
            if out_cone.is_empty() {
                continue;
            }
            for &input in &gate.inputs {
                cones[input.index()].union_with(&out_cone);
            }
        }
        OutputCones {
            cones,
            view_len: len,
        }
    }

    /// The set of observation positions reachable from `net`.
    #[must_use]
    pub fn cone(&self, net: NetId) -> &BitSet {
        &self.cones[net.index()]
    }

    /// Chain length of the underlying view.
    #[must_use]
    pub fn view_len(&self) -> usize {
        self.view_len
    }

    /// The *span* of a net's cone in scan order: `(min, max)` observation
    /// positions, or `None` if the cone is empty.
    #[must_use]
    pub fn span(&self, net: NetId) -> Option<(usize, usize)> {
        let cone = self.cone(net);
        let min = cone.first()?;
        let max = cone.iter().last()?;
        Some((min, max))
    }
}

/// Clustering statistics over all fault sites of a circuit,
/// demonstrating the paper's Fig. 2 premise quantitatively.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct ClusteringStats {
    /// Number of nets with a non-empty cone.
    pub observable_nets: usize,
    /// Mean cone size (number of observation points reachable).
    pub mean_cone_size: f64,
    /// Mean span (max − min + 1) of cones in scan order.
    pub mean_span: f64,
    /// Mean span as a fraction of the chain length: small values mean
    /// fault effects cluster in a narrow band of the chain.
    pub mean_span_fraction: f64,
}

impl ClusteringStats {
    /// Computes clustering statistics over every net of a circuit.
    ///
    /// # Panics
    ///
    /// Panics only on internal invariant violations.
    #[must_use]
    pub fn compute(netlist: &Netlist, view: &ScanView) -> Self {
        let cones = OutputCones::compute(netlist, view);
        let mut observable = 0usize;
        let mut total_size = 0usize;
        let mut total_span = 0usize;
        for net in netlist.net_ids() {
            // Skip pure sink duplicates: every net counts once.
            let cone = cones.cone(net);
            if cone.is_empty() {
                continue;
            }
            observable += 1;
            total_size += cone.len();
            let (min, max) = cones.span(net).expect("non-empty cone has a span");
            total_span += max - min + 1;
        }
        let denom = observable.max(1) as f64;
        ClusteringStats {
            observable_nets: observable,
            mean_cone_size: total_size as f64 / denom,
            mean_span: total_span as f64 / denom,
            mean_span_fraction: (total_span as f64 / denom) / view.len().max(1) as f64,
        }
    }
}

/// Gate-kind census of a netlist.
#[derive(Clone, Copy, Debug, Default, Eq, PartialEq)]
pub struct GateCensus {
    /// Counts indexed by [`GateKind::ALL`](crate::GateKind::ALL) order.
    pub counts: [usize; 8],
    /// Total number of gates.
    pub total: usize,
    /// Maximum combinational depth.
    pub depth: u32,
}

impl GateCensus {
    /// Tallies the gates of a netlist.
    ///
    /// # Panics
    ///
    /// Panics only on internal invariant violations.
    #[must_use]
    pub fn compute(netlist: &Netlist) -> Self {
        let mut counts = [0usize; 8];
        for gate in netlist.gates() {
            let idx = crate::GateKind::ALL
                .iter()
                .position(|&k| k == gate.kind)
                .expect("kind in ALL");
            counts[idx] += 1;
        }
        GateCensus {
            counts,
            total: netlist.num_gates(),
            depth: netlist.depth(),
        }
    }
}

/// Returns `true` if the drivers of two nets are independent sources
/// (convenience used by fault collapsing downstream).
#[must_use]
pub fn is_source(netlist: &Netlist, net: NetId) -> bool {
    matches!(
        netlist.driver(net),
        Driver::PrimaryInput | Driver::Dff(_)
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bench;
    use crate::generate::{generate, profile};

    #[test]
    fn s27_cones_are_sensible() {
        let n = bench::s27();
        let view = ScanView::natural(&n, true);
        let cones = OutputCones::compute(&n, &view);
        // G11 drives DFF G6's D and the PO G17 (via NOT): its cone
        // includes position 1 (cell G6) and position 3 (PO).
        let g11 = n.find_net("G11").unwrap();
        let cone = cones.cone(g11);
        assert!(cone.contains(1));
        assert!(cone.contains(3));
        // Primary input G0 reaches everything downstream of G14.
        let g0 = n.find_net("G0").unwrap();
        assert!(!cones.cone(g0).is_empty());
    }

    #[test]
    fn observed_nets_contain_self_position() {
        let n = bench::s27();
        let view = ScanView::natural(&n, true);
        let cones = OutputCones::compute(&n, &view);
        for pos in 0..view.len() {
            let net = view.observed_net(&n, pos);
            assert!(
                cones.cone(net).contains(pos),
                "net {} should reach its own position {pos}",
                n.net_name(net)
            );
        }
    }

    #[test]
    fn synthetic_circuits_cluster() {
        let p = profile("s953").unwrap();
        let n = generate(p, 11);
        let view = ScanView::natural(&n, true);
        let stats = ClusteringStats::compute(&n, &view);
        assert!(stats.observable_nets > 0);
        // Locality must hold: average span well below the whole chain.
        assert!(
            stats.mean_span_fraction < 0.75,
            "mean span fraction {} too large — generator lost locality",
            stats.mean_span_fraction
        );
    }

    #[test]
    fn census_counts_all_gates() {
        let n = bench::s27();
        let c = GateCensus::compute(&n);
        assert_eq!(c.total, 10);
        assert_eq!(c.counts.iter().sum::<usize>(), 10);
        assert_eq!(c.depth, n.depth());
    }
}
