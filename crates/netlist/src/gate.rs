//! Gate and net primitives for gate-level netlists.

use std::fmt;
use std::str::FromStr;

use crate::error::ParseGateKindError;

/// Identifier of a net (a named wire) within a [`Netlist`](crate::Netlist).
///
/// Net ids are dense indices assigned in creation order; they are only
/// meaningful relative to the netlist that created them.
#[derive(Copy, Clone, Eq, PartialEq, Ord, PartialOrd, Hash, Debug)]
pub struct NetId(pub(crate) u32);

impl NetId {
    /// Returns the dense index of this net.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NetId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Identifier of a combinational gate within a [`Netlist`](crate::Netlist).
#[derive(Copy, Clone, Eq, PartialEq, Ord, PartialOrd, Hash, Debug)]
pub struct GateId(pub(crate) u32);

impl GateId {
    /// Returns the dense index of this gate.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for GateId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "g{}", self.0)
    }
}

/// Identifier of a D flip-flop within a [`Netlist`](crate::Netlist).
#[derive(Copy, Clone, Eq, PartialEq, Ord, PartialOrd, Hash, Debug)]
pub struct DffId(pub(crate) u32);

impl DffId {
    /// Returns the dense index of this flip-flop.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for DffId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ff{}", self.0)
    }
}

/// The boolean function computed by a combinational gate.
///
/// These are exactly the gate types appearing in the ISCAS-89 `.bench`
/// netlist format (flip-flops are modelled separately as
/// [`Dff`](crate::Dff)).
#[derive(Copy, Clone, Eq, PartialEq, Ord, PartialOrd, Hash, Debug)]
pub enum GateKind {
    /// Logical AND of all inputs.
    And,
    /// Negated AND.
    Nand,
    /// Logical OR of all inputs.
    Or,
    /// Negated OR.
    Nor,
    /// Exclusive OR (parity) of all inputs.
    Xor,
    /// Negated exclusive OR.
    Xnor,
    /// Inverter; exactly one input.
    Not,
    /// Buffer; exactly one input.
    Buf,
}

impl GateKind {
    /// All gate kinds, in a fixed order.
    pub const ALL: [GateKind; 8] = [
        GateKind::And,
        GateKind::Nand,
        GateKind::Or,
        GateKind::Nor,
        GateKind::Xor,
        GateKind::Xnor,
        GateKind::Not,
        GateKind::Buf,
    ];

    /// Returns `true` if this kind admits exactly one input (NOT/BUF).
    #[must_use]
    pub fn is_unary(self) -> bool {
        matches!(self, GateKind::Not | GateKind::Buf)
    }

    /// Returns `true` if the gate output is the complement of the
    /// underlying AND/OR/XOR function.
    #[must_use]
    pub fn is_inverting(self) -> bool {
        matches!(
            self,
            GateKind::Nand | GateKind::Nor | GateKind::Xnor | GateKind::Not
        )
    }

    /// Evaluates the gate over bit-packed words, one bit per pattern.
    ///
    /// Each element of `inputs` carries 64 independent pattern bits; the
    /// result is the gate function applied bit-wise.
    ///
    /// # Panics
    ///
    /// Panics if `inputs` is empty, or if the kind is unary and more than
    /// one input is supplied.
    #[must_use]
    pub fn eval_words(self, inputs: &[u64]) -> u64 {
        assert!(!inputs.is_empty(), "gate must have at least one input");
        if self.is_unary() {
            assert_eq!(inputs.len(), 1, "unary gate takes exactly one input");
        }
        let acc = match self {
            GateKind::And | GateKind::Nand => inputs.iter().fold(!0u64, |a, &b| a & b),
            GateKind::Or | GateKind::Nor => inputs.iter().fold(0u64, |a, &b| a | b),
            GateKind::Xor | GateKind::Xnor => inputs.iter().fold(0u64, |a, &b| a ^ b),
            GateKind::Not | GateKind::Buf => inputs[0],
        };
        if self.is_inverting() {
            !acc
        } else {
            acc
        }
    }

    /// Evaluates the gate over plain booleans (convenience for tests and
    /// single-pattern applications).
    ///
    /// # Panics
    ///
    /// Same conditions as [`GateKind::eval_words`].
    #[must_use]
    pub fn eval_bools(self, inputs: &[bool]) -> bool {
        let words: Vec<u64> = inputs.iter().map(|&b| if b { !0 } else { 0 }).collect();
        self.eval_words(&words) & 1 != 0
    }

    /// The `.bench` keyword for this gate kind.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            GateKind::And => "AND",
            GateKind::Nand => "NAND",
            GateKind::Or => "OR",
            GateKind::Nor => "NOR",
            GateKind::Xor => "XOR",
            GateKind::Xnor => "XNOR",
            GateKind::Not => "NOT",
            GateKind::Buf => "BUF",
        }
    }

    /// The controlling input value of the gate, if it has one.
    ///
    /// An input at the controlling value determines the output regardless
    /// of the other inputs (e.g. `0` for AND/NAND, `1` for OR/NOR).
    /// XOR-class and unary gates have no controlling value.
    #[must_use]
    pub fn controlling_value(self) -> Option<bool> {
        match self {
            GateKind::And | GateKind::Nand => Some(false),
            GateKind::Or | GateKind::Nor => Some(true),
            _ => None,
        }
    }
}

impl fmt::Display for GateKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl FromStr for GateKind {
    type Err = ParseGateKindError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_uppercase().as_str() {
            "AND" => Ok(GateKind::And),
            "NAND" => Ok(GateKind::Nand),
            "OR" => Ok(GateKind::Or),
            "NOR" => Ok(GateKind::Nor),
            "XOR" => Ok(GateKind::Xor),
            "XNOR" => Ok(GateKind::Xnor),
            "NOT" | "INV" => Ok(GateKind::Not),
            "BUF" | "BUFF" => Ok(GateKind::Buf),
            _ => Err(ParseGateKindError {
                token: s.to_owned(),
            }),
        }
    }
}

/// A combinational gate instance: a kind, input nets, and one output net.
#[derive(Clone, Eq, PartialEq, Hash, Debug)]
pub struct Gate {
    /// The boolean function of the gate.
    pub kind: GateKind,
    /// Input nets, in pin order.
    pub inputs: Vec<NetId>,
    /// The net driven by this gate.
    pub output: NetId,
}

/// A D flip-flop: `q` takes the value of `d` at each capture clock.
///
/// In the full-scan methodology modelled by this workspace every flip-flop
/// is a scan cell: its state is externally loadable through the scan chain
/// and its captured value is externally observable by shifting out.
#[derive(Clone, Copy, Eq, PartialEq, Hash, Debug)]
pub struct Dff {
    /// The data input net (next-state function output).
    pub d: NetId,
    /// The output net (present state, a pseudo-primary input).
    pub q: NetId,
}

/// What drives a net.
#[derive(Clone, Copy, Eq, PartialEq, Hash, Debug)]
pub enum Driver {
    /// Driven from outside the circuit (a primary input).
    PrimaryInput,
    /// Driven by a combinational gate.
    Gate(GateId),
    /// Driven by the Q output of a flip-flop.
    Dff(DffId),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_words_basic_kinds() {
        let a = 0b1100u64;
        let b = 0b1010u64;
        assert_eq!(GateKind::And.eval_words(&[a, b]) & 0xF, 0b1000);
        assert_eq!(GateKind::Nand.eval_words(&[a, b]) & 0xF, 0b0111);
        assert_eq!(GateKind::Or.eval_words(&[a, b]) & 0xF, 0b1110);
        assert_eq!(GateKind::Nor.eval_words(&[a, b]) & 0xF, 0b0001);
        assert_eq!(GateKind::Xor.eval_words(&[a, b]) & 0xF, 0b0110);
        assert_eq!(GateKind::Xnor.eval_words(&[a, b]) & 0xF, 0b1001);
        assert_eq!(GateKind::Not.eval_words(&[a]) & 0xF, 0b0011);
        assert_eq!(GateKind::Buf.eval_words(&[a]) & 0xF, 0b1100);
    }

    #[test]
    fn eval_words_three_inputs() {
        let a = 0b1111_0000u64;
        let b = 0b1100_1100u64;
        let c = 0b1010_1010u64;
        assert_eq!(GateKind::And.eval_words(&[a, b, c]) & 0xFF, 0b1000_0000);
        assert_eq!(GateKind::Or.eval_words(&[a, b, c]) & 0xFF, 0b1111_1110);
        assert_eq!(GateKind::Xor.eval_words(&[a, b, c]) & 0xFF, 0b1001_0110);
    }

    #[test]
    fn eval_bools_matches_words() {
        for kind in [GateKind::And, GateKind::Nand, GateKind::Or, GateKind::Nor] {
            for a in [false, true] {
                for b in [false, true] {
                    let w = kind.eval_words(&[u64::from(a), u64::from(b)]) & 1 != 0;
                    assert_eq!(kind.eval_bools(&[a, b]), w);
                }
            }
        }
    }

    #[test]
    fn parse_gate_kind_aliases() {
        assert_eq!("nand".parse::<GateKind>().unwrap(), GateKind::Nand);
        assert_eq!("BUFF".parse::<GateKind>().unwrap(), GateKind::Buf);
        assert_eq!("INV".parse::<GateKind>().unwrap(), GateKind::Not);
        assert!("MAJ".parse::<GateKind>().is_err());
    }

    #[test]
    #[should_panic(expected = "unary gate takes exactly one input")]
    fn unary_rejects_two_inputs() {
        let _ = GateKind::Not.eval_words(&[0, 1]);
    }

    #[test]
    fn controlling_values() {
        assert_eq!(GateKind::And.controlling_value(), Some(false));
        assert_eq!(GateKind::Nor.controlling_value(), Some(true));
        assert_eq!(GateKind::Xor.controlling_value(), None);
        assert_eq!(GateKind::Buf.controlling_value(), None);
    }
}
