//! Graphviz DOT export for netlist visualization.
//!
//! Renders the circuit graph in the conventional DFT iconography:
//! primary inputs as plain ellipses, gates as boxes labelled with their
//! function, flip-flops as doubled boxes, and primary outputs as
//! double ellipses — ready for `dot -Tsvg`.

use std::fmt::Write as _;

use crate::gate::Driver;
use crate::Netlist;

/// Renders the netlist as a Graphviz `digraph`.
///
/// # Examples
///
/// ```
/// use scan_netlist::{bench, dot};
///
/// let graph = dot::to_dot(&bench::s27());
/// assert!(graph.starts_with("digraph s27 {"));
/// assert!(graph.contains("NAND"));
/// ```
#[must_use]
pub fn to_dot(netlist: &Netlist) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph {} {{", sanitize(netlist.name()));
    let _ = writeln!(out, "  rankdir=LR;");
    let _ = writeln!(out, "  node [fontname=\"Helvetica\"];");

    // Primary inputs.
    for &net in netlist.inputs() {
        let _ = writeln!(
            out,
            "  {} [shape=ellipse, label=\"{}\"];",
            node_id(netlist, net),
            netlist.net_name(net)
        );
    }
    // Gates: one node per gate, named by output net.
    for gate in netlist.gates() {
        let _ = writeln!(
            out,
            "  {} [shape=box, label=\"{}\\n{}\"];",
            node_id(netlist, gate.output),
            gate.kind,
            netlist.net_name(gate.output)
        );
        for &input in &gate.inputs {
            let _ = writeln!(
                out,
                "  {} -> {};",
                node_id(netlist, input),
                node_id(netlist, gate.output)
            );
        }
    }
    // Flip-flops: Q node plus an edge from the D driver.
    for dff in netlist.dffs() {
        let _ = writeln!(
            out,
            "  {} [shape=box, peripheries=2, label=\"DFF\\n{}\"];",
            node_id(netlist, dff.q),
            netlist.net_name(dff.q)
        );
        let _ = writeln!(
            out,
            "  {} -> {} [style=dashed];",
            node_id(netlist, dff.d),
            node_id(netlist, dff.q)
        );
    }
    // Primary outputs: a sink marker per output net.
    for (i, &net) in netlist.outputs().iter().enumerate() {
        let _ = writeln!(
            out,
            "  po{i} [shape=doublecircle, label=\"{}\"];",
            netlist.net_name(net)
        );
        let _ = writeln!(out, "  {} -> po{i};", node_id(netlist, net));
    }
    let _ = writeln!(out, "}}");
    out
}

fn node_id(netlist: &Netlist, net: crate::NetId) -> String {
    // Nets driven by nothing drawable (sources) and gate outputs share
    // the net-name namespace, prefixed for DOT validity.
    let prefix = match netlist.driver(net) {
        Driver::PrimaryInput => "pi",
        Driver::Gate(_) => "g",
        Driver::Dff(_) => "ff",
    };
    format!("{prefix}_{}", sanitize(netlist.net_name(net)))
}

fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bench;

    #[test]
    fn s27_dot_structure() {
        let dot = to_dot(&bench::s27());
        assert!(dot.starts_with("digraph s27 {"));
        assert!(dot.trim_end().ends_with('}'));
        // All 10 gates appear as boxes; 3 flip-flops as doubled boxes.
        assert_eq!(dot.matches("shape=box, label=").count(), 10);
        assert_eq!(dot.matches("peripheries=2").count(), 3);
        // The PO sink exists and is fed.
        assert!(dot.contains("po0 [shape=doublecircle"));
        assert!(dot.contains("-> po0;"));
    }

    #[test]
    fn edges_match_gate_fanin() {
        let n = bench::s27();
        let dot = to_dot(&n);
        let gate_edges = dot
            .lines()
            .filter(|l| l.contains("->") && !l.contains("po") && !l.contains("dashed"))
            .count();
        let total_pins: usize = n.gates().iter().map(|g| g.inputs.len()).sum();
        assert_eq!(gate_edges, total_pins);
    }

    #[test]
    fn sanitization_keeps_dot_valid() {
        let n = crate::Netlist::from_bench("odd-name", "INPUT(a.1)\nOUTPUT(y)\ny = NOT(a.1)\n")
            .unwrap();
        let dot = to_dot(&n);
        assert!(dot.contains("digraph odd_name"));
        assert!(dot.contains("pi_a_1"));
    }
}
