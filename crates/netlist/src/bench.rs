//! ISCAS-89 `.bench` format parsing and writing.
//!
//! The `.bench` format is line-oriented:
//!
//! ```text
//! # comment
//! INPUT(G0)
//! OUTPUT(G17)
//! G5 = DFF(G10)
//! G8 = AND(G14, G6)
//! ```
//!
//! Gate keywords are case-insensitive; `BUFF`/`BUF` and `NOT`/`INV` are
//! accepted as synonyms.

use crate::error::{ParseBenchError, ParseBenchErrorKind};
use crate::gate::GateKind;
use crate::{Netlist, NetlistBuilder};

impl Netlist {
    /// Parses a netlist from ISCAS-89 `.bench` text.
    ///
    /// # Errors
    ///
    /// Returns [`ParseBenchError`] if a line is malformed, a gate keyword
    /// is unknown, a gate has an invalid arity, or the resulting netlist
    /// is structurally invalid (multiply-driven or undriven nets,
    /// combinational cycles).
    ///
    /// # Examples
    ///
    /// ```
    /// use scan_netlist::Netlist;
    ///
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// let n = Netlist::from_bench("inverter", "INPUT(a)\nOUTPUT(y)\ny = NOT(a)\n")?;
    /// assert_eq!(n.num_gates(), 1);
    /// # Ok(())
    /// # }
    /// ```
    pub fn from_bench(name: impl Into<String>, text: &str) -> Result<Netlist, ParseBenchError> {
        let mut b = NetlistBuilder::new(name);
        let mut last_line = 0;
        for (lineno, raw) in text.lines().enumerate() {
            let lineno = lineno + 1;
            last_line = lineno;
            let line = match raw.find('#') {
                Some(pos) => &raw[..pos],
                None => raw,
            };
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            parse_line(&mut b, line).map_err(|kind| ParseBenchError { line: lineno, kind })?;
        }
        b.finish().map_err(|e| ParseBenchError {
            line: last_line,
            kind: ParseBenchErrorKind::Structure(e),
        })
    }

    /// Renders the netlist back to `.bench` text.
    ///
    /// The output parses back to an equivalent netlist (same inputs,
    /// outputs, flip-flops and gates, possibly in a different storage
    /// order).
    #[must_use]
    pub fn to_bench_string(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "# {}", self.name());
        for &i in self.inputs() {
            let _ = writeln!(out, "INPUT({})", self.net_name(i));
        }
        for &o in self.outputs() {
            let _ = writeln!(out, "OUTPUT({})", self.net_name(o));
        }
        for dff in self.dffs() {
            let _ = writeln!(
                out,
                "{} = DFF({})",
                self.net_name(dff.q),
                self.net_name(dff.d)
            );
        }
        for gate in self.gates() {
            let args: Vec<&str> = gate.inputs.iter().map(|&n| self.net_name(n)).collect();
            let _ = writeln!(
                out,
                "{} = {}({})",
                self.net_name(gate.output),
                gate.kind,
                args.join(", ")
            );
        }
        out
    }
}

fn parse_line(b: &mut NetlistBuilder, line: &str) -> Result<(), ParseBenchErrorKind> {
    if let Some(rest) = strip_call(line, "INPUT") {
        b.input(rest);
        return Ok(());
    }
    if let Some(rest) = strip_call(line, "OUTPUT") {
        b.output(rest);
        return Ok(());
    }
    let (lhs, rhs) = line
        .split_once('=')
        .ok_or_else(|| ParseBenchErrorKind::MalformedLine(line.to_owned()))?;
    let lhs = lhs.trim();
    let rhs = rhs.trim();
    let open = rhs
        .find('(')
        .ok_or_else(|| ParseBenchErrorKind::MalformedLine(line.to_owned()))?;
    if !rhs.ends_with(')') {
        return Err(ParseBenchErrorKind::MalformedLine(line.to_owned()));
    }
    let keyword = rhs[..open].trim();
    let args_text = &rhs[open + 1..rhs.len() - 1];
    let args: Vec<&str> = args_text
        .split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .collect();
    if keyword.eq_ignore_ascii_case("DFF") {
        if args.len() != 1 {
            return Err(ParseBenchErrorKind::BadArity {
                kind: "DFF".to_owned(),
                found: args.len(),
            });
        }
        b.dff(lhs, args[0]);
        return Ok(());
    }
    let kind: GateKind = keyword
        .parse()
        .map_err(|_| ParseBenchErrorKind::UnknownGateKind(keyword.to_owned()))?;
    let arity_ok = if kind.is_unary() {
        args.len() == 1
    } else {
        args.len() >= 2
    };
    if !arity_ok {
        return Err(ParseBenchErrorKind::BadArity {
            kind: keyword.to_owned(),
            found: args.len(),
        });
    }
    b.gate(kind, lhs, &args);
    Ok(())
}

fn strip_call<'a>(line: &'a str, keyword: &str) -> Option<&'a str> {
    let rest = line.strip_prefix(keyword)?.trim_start();
    let rest = rest.strip_prefix('(')?;
    let rest = rest.strip_suffix(')')?;
    Some(rest.trim())
}

/// The ISCAS-89 s27 benchmark netlist (4 PIs, 1 PO, 3 DFFs, 10 gates),
/// embedded as a golden reference for the parser and simulator.
pub const S27_BENCH: &str = include_str!("data/s27.bench");

/// Parses the embedded [`S27_BENCH`] netlist.
///
/// # Panics
///
/// Never panics in practice; the embedded text is validated by tests.
#[must_use]
pub fn s27() -> Netlist {
    Netlist::from_bench("s27", S27_BENCH).expect("embedded s27 netlist is valid")
}

/// Summary of a netlist's interface, used when comparing against
/// published benchmark statistics.
#[derive(Clone, Copy, Eq, PartialEq, Debug)]
pub struct InterfaceStats {
    /// Number of primary inputs.
    pub inputs: usize,
    /// Number of primary outputs.
    pub outputs: usize,
    /// Number of flip-flops.
    pub dffs: usize,
    /// Number of combinational gates.
    pub gates: usize,
}

impl Netlist {
    /// Interface statistics of this netlist.
    #[must_use]
    pub fn interface_stats(&self) -> InterfaceStats {
        InterfaceStats {
            inputs: self.num_inputs(),
            outputs: self.num_outputs(),
            dffs: self.num_dffs(),
            gates: self.num_gates(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gate::Driver;

    #[test]
    fn s27_parses_with_published_interface() {
        let n = s27();
        assert_eq!(
            n.interface_stats(),
            InterfaceStats {
                inputs: 4,
                outputs: 1,
                dffs: 3,
                gates: 10
            }
        );
    }

    #[test]
    fn s27_dff_wiring() {
        let n = s27();
        let g5 = n.find_net("G5").unwrap();
        match n.driver(g5) {
            Driver::Dff(id) => assert_eq!(n.dff(id).d, n.find_net("G10").unwrap()),
            other => panic!("G5 should be DFF-driven, got {other:?}"),
        }
    }

    #[test]
    fn roundtrip_through_bench_text() {
        let n = s27();
        let text = n.to_bench_string();
        let n2 = Netlist::from_bench("s27-rt", &text).unwrap();
        assert_eq!(n.interface_stats(), n2.interface_stats());
        // Same gate multiset by (kind, output name).
        let mut a: Vec<(GateKind, &str)> = n
            .gates()
            .iter()
            .map(|g| (g.kind, n.net_name(g.output)))
            .collect();
        let mut b: Vec<(GateKind, &str)> = n2
            .gates()
            .iter()
            .map(|g| (g.kind, n2.net_name(g.output)))
            .collect();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let n = Netlist::from_bench(
            "c",
            "# header\n\nINPUT(a) # trailing\nOUTPUT(y)\ny = BUFF(a)\n",
        )
        .unwrap();
        assert_eq!(n.num_gates(), 1);
    }

    #[test]
    fn malformed_line_reported_with_number() {
        let err = Netlist::from_bench("c", "INPUT(a)\ngarbage here\n").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(matches!(err.kind, ParseBenchErrorKind::MalformedLine(_)));
    }

    #[test]
    fn unknown_kind_rejected() {
        let err = Netlist::from_bench("c", "INPUT(a)\ny = MAJ(a, a, a)\n").unwrap_err();
        assert!(matches!(err.kind, ParseBenchErrorKind::UnknownGateKind(k) if k == "MAJ"));
    }

    #[test]
    fn bad_arity_rejected() {
        let err = Netlist::from_bench("c", "INPUT(a)\nINPUT(b)\ny = NOT(a, b)\n").unwrap_err();
        assert!(matches!(
            err.kind,
            ParseBenchErrorKind::BadArity { found: 2, .. }
        ));
        let err = Netlist::from_bench("c", "INPUT(a)\ny = AND(a)\n").unwrap_err();
        assert!(matches!(
            err.kind,
            ParseBenchErrorKind::BadArity { found: 1, .. }
        ));
    }

    #[test]
    fn dff_arity_rejected() {
        let err = Netlist::from_bench("c", "INPUT(a)\nINPUT(b)\nq = DFF(a, b)\n").unwrap_err();
        assert!(matches!(
            err.kind,
            ParseBenchErrorKind::BadArity { found: 2, .. }
        ));
    }

    #[test]
    fn structural_error_surfaces() {
        let err = Netlist::from_bench("c", "INPUT(a)\ny = NOT(ghost)\nOUTPUT(y)\n").unwrap_err();
        assert!(matches!(err.kind, ParseBenchErrorKind::Structure(_)));
    }
}
