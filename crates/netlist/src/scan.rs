//! Full-scan views: scan chain ordering and response observation points.

use scan_rng::ScanRng;

use crate::gate::{DffId, Driver, NetId};
use crate::Netlist;

/// How scan cells are stitched into the chain.
///
/// The paper (Section 3) notes that the locations of error-capturing
/// cells "depend on the scan chain ordering", and interval-based
/// partitioning profits exactly when the ordering correlates with
/// structure. These strategies let experiments quantify that
/// dependence.
#[derive(Clone, Copy, Eq, PartialEq, Debug)]
#[derive(Default)]
pub enum ScanOrdering {
    /// Netlist declaration order (layout-correlated for circuits whose
    /// flip-flops are declared in placement order, as the synthetic
    /// generator does).
    #[default]
    Natural,
    /// A seeded random permutation — the worst case for clustering.
    Shuffled(u64),
    /// Cone-aware stitching: flip-flops are ordered by the barycenter
    /// of the source flip-flops feeding their next-state cones, so
    /// structurally coupled cells sit near each other in the chain.
    ConeClustered,
}


/// One observable position in a scan-BIST response stream.
///
/// In a full-scan circuit the test response for a pattern consists of the
/// values captured by the scan cells (flip-flops) plus the primary output
/// values; both are shifted to the compactor, so the DATE 2003 paper
/// counts POs among the "scan cells under diagnosis" (its s953 example
/// numbers 52 cells = 29 DFFs + 23 POs).
#[derive(Clone, Copy, Eq, PartialEq, Ord, PartialOrd, Hash, Debug)]
pub enum ObsPoint {
    /// A scan cell; the observed value is what the flip-flop captured.
    Cell(DffId),
    /// A primary output, identified by its index in
    /// [`Netlist::outputs`].
    Output(u32),
}

/// An ordered full-scan view of a netlist: the scan chain order of its
/// flip-flops followed (optionally) by its primary outputs.
///
/// The position of an observation point in this view is its shift
/// position in the (single) scan chain, which is what the partitioning
/// schemes operate on.
///
/// # Examples
///
/// ```
/// use scan_netlist::{bench, ScanView};
///
/// let s27 = bench::s27();
/// let view = ScanView::natural(&s27, true);
/// assert_eq!(view.len(), 3 + 1); // 3 scan cells + 1 PO
/// ```
#[derive(Clone, Eq, PartialEq, Debug)]
pub struct ScanView {
    points: Vec<ObsPoint>,
    num_cells: usize,
}

impl ScanView {
    /// Builds a view with flip-flops in netlist declaration order,
    /// followed by primary outputs when `include_outputs` is set.
    #[must_use]
    pub fn natural(netlist: &Netlist, include_outputs: bool) -> Self {
        let order: Vec<DffId> = netlist.dff_ids().collect();
        Self::with_order(netlist, order, include_outputs)
    }

    /// Builds a view under the given [`ScanOrdering`] strategy.
    #[must_use]
    pub fn ordered(netlist: &Netlist, ordering: ScanOrdering, include_outputs: bool) -> Self {
        match ordering {
            ScanOrdering::Natural => Self::natural(netlist, include_outputs),
            ScanOrdering::Shuffled(seed) => {
                let mut order: Vec<DffId> = netlist.dff_ids().collect();
                let mut rng = ScanRng::seed_from_u64(seed);
                rng.shuffle(&mut order);
                Self::with_order(netlist, order, include_outputs)
            }
            ScanOrdering::ConeClustered => {
                Self::with_order(netlist, cone_clustered_order(netlist), include_outputs)
            }
        }
    }

    /// Builds a view with an explicit scan chain ordering of the
    /// flip-flops.
    ///
    /// # Panics
    ///
    /// Panics if `order` does not contain every flip-flop exactly once.
    #[must_use]
    pub fn with_order(netlist: &Netlist, order: Vec<DffId>, include_outputs: bool) -> Self {
        assert_eq!(
            order.len(),
            netlist.num_dffs(),
            "scan order must cover every flip-flop"
        );
        let mut seen = vec![false; netlist.num_dffs()];
        for &ff in &order {
            assert!(!seen[ff.index()], "flip-flop {ff} repeated in scan order");
            seen[ff.index()] = true;
        }
        let mut points: Vec<ObsPoint> = order.into_iter().map(ObsPoint::Cell).collect();
        let num_cells = points.len();
        if include_outputs {
            points.extend((0..netlist.num_outputs() as u32).map(ObsPoint::Output));
        }
        ScanView { points, num_cells }
    }

    /// All observation points, in shift order.
    #[must_use]
    pub fn points(&self) -> &[ObsPoint] {
        &self.points
    }

    /// Total number of observation points (chain length for
    /// partitioning).
    #[must_use]
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Returns `true` if the view has no observation points.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Number of scan cells (excluding primary outputs).
    #[must_use]
    pub fn num_cells(&self) -> usize {
        self.num_cells
    }

    /// Returns `true` if primary outputs are part of the view.
    #[must_use]
    pub fn includes_outputs(&self) -> bool {
        self.points.len() > self.num_cells
    }

    /// The net whose captured/driven value is observed at `position`.
    ///
    /// For a scan cell this is the flip-flop's D input (the value captured
    /// at the response clock); for a primary output it is the output net.
    ///
    /// # Panics
    ///
    /// Panics if `position` is out of range.
    #[must_use]
    pub fn observed_net(&self, netlist: &Netlist, position: usize) -> NetId {
        match self.points[position] {
            ObsPoint::Cell(ff) => netlist.dff(ff).d,
            ObsPoint::Output(o) => netlist.outputs()[o as usize],
        }
    }

    /// The shift position of a given flip-flop, if it is in the view.
    #[must_use]
    pub fn position_of_cell(&self, ff: DffId) -> Option<usize> {
        self.points[..self.num_cells]
            .iter()
            .position(|&p| p == ObsPoint::Cell(ff))
    }
}

/// Orders flip-flops by iterated barycenter placement: each flip-flop's
/// position is pulled toward the mean position of the source flip-flops
/// in its next-state (D input) cone, so structurally coupled state
/// elements end up adjacent in the scan chain. Deterministic; three
/// relaxation rounds suffice for chain-locality purposes.
fn cone_clustered_order(netlist: &Netlist) -> Vec<DffId> {
    let num_ffs = netlist.num_dffs();
    if num_ffs <= 2 {
        return netlist.dff_ids().collect();
    }
    // Source flip-flops feeding each D net: one backward traversal per
    // flip-flop over the combinational logic.
    let mut q_owner: Vec<Option<u32>> = vec![None; netlist.num_nets()];
    for (i, dff) in netlist.dffs().iter().enumerate() {
        q_owner[dff.q.index()] = Some(i as u32);
    }
    let sources: Vec<Vec<u32>> = netlist
        .dffs()
        .iter()
        .map(|dff| {
            let mut seen = vec![false; netlist.num_nets()];
            let mut stack = vec![dff.d];
            let mut found = Vec::new();
            while let Some(net) = stack.pop() {
                if seen[net.index()] {
                    continue;
                }
                seen[net.index()] = true;
                match netlist.driver(net) {
                    Driver::Dff(_) => {
                        if let Some(owner) = q_owner[net.index()] {
                            found.push(owner);
                        }
                    }
                    Driver::Gate(g) => stack.extend(netlist.gate(g).inputs.iter().copied()),
                    Driver::PrimaryInput => {}
                }
            }
            found
        })
        .collect();
    // Iterated barycenter relaxation from the natural positions.
    let mut pos: Vec<f64> = (0..num_ffs).map(|i| i as f64).collect();
    for _ in 0..3 {
        let snapshot = pos.clone();
        for (i, srcs) in sources.iter().enumerate() {
            if srcs.is_empty() {
                continue;
            }
            let mean: f64 =
                srcs.iter().map(|&s| snapshot[s as usize]).sum::<f64>() / srcs.len() as f64;
            // Blend with the current position so chains don't collapse
            // onto a single point.
            pos[i] = 0.5 * snapshot[i] + 0.5 * mean;
        }
    }
    let mut order: Vec<usize> = (0..num_ffs).collect();
    order.sort_by(|&a, &b| pos[a].total_cmp(&pos[b]).then(a.cmp(&b)));
    order.into_iter().map(|i| DffId(i as u32)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bench;

    #[test]
    fn natural_view_orders_cells_then_outputs() {
        let n = bench::s27();
        let v = ScanView::natural(&n, true);
        assert_eq!(v.num_cells(), 3);
        assert_eq!(v.len(), 4);
        assert!(v.includes_outputs());
        assert!(matches!(v.points()[0], ObsPoint::Cell(_)));
        assert!(matches!(v.points()[3], ObsPoint::Output(0)));
    }

    #[test]
    fn without_outputs() {
        let n = bench::s27();
        let v = ScanView::natural(&n, false);
        assert_eq!(v.len(), 3);
        assert!(!v.includes_outputs());
    }

    #[test]
    fn observed_nets() {
        let n = bench::s27();
        let v = ScanView::natural(&n, true);
        // First cell is G5 = DFF(G10): observed net is G10.
        assert_eq!(v.observed_net(&n, 0), n.find_net("G10").unwrap());
        // Last point is the PO G17.
        assert_eq!(v.observed_net(&n, 3), n.find_net("G17").unwrap());
    }

    #[test]
    fn custom_order_and_position_lookup() {
        let n = bench::s27();
        let mut order: Vec<DffId> = n.dff_ids().collect();
        order.reverse();
        let v = ScanView::with_order(&n, order.clone(), false);
        assert_eq!(v.position_of_cell(order[0]), Some(0));
        assert_eq!(v.position_of_cell(order[2]), Some(2));
    }

    #[test]
    #[should_panic(expected = "repeated in scan order")]
    fn repeated_cell_rejected() {
        let n = bench::s27();
        let first = n.dff_ids().next().unwrap();
        let _ = ScanView::with_order(&n, vec![first, first, first], false);
    }

    #[test]
    fn shuffled_is_a_permutation_and_seed_dependent() {
        let n = crate::generate::benchmark("s953");
        let a = ScanView::ordered(&n, ScanOrdering::Shuffled(1), false);
        let b = ScanView::ordered(&n, ScanOrdering::Shuffled(1), false);
        let c = ScanView::ordered(&n, ScanOrdering::Shuffled(2), false);
        assert_eq!(a, b);
        assert_ne!(a, c);
        // Every flip-flop appears exactly once.
        for ff in n.dff_ids() {
            assert!(a.position_of_cell(ff).is_some());
        }
    }

    #[test]
    fn cone_clustered_is_a_permutation() {
        let n = crate::generate::benchmark("s953");
        let v = ScanView::ordered(&n, ScanOrdering::ConeClustered, true);
        assert_eq!(v.num_cells(), n.num_dffs());
        for ff in n.dff_ids() {
            assert!(v.position_of_cell(ff).is_some());
        }
    }

    #[test]
    fn cone_clustered_improves_or_matches_span() {
        // On the synthetic circuits cone-clustered ordering should not
        // be worse than a shuffled chain for structural span.
        use crate::stats::ClusteringStats;
        let n = crate::generate::benchmark("s953");
        let clustered = ScanView::ordered(&n, ScanOrdering::ConeClustered, true);
        let shuffled = ScanView::ordered(&n, ScanOrdering::Shuffled(3), true);
        let sc = ClusteringStats::compute(&n, &clustered);
        let ss = ClusteringStats::compute(&n, &shuffled);
        assert!(
            sc.mean_span_fraction <= ss.mean_span_fraction,
            "clustered {} vs shuffled {}",
            sc.mean_span_fraction,
            ss.mean_span_fraction
        );
    }

    #[test]
    fn default_ordering_is_natural() {
        assert_eq!(ScanOrdering::default(), ScanOrdering::Natural);
    }
}
