//! Property-based tests for the netlist substrate.

use proptest::prelude::*;

use scan_netlist::generate::{generate_with, profile, GeneratorConfig};
use scan_netlist::{BitSet, GateKind, Netlist, ScanView};

proptest! {
    /// BitSet behaves like a reference HashSet under a random op
    /// sequence.
    #[test]
    fn bitset_matches_hashset_model(ops in prop::collection::vec((0usize..200, any::<bool>()), 0..300)) {
        let mut set = BitSet::new(200);
        let mut model = std::collections::HashSet::new();
        for (idx, insert) in ops {
            if insert {
                prop_assert_eq!(set.insert(idx), model.insert(idx));
            } else {
                prop_assert_eq!(set.remove(idx), model.remove(&idx));
            }
        }
        prop_assert_eq!(set.len(), model.len());
        let mut items: Vec<usize> = model.into_iter().collect();
        items.sort_unstable();
        prop_assert_eq!(set.iter().collect::<Vec<_>>(), items);
    }

    /// Set algebra laws hold for random member sets.
    #[test]
    fn bitset_algebra_laws(
        a in prop::collection::hash_set(0usize..128, 0..64),
        b in prop::collection::hash_set(0usize..128, 0..64),
    ) {
        let mk = |s: &std::collections::HashSet<usize>| {
            let mut set = BitSet::new(128);
            for &i in s { set.insert(i); }
            set
        };
        let (sa, sb) = (mk(&a), mk(&b));
        // Union is commutative.
        let mut u1 = sa.clone(); u1.union_with(&sb);
        let mut u2 = sb.clone(); u2.union_with(&sa);
        prop_assert_eq!(&u1, &u2);
        // Intersection subset of both.
        let mut i1 = sa.clone(); i1.intersect_with(&sb);
        prop_assert!(i1.is_subset(&sa));
        prop_assert!(i1.is_subset(&sb));
        // Difference disjoint from subtrahend.
        let mut d = sa.clone(); d.difference_with(&sb);
        prop_assert!(!d.intersects(&sb) || d.is_empty());
        // |A∪B| = |A| + |B| − |A∩B|.
        prop_assert_eq!(u1.len() + i1.len(), sa.len() + sb.len());
    }

    /// Gate evaluation over packed words agrees with the boolean model
    /// on every lane.
    #[test]
    fn eval_words_matches_bool_model(
        kind_idx in 0usize..8,
        inputs in prop::collection::vec(any::<u64>(), 1..4),
        lane in 0usize..64,
    ) {
        let kind = GateKind::ALL[kind_idx];
        let inputs = if kind.is_unary() { vec![inputs[0]] } else if inputs.len() < 2 { vec![inputs[0], inputs[0]] } else { inputs };
        let word = kind.eval_words(&inputs);
        let bools: Vec<bool> = inputs.iter().map(|w| w >> lane & 1 != 0).collect();
        prop_assert_eq!(word >> lane & 1 != 0, kind.eval_bools(&bools));
    }

    /// Generated circuits always roundtrip through .bench text.
    #[test]
    fn generated_circuits_roundtrip(seed in 0u64..50) {
        let p = profile("s386").unwrap();
        let n = generate_with(p, seed, &GeneratorConfig::default());
        let text = n.to_bench_string();
        let n2 = Netlist::from_bench("rt", &text).unwrap();
        prop_assert_eq!(n.interface_stats(), n2.interface_stats());
        prop_assert_eq!(n.depth(), n2.depth());
    }

    /// Generator locality knob: tighter locality never increases the
    /// structural span fraction dramatically, and views stay complete.
    #[test]
    fn generator_views_complete(seed in 0u64..30) {
        let p = profile("s298").unwrap();
        let n = generate_with(p, seed, &GeneratorConfig::default());
        let view = ScanView::natural(&n, true);
        prop_assert_eq!(view.len(), p.dffs + p.outputs);
        // Every observed net exists and is driven (observed_net panics
        // otherwise).
        for pos in 0..view.len() {
            let _ = view.observed_net(&n, pos);
        }
    }
}
