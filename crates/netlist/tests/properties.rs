//! Property-based tests for the netlist substrate, on the
//! in-workspace shrink-free harness.

use scan_rng::testkit::Runner;

use scan_netlist::generate::{generate_with, profile, GeneratorConfig};
use scan_netlist::{BitSet, GateKind, Netlist, ScanView};

/// BitSet behaves like a reference HashSet under a random op sequence.
#[test]
fn bitset_matches_hashset_model() {
    Runner::new(256).run("bitset_matches_hashset_model", |g| {
        let ops = g.vec("ops", 0, 299, |r| (r.gen_index(200), r.next_bool()));
        let mut set = BitSet::new(200);
        let mut model = std::collections::HashSet::new();
        for (idx, insert) in ops {
            if insert {
                assert_eq!(set.insert(idx), model.insert(idx));
            } else {
                assert_eq!(set.remove(idx), model.remove(&idx));
            }
        }
        assert_eq!(set.len(), model.len());
        let mut items: Vec<usize> = model.into_iter().collect();
        items.sort_unstable();
        assert_eq!(set.iter().collect::<Vec<_>>(), items);
    });
}

/// Set algebra laws hold for random member sets.
#[test]
fn bitset_algebra_laws() {
    Runner::new(256).run("bitset_algebra_laws", |g| {
        let a = g.set("a", 0, 63, |r| r.gen_index(128));
        let b = g.set("b", 0, 63, |r| r.gen_index(128));
        let mk = |s: &std::collections::BTreeSet<usize>| {
            let mut set = BitSet::new(128);
            for &i in s {
                set.insert(i);
            }
            set
        };
        let (sa, sb) = (mk(&a), mk(&b));
        // Union is commutative.
        let mut u1 = sa.clone();
        u1.union_with(&sb);
        let mut u2 = sb.clone();
        u2.union_with(&sa);
        assert_eq!(&u1, &u2);
        // Intersection subset of both.
        let mut i1 = sa.clone();
        i1.intersect_with(&sb);
        assert!(i1.is_subset(&sa));
        assert!(i1.is_subset(&sb));
        // Difference disjoint from subtrahend.
        let mut d = sa.clone();
        d.difference_with(&sb);
        assert!(!d.intersects(&sb) || d.is_empty());
        // |A∪B| = |A| + |B| − |A∩B|.
        assert_eq!(u1.len() + i1.len(), sa.len() + sb.len());
    });
}

/// Gate evaluation over packed words agrees with the boolean model on
/// every lane.
#[test]
fn eval_words_matches_bool_model() {
    Runner::new(256).run("eval_words_matches_bool_model", |g| {
        let kind_idx = g.usize("kind_idx", 0, 7);
        let inputs = g.vec("inputs", 1, 3, scan_rng::ScanRng::next_u64);
        let lane = g.usize("lane", 0, 63);
        let kind = GateKind::ALL[kind_idx];
        let inputs = if kind.is_unary() {
            vec![inputs[0]]
        } else if inputs.len() < 2 {
            vec![inputs[0], inputs[0]]
        } else {
            inputs
        };
        let word = kind.eval_words(&inputs);
        let bools: Vec<bool> = inputs.iter().map(|w| w >> lane & 1 != 0).collect();
        assert_eq!(word >> lane & 1 != 0, kind.eval_bools(&bools));
    });
}

/// Generated circuits always roundtrip through .bench text.
#[test]
fn generated_circuits_roundtrip() {
    Runner::new(50).run("generated_circuits_roundtrip", |g| {
        let seed = g.u64("seed", 0, 49);
        let p = profile("s386").unwrap();
        let n = generate_with(p, seed, &GeneratorConfig::default());
        let text = n.to_bench_string();
        let n2 = Netlist::from_bench("rt", &text).unwrap();
        assert_eq!(n.interface_stats(), n2.interface_stats());
        assert_eq!(n.depth(), n2.depth());
    });
}

/// Generator locality knob: views stay complete and every observed net
/// is driven, for any seed.
#[test]
fn generator_views_complete() {
    Runner::new(30).run("generator_views_complete", |g| {
        let seed = g.u64("seed", 0, 29);
        let p = profile("s298").unwrap();
        let n = generate_with(p, seed, &GeneratorConfig::default());
        let view = ScanView::natural(&n, true);
        assert_eq!(view.len(), p.dffs + p.outputs);
        // Every observed net exists and is driven (observed_net panics
        // otherwise).
        for pos in 0..view.len() {
            let _ = view.observed_net(&n, pos);
        }
    });
}
