//! Workspace file discovery: every `.rs` file and every `Cargo.toml`
//! under the root, in a deterministic (sorted) order, skipping build
//! output, VCS metadata, and configured exclude prefixes.

use std::path::{Path, PathBuf};

use crate::config::Config;

/// Directory names never worth descending into.
const SKIP_DIRS: &[&str] = &["target", ".git", "results"];

/// A discovered file with its root-relative forward-slash path.
#[derive(Clone, Debug)]
pub struct SourceFile {
    /// Absolute (or root-joined) path for reading.
    pub path: PathBuf,
    /// Root-relative path with `/` separators — what rules and config
    /// prefixes match against.
    pub rel: String,
}

/// Walks `root` collecting `(rust_files, manifests)`, both sorted by
/// relative path so findings and NDJSON output are reproducible.
///
/// # Errors
///
/// Returns the first directory-read error encountered.
pub fn collect(root: &Path, config: &Config) -> std::io::Result<(Vec<SourceFile>, Vec<SourceFile>)> {
    let mut rust = Vec::new();
    let mut manifests = Vec::new();
    walk_dir(root, root, config, &mut rust, &mut manifests)?;
    rust.sort_by(|a, b| a.rel.cmp(&b.rel));
    manifests.sort_by(|a, b| a.rel.cmp(&b.rel));
    Ok((rust, manifests))
}

fn walk_dir(
    root: &Path,
    dir: &Path,
    config: &Config,
    rust: &mut Vec<SourceFile>,
    manifests: &mut Vec<SourceFile>,
) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        let rel = relative(root, &path);
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) || name.starts_with('.') {
                continue;
            }
            if config.is_excluded(&rel) {
                continue;
            }
            walk_dir(root, &path, config, rust, manifests)?;
        } else if !config.is_excluded(&rel) {
            if name == "Cargo.toml" {
                manifests.push(SourceFile { path, rel });
            } else if name.ends_with(".rs") {
                rust.push(SourceFile { path, rel });
            }
        }
    }
    Ok(())
}

fn relative(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    let mut out = String::new();
    for component in rel.components() {
        if !out.is_empty() {
            out.push('/');
        }
        out.push_str(&component.as_os_str().to_string_lossy());
    }
    out
}
