//! `lint.toml` parsing — the checked-in workspace lint configuration.
//!
//! The format is a deliberately small TOML subset (the workspace is
//! zero-dependency, so there is no full TOML parser to lean on):
//!
//! ```toml
//! [lint]
//! exclude = [
//!     "crates/lint/tests/fixtures", # deliberate violations
//! ]
//!
//! [allow.L008]
//! reason = "experiment bins reproduce the paper's strict flow"
//! paths = ["crates/bench"]
//! ```
//!
//! Sections are `[lint]` (global excludes) and one `[allow.L00x]` per
//! rule; every allow section **must** carry a non-empty `reason`
//! string — a suppression without a written justification is a config
//! error, mirroring the inline `// lint:allow(L00x): reason` syntax.

use std::fmt;

/// One per-rule path allowance from an `[allow.L00x]` section.
#[derive(Clone, Debug)]
pub struct Allow {
    /// Rule id, e.g. `L004`.
    pub rule: String,
    /// Root-relative path prefixes the rule is allowed under.
    pub paths: Vec<String>,
    /// Written justification (required).
    pub reason: String,
}

/// One L012 panic-freedom root from the `[roots]` section: the function
/// from which no panic site may be transitively reachable.
#[derive(Clone, Debug)]
pub struct RootSpec {
    /// Optional root-relative file path the root must live in; `None`
    /// matches the function name in any file.
    pub file: Option<String>,
    /// Function name.
    pub name: String,
}

impl RootSpec {
    /// Parses `"crates/daemon/src/server.rs::handle"` or `"handle"`.
    #[must_use]
    pub fn parse(spec: &str) -> RootSpec {
        match spec.split_once("::") {
            Some((file, name)) => RootSpec {
                file: Some(file.to_owned()),
                name: name.to_owned(),
            },
            None => RootSpec {
                file: None,
                name: spec.to_owned(),
            },
        }
    }

    /// Does the function `name` defined in `file` match this root?
    #[must_use]
    pub fn matches(&self, file: &str, name: &str) -> bool {
        self.name == name && self.file.as_deref().is_none_or(|f| f == file)
    }
}

/// Parsed `lint.toml`.
#[derive(Clone, Debug, Default)]
pub struct Config {
    /// Root-relative path prefixes excluded from scanning entirely
    /// (fixture trees with deliberate violations live here).
    pub exclude: Vec<String>,
    /// Per-rule path allowances.
    pub allows: Vec<Allow>,
    /// L012 panic-freedom roots (`[roots] panic_freedom = [...]`).
    /// L012 is inert when this list is empty.
    pub panic_roots: Vec<RootSpec>,
}

/// Error produced for a malformed `lint.toml`.
#[derive(Clone, Eq, PartialEq, Debug)]
pub struct ConfigError {
    /// 1-based line of the offending construct (0 for file-level).
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lint.toml:{}: {}", self.line, self.message)
    }
}

impl std::error::Error for ConfigError {}

impl Config {
    /// Finds the path prefix allowance covering `path` for `rule`, if
    /// any, returning its reason.
    #[must_use]
    pub fn allow_reason(&self, rule: &str, path: &str) -> Option<&str> {
        self.allows
            .iter()
            .filter(|a| a.rule == rule)
            .find(|a| a.paths.iter().any(|p| path_has_prefix(path, p)))
            .map(|a| a.reason.as_str())
    }

    /// True when `path` falls under a global exclude prefix.
    #[must_use]
    pub fn is_excluded(&self, path: &str) -> bool {
        self.exclude.iter().any(|p| path_has_prefix(path, p))
    }

    /// Parses the `lint.toml` text.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] on unknown sections/keys, malformed
    /// values, or an `[allow.*]` section missing a non-empty `reason`.
    pub fn parse(text: &str) -> Result<Config, ConfigError> {
        let mut config = Config::default();
        let mut section = Section::None;
        let mut pending: Option<(Allow, usize)> = None;
        let mut lines = text.lines().enumerate().peekable();
        while let Some((index, raw)) = lines.next() {
            let line_no = index + 1;
            let line = strip_comment(raw).trim();
            if line.is_empty() {
                continue;
            }
            if let Some(header) = line.strip_prefix('[') {
                let header = header.strip_suffix(']').ok_or_else(|| ConfigError {
                    line: line_no,
                    message: format!("unterminated section header `{raw}`"),
                })?;
                finish_allow(&mut pending, &mut config)?;
                section = match header.trim() {
                    "lint" => Section::Lint,
                    "roots" => Section::Roots,
                    other => match other.strip_prefix("allow.") {
                        Some(rule) if is_rule_id(rule) => {
                            pending = Some((
                                Allow {
                                    rule: rule.to_owned(),
                                    paths: Vec::new(),
                                    reason: String::new(),
                                },
                                line_no,
                            ));
                            Section::Allow
                        }
                        _ => {
                            return Err(ConfigError {
                                line: line_no,
                                message: format!(
                                    "unknown section `[{other}]` (expected [lint] or [allow.L0xx])"
                                ),
                            })
                        }
                    },
                };
                continue;
            }
            let (key, value) = line.split_once('=').ok_or_else(|| ConfigError {
                line: line_no,
                message: format!("expected `key = value`, got `{raw}`"),
            })?;
            let key = key.trim();
            let mut value = value.trim().to_owned();
            // Multi-line arrays: keep consuming lines until the `]`.
            if value.starts_with('[') && !value.contains(']') {
                for (_, continuation) in lines.by_ref() {
                    let continuation = strip_comment(continuation);
                    value.push(' ');
                    value.push_str(continuation.trim());
                    if continuation.contains(']') {
                        break;
                    }
                }
            }
            match (&section, key) {
                (Section::Lint, "exclude") => {
                    config.exclude = parse_string_array(&value, line_no)?;
                }
                (Section::Roots, "panic_freedom") => {
                    for spec in parse_string_array(&value, line_no)? {
                        if spec.trim().is_empty() || spec.ends_with("::") {
                            return Err(ConfigError {
                                line: line_no,
                                message: format!(
                                    "bad root spec `{spec}` (expected `path/to/file.rs::fn_name` \
                                     or a bare function name)"
                                ),
                            });
                        }
                        config.panic_roots.push(RootSpec::parse(&spec));
                    }
                }
                (Section::Allow, "paths") => {
                    let allow = &mut pending.as_mut().expect("in allow section").0;
                    allow.paths = parse_string_array(&value, line_no)?;
                }
                (Section::Allow, "reason") => {
                    let allow = &mut pending.as_mut().expect("in allow section").0;
                    allow.reason = parse_string(&value, line_no)?;
                }
                (Section::None, _) => {
                    return Err(ConfigError {
                        line: line_no,
                        message: format!("key `{key}` outside any section"),
                    })
                }
                (_, other) => {
                    return Err(ConfigError {
                        line: line_no,
                        message: format!("unknown key `{other}`"),
                    })
                }
            }
        }
        finish_allow(&mut pending, &mut config)?;
        Ok(config)
    }
}

enum Section {
    None,
    Lint,
    Allow,
    Roots,
}

/// True when `path` equals `prefix` or sits underneath it as a
/// directory prefix (component-wise, so `crates/li` does not cover
/// `crates/lint/...`).
fn path_has_prefix(path: &str, prefix: &str) -> bool {
    let prefix = prefix.trim_end_matches('/');
    path == prefix
        || path
            .strip_prefix(prefix)
            .is_some_and(|rest| rest.starts_with('/'))
}

fn is_rule_id(text: &str) -> bool {
    text.len() == 4
        && text.starts_with('L')
        && text[1..].chars().all(|c| c.is_ascii_digit())
}

fn finish_allow(
    pending: &mut Option<(Allow, usize)>,
    config: &mut Config,
) -> Result<(), ConfigError> {
    if let Some((allow, line)) = pending.take() {
        if allow.reason.trim().is_empty() {
            return Err(ConfigError {
                line,
                message: format!(
                    "[allow.{}] needs a non-empty `reason = \"…\"` — every suppression \
                     must say why",
                    allow.rule
                ),
            });
        }
        if allow.paths.is_empty() {
            return Err(ConfigError {
                line,
                message: format!("[allow.{}] needs a `paths = [\"…\"]` list", allow.rule),
            });
        }
        config.allows.push(allow);
    }
    Ok(())
}

/// Strips a `#` comment, respecting double-quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_string = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_string = !in_string,
            '#' if !in_string => return &line[..i],
            _ => {}
        }
    }
    line
}

fn parse_string(value: &str, line: usize) -> Result<String, ConfigError> {
    let value = value.trim();
    value
        .strip_prefix('"')
        .and_then(|v| v.strip_suffix('"'))
        .map(str::to_owned)
        .ok_or_else(|| ConfigError {
            line,
            message: format!("expected a double-quoted string, got `{value}`"),
        })
}

fn parse_string_array(value: &str, line: usize) -> Result<Vec<String>, ConfigError> {
    let value = value.trim();
    let inner = value
        .strip_prefix('[')
        .and_then(|v| v.strip_suffix(']'))
        .ok_or_else(|| ConfigError {
            line,
            message: format!("expected `[\"…\", …]`, got `{value}`"),
        })?;
    let mut items = Vec::new();
    for item in inner.split(',') {
        let item = item.trim();
        if item.is_empty() {
            continue; // trailing comma
        }
        items.push(parse_string(item, line)?);
    }
    Ok(items)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_full_config() {
        let config = Config::parse(
            r#"
# workspace lint configuration
[lint]
exclude = [
    "crates/lint/tests/fixtures", # deliberate violations
]

[allow.L008]
reason = "strict flow is the measured quantity"
paths = ["crates/bench", "examples/demo.rs"]
"#,
        )
        .unwrap();
        assert_eq!(config.exclude, vec!["crates/lint/tests/fixtures"]);
        assert_eq!(config.allows.len(), 1);
        assert!(config.is_excluded("crates/lint/tests/fixtures/deny/x.rs"));
        assert!(!config.is_excluded("crates/lint/src/lib.rs"));
        assert_eq!(
            config.allow_reason("L008", "crates/bench/src/bin/figure3.rs"),
            Some("strict flow is the measured quantity")
        );
        assert_eq!(config.allow_reason("L004", "crates/bench/src/lib.rs"), None);
        assert_eq!(config.allow_reason("L008", "crates/benchmark/x.rs"), None);
    }

    #[test]
    fn parses_panic_freedom_roots() {
        let config = Config::parse(
            "[roots]\npanic_freedom = [\n    \"crates/daemon/src/server.rs::handle_connection\",\n    \"install\",\n]\n",
        )
        .unwrap();
        assert_eq!(config.panic_roots.len(), 2);
        assert!(config.panic_roots[0]
            .matches("crates/daemon/src/server.rs", "handle_connection"));
        assert!(!config.panic_roots[0].matches("crates/daemon/src/cache.rs", "handle_connection"));
        assert!(config.panic_roots[1].matches("anywhere.rs", "install"));
        assert!(Config::parse("[roots]\npanic_freedom = [\"bad::\"]\n").is_err());
        assert!(Config::parse("[roots]\nbogus = [\"x\"]\n").is_err());
    }

    #[test]
    fn allow_requires_reason_and_paths() {
        let err = Config::parse("[allow.L004]\npaths = [\"a\"]\n").unwrap_err();
        assert!(err.message.contains("reason"), "{err}");
        let err = Config::parse("[allow.L004]\nreason = \"why\"\n").unwrap_err();
        assert!(err.message.contains("paths"), "{err}");
    }

    #[test]
    fn rejects_unknown_sections_and_keys() {
        assert!(Config::parse("[deny.L001]\n").is_err());
        assert!(Config::parse("[allow.X001]\n").is_err());
        assert!(Config::parse("[lint]\nbogus = 3\n").is_err());
        assert!(Config::parse("orphan = 1\n").is_err());
    }

    #[test]
    fn comments_and_strings_interact() {
        let config = Config::parse("[lint]\nexclude = [\"a#b\"] # trailing\n").unwrap();
        assert_eq!(config.exclude, vec!["a#b"]);
    }
}
