//! A small line/column-tracking Rust tokenizer.
//!
//! The rule engine needs just enough lexical structure to tell an
//! identifier in code from the same word inside a string literal or a
//! comment: `println!` in a doc example must not trip the
//! stdout-cleanliness lint, and a raw string containing `unsafe` is not
//! an unsafe block. The lexer therefore handles the full Rust literal
//! syntax — escaped strings, raw strings with arbitrary `#` fences,
//! byte/C-string prefixes, char literals vs. lifetimes, and *nested*
//! block comments — while treating everything else as single-character
//! punctuation. No external parser, no syn: tokens carry their text and
//! a 1-based line/column span and that is all the rules need.

/// What a token is, at the granularity the rules care about.
#[derive(Clone, Copy, Eq, PartialEq, Debug)]
pub enum TokenKind {
    /// Identifier or keyword (`unsafe`, `HashMap`, `println`, …).
    Ident,
    /// String, raw string, byte string, char, or numeric literal.
    Literal,
    /// A lifetime such as `'a` (distinguished from char literals).
    Lifetime,
    /// Any single punctuation character (`!`, `:`, `#`, `[`, …).
    Punct,
    /// Line comment (`// …`) or block comment (`/* … */`, nested ok),
    /// including doc comments. Text includes the delimiters.
    Comment,
}

/// One lexed token with its source span.
#[derive(Clone, Debug)]
pub struct Token {
    /// Classification used by the rules.
    pub kind: TokenKind,
    /// Verbatim source text of the token.
    pub text: String,
    /// 1-based line of the token's first character.
    pub line: u32,
    /// 1-based column (in characters) of the token's first character.
    pub col: u32,
}

impl Token {
    /// True for punctuation tokens whose text is exactly `ch`.
    #[must_use]
    pub fn is_punct(&self, ch: char) -> bool {
        self.kind == TokenKind::Punct && self.text.starts_with(ch)
    }

    /// True for identifier tokens whose text is exactly `word`.
    #[must_use]
    pub fn is_ident(&self, word: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == word
    }
}

struct Cursor<'a> {
    chars: std::iter::Peekable<std::str::Chars<'a>>,
    line: u32,
    col: u32,
}

impl<'a> Cursor<'a> {
    fn new(text: &'a str) -> Self {
        Cursor {
            chars: text.chars().peekable(),
            line: 1,
            col: 1,
        }
    }

    fn peek(&mut self) -> Option<char> {
        self.chars.peek().copied()
    }

    fn peek2(&mut self) -> Option<char> {
        // `Peekable` only looks one ahead; clone the underlying iterator
        // for the second character (cheap: it is a `Chars`).
        let mut ahead = self.chars.clone();
        ahead.next();
        ahead.next()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.next()?;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Tokenizes `source`, never failing: unterminated literals simply run
/// to end of input. Comments are kept as [`TokenKind::Comment`] tokens
/// so rules can inspect `// SAFETY:` and `// lint:allow(...)` text.
#[must_use]
pub fn tokenize(source: &str) -> Vec<Token> {
    let mut cursor = Cursor::new(source);
    let mut tokens = Vec::new();
    while let Some(c) = cursor.peek() {
        let (line, col) = (cursor.line, cursor.col);
        if c.is_whitespace() {
            cursor.bump();
            continue;
        }
        let token = if c == '/' && cursor.peek2() == Some('/') {
            lex_line_comment(&mut cursor)
        } else if c == '/' && cursor.peek2() == Some('*') {
            lex_block_comment(&mut cursor)
        } else if c == '"' {
            lex_string(&mut cursor)
        } else if c == '\'' {
            lex_char_or_lifetime(&mut cursor)
        } else if is_ident_start(c) {
            lex_ident_or_prefixed_literal(&mut cursor)
        } else if c.is_ascii_digit() {
            lex_number(&mut cursor)
        } else {
            let mut text = String::new();
            text.push(cursor.bump().expect("peeked"));
            (TokenKind::Punct, text)
        };
        tokens.push(Token {
            kind: token.0,
            text: token.1,
            line,
            col,
        });
    }
    tokens
}

fn lex_line_comment(cursor: &mut Cursor<'_>) -> (TokenKind, String) {
    let mut text = String::new();
    while let Some(c) = cursor.peek() {
        if c == '\n' {
            break;
        }
        text.push(cursor.bump().expect("peeked"));
    }
    (TokenKind::Comment, text)
}

fn lex_block_comment(cursor: &mut Cursor<'_>) -> (TokenKind, String) {
    let mut text = String::new();
    // Consume `/*`.
    text.push(cursor.bump().expect("peeked"));
    text.push(cursor.bump().expect("peeked"));
    let mut depth = 1usize;
    while depth > 0 {
        match cursor.peek() {
            Some('/') if cursor.peek2() == Some('*') => {
                text.push(cursor.bump().expect("peeked"));
                text.push(cursor.bump().expect("peeked"));
                depth += 1;
            }
            Some('*') if cursor.peek2() == Some('/') => {
                text.push(cursor.bump().expect("peeked"));
                text.push(cursor.bump().expect("peeked"));
                depth -= 1;
            }
            Some(_) => text.push(cursor.bump().expect("peeked")),
            None => break, // unterminated: tolerate
        }
    }
    (TokenKind::Comment, text)
}

/// Lexes a `"…"` string with backslash escapes; the opening quote is at
/// the cursor.
fn lex_string(cursor: &mut Cursor<'_>) -> (TokenKind, String) {
    let mut text = String::new();
    text.push(cursor.bump().expect("peeked")); // opening quote
    while let Some(c) = cursor.bump() {
        text.push(c);
        if c == '\\' {
            if let Some(escaped) = cursor.bump() {
                text.push(escaped);
            }
        } else if c == '"' {
            break;
        }
    }
    (TokenKind::Literal, text)
}

/// Lexes `r"…"` / `r#"…"#` / `br##"…"##` bodies. The cursor sits on the
/// first `#` or `"` after the prefix letters (already consumed into
/// `text`).
fn lex_raw_string(cursor: &mut Cursor<'_>, text: &mut String) {
    let mut fence = 0usize;
    while cursor.peek() == Some('#') {
        text.push(cursor.bump().expect("peeked"));
        fence += 1;
    }
    if cursor.peek() != Some('"') {
        return; // `r#ident` raw identifier, not a string — keep as-is
    }
    text.push(cursor.bump().expect("peeked"));
    loop {
        match cursor.bump() {
            None => return, // unterminated
            Some('"') => {
                text.push('"');
                let mut closing = 0usize;
                while closing < fence && cursor.peek() == Some('#') {
                    text.push(cursor.bump().expect("peeked"));
                    closing += 1;
                }
                if closing == fence {
                    return;
                }
            }
            Some(other) => text.push(other),
        }
    }
}

/// Distinguishes `'a'` / `'\n'` / `'\u{1F600}'` char literals from
/// lifetimes like `'static`: after the quote, an identifier character
/// followed by anything other than a closing quote is a lifetime.
fn lex_char_or_lifetime(cursor: &mut Cursor<'_>) -> (TokenKind, String) {
    let mut text = String::new();
    text.push(cursor.bump().expect("peeked")); // opening '
    match cursor.peek() {
        Some('\\') => {
            // Escaped char literal.
            text.push(cursor.bump().expect("peeked"));
            if let Some(escaped) = cursor.bump() {
                text.push(escaped);
            }
            // Consume through the closing quote (covers \u{…}).
            while let Some(c) = cursor.bump() {
                text.push(c);
                if c == '\'' {
                    break;
                }
            }
            (TokenKind::Literal, text)
        }
        Some(c) if is_ident_continue(c) && cursor.peek2() != Some('\'') => {
            // Lifetime: consume the identifier.
            while let Some(c) = cursor.peek() {
                if !is_ident_continue(c) {
                    break;
                }
                text.push(cursor.bump().expect("peeked"));
            }
            (TokenKind::Lifetime, text)
        }
        Some(_) => {
            // Plain char literal `'x'`.
            text.push(cursor.bump().expect("peeked"));
            if cursor.peek() == Some('\'') {
                text.push(cursor.bump().expect("peeked"));
            }
            (TokenKind::Literal, text)
        }
        None => (TokenKind::Punct, text),
    }
}

fn lex_ident_or_prefixed_literal(cursor: &mut Cursor<'_>) -> (TokenKind, String) {
    let mut text = String::new();
    while let Some(c) = cursor.peek() {
        if !is_ident_continue(c) {
            break;
        }
        text.push(cursor.bump().expect("peeked"));
    }
    // Literal prefixes: r"…", r#"…"#, b"…", br#"…"#, c"…", b'…'.
    let next = cursor.peek();
    let is_raw_prefix = matches!(text.as_str(), "r" | "br" | "cr" | "b" | "c");
    if is_raw_prefix && (next == Some('"') || next == Some('#')) {
        if text.ends_with('r') {
            lex_raw_string(cursor, &mut text);
            // `r#ident` raw identifier: lex_raw_string backed off.
            if cursor.peek().is_some_and(is_ident_start) {
                while let Some(c) = cursor.peek() {
                    if !is_ident_continue(c) {
                        break;
                    }
                    text.push(cursor.bump().expect("peeked"));
                }
                return (TokenKind::Ident, text);
            }
        } else if next == Some('"') {
            let (_, rest) = lex_string(cursor);
            text.push_str(&rest);
        }
        return (TokenKind::Literal, text);
    }
    if text == "b" && next == Some('\'') {
        let (_, rest) = lex_char_or_lifetime(cursor);
        text.push_str(&rest);
        return (TokenKind::Literal, text);
    }
    (TokenKind::Ident, text)
}

fn lex_number(cursor: &mut Cursor<'_>) -> (TokenKind, String) {
    let mut text = String::new();
    while let Some(c) = cursor.peek() {
        // Loose: digits, type suffixes, underscores, hex letters, and a
        // decimal point all glue into one literal token. Precision here
        // does not matter to any rule.
        if is_ident_continue(c) || c == '.' {
            // Take care not to swallow `..` range punctuation.
            if c == '.' && cursor.peek2() == Some('.') {
                break;
            }
            text.push(cursor.bump().expect("peeked"));
        } else {
            break;
        }
    }
    (TokenKind::Literal, text)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(source: &str) -> Vec<String> {
        tokenize(source)
            .into_iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn raw_string_containing_unsafe_is_a_literal() {
        let tokens = tokenize(r####"let s = r#"unsafe { println!("hi") }"#;"####);
        assert!(tokens.iter().all(|t| !t.is_ident("unsafe")));
        assert!(tokens.iter().all(|t| !t.is_ident("println")));
        let lit = tokens
            .iter()
            .find(|t| t.kind == TokenKind::Literal)
            .expect("raw string literal");
        assert!(lit.text.contains("unsafe"));
    }

    #[test]
    fn raw_string_fences_respected() {
        let source = "r##\"inner \"# quote\"## HashMap";
        assert_eq!(idents(source), vec!["HashMap"]);
    }

    #[test]
    fn println_inside_comment_is_a_comment() {
        let tokens = tokenize("// println!(\"x\")\nfoo();");
        assert_eq!(tokens[0].kind, TokenKind::Comment);
        assert!(tokens.iter().all(|t| !t.is_ident("println")));
        assert!(tokens.iter().any(|t| t.is_ident("foo")));
    }

    #[test]
    fn nested_block_comments() {
        let source = "/* outer /* inner */ still comment */ unsafe";
        let tokens = tokenize(source);
        assert_eq!(tokens[0].kind, TokenKind::Comment);
        assert!(tokens[0].text.contains("inner"));
        assert!(tokens[1].is_ident("unsafe"));
    }

    #[test]
    fn unterminated_block_comment_tolerated() {
        let tokens = tokenize("/* runs to EOF unsafe");
        assert_eq!(tokens.len(), 1);
        assert_eq!(tokens[0].kind, TokenKind::Comment);
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let tokens = tokenize("fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; }");
        let lifetimes: Vec<_> = tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Lifetime)
            .collect();
        assert_eq!(lifetimes.len(), 2);
        let chars: Vec<_> = tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Literal && t.text.starts_with('\''))
            .collect();
        assert_eq!(chars.len(), 2, "{chars:?}");
    }

    #[test]
    fn escaped_quotes_do_not_end_strings() {
        let tokens = tokenize(r#"let s = "he said \"unsafe\""; done"#);
        assert!(tokens.iter().all(|t| !t.is_ident("unsafe")));
        assert!(tokens.iter().any(|t| t.is_ident("done")));
    }

    #[test]
    fn line_and_column_tracking() {
        let tokens = tokenize("ab cd\n  ef");
        assert_eq!((tokens[0].line, tokens[0].col), (1, 1));
        assert_eq!((tokens[1].line, tokens[1].col), (1, 4));
        assert_eq!((tokens[2].line, tokens[2].col), (2, 3));
    }

    #[test]
    fn byte_and_c_strings_are_literals() {
        let tokens = tokenize(r#"b"unsafe" c"rand" br#x"#);
        assert!(tokens.iter().all(|t| !t.is_ident("unsafe")));
        assert!(tokens.iter().all(|t| !t.is_ident("rand")));
    }

    #[test]
    fn raw_identifier_is_an_ident() {
        let tokens = tokenize("let r#type = 1;");
        assert!(tokens.iter().any(|t| t.is_ident("r#type")));
    }

    #[test]
    fn attributes_lex_as_puncts_and_idents() {
        let tokens = tokenize("#[non_exhaustive]\npub enum E {}");
        assert!(tokens[0].is_punct('#'));
        assert!(tokens[1].is_punct('['));
        assert!(tokens[2].is_ident("non_exhaustive"));
        assert!(tokens[3].is_punct(']'));
    }
}
